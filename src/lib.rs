//! `miro-suite`: the workspace umbrella crate.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`), and re-exports every member crate so a
//! downstream user can depend on one name:
//!
//! ```
//! use miro_suite::{bgp, core, topology};
//!
//! let (topo, [a, _b, _c, _d, _e, f]) = topology::gen::figure_1_1();
//! let st = bgp::solver::RoutingState::solve(&topo, f);
//! let offers = core::export::ExportPolicy::Flexible
//!     .offers(&st, a, topology::Rel::Customer);
//! assert!(offers.len() <= st.candidates(a).len());
//! ```

pub use miro_bgp as bgp;
pub use miro_cli as cli;
pub use miro_convergence as convergence;
pub use miro_core as core;
pub use miro_dataplane as dataplane;
pub use miro_eval as eval;
pub use miro_policy as policy;
pub use miro_topology as topology;
