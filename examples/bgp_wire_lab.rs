//! The BGP substrate at wire level: three speakers handshake with real
//! OPEN/KEEPALIVE messages, exchange real UPDATEs (hexdumped), converge,
//! and render their tables in the Table 1.1 format — then a session drops
//! and the withdraw propagates.
//!
//! ```sh
//! cargo run --example bgp_wire_lab
//! ```

use miro_bgp::speaker::{pump, PeerConfig, Speaker};
use miro_bgp::wire::{BgpMessage, WirePrefix};

fn hexdump(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .chunks(16)
        .map(|c| c.join(" "))
        .collect::<Vec<_>>()
        .join("\n    ")
}

fn main() {
    println!("== 1. The messages themselves ==\n");
    let open = BgpMessage::open(65001, 90, 0x0a000001);
    println!("OPEN (AS 65001, hold 90):");
    println!("    {}\n", hexdump(&open.emit().expect("encodes")));
    let update = BgpMessage::Update {
        withdrawn: vec![],
        attrs: miro_bgp::wire::PathAttributes {
            origin: Some(0),
            as_path: vec![6509, 11537, 10466, 88], // the Table 1.1 path
            next_hop: Some(0xcdbd202c),
            med: None,
            local_pref: None,
        },
        nlri: vec![WirePrefix::new(0x80700000, 16)], // 128.112.0.0/16
    };
    println!("UPDATE (128.112.0.0/16 via 6509 11537 10466 88):");
    println!("    {}\n", hexdump(&update.emit().expect("encodes")));

    println!("== 2. Three speakers converge over the wire ==\n");
    // 65003 originates; 65002 provides transit; 65001 is a customer edge.
    let mut s1 = Speaker::new(65001, 1);
    let mut s2 = Speaker::new(65002, 2);
    let mut s3 = Speaker::new(65003, 3);
    let p12 = s1.add_peer(PeerConfig::ebgp(65002, 80, false));
    let p21 = s2.add_peer(PeerConfig::ebgp(65001, 450, true));
    let p23 = s2.add_peer(PeerConfig::ebgp(65003, 450, true));
    let p32 = s3.add_peer(PeerConfig::ebgp(65002, 80, false));
    let prefix = WirePrefix::new(0x0a030000, 16);
    s3.originate(prefix);
    for s in [&mut s1, &mut s2, &mut s3] {
        s.start();
    }
    let mut sp = vec![s1, s2, s3];
    let links = vec![(0usize, p12, 1usize, p21), (1, p23, 2, p32)];
    pump(&mut sp, &links);
    for s in sp.iter() {
        println!(
            "  AS{}: best path to 10.3.0.0/16 = {:?} (session {:?})",
            s.asn,
            s.best_path(prefix),
            s.session_state(0)
        );
    }

    println!("\n== 3. The solver view, rendered like Table 1.1 ==\n");
    let (t, [a, _b, _c, _d, _e, f]) = miro_topology::gen::figure_1_1();
    let st = miro_bgp::solver::RoutingState::solve(&t, f);
    print!("{}", miro_bgp::show::format_table(&miro_bgp::show::show_ip_bgp(&st, a)));

    println!("\n== 4. Session failure: the withdraw ripples out ==\n");
    // Cut 65002 <-> 65003: after reconvergence nobody has the route.
    // (Modeled by discarding that link from the pump set and notifying
    // the session layer.)
    use miro_bgp::session::Event;
    // Reach into the test-visible API: drive the event via input of a
    // NOTIFICATION, which also resets the session.
    let notification = BgpMessage::Notification { code: 6, subcode: 0, data: vec![] }
        .emit()
        .expect("encodes");
    sp[1].input(p23, &notification);
    let _ = Event::TransportDown; // (the in-process equivalent)
    pump(&mut sp, &links[..1]);
    println!(
        "  after cutting AS65002-AS65003: AS65001 best = {:?}, AS65002 best = {:?}",
        sp[0].best_path(prefix),
        sp[1].best_path(prefix)
    );
    assert_eq!(sp[0].best_path(prefix), None);
    println!("\nEvery byte above went through the RFC 4271 codecs.");
}
