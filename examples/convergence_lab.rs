//! Chapter 7 in action: run the two non-convergence gadgets (Figures 7.1
//! and 7.2) under the unrestricted tunnel policy and under each safety
//! guideline, watching them oscillate or settle.
//!
//! ```sh
//! cargo run --example convergence_lab
//! ```

use miro_eval::convergence_exp::{run_fig7_1, run_fig7_2};

fn print_runs(title: &str, runs: &[miro_eval::convergence_exp::GadgetRun]) {
    println!("{title}");
    println!(
        "  {:<34} {:<11} {:>7} {:>10} {:>9} {:>11}",
        "configuration", "outcome", "rounds", "establish", "teardown", "tunnels up"
    );
    for r in runs {
        println!(
            "  {:<34} {:<11} {:>7} {:>10} {:>9} {:>11}",
            r.config,
            if r.converged { "converged" } else { "OSCILLATES" },
            r.rounds,
            r.establishments,
            r.teardowns,
            r.tunnels_up
        );
    }
    println!();
}

fn main() {
    println!("== Figure 7.1: A, B, C are customers of D and peer in a ring ==");
    println!("   Each wants a tunnel to D through its clockwise peer's SELECTED route");
    println!("   and prefers it over its own provider link (BAD GADGET dynamics).\n");
    print_runs("Runs (300-round budget):", &run_fig7_1(300));
    println!("   Guideline B pins tunnels to pure BGP routes, which never move —");
    println!("   all three tunnels coexist. Guideline C adds advertisement to leaf");
    println!("   ASes, which re-export nothing, so the dynamics are unchanged.\n");

    println!("== Figure 7.2: D is a customer of peers A, B, C ==");
    println!("   D wants D(BA), D(CB), D(AC): each tunnel rides D's route to its");
    println!("   first downstream AS, so establishing one invalidates another —");
    println!("   strict same-class export alone does not help.\n");
    print_runs("Runs (300-round budget):", &run_fig7_2(300));
    println!("   Guideline D's per-AS partial order (C < B < A at D) admits D(BA)");
    println!("   and D(CB) but forbids the cycle-closing D(AC): stable with 2 up.");
    println!("   Guideline E pins every tunnel's transport to the plain BGP route:");
    println!("   no tunnel depends on another, so all 3 coexist.");
}
