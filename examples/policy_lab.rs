//! Chapter 6 in action: parse the dissertation's extended route-map
//! configuration, watch the `match empty path` trigger fire, and run the
//! negotiation it requests with responder-side pricing.
//!
//! ```sh
//! cargo run --example policy_lab
//! ```

use miro_policy::eval::{PolicyRoute, PolicyEngine};
use miro_policy::parse_config;
use miro_topology::RouteClass;

const REQUESTER_CONFIG: &str = "\
router bgp 100
!
route-map AVOID_AS permit 10
match empty path 200
try negotiation NEG-312
!
ip as-path access-list 200 deny _312_
ip as-path access-list 200 permit .*
!
negotiation NEG-312
match all path _312_
start negotiation #1 with maximum cost 250
";

const RESPONDER_CONFIG: &str = "\
router bgp 150
!
accept negotiation from any
when tunnel_number < 1000
!
negotiation filter FILTER-1
filter permit local_pref > 400
set tunnel_cost 120
filter permit local_pref > 200
set tunnel_cost 180
";

fn main() {
    println!("== Requester (AS 100) configuration ==\n{REQUESTER_CONFIG}");
    let requester = PolicyEngine::new(parse_config(REQUESTER_CONFIG).expect("parses"));
    println!("== Responder (AS 150) configuration ==\n{RESPONDER_CONFIG}");
    let responder = PolicyEngine::new(parse_config(RESPONDER_CONFIG).expect("parses"));

    // AS 100's BGP candidates toward some prefix: both go through AS 312.
    let candidates = vec![
        PolicyRoute { path: vec![150, 312, 700], local_pref: 450 },
        PolicyRoute { path: vec![250, 312, 700], local_pref: 250 },
    ];
    println!("AS 100's candidates toward AS 700:");
    for c in &candidates {
        println!("  path {:?} local-pref {}", c.path, c.local_pref);
    }

    let (kept, triggers) = requester.apply_route_map("AVOID_AS", &candidates);
    println!("\nAfter route-map AVOID_AS: {} route(s) survive the 'no AS 312' intent.", kept.len());
    assert!(kept.is_empty());
    let trigger = &triggers[0];
    println!(
        "Trigger fired: negotiation {:?}, avoid {:?}, budget {:?}, candidate targets {:?}",
        trigger.negotiation, trigger.avoid, trigger.max_cost, trigger.targets
    );

    // The requester contacts the first target (AS 150). The responder's
    // candidate routes for the prefix, by class:
    println!("\nAS 150's own candidates (class -> conventional local-pref):");
    let responder_routes = [
        (vec![800, 700], RouteClass::Customer),
        (vec![650, 700], RouteClass::Peer),
        (vec![900, 650, 700], RouteClass::Provider),
    ];
    for (path, class) in &responder_routes {
        println!("  {:?}: {:?} (lp {})", path, class, class.local_pref());
    }

    println!("\nResponder admission for AS 100 with 3 live tunnels: {}",
        responder.admits(100, 3));

    println!("\nPriced offers through FILTER-1 (avoiding 312, within budget {}):",
        trigger.max_cost.expect("budget set"));
    let mut offers = Vec::new();
    for (path, class) in &responder_routes {
        if path.contains(&312) {
            continue;
        }
        match responder.price("FILTER-1", class.local_pref()) {
            Some(cost) if cost <= trigger.max_cost.unwrap_or(u32::MAX) => {
                println!("  OFFER  {:?} at cost {}", path, cost);
                offers.push((path.clone(), cost));
            }
            Some(cost) => println!("  (too expensive: {:?} at {})", path, cost),
            None => println!("  (not for sale: {:?} — {:?} routes are filtered)", path, class),
        }
    }
    let (best_path, best_cost) = offers
        .iter()
        .min_by_key(|(_, c)| *c)
        .expect("at least one offer");
    println!(
        "\nAS 100 accepts {:?} at cost {} -> tunnel established; traffic to AS 700 now avoids AS 312.",
        best_path, best_cost
    );
}
