//! The paper's measurement pipeline, visible end to end (section 5.1):
//! ground-truth topology -> BGP stable routes -> AS-path extraction (the
//! RouteViews stand-in) -> Gao and Agarwal relationship inference ->
//! re-annotated topology, with accuracy scored against the truth.
//!
//! ```sh
//! cargo run --release --example inference_lab
//! ```

use miro_bgp::solver::as_paths_to;
use miro_topology::gen::DatasetPreset;
use miro_topology::infer::{
    agarwal_infer, agreement, gao_infer, AgarwalParams, GaoParams,
};
use miro_topology::stats::link_census;
use miro_topology::Rel;

fn count(t: &miro_topology::Topology, want: Rel) -> usize {
    t.nodes()
        .flat_map(|x| t.neighbors(x).iter().map(move |&(y, r)| (x, y, r)))
        .filter(|&(x, y, r)| x < y && r == want)
        .count()
}

fn main() {
    let truth = DatasetPreset::Gao2005.params(0.015, 3).generate();
    let census = link_census(&truth);
    println!(
        "Ground truth: {} ASes, {} links ({} P/C, {} peering, {} sibling)\n",
        census.nodes, census.edges, census.pc_links, census.peering_links, census.sibling_links
    );

    // "RouteViews": dump every AS's selected path toward a third of the
    // prefixes — the vantage-point tables the paper starts from.
    let dests: Vec<_> = truth.nodes().step_by(3).collect();
    let paths = as_paths_to(&truth, &dests);
    println!(
        "Extracted {} AS paths from {} vantage destinations (mean length {:.2}).\n",
        paths.len(),
        dests.len(),
        paths.iter().map(|p| p.len() - 1).sum::<usize>() as f64 / paths.len() as f64
    );

    println!("{:<22} {:>8} {:>8} {:>9} {:>10}", "algorithm", "P/C", "peer", "sibling", "agreement");
    println!("{}", "-".repeat(62));
    let gao = gao_infer(&paths, GaoParams::default());
    println!(
        "{:<22} {:>8} {:>8} {:>9} {:>9.1}%",
        "Gao (2001)",
        count(&gao, Rel::Customer) + count(&gao, Rel::Provider),
        count(&gao, Rel::Peer),
        count(&gao, Rel::Sibling),
        100.0 * agreement(&truth, &gao)
    );
    let aga = agarwal_infer(&paths, AgarwalParams::default());
    println!(
        "{:<22} {:>8} {:>8} {:>9} {:>9.1}%",
        "Agarwal/Subramanian",
        count(&aga, Rel::Customer) + count(&aga, Rel::Provider),
        count(&aga, Rel::Peer),
        count(&aga, Rel::Sibling),
        100.0 * agreement(&truth, &aga)
    );
    println!(
        "{:<22} {:>8} {:>8} {:>9} {:>9}",
        "(ground truth)",
        census.pc_links,
        census.peering_links,
        census.sibling_links,
        "-"
    );

    println!(
        "\nThe paper's observations reproduce: Gao is the more accurate\n\
         algorithm (section 5.1 cites Mao et al. on this), and the\n\
         Agarwal-style inference labels fewer sibling links (Table 5.1:\n\
         177 vs 687 at full scale). Both recover the hierarchy well enough\n\
         that every Chapter 5 experiment lands in the same place whichever\n\
         annotation is used -- the robustness the paper claims."
    );

    // Vantage sensitivity: fewer vantage points, noisier inference.
    println!("\nVantage-point sensitivity (Gao agreement):");
    for step in [24usize, 12, 6, 3] {
        let d: Vec<_> = truth.nodes().step_by(step).collect();
        let p = as_paths_to(&truth, &d);
        println!(
            "  {:>4} destinations ({:>6} paths): {:>5.1}%",
            d.len(),
            p.len(),
            100.0 * agreement(&truth, &gao_infer(&p, GaoParams::default()))
        );
    }
}
