//! The avoid-AS application (section 5.3) on a synthetic Internet:
//! find real (source, destination, offender) cases, compare single-path
//! BGP, MIRO under each export policy, and source routing — then show
//! what incremental deployment does to the same cases.
//!
//! ```sh
//! cargo run --release --example avoid_as
//! ```

use miro_bgp::solver::RoutingState;
use miro_core::export::ExportPolicy;
use miro_core::strategy::{avoid_via_negotiation, TargetStrategy};
use miro_topology::gen::DatasetPreset;
use miro_topology::stats::top_degree_nodes;

fn main() {
    let topo = DatasetPreset::Gao2005.params(0.03, 42).generate();
    println!(
        "Synthetic 'Gao 2005' at 3% scale: {} ASes, {} links.\n",
        topo.num_nodes(),
        topo.num_edges()
    );

    // Hunt for an interesting case: single-path fails, MIRO saves it.
    let mut case = None;
    'outer: for dest in topo.nodes().step_by(7) {
        let st = RoutingState::solve(&topo, dest);
        for src in topo.nodes().step_by(11) {
            let Some(path) = st.path(src) else { continue };
            if path.len() < 3 {
                continue;
            }
            for &avoid in &path[1..path.len() - 1] {
                if topo.rel(src, avoid).is_some() {
                    continue; // paper's exclusion: not an immediate neighbor
                }
                let single = st.candidates(src).iter().any(|c| !c.traverses(avoid));
                let multi = avoid_via_negotiation(
                    &st,
                    src,
                    avoid,
                    ExportPolicy::RespectExport,
                    TargetStrategy::OnPath,
                    None,
                );
                if !single && multi.success {
                    case = Some((dest, src, avoid));
                    break 'outer;
                }
            }
        }
    }
    let Some((dest, src, avoid)) = case else {
        println!("no suitable case found at this scale/seed; try another seed");
        return;
    };

    let st = RoutingState::solve(&topo, dest);
    let asn = |n| topo.asn(n);
    println!(
        "Case: AS{} -> AS{} must avoid AS{} (on its default path {:?})\n",
        asn(src),
        asn(dest),
        asn(avoid),
        st.path(src)
            .expect("routed")
            .iter()
            .map(|&h| asn(h).0)
            .collect::<Vec<_>>()
    );

    println!("{:<34} {:<9} {:>10} {:>12}", "architecture / policy", "success", "ASes asked", "paths seen");
    let single = st.candidates(src).iter().any(|c| !c.traverses(avoid));
    println!("{:<34} {:<9} {:>10} {:>12}", "single-path BGP", single, "-", "-");
    for policy in ExportPolicy::ALL {
        let out = avoid_via_negotiation(&st, src, avoid, policy, TargetStrategy::OnPath, None);
        println!(
            "{:<34} {:<9} {:>10} {:>12}",
            format!("MIRO {} (on-path negotiation)", policy.label()),
            out.success,
            out.ases_contacted,
            out.paths_received
        );
        if let Some((responder, route)) = &out.chosen {
            println!(
                "     -> bought from AS{}: path {:?} ({:?})",
                asn(*responder),
                route.path.iter().map(|&h| asn(h).0).collect::<Vec<_>>(),
                route.class
            );
        }
    }
    let source_ok = topo.reachable_avoiding(src, dest, avoid);
    println!("{:<34} {:<9} {:>10} {:>12}", "source routing (any graph path)", source_ok, "-", "-");

    // Incremental deployment: does this case survive when only the top-k%
    // highest-degree ASes speak MIRO?
    println!("\nIncremental deployment (high-degree ASes adopt first):");
    for frac in [0.002, 0.01, 0.05, 0.25, 1.0] {
        let k = ((topo.num_nodes() as f64 * frac).ceil() as usize).max(1);
        let mut mask = vec![false; topo.num_nodes()];
        for n in top_degree_nodes(&topo, k) {
            mask[n as usize] = true;
        }
        let out = avoid_via_negotiation(
            &st,
            src,
            avoid,
            ExportPolicy::Flexible,
            TargetStrategy::OnPath,
            Some(&mask),
        );
        println!(
            "  {:>5.1}% of ASes deployed ({} ASes): negotiated success = {}",
            frac * 100.0,
            k,
            out.success
        );
    }
}
