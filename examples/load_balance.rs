//! Inbound traffic engineering at a multi-homed stub (sections 3.3 and
//! 5.4): the stub finds a "power node", negotiates a route switch, and we
//! measure how much traffic actually moves between its provider links —
//! plus the tunnel-ingress traffic splitting of section 3.5.
//!
//! ```sh
//! cargo run --release --example load_balance
//! ```

use miro_bgp::solver::RoutingState;
use miro_dataplane::classifier::{Action, Classifier, FlowKey, HashSplitter, Match};
use miro_dataplane::ipv4::Ipv4Addr4;
use miro_eval::inbound::evaluate_stub;
use miro_topology::gen::DatasetPreset;

fn main() {
    let topo = DatasetPreset::Gao2005.params(0.03, 7).generate();
    println!(
        "Synthetic 'Gao 2005' at 3% scale: {} ASes, {} links.\n",
        topo.num_nodes(),
        topo.num_edges()
    );

    // Pick the multi-homed stub with the most skewed incoming load.
    let mut best: Option<(miro_topology::NodeId, usize)> = None;
    for d in topo.nodes().filter(|&x| topo.is_multihomed_stub(x)).take(200) {
        let st = RoutingState::solve(&topo, d);
        let mut loads: std::collections::HashMap<_, usize> = Default::default();
        for s in topo.nodes() {
            if s == d {
                continue;
            }
            if let Some(p) = st.path(s) {
                let entry = if p.len() >= 2 { p[p.len() - 2] } else { s };
                *loads.entry(entry).or_insert(0) += 1;
            }
        }
        if loads.len() >= 2 {
            let max = *loads.values().max().expect("non-empty");
            let min = *loads.values().min().expect("non-empty");
            let skew = max - min;
            if best.is_none_or(|(_, s)| skew > s) {
                best = Some((d, skew));
            }
        }
    }
    let (stub, _) = best.expect("some multi-homed stub exists");
    let st = RoutingState::solve(&topo, stub);
    println!("Stub AS{} has providers:", topo.asn(stub));
    let mut loads: std::collections::HashMap<_, usize> = Default::default();
    let mut total = 0usize;
    for s in topo.nodes() {
        if s == stub {
            continue;
        }
        if let Some(p) = st.path(s) {
            total += 1;
            let entry = if p.len() >= 2 { p[p.len() - 2] } else { s };
            *loads.entry(entry).or_insert(0) += 1;
        }
    }
    let mut load_list: Vec<_> = loads.iter().collect();
    load_list.sort_by_key(|&(_, &l)| std::cmp::Reverse(l));
    for (prov, l) in &load_list {
        println!(
            "  link AS{} -> AS{}: {} of {} source ASes ({:.0}%)",
            topo.asn(**prov),
            topo.asn(stub),
            l,
            total,
            100.0 * **l as f64 / total as f64
        );
    }

    println!("\nSearching for a power node (the section 5.4 application)...");
    let outcome = evaluate_stub(&topo, stub, 8, 2, 200 * topo.num_nodes())
        .expect("stub has sources");
    let names = [["strict", "flexible"], ["convert_all", "independent"]];
    for pi in 0..2 {
        for mi in 0..2 {
            println!(
                "  {:<9} / {:<12}: best power node can move {:>5.1}% of incoming traffic",
                names[0][pi],
                names[1][mi],
                100.0 * outcome.best_moved[pi][mi]
            );
        }
    }
    println!(
        "  best power node degree {}, {} hop(s) from the stub\n",
        outcome.power_degree, outcome.power_distance
    );

    // ---- Section 3.5: the ingress splits traffic across paths ---------
    println!("Tunnel-ingress traffic splitting (section 3.5):");
    let classifier = Classifier::new(vec![
        // Real-time traffic (EF DSCP) takes the low-latency tunnel.
        (Match { tos: Some(0xb8), ..Default::default() }, Action::Tunnel(7)),
        // Bulk HTTP stays on the (cheap) default route.
        (Match { dst_port: Some((80, 80)), ..Default::default() }, Action::Default),
    ]);
    let mk = |tos, port, host| FlowKey {
        src: Ipv4Addr4::new(10, 0, 0, host),
        dst: Ipv4Addr4::new(12, 34, 56, 78),
        src_port: 40000,
        dst_port: port,
        protocol: 6,
        tos,
    };
    println!("  voice flow (tos 0xb8)  -> {:?}", classifier.classify(&mk(0xb8, 5060, 1)));
    println!("  web flow   (port 80)   -> {:?}", classifier.classify(&mk(0, 80, 2)));
    println!("  other flow             -> {:?}", classifier.classify(&mk(0, 9999, 3)));

    let splitter = HashSplitter::new(vec![(2, 7), (1, 8)]); // 2:1 over tunnels 7 and 8
    let mut counts = [0usize; 2];
    for h in 0..600u32 {
        let k = FlowKey {
            src: Ipv4Addr4::from_u32(0x0a00_0000 + h),
            dst: Ipv4Addr4::new(12, 34, 56, 78),
            src_port: 40000,
            dst_port: 443,
            protocol: 6,
            tos: 0,
        };
        match splitter.path_for(&k) {
            7 => counts[0] += 1,
            _ => counts[1] += 1,
        }
    }
    println!(
        "  hash-splitting 600 flows 2:1 across tunnels 7/8 -> {} / {} (flows sticky per path)",
        counts[0], counts[1]
    );
}
