//! Quickstart: the paper's running example (Figures 1.1, 2.1, 3.1) end to
//! end — BGP default routes, a MIRO negotiation, and a packet actually
//! forwarded through the negotiated tunnel.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use miro_bgp::solver::RoutingState;
use miro_core::negotiate::{Constraint, Message};
use miro_core::node::MiroNetwork;
use miro_dataplane::encap;
use miro_dataplane::ipv4::{Ipv4Addr4, Ipv4Header};
use miro_topology::gen::figure_1_1;
use miro_topology::RouteClass;

fn main() {
    // ---- The AS-level topology of Figure 1.1 -------------------------
    let (topo, [a, b, c, d, e, f]) = figure_1_1();
    let name = |n| match n {
        x if x == a => "A",
        x if x == b => "B",
        x if x == c => "C",
        x if x == d => "D",
        x if x == e => "E",
        _ => "F",
    };
    let show_path = |p: &[u32]| -> String {
        p.iter().map(|&h| name(h)).collect::<Vec<_>>().join(" ")
    };

    println!("== 1. BGP default routes toward F (the Figure 2.1 walkthrough) ==\n");
    let st = RoutingState::solve(&topo, f);
    println!("{:<4} {:<12} {:<10} all candidates (BGP rib-in)", "AS", "best path", "class");
    for x in [a, b, c, d, e] {
        let best = st.path(x).expect("connected");
        let class = st.best(x).expect("routed").class;
        let cands: Vec<String> = st
            .candidates(x)
            .iter()
            .map(|r| format!("{}{}", show_path(&r.path), if r.path == best { "*" } else { "" }))
            .collect();
        println!(
            "{:<4} {:<12} {:<10} {}",
            name(x),
            show_path(&best),
            format!("{class:?}"),
            cands.join(", ")
        );
    }
    println!("\nA's default is A->B->E->F; BOTH its candidates traverse E.");
    println!("B knows the alternate B->C->F but BGP never told A (section 1.1).\n");

    // ---- The MIRO negotiation of Figure 3.1 --------------------------
    println!("== 2. A negotiates with B: \"alternates to F, avoiding E\" ==\n");
    let mut net = MiroNetwork::new(&topo);
    let tid = net
        .negotiate(&st, a, b, vec![Constraint::AvoidAs(e)], 250)
        .expect("the paper's example succeeds");
    for (from, to, msg) in &net.log {
        let text = match msg {
            Message::Request { dest, constraints, .. } => format!(
                "Request(dest={}, constraints={})",
                name(*dest),
                constraints.len()
            ),
            Message::Offers { offers, .. } => format!(
                "Offers([{}])",
                offers
                    .iter()
                    .map(|o| format!("{} @ price {}", show_path(&o.route.path), o.price))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Message::Accept { choice, .. } => format!("Accept(choice #{choice})"),
            Message::Established { tunnel, .. } => format!("Established(tunnel id {})", tunnel.0),
            other => format!("{other:?}"),
        };
        println!("  {} -> {}: {}", name(*from), name(*to), text);
    }
    let lease = &net.leases()[0];
    println!(
        "\nTunnel {} live: {} buys {} from {} (price {}).\n",
        tid.0,
        name(lease.upstream),
        show_path(&lease.path),
        name(lease.downstream),
        lease.price
    );

    // ---- The data plane of section 4.2 --------------------------------
    println!("== 3. A data packet takes the tunnel ==\n");
    let payload = b"hello F";
    let inner = Ipv4Header::new(
        Ipv4Addr4::new(10, 0, 0, 1),            // a host in A
        Ipv4Addr4::new(12, 34, 56, 78),         // a host in F
        6,
        payload.len() as u16,
    )
    .emit_with_payload(payload);
    let endpoint = Ipv4Addr4::new(20, 0, 0, 2); // B's tunnel endpoint
    let wire = encap::encapsulate(&inner, Ipv4Addr4::new(10, 0, 0, 254), endpoint, tid.0)
        .expect("fits");
    println!(
        "  A encapsulates: outer dst {endpoint}, MIRO shim tunnel id {}, {} bytes on the wire",
        tid.0,
        wire.len()
    );
    let (outer, shim, revealed) = encap::decapsulate(wire).expect("valid");
    assert_eq!(revealed, inner);
    println!(
        "  B decapsulates at {} (tunnel {}), forwards the original packet via C to F.",
        outer.dst, shim.tunnel_id
    );
    println!("  Inner packet intact: {} bytes, proto {}.\n", revealed.len(), {
        let (h, _) = Ipv4Header::parse(revealed.clone()).expect("parses");
        h.protocol
    });

    // ---- Lifecycle ----------------------------------------------------
    println!("== 4. Soft state: keepalives, then a route change ==\n");
    net.tick(10, 30);
    println!("  t={}: keepalive exchanged, {} tunnel(s) live.", net.clock, net.leases().len());
    // E-F fails; B loses BCF? No - C-F fails: B's alternate disappears.
    println!("  ... later the C-F link fails; BGP reconverges; B can no longer honor the path.");
    // Build the failed-link topology and reconverged state.
    let mut bld = miro_topology::TopologyBuilder::new();
    for n in 1..=6 {
        bld.add_as(miro_topology::AsId(n));
    }
    let id = miro_topology::AsId;
    bld.provider_customer(id(2), id(1));
    bld.provider_customer(id(4), id(1));
    bld.provider_customer(id(2), id(5));
    bld.provider_customer(id(4), id(5));
    bld.peering(id(2), id(3));
    bld.provider_customer(id(5), id(6));
    bld.peering(id(3), id(5));
    let t2 = bld.build().expect("valid");
    let st2 = RoutingState::solve(&t2, t2.node(id(6)).expect("F"));
    net.routes_changed(&st2);
    println!("  teardown delivered; {} tunnel(s) remain.", net.leases().len());
    assert!(net.leases().is_empty());

    println!("\nDone. Classes seen above: {:?} > {:?} > {:?} (Guideline A preference).",
        RouteClass::Customer, RouteClass::Peer, RouteClass::Provider);
    let _ = (c, d);
}
