//! Offline shim for `serde`, specialized to JSON.
//!
//! The real serde is a data-model abstraction over many formats; this
//! workspace only ever serializes evaluation reports and topology caches to
//! JSON, so the shim collapses the model: [`Serialize`] writes JSON text
//! directly and [`Deserialize`] reads from a parsed [`Value`] tree. The
//! `derive` feature re-exports `#[derive(Serialize, Deserialize)]` macros
//! for plain named-field structs from the local `serde_derive` shim.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Serialize `self` as JSON text appended to `out`.
pub trait Serialize {
    fn write_json(&self, out: &mut String);
}

/// Reconstruct `Self` from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

/// Deserialization error: what was expected, and a rendering of what was
/// found.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError {
    pub expected: &'static str,
    pub found: String,
}

impl DeError {
    pub fn new(expected: &'static str, found: &Value) -> DeError {
        DeError { expected, found: format!("{found:?}") }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {}, found {}", self.expected, self.found)
    }
}

impl std::error::Error for DeError {}

/// Append a JSON string literal (quoted, escaped).
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Helper used by derived impls: append `"key":`.
pub fn write_json_key(key: &str, out: &mut String) {
    write_json_string(key, out);
    out.push(':');
}

/// Helper used by derived impls: fetch a required object field.
pub fn obj_field<'v>(v: &'v Value, key: &'static str) -> Result<&'v Value, DeError> {
    match v {
        Value::Obj(map) => map.get(key).ok_or(DeError {
            expected: key,
            found: "missing field".to_string(),
        }),
        other => Err(DeError::new("object", other)),
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                let _ = fmt::Write::write_fmt(out, format_args!("{}", self));
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError::new(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{:?}` keeps a fractional part on integral floats, so
                    // the value re-parses as a float.
                    let _ = fmt::Write::write_fmt(out, format_args!("{:?}", self));
                } else {
                    out.push_str("null"); // serde_json convention
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::new(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new("bool", other)),
        }
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new("string", other)),
        }
    }
}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_json_string(self.encode_utf8(&mut buf), out);
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new("single-char string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (*self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

fn write_json_seq<'a, T: Serialize + 'a>(
    items: impl Iterator<Item = &'a T>,
    out: &mut String,
) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new("array", other)),
        }
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), DeError> {
                match v {
                    Value::Arr(items) => {
                        let expected_len = [$($n),+].len();
                        if items.len() != expected_len {
                            return Err(DeError::new("tuple of matching arity", v));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::new("array (tuple)", other)),
                }
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: AsRef<str>, V: Serialize> Serialize for BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_key(k.as_ref(), out);
            v.write_json(out);
        }
        out.push('}');
    }
}

impl Serialize for Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.write_json(out),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    n.write_json(out);
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Arr(items) => write_json_seq(items.iter(), out),
            Value::Obj(map) => map.write_json(out),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}
