//! Offline shim for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote` available offline) derive macros for the
//! local JSON-only `serde` shim. Supports exactly what this workspace
//! derives on: non-generic structs with named fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type: name + named field list.
struct StructDef {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream) -> StructDef {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility, then expect `struct <Name> { ... }`.
    let mut name = None;
    let mut body = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                let _ = iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Possible `pub(...)` restriction group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = iter.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde shim derive: expected struct name, got {other:?}"),
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde shim derive: generic structs are not supported")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!("serde shim derive: only named-field structs are supported")
            }
            _ => {}
        }
    }
    let name = name.expect("serde shim derive: no struct found");
    let body = body.unwrap_or_else(|| {
        panic!("serde shim derive: struct {name} must have named fields")
    });

    // Split the body on top-level commas. Parenthesized/bracketed types are
    // single Group tokens, but generic arguments (`Map<K, V>`) are not —
    // track angle-bracket depth so their commas don't split fields.
    let mut fields = Vec::new();
    let mut chunk: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if let Some(f) = field_name(&chunk) {
                    fields.push(f);
                }
                chunk.clear();
                continue;
            }
            _ => {}
        }
        chunk.push(tt);
    }
    if let Some(f) = field_name(&chunk) {
        fields.push(f);
    }
    StructDef { name, fields }
}

/// Extract the field name from one comma-separated field chunk:
/// `[attrs] [pub[(..)]] <ident> : <type..>`.
fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attr + group
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                // Must be followed by `:` to be a named field.
                match chunk.get(i + 1) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                        return Some(id.to_string());
                    }
                    _ => panic!(
                        "serde shim derive: tuple structs are not supported \
                         (field starting at {id})"
                    ),
                }
            }
            other => panic!("serde shim derive: unexpected token {other}"),
        }
    }
    None
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let mut writes = String::new();
    for (i, f) in def.fields.iter().enumerate() {
        if i > 0 {
            writes.push_str("out.push(',');\n");
        }
        writes.push_str(&format!(
            "::serde::write_json_key(\"{f}\", out);\n\
             ::serde::Serialize::write_json(&self.{f}, out);\n"
        ));
    }
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn write_json(&self, out: &mut ::std::string::String) {{\n\
                 out.push('{{');\n\
                 {writes}\
                 out.push('}}');\n\
             }}\n\
         }}",
        name = def.name,
    );
    code.parse().expect("serde shim derive: generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let mut inits = String::new();
    for f in &def.fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::obj_field(v, \"{f}\")?)?,\n"
        ));
    }
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = def.name,
    );
    code.parse().expect("serde shim derive: generated impl parses")
}
