//! Offline shim for `criterion`.
//!
//! A minimal wall-clock harness exposing the API surface the `miro-bench`
//! benches use: `Criterion::default()` with builder knobs, `bench_function`,
//! `benchmark_group`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is warmed up, then timed for
//! roughly `measurement_time`, and a mean-per-iteration line is printed.
//! No statistics, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark harness configuration + runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        if let Some((iters, total)) = b.result {
            let per_iter = total / iters.max(1) as u32;
            println!("{name:<48} {per_iter:>12.2?}/iter ({iters} iters in {total:.2?})");
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, prefix: name.to_string() }
    }

    /// Upstream parses CLI filters here; the shim runs everything.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn final_summary(&self) {}
}

/// Named group: prefixes benchmark ids, like upstream's `group/name`.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{}", self.prefix, name);
        self.c.bench_function(&id, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(1);
        self
    }

    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, estimating cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Aim for sample_size batches filling the measurement budget.
        let target = (self.measurement_time.as_nanos()
            / per_iter.as_nanos().max(1))
        .clamp(self.sample_size as u128, 1_000_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            std_black_box(routine());
        }
        self.result = Some((target, start.elapsed()));
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg.configure_from_args();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs = black_box(runs + 1)));
        assert!(runs > 0);
    }

    #[test]
    fn group_prefixes_and_finishes() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("g");
        g.bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
