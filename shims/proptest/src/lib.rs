//! Offline shim for `proptest`.
//!
//! Implements the subset this workspace's property tests use: integer-range
//! and `any::<T>()` strategies, tuples, `collection::vec`, `option::of`,
//! `prop_map`, weighted `prop_oneof!`, simple `"[class]{m,n}"` string
//! patterns, and the `proptest!` / `prop_assert*` macros. Cases are generated from a deterministic RNG
//! seeded by the test's module path; there is **no shrinking** — a failing
//! case panics with the plain assertion message.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator backing all strategies (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Seed a [`TestRng`] from a test name (FNV-1a), so every property test has
/// its own reproducible stream.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h)
}

/// Failure value a property body can return (`return Err(...)` /
/// `prop_assert!` in upstream). The shim's runner panics on it.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Run-loop configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a whole-domain strategy, via [`any`].
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over `T`'s whole domain.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

/// Weighted choice among strategies of one value type; backs
/// [`prop_oneof!`]. Arms are boxed because each arm is its own concrete
/// strategy type.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn empty() -> Union<T> {
        Union { arms: Vec::new(), total: 0 }
    }

    /// Add one weighted arm (builder-style, so the macro can chain calls
    /// and type inference pins `T` from each arm's `Strategy::Value`).
    pub fn arm(mut self, weight: u32, s: impl Strategy<Value = T> + 'static) -> Union<T> {
        self.arms.push((weight, Box::new(s)));
        self.total += u64::from(weight);
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(self.total > 0, "prop_oneof needs a positive total weight");
        let mut slot = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if slot < u64::from(*w) {
                return s.new_value(rng);
            }
            slot -= u64::from(*w);
        }
        unreachable!("slot within total weight")
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }

    /// `Option<T>` strategy: `None` half the time (upstream's default
    /// probability), else a value from `element`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { inner: element }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// `&str` patterns of the shape `"[class]{m,n}"` (optionally a sequence of
/// such atoms, literals allowed) act as string strategies, like upstream's
/// regex-literal support.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = *lo + (rng.next_u64() as usize) % (hi - lo + 1);
            for _ in 0..n {
                out.push(chars[(rng.next_u64() as usize) % chars.len()]);
            }
        }
        out
    }
}

/// Parse a simple regex subset: sequence of `[class]` or literal-char atoms,
/// each with an optional `{m,n}` / `{n}` repeat. Returns
/// `(alphabet, min, max)` per atom, or `None` on anything fancier.
fn parse_pattern(pat: &str) -> Option<Vec<(Vec<char>, usize, usize)>> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = if chars[i] == '[' {
            let close = chars[i..].iter().position(|&c| c == ']')? + i;
            let mut set = Vec::new();
            let class = &chars[i + 1..close];
            let mut j = 0;
            while j < class.len() {
                if j + 2 < class.len() && class[j + 1] == '-' {
                    let (a, b) = (class[j] as u32, class[j + 2] as u32);
                    for c in a..=b {
                        set.push(char::from_u32(c)?);
                    }
                    j += 3;
                } else {
                    set.push(class[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else if chars[i] == '{' || chars[i] == '}' {
            return None;
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}')? + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
                None => {
                    let n = body.parse().ok()?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if alphabet.is_empty() || hi < lo {
            return None;
        }
        atoms.push((alphabet, lo, hi));
    }
    Some(atoms)
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Choose among strategies, optionally weighted (`w => strategy`). All
/// arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::empty()$(.arm($weight as u32, $strategy))+
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($p,)+) =
                    ($($crate::Strategy::new_value(&($s), &mut __rng),)+);
                // The body runs in a Result context so upstream-style
                // `return Err(TestCaseError::...)` compiles.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property case {__case} failed: {e}");
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..1000 {
            let v = Strategy::new_value(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = Strategy::new_value(&(-5i32..6), &mut rng);
            assert!((-5..6).contains(&s));
        }
    }

    #[test]
    fn string_pattern_generates_from_class() {
        let mut rng = crate::test_rng("pattern");
        for _ in 0..200 {
            let s = Strategy::new_value(&"[a-c0-1 .]{0,6}", &mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| "abc01 .".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_tuples_and_vecs(
            (a, b) in (0u8..10, 0u8..10),
            v in crate::collection::vec(any::<u16>(), 0..5),
            mut w in crate::collection::vec(1u32..4, 1..3),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 5);
            w.push(1);
            prop_assert!(w.iter().all(|&x| (1..4).contains(&x)));
        }

        #[test]
        fn oneof_picks_only_listed_arms(
            x in prop_oneof![1 => Just(1u32), 1 => Just(5u32), 2 => 10u32..20],
            o in crate::option::of(3u8..6),
        ) {
            prop_assert!(x == 1 || x == 5 || (10..20).contains(&x));
            prop_assert!(o.is_none() || (3..6).contains(&o.unwrap()));
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::test_rng("oneof-weights");
        let hits = (0..1000).filter(|_| Strategy::new_value(&s, &mut rng)).count();
        assert!((800..1000).contains(&hits), "9:1 weighting should dominate: {hits}");
    }
}
