//! Offline shim for the `bytes` crate.
//!
//! Implements the subset the data-plane codecs use: [`Bytes`] (cheaply
//! cloneable shared byte slice with a read cursor), [`BytesMut`] (growable
//! buffer), and the [`Buf`]/[`BufMut`] cursor traits. All integer accessors
//! are big-endian, like upstream.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable, immutable slice of shared bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_ref() == &other[..]
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable, shareable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Empty the buffer, keeping its allocation (upstream `BytesMut::clear`).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shorten to `len` bytes, keeping the allocation (upstream
    /// `BytesMut::truncate`; a no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Reserve capacity for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { data: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read cursor over a byte source. All integers are big-endian.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Write cursor over a growable byte sink. All integers are big-endian.
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cursor() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0x45);
        b.put_u16(0x0102);
        b.put_u32(0xdead_beef);
        b.put_slice(&[9, 9]);
        assert_eq!(b.len(), 9);
        let mut frozen = b.freeze();
        assert_eq!(frozen.get_u8(), 0x45);
        assert_eq!(frozen.get_u16(), 0x0102);
        assert_eq!(frozen.get_u32(), 0xdead_beef);
        let mut rest = [0u8; 2];
        frozen.copy_to_slice(&mut rest);
        assert_eq!(rest, [9, 9]);
        assert!(frozen.is_empty());
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(&b"hello world"[..]);
        let h = b.slice(..5);
        assert_eq!(&h[..], b"hello");
        let w = b.slice(6..);
        assert_eq!(&w[..], b"world");
        assert_eq!(b.len(), 11);
        assert_eq!(h.slice(1..3), Bytes::from(&b"el"[..]));
    }

    #[test]
    fn mutable_indexing() {
        let mut b = BytesMut::from(&[0u8; 4][..]);
        b[1..3].copy_from_slice(&[7, 8]);
        assert_eq!(&b[..], &[0, 7, 8, 0]);
    }
}
