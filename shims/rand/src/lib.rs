//! Offline shim for the `rand` crate.
//!
//! This workspace must build with no registry access, so the external
//! `rand` dependency is replaced by this local implementation of the
//! (small) API surface the MIRO crates use: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! repo only relies on *determinism for equal seeds*, which holds.

/// Core generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Equal seeds give equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) integer range.
    /// Panics on an empty range, like upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, same construction as rand's f64 sampling.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut st = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut st);
            }
            // All-zero state would be a fixed point; splitmix of any seed
            // cannot produce four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice sampling helpers (Fisher-Yates shuffle, uniform choose).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| {
            StdRng::seed_from_u64(7).gen_range(0..u64::MAX)
                != c.gen_range(0..u64::MAX)
        });
        assert!(differs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(2..=4u32);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
        assert_ne!(v, orig, "shuffle moved something");
        assert!(orig.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
