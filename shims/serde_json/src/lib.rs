//! Offline shim for `serde_json`, backed by the local JSON-only `serde`
//! shim: `to_string` walks `Serialize` directly, `from_str` parses into a
//! `serde::Value` tree and hands it to `Deserialize`, and
//! `to_string_pretty` re-indents the compact form.

use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

pub use serde::Value as JsonValue;

/// Parse or serialization failure.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let v = parse_value(&compact)?;
    let mut out = String::new();
    write_pretty(&v, 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Obj(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                serde::write_json_string(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => other.write_json(out),
    }
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    map.insert(key, self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(map));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the shim's
                            // writer; reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number {text:?} at byte {start}")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse_value(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": null}, "e": true}"#)
            .unwrap();
        match &v {
            Value::Obj(m) => {
                assert_eq!(m["a"], Value::Arr(vec![
                    Value::Num(1.0),
                    Value::Num(2.5),
                    Value::Num(-3.0)
                ]));
                assert_eq!(m["e"], Value::Bool(true));
            }
            other => panic!("not an object: {other:?}"),
        }
    }

    #[test]
    fn round_trips_vectors_of_tuples() {
        let doc: Vec<(u32, u32, char)> = vec![(1, 2, 'p'), (3, 4, 'c')];
        let json = to_string(&doc).unwrap();
        assert_eq!(json, r#"[[1,2,"p"],[3,4,"c"]]"#);
        let back: Vec<(u32, u32, char)> = from_str(&json).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn pretty_output_reparses() {
        let doc = vec![(1u32, "x".to_string()), (2, "y\"z".to_string())];
        let pretty = to_string_pretty(&doc).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u32, String)> = from_str(&pretty).unwrap();
        assert_eq!(back, doc);
    }
}
