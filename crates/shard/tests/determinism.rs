//! Coordinator-level tests with an in-process worker fleet.
//!
//! The fleet runs the *real* [`miro_shard::worker::run`] loop over
//! in-memory byte pipes, wired into the coordinator through the same
//! [`Spawner`]/[`WorkerLink`] traits the subprocess spawner uses — so the
//! dispatch state machine, protocol, manifest, and merge are exercised
//! end to end without any process spawning. Misbehaving workers
//! (mid-job death, hangs, garbage frames) are scripted doubles.
//!
//! The headline property (ISSUE 5 satellite): the merged table's bytes
//! are identical to a single-process `par_over_dests` reference no matter
//! how the destination space is blocked, how many workers run, or whether
//! one of them dies mid-job.

use miro_shard::coordinator::{self, Event, JobSpec, Spawner, WorkerLink};
use miro_shard::format::RouteTableSet;
use miro_shard::protocol::{read_frame, write_frame, FrameError, Msg, PROTOCOL_VERSION};
use miro_shard::worker::{self, WorkerConfig};
use miro_shard::{manifest, sample_dests};
use miro_topology::{GenParams, NodeId, Topology};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- pipes

/// One half-duplex in-memory pipe: `Write` end feeds chunks to a `Read`
/// end over a channel; dropping the writer is EOF, dropping the reader
/// makes writes fail like a broken pipe (exactly what a killed process
/// does to whoever holds its stdin).
fn pipe() -> (PipeWriter, PipeReader) {
    let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
    (PipeWriter { tx }, PipeReader { rx, buf: Vec::new(), at: 0 })
}

struct PipeWriter {
    tx: Sender<Vec<u8>>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "reader gone"))?;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct PipeReader {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
    at: usize,
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        while self.at == self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.at = 0;
                }
                Err(_) => return Ok(0), // all writers dropped: EOF
            }
        }
        let n = (self.buf.len() - self.at).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.at..self.at + n]);
        self.at += n;
        Ok(n)
    }
}

// ---------------------------------------------------------- worker fleet

/// What the n-th spawned worker does with its life.
#[derive(Clone, Copy, Debug)]
enum Behavior {
    /// Run the real worker loop.
    Good,
    /// Solve N blocks correctly, then crash holding the next assignment
    /// (drop both pipes mid-block), forcing a reassignment.
    DieAfter(u32),
    /// Say hello, accept an assignment, then go silent — no result, no
    /// heartbeat. Only the deadline scan can clear this one.
    Hang,
    /// Say hello, then write garbage bytes instead of a frame.
    Garbage,
}

struct LocalSpawner {
    topo: Arc<Topology>,
    dests: Arc<Vec<NodeId>>,
    /// Behavior per spawn order; spawns past the end are `Good`.
    behaviors: Vec<Behavior>,
    spawned: usize,
    /// Set once any `DieAfter` worker has been *sent* its fatal
    /// assignment — from then on a death is guaranteed observable (the
    /// job cannot finish without that block being reassigned), so tests
    /// can assert on `report.deaths` without racing the scheduler.
    victim_armed: Arc<std::sync::atomic::AtomicBool>,
}

impl LocalSpawner {
    fn new(topo: &Arc<Topology>, dests: &Arc<Vec<NodeId>>, behaviors: Vec<Behavior>) -> Self {
        LocalSpawner {
            topo: topo.clone(),
            dests: dests.clone(),
            behaviors,
            spawned: 0,
            victim_armed: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }
}

struct LocalLink {
    stdin: Option<PipeWriter>,
    /// `Some(counter)` for `DieAfter(n)` workers: flips `victim_armed`
    /// once the n+1-th assignment (the fatal one) has been sent.
    arm_after: Option<(u32, Arc<std::sync::atomic::AtomicBool>)>,
    assigns_sent: u32,
}

impl WorkerLink for LocalLink {
    fn send(&mut self, msg: &Msg) -> std::io::Result<()> {
        if matches!(msg, Msg::Assign { .. }) {
            self.assigns_sent += 1;
            if let Some((fatal, armed)) = &self.arm_after {
                if self.assigns_sent > *fatal {
                    armed.store(true, Ordering::SeqCst);
                }
            }
        }
        match self.stdin.as_mut() {
            Some(w) => write_frame(w, msg),
            None => Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "stdin closed")),
        }
    }
    fn kill(&mut self) {
        self.stdin = None;
    }
}

/// A worker that solves correctly but crashes after `n` blocks.
fn die_after(
    topo: &Topology,
    dests: &[NodeId],
    worker: u32,
    n: u32,
    mut input: PipeReader,
    mut output: PipeWriter,
) {
    let _ = write_frame(&mut output, &Msg::Hello { protocol: PROTOCOL_VERSION, worker });
    let mut done = 0;
    loop {
        match read_frame(&mut input) {
            Ok(Msg::Assign { block, start, len }) => {
                if done == n {
                    // Crash with the assignment in flight: both pipes drop,
                    // the coordinator must requeue this block.
                    return;
                }
                let (start, len) = (start as usize, len as usize);
                let table = RouteTableSet::from_solves(topo, &dests[start..start + len], 1);
                if write_frame(&mut output, &Msg::BlockResult { block, table: table.encode() })
                    .is_err()
                {
                    return;
                }
                done += 1;
            }
            _ => return,
        }
    }
}

/// A worker that takes an assignment and then never says anything again
/// (until its stdin is closed by the kill).
fn hang(worker: u32, mut input: PipeReader, mut output: PipeWriter) {
    let _ = write_frame(&mut output, &Msg::Hello { protocol: PROTOCOL_VERSION, worker });
    let _ = read_frame(&mut input); // the assignment
    loop {
        match read_frame(&mut input) {
            Err(FrameError::Eof) => return,
            Err(_) => return,
            Ok(_) => {}
        }
    }
}

fn garbage(worker: u32, mut input: PipeReader, mut output: PipeWriter) {
    let _ = write_frame(&mut output, &Msg::Hello { protocol: PROTOCOL_VERSION, worker });
    let _ = output.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05]);
    loop {
        match read_frame(&mut input) {
            Err(_) => return,
            Ok(Msg::Shutdown) => return,
            Ok(_) => {}
        }
    }
}

impl Spawner for LocalSpawner {
    fn spawn(&mut self, worker: u32, events: Sender<Event>) -> Result<Box<dyn WorkerLink>, String> {
        let behavior = self.behaviors.get(self.spawned).copied().unwrap_or(Behavior::Good);
        self.spawned += 1;
        let (stdin_w, stdin_r) = pipe();
        let (stdout_w, stdout_r) = pipe();
        let topo = self.topo.clone();
        let dests = self.dests.clone();
        std::thread::spawn(move || match behavior {
            Behavior::Good => {
                let cfg =
                    WorkerConfig { worker, threads: 1, heartbeat: Duration::from_millis(20) };
                let _ = worker::run(&topo, &dests, cfg, stdin_r, stdout_w);
            }
            Behavior::DieAfter(n) => die_after(&topo, &dests, worker, n, stdin_r, stdout_w),
            Behavior::Hang => hang(worker, stdin_r, stdout_w),
            Behavior::Garbage => garbage(worker, stdin_r, stdout_w),
        });
        std::thread::spawn(move || coordinator::pump_events(worker, stdout_r, &events));
        let arm_after = match behavior {
            Behavior::DieAfter(n) => Some((n, self.victim_armed.clone())),
            _ => None,
        };
        Ok(Box::new(LocalLink { stdin: Some(stdin_w), arm_after, assigns_sent: 0 }))
    }
}

// ------------------------------------------------------------- helpers

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("miro_shard_test_{}_{tag}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(dests: &[NodeId], topo: &Topology, block_size: usize, workers: usize, dir: &std::path::Path) -> JobSpec {
    JobSpec {
        dests: dests.to_vec(),
        num_nodes: topo.num_nodes() as u32,
        num_edges: topo.num_edges() as u32,
        block_size,
        block_order: None,
        workers,
        state_dir: dir.join("state"),
        out_path: dir.join("table.mirt"),
        resume: false,
        heartbeat_deadline: Duration::from_millis(400),
        respawn_budget: 4,
        chaos_kill_after: None,
        chaos_stop_after: None,
        progress: None,
    }
}

// --------------------------------------------------------------- tests

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ISSUE 5 satellite (extended in ISSUE 6): sharded solves split into
    /// 1, 2, and 8 blocks — with varying fleet sizes, optionally one
    /// worker dying mid-job, and an arbitrary `block_order` dispatch
    /// permutation — produce byte-identical output to the unsharded
    /// reference. The fleet runs the real worker loop, so this also pins
    /// the pooled-scratch solve path ([`RouteTableSet::from_solves_pooled`]).
    #[test]
    fn sharded_solve_bytes_match_unsharded_reference(
        nblocks in (0usize..3).prop_map(|i| [1usize, 2, 8][i]),
        workers in 1usize..4,
        death in any::<bool>(),
        seed in 0u64..4,
        order_seed in 0usize..4,
    ) {
        let topo = Arc::new(GenParams::tiny(seed).generate());
        let dests = Arc::new(sample_dests(topo.num_nodes(), 24));
        let reference =
            RouteTableSet::from_solves(&topo, &dests, 2).encode();

        let block_size = dests.len().div_ceil(nblocks);
        let dir = fresh_dir("prop");
        let mut job = spec(&dests, &topo, block_size, workers, &dir);
        // Dispatch in a scrambled (rotated, maybe reversed) block order:
        // scheduling must never leak into the merged bytes.
        let n = dests.len().div_ceil(block_size) as u32;
        let mut order: Vec<u32> = (0..n).map(|b| (b + order_seed as u32) % n).collect();
        if order_seed % 2 == 1 {
            order.reverse();
        }
        job.block_order = Some(order);
        // A death only demonstrates reassignment if someone else can pick
        // the block up (or a respawn can) — the budget covers both.
        let behaviors = if death {
            vec![Behavior::DieAfter(1)]
        } else {
            Vec::new()
        };
        // The single-worker + death case leans on the respawn budget.
        job.respawn_budget = 4;
        let mut spawner = LocalSpawner::new(&topo, &dests, behaviors);
        let report = coordinator::run(&job, &mut spawner).expect("job finishes");

        let merged = std::fs::read(&job.out_path).unwrap();
        prop_assert_eq!(&merged, &reference, "merged bytes differ from unsharded reference");
        prop_assert_eq!(report.blocks, dests.len().div_ceil(block_size));
        // If the victim was sent its fatal assignment, the job cannot have
        // finished without observing the crash and reassigning the block.
        if death && spawner.victim_armed.load(Ordering::SeqCst) {
            prop_assert!(report.deaths >= 1, "the scripted death was never observed");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A hung worker (no heartbeats, no result) is cleared by the deadline
/// scan and its block finishes elsewhere.
#[test]
fn hung_worker_is_deadline_killed_and_job_completes() {
    let topo = Arc::new(GenParams::tiny(11).generate());
    let dests = Arc::new(sample_dests(topo.num_nodes(), 16));
    let reference = RouteTableSet::from_solves(&topo, &dests, 2).encode();

    let dir = fresh_dir("hang");
    let mut job = spec(&dests, &topo, 4, 2, &dir);
    job.heartbeat_deadline = Duration::from_millis(150);
    let mut spawner = LocalSpawner::new(&topo, &dests, vec![Behavior::Hang]);
    let report = coordinator::run(&job, &mut spawner).expect("job survives the hang");

    assert!(report.deadline_kills >= 1, "deadline scan never fired: {report:?}");
    assert_eq!(std::fs::read(&job.out_path).unwrap(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker that emits garbage bytes is treated as crashed (corrupt
/// event), not trusted, and the job still completes correctly.
#[test]
fn garbage_frames_mean_death_not_bad_data() {
    let topo = Arc::new(GenParams::tiny(13).generate());
    let dests = Arc::new(sample_dests(topo.num_nodes(), 16));
    let reference = RouteTableSet::from_solves(&topo, &dests, 2).encode();

    let dir = fresh_dir("garbage");
    let job = spec(&dests, &topo, 4, 2, &dir);
    let mut spawner = LocalSpawner::new(&topo, &dests, vec![Behavior::Garbage]);
    let report = coordinator::run(&job, &mut spawner).expect("job survives garbage");

    assert!(report.corrupt_events >= 1, "garbage went unnoticed: {report:?}");
    assert_eq!(std::fs::read(&job.out_path).unwrap(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint/resume: abort mid-job via chaos_stop_after, then resume.
/// The resumed run must (a) skip every checkpointed block — proven by the
/// manifest's per-block dispatch counters not growing — and (b) produce
/// the same bytes as the unsharded reference.
#[test]
fn resume_skips_checkpointed_blocks() {
    let topo = Arc::new(GenParams::tiny(17).generate());
    let dests = Arc::new(sample_dests(topo.num_nodes(), 24));
    let reference = RouteTableSet::from_solves(&topo, &dests, 2).encode();

    let dir = fresh_dir("resume");
    let mut job = spec(&dests, &topo, 3, 1, &dir);
    job.chaos_stop_after = Some(3);
    let mut spawner = LocalSpawner::new(&topo, &dests, Vec::new());
    let err = coordinator::run(&job, &mut spawner).expect_err("chaos stop aborts the run");
    assert!(err.contains("chaos-stop-after"), "{err}");

    let manifest_path = job.state_dir.join("manifest.log");
    let before = manifest::read(&manifest_path).expect("manifest readable after abort");
    let checkpointed: Vec<u32> = before.completed.keys().copied().collect();
    assert!(checkpointed.len() >= 3, "abort happened before 3 checkpoints: {before:?}");

    job.chaos_stop_after = None;
    job.resume = true;
    let mut spawner = LocalSpawner::new(&topo, &dests, Vec::new());
    let report = coordinator::run(&job, &mut spawner).expect("resume finishes");
    assert_eq!(report.resumed, checkpointed.len(), "resume trusted a different block set");

    let after = manifest::read(&manifest_path).unwrap();
    for b in &checkpointed {
        assert_eq!(
            after.dispatches.get(b),
            before.dispatches.get(b),
            "block {b} was re-dispatched after resume"
        );
    }
    assert_eq!(
        report.dispatches,
        report.blocks - checkpointed.len(),
        "resumed run dispatched more than the unfinished blocks"
    );
    assert_eq!(std::fs::read(&job.out_path).unwrap(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `block_order` that is not a permutation of the job's blocks is
/// rejected up front, before any worker spawns.
#[test]
fn bad_block_order_is_rejected() {
    let topo = Arc::new(GenParams::tiny(23).generate());
    let dests = Arc::new(sample_dests(topo.num_nodes(), 12));
    let dir = fresh_dir("order");

    for (order, want) in [
        (vec![0u32, 1, 2], "block_order lists 3 block(s)"),
        (vec![0, 1, 2, 9], "not a permutation"),
        (vec![0, 1, 2, 2], "not a permutation"),
    ] {
        // 12 dests / block_size 3 = 4 blocks.
        let mut job = spec(&dests, &topo, 3, 1, &dir);
        job.block_order = Some(order);
        let mut spawner = LocalSpawner::new(&topo, &dests, Vec::new());
        let err = coordinator::run(&job, &mut spawner).expect_err("bad order rejected");
        assert!(err.contains(want), "{err}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resume refuses a manifest from a different job (changed block size).
#[test]
fn resume_rejects_foreign_manifest() {
    let topo = Arc::new(GenParams::tiny(19).generate());
    let dests = Arc::new(sample_dests(topo.num_nodes(), 12));

    let dir = fresh_dir("foreign");
    let mut job = spec(&dests, &topo, 3, 1, &dir);
    job.chaos_stop_after = Some(1);
    let mut spawner = LocalSpawner::new(&topo, &dests, Vec::new());
    let _ = coordinator::run(&job, &mut spawner).expect_err("chaos stop");

    job.chaos_stop_after = None;
    job.resume = true;
    job.block_size = 5; // different partition ⇒ different job
    let mut spawner = LocalSpawner::new(&topo, &dests, Vec::new());
    let err = coordinator::run(&job, &mut spawner).expect_err("fingerprint mismatch");
    assert!(err.contains("different job"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
