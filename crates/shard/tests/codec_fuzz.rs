//! Fuzz the FNV-framed codec both services share: arbitrary byte soup,
//! truncations, and bit flips must surface as clean [`FrameError`]s —
//! never a panic, never a fabricated message — and every shard message
//! must round-trip with arbitrary field values.
//!
//! The serve-side message set reuses this raw framing; its payload
//! parser is fuzzed separately in `crates/serve/tests/wire_fuzz.rs`.

use miro_shard::protocol::{
    decode_payload, encode_frame, encode_raw_frame, read_frame, read_raw_frame, write_frame,
    FrameError, Msg, MAX_FRAME, PROTOCOL_VERSION,
};
use proptest::prelude::*;
use std::io::Cursor;

fn all_msgs(worker: u32, block: u32, table: Vec<u8>) -> Vec<Msg> {
    vec![
        Msg::Hello { protocol: PROTOCOL_VERSION, worker },
        Msg::Assign { block, start: block.wrapping_mul(64), len: 64 },
        Msg::Heartbeat { worker, block },
        Msg::BlockResult { block, table },
        Msg::Shutdown,
        Msg::Bye { worker, blocks_done: block.wrapping_add(1) },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte soup into the payload parser: Ok (canonical bytes) or
    /// Corrupt. Nothing else, and never a panic.
    #[test]
    fn byte_soup_decodes_or_fails_cleanly(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        match decode_payload(&bytes) {
            Ok(msg) => {
                // The codec has one encoding per message: whatever
                // decodes must re-encode to the exact payload.
                let frame = encode_frame(&msg);
                prop_assert_eq!(&frame[4..frame.len() - 8], &bytes[..]);
            }
            Err(FrameError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Byte soup as a framed stream: the reader never panics, never
    /// returns a message whose re-encoding disagrees with the stream,
    /// and only reports Eof when the soup died before the length field.
    #[test]
    fn framed_byte_soup_errors_cleanly(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        match read_frame(&mut Cursor::new(&bytes)) {
            Ok(msg) => {
                let frame = encode_frame(&msg);
                prop_assert_eq!(&bytes[..frame.len()], &frame[..]);
            }
            Err(FrameError::Eof) => prop_assert!(bytes.len() < 4),
            Err(FrameError::Corrupt(_)) | Err(FrameError::Io(_)) => {}
        }
    }

    /// Round trip with arbitrary field values, back-to-back on one
    /// stream, ending in a clean Eof.
    #[test]
    fn every_message_round_trips(
        worker in any::<u32>(),
        block in any::<u32>(),
        table in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        let msgs = all_msgs(worker, block, table);
        let mut stream = Vec::new();
        for msg in &msgs {
            write_frame(&mut stream, msg).unwrap();
        }
        let mut cursor = Cursor::new(&stream);
        for msg in &msgs {
            prop_assert_eq!(&read_frame(&mut cursor).unwrap(), msg);
        }
        prop_assert!(matches!(read_frame(&mut cursor), Err(FrameError::Eof)));
    }

    /// One flipped byte anywhere in a frame is caught by the length
    /// check, the FNV trailer, or the payload parser.
    #[test]
    fn single_byte_flip_is_always_caught(pick in any::<u16>(), flip in 0u8..255) {
        let flip = flip.wrapping_add(1); // 1..=255: never a no-op flip
        let frame = encode_frame(&Msg::BlockResult { block: 9, table: vec![5, 0, 250, 17] });
        let mut bad = frame.clone();
        let at = pick as usize % bad.len();
        bad[at] ^= flip;
        match read_frame(&mut Cursor::new(&bad)) {
            Err(FrameError::Corrupt(_)) | Err(FrameError::Io(_)) | Err(FrameError::Eof) => {}
            Ok(got) => prop_assert!(false, "flipped frame decoded as {got:?}"),
        }
    }

    /// The raw layer returns corrupt-trailer payloads to no one: a
    /// damaged checksum is always "checksum mismatch", regardless of
    /// payload contents.
    #[test]
    fn corrupt_trailer_is_checksum_mismatch(payload in proptest::collection::vec(any::<u8>(), 1..60), which in 0usize..8) {
        let mut frame = encode_raw_frame(&payload);
        let at = frame.len() - 8 + which;
        frame[at] ^= 0x80;
        match read_raw_frame(&mut Cursor::new(&frame)) {
            Err(FrameError::Corrupt(why)) => prop_assert!(why.contains("checksum"), "{why}"),
            other => prop_assert!(false, "unexpected: {other:?}"),
        }
    }
}

#[test]
fn truncation_at_every_cut_errors_cleanly() {
    let frame = encode_frame(&Msg::Assign { block: 2, start: 128, len: 64 });
    for cut in 0..frame.len() {
        match read_frame(&mut Cursor::new(&frame[..cut])) {
            Err(FrameError::Eof) => assert!(cut < 4, "Eof mid-frame at cut {cut}"),
            Err(FrameError::Corrupt(_)) => {}
            other => panic!("cut {cut}: unexpected {other:?}"),
        }
    }
}

#[test]
fn hostile_length_fields_are_bounded() {
    // A length claiming more than MAX_FRAME must be rejected before any
    // allocation of that size is attempted.
    let mut huge = vec![0u8; 4];
    huge[..4].copy_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    match read_raw_frame(&mut Cursor::new(&huge)) {
        Err(FrameError::Corrupt(why)) => assert!(why.contains("MAX_FRAME"), "{why}"),
        other => panic!("unexpected: {other:?}"),
    }

    // Zero-length payloads are equally meaningless.
    let zero = [0u8; 4];
    match read_raw_frame(&mut Cursor::new(&zero[..])) {
        Err(FrameError::Corrupt(why)) => assert!(why.contains("zero-length"), "{why}"),
        other => panic!("unexpected: {other:?}"),
    }
}
