//! The shard coordinator: crash-tolerant block dispatch over a fleet of
//! workers, with checkpoint/resume and a deterministic merge.
//!
//! The coordinator is written against two small traits ([`Spawner`],
//! [`WorkerLink`]) rather than `std::process` directly: production uses
//! [`ProcessSpawner`] (real subprocesses over stdin/stdout pipes), tests
//! use in-process workers with scripted failures — same dispatch state
//! machine, same protocol, milliseconds instead of process spawns.
//!
//! Per-worker lifecycle, as the dispatch loop sees it:
//!
//! ```text
//!             Hello                    Assign
//!   spawned ────────► idle ──────────────────────► working
//!      ▲               ▲                              │
//!      │respawn        │ BlockResult (validated,      │ EOF / corrupt frame /
//!      │(budget        │ spooled, manifest C line)    │ heartbeat deadline /
//!      │ permitting)   └──────────────────────────────┤ bad block
//!      │                                              ▼
//!      └───────────────────────────────────────────  dead
//!                      (in-flight block → front of queue, D line on redispatch)
//! ```
//!
//! Every completed block is spooled to `state_dir/block_NNNNNN.bin`
//! (written to a temp name, then renamed) *before* its `C` line is
//! appended to the manifest, so a manifest claim is never ahead of the
//! data. The final merge reads only the spool, in canonical block order —
//! which workers produced which blocks, in what order, with how many
//! deaths in between, cannot affect the output bytes.

use crate::format::{RouteTableSet, TABLE_FORMAT_VERSION};
use crate::manifest::{self, JobFingerprint, ManifestWriter};
use crate::protocol::{read_frame, write_frame, FrameError, Msg, PROTOCOL_VERSION};
use miro_bgp::engine::dest_blocks;
use miro_topology::NodeId;
use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// What a worker's event stream can deliver to the dispatch loop.
#[derive(Debug)]
pub enum EventKind {
    /// A well-formed frame.
    Frame(Msg),
    /// A frame that failed checksum/shape validation; the stream is
    /// unrecoverable past it.
    Corrupt(String),
    /// The stream ended (worker exited or was killed).
    Closed,
}

/// One event, tagged with the coordinator-side worker id.
#[derive(Debug)]
pub struct Event {
    pub worker: u32,
    pub kind: EventKind,
}

/// Coordinator's handle to one live worker.
pub trait WorkerLink: Send {
    /// Deliver a message to the worker's stdin.
    fn send(&mut self, msg: &Msg) -> std::io::Result<()>;
    /// Forcibly terminate the worker (SIGKILL for subprocesses). Must be
    /// safe to call more than once and on an already-dead worker.
    fn kill(&mut self);
}

/// Spawns workers and wires their output into the event channel.
pub trait Spawner {
    fn spawn(&mut self, worker: u32, events: Sender<Event>) -> Result<Box<dyn WorkerLink>, String>;
}

/// Pump one worker's output stream into the event channel until EOF or
/// corruption. Both the process spawner and test harnesses use this, so
/// "what counts as corrupt" is decided in exactly one place.
pub fn pump_events(worker: u32, mut stream: impl Read, events: &Sender<Event>) {
    loop {
        let kind = match read_frame(&mut stream) {
            Ok(msg) => EventKind::Frame(msg),
            Err(FrameError::Eof) => EventKind::Closed,
            Err(FrameError::Corrupt(why)) => EventKind::Corrupt(why),
            Err(FrameError::Io(e)) => EventKind::Corrupt(format!("read error: {e}")),
        };
        let stop = !matches!(kind, EventKind::Frame(_));
        if events.send(Event { worker, kind }).is_err() || stop {
            return;
        }
    }
}

/// Spawn real worker subprocesses: `program args.. --worker-id N` with
/// piped stdin/stdout (stderr passes through for diagnostics).
pub struct ProcessSpawner {
    pub program: PathBuf,
    pub args: Vec<String>,
}

struct ProcessLink {
    stdin: Option<std::process::ChildStdin>,
    child: std::process::Child,
}

impl WorkerLink for ProcessLink {
    fn send(&mut self, msg: &Msg) -> std::io::Result<()> {
        match self.stdin.as_mut() {
            Some(stdin) => write_frame(stdin, msg),
            None => Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "stdin closed")),
        }
    }

    fn kill(&mut self) {
        self.stdin = None;
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ProcessLink {
    fn drop(&mut self) {
        self.kill();
    }
}

impl Spawner for ProcessSpawner {
    fn spawn(&mut self, worker: u32, events: Sender<Event>) -> Result<Box<dyn WorkerLink>, String> {
        let mut child = std::process::Command::new(&self.program)
            .args(&self.args)
            .arg("--worker-id")
            .arg(worker.to_string())
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn worker {worker} ({:?}): {e}", self.program))?;
        let stdout = child.stdout.take().expect("piped stdout");
        std::thread::spawn(move || pump_events(worker, stdout, &events));
        Ok(Box::new(ProcessLink { stdin: child.stdin.take(), child }))
    }
}

/// Everything that defines one shard job.
pub struct JobSpec {
    /// Canonical destination list (see [`crate::sample_dests`]).
    pub dests: Vec<NodeId>,
    /// Topology shape, for the job fingerprint.
    pub num_nodes: u32,
    pub num_edges: u32,
    /// Destinations per dispatch block.
    pub block_size: usize,
    /// Dispatch order over block ids (e.g.
    /// [`miro_bgp::engine::heavy_blocks_first`], so the expensive blocks
    /// go out first); `None` dispatches in canonical ascending order.
    /// Must be a permutation of the block ids. Purely a scheduling knob:
    /// the merge reads the spool in canonical order, so dispatch order
    /// can never affect the output bytes.
    pub block_order: Option<Vec<u32>>,
    /// Worker fleet size.
    pub workers: usize,
    /// Spool + manifest directory.
    pub state_dir: PathBuf,
    /// Where the merged table lands.
    pub out_path: PathBuf,
    /// Trust a pre-existing manifest and skip verified blocks.
    pub resume: bool,
    /// A worker silent for this long is declared hung and killed.
    pub heartbeat_deadline: Duration,
    /// How many replacement workers may be spawned over the job's life.
    pub respawn_budget: usize,
    /// Fault injection: SIGKILL the first-spawned worker right after its
    /// N-th completed block (exercises reassignment end to end).
    pub chaos_kill_after: Option<u32>,
    /// Fault injection: abort the coordinator (workers killed, state
    /// checkpointed, error return) once N blocks are done — the setup
    /// half of a `--resume` test.
    pub chaos_stop_after: Option<u32>,
    /// Progress hook, called with `(blocks_done, blocks_total)` once at
    /// startup and after every completed block.
    pub progress: Option<Box<dyn Fn(usize, usize)>>,
}

/// What a finished job looked like.
#[derive(Clone, Debug, Default)]
pub struct JobReport {
    pub blocks: usize,
    /// Blocks skipped because a resumed manifest + spool already had them.
    pub resumed: usize,
    /// Assignments sent (= manifest `D` lines written by this run).
    pub dispatches: usize,
    pub deaths: usize,
    pub respawns: usize,
    pub deadline_kills: usize,
    pub corrupt_events: usize,
    pub merged_bytes: usize,
    pub elapsed: Duration,
}

fn dests_fingerprint(dests: &[NodeId]) -> u64 {
    let mut bytes = Vec::with_capacity(dests.len() * 4);
    for &d in dests {
        bytes.extend_from_slice(&d.to_le_bytes());
    }
    crate::fnv1a(&bytes)
}

fn spool_path(state_dir: &Path, block: u32) -> PathBuf {
    state_dir.join(format!("block_{block:06}.bin"))
}

/// Write-then-rename so a crash can never leave a half-written file under
/// the final name the manifest vouches for.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).map_err(|e| format!("cannot write {tmp:?}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp:?}: {e}"))
}

struct WorkerState {
    link: Box<dyn WorkerLink>,
    assigned: Option<u32>,
    last_seen: Instant,
    blocks_done: u32,
    /// The first-spawned worker is the chaos-kill victim.
    first: bool,
}

/// Run a shard job to completion (or checkpointed abort). On success the
/// merged [`RouteTableSet`] is at `spec.out_path` and the report says how
/// rough the ride was.
pub fn run(spec: &JobSpec, spawner: &mut dyn Spawner) -> Result<JobReport, String> {
    let t0 = Instant::now();
    if spec.workers == 0 {
        return Err("a shard job needs at least one worker".to_string());
    }
    if spec.dests.is_empty() {
        return Err("a shard job needs at least one destination".to_string());
    }
    std::fs::create_dir_all(&spec.state_dir)
        .map_err(|e| format!("cannot create state dir {:?}: {e}", spec.state_dir))?;

    let blocks: Vec<std::ops::Range<usize>> =
        dest_blocks(spec.dests.len(), spec.block_size).collect();
    let nblocks = blocks.len();
    let fingerprint = JobFingerprint {
        table_format: TABLE_FORMAT_VERSION,
        num_nodes: spec.num_nodes,
        num_edges: spec.num_edges,
        num_dests: spec.dests.len() as u32,
        block_size: spec.block_size.max(1) as u32,
        dests_fnv: dests_fingerprint(&spec.dests),
    };

    let manifest_path = spec.state_dir.join("manifest.log");
    let mut report = JobReport { blocks: nblocks, ..JobReport::default() };
    let mut done = vec![false; nblocks];

    // Resume: trust the manifest only as far as the spool backs it up.
    let mut writer = if spec.resume && manifest_path.exists() {
        let state = manifest::read(&manifest_path)?;
        fingerprint.ensure_matches(&state.job)?;
        for (&block, &(bytes, checksum)) in &state.completed {
            let b = block as usize;
            if b >= nblocks {
                continue;
            }
            let ok = std::fs::read(spool_path(&spec.state_dir, block))
                .map(|data| data.len() as u64 == bytes && crate::fnv1a(&data) == checksum)
                .unwrap_or(false);
            if ok {
                done[b] = true;
                report.resumed += 1;
            }
        }
        ManifestWriter::append(&manifest_path)
            .map_err(|e| format!("cannot reopen manifest {manifest_path:?}: {e}"))?
    } else {
        ManifestWriter::create(&manifest_path, &fingerprint)
            .map_err(|e| format!("cannot create manifest {manifest_path:?}: {e}"))?
    };

    let order: Vec<u32> = match &spec.block_order {
        Some(order) => {
            if order.len() != nblocks {
                return Err(format!(
                    "block_order lists {} block(s), job has {nblocks}",
                    order.len()
                ));
            }
            let mut seen = vec![false; nblocks];
            for &b in order {
                if b as usize >= nblocks || std::mem::replace(&mut seen[b as usize], true) {
                    return Err(format!("block_order is not a permutation: block {b}"));
                }
            }
            order.clone()
        }
        None => (0..nblocks as u32).collect(),
    };
    let mut pending: VecDeque<u32> = order.into_iter().filter(|&b| !done[b as usize]).collect();
    let mut done_count = nblocks - pending.len();

    let (tx, rx) = std::sync::mpsc::channel::<Event>();
    let mut fleet: HashMap<u32, WorkerState> = HashMap::new();
    let mut next_worker_id = 0u32;

    let spawn_one = |spawner: &mut dyn Spawner,
                         fleet: &mut HashMap<u32, WorkerState>,
                         next_worker_id: &mut u32,
                         first: bool|
     -> Result<(), String> {
        let id = *next_worker_id;
        *next_worker_id += 1;
        let link = spawner.spawn(id, tx.clone())?;
        fleet.insert(
            id,
            WorkerState { link, assigned: None, last_seen: Instant::now(), blocks_done: 0, first },
        );
        Ok(())
    };

    if let Some(progress) = &spec.progress {
        progress(done_count, nblocks);
    }
    if done_count < nblocks {
        for i in 0..spec.workers.min(pending.len()) {
            spawn_one(spawner, &mut fleet, &mut next_worker_id, i == 0)?;
        }
    }

    let tick = (spec.heartbeat_deadline / 4).clamp(Duration::from_millis(10), Duration::from_millis(500));
    let mut chaos_killed = false;

    // One worker's death: requeue its block, replace it if the budget
    // allows. Returns the requeued block, if any.
    fn bury(
        report: &mut JobReport,
        pending: &mut VecDeque<u32>,
        fleet: &mut HashMap<u32, WorkerState>,
        worker: u32,
    ) {
        let Some(mut st) = fleet.remove(&worker) else { return };
        st.link.kill();
        report.deaths += 1;
        if let Some(block) = st.assigned {
            pending.push_front(block);
        }
    }

    while done_count < nblocks {
        // Replace the fallen while the budget lasts. The fleet is sized to
        // the remaining work (pending + in flight), capped at the
        // configured worker count, so draining a short tail never burns
        // respawn budget on workers with nothing to do.
        let in_flight = fleet.values().filter(|st| st.assigned.is_some()).count();
        let desired = spec.workers.min(pending.len() + in_flight).max(1);
        while fleet.len() < desired && report.respawns < spec.respawn_budget {
            spawn_one(spawner, &mut fleet, &mut next_worker_id, false)?;
            report.respawns += 1;
        }
        if fleet.is_empty() {
            return Err(format!(
                "all workers dead with {} block(s) unfinished (respawn budget {} exhausted); \
                 state checkpointed in {:?} — re-run with --resume",
                nblocks - done_count,
                spec.respawn_budget,
                spec.state_dir
            ));
        }

        let event = match rx.recv_timeout(tick) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                return Err("event channel closed with work outstanding".to_string())
            }
        };

        // Deadline scan runs every iteration, not just on timeouts — a
        // chatty healthy worker delivering events faster than the tick
        // must not keep the loop from noticing a silent one.
        let overdue: Vec<u32> = fleet
            .iter()
            .filter(|(_, st)| st.last_seen.elapsed() > spec.heartbeat_deadline)
            .map(|(&id, _)| id)
            .collect();
        for id in overdue {
            report.deadline_kills += 1;
            bury(&mut report, &mut pending, &mut fleet, id);
        }

        match event {
            None => {}
            Some(Event { worker, kind }) => {
                if !fleet.contains_key(&worker) {
                    continue; // stragglers from already-buried workers
                }
                match kind {
                    EventKind::Frame(Msg::Hello { protocol, worker: claimed }) => {
                        if protocol != PROTOCOL_VERSION || claimed != worker {
                            report.corrupt_events += 1;
                            bury(&mut report, &mut pending, &mut fleet, worker);
                            continue;
                        }
                        let st = fleet.get_mut(&worker).expect("checked above");
                        st.last_seen = Instant::now();
                        assign(&mut report, &mut writer, &mut pending, &blocks, &done, st, worker)?;
                    }
                    EventKind::Frame(Msg::Heartbeat { .. }) => {
                        let st = fleet.get_mut(&worker).expect("checked above");
                        st.last_seen = Instant::now();
                        // An idle heartbeat is also a work request: a block
                        // requeued by a deadline kill after this worker
                        // drained the queue would otherwise never be
                        // dispatched again.
                        assign(&mut report, &mut writer, &mut pending, &blocks, &done, st, worker)?;
                    }
                    EventKind::Frame(Msg::BlockResult { block, table }) => {
                        let st = fleet.get_mut(&worker).expect("checked above");
                        st.last_seen = Instant::now();
                        let b = block as usize;
                        let expected: Option<&[NodeId]> =
                            blocks.get(b).map(|r| &spec.dests[r.clone()]);
                        let valid = expected.is_some_and(|want| {
                            RouteTableSet::decode(&table).is_ok_and(|t| {
                                t.num_nodes() == spec.num_nodes && t.dests() == want
                            })
                        });
                        if !valid {
                            report.corrupt_events += 1;
                            bury(&mut report, &mut pending, &mut fleet, worker);
                            continue;
                        }
                        if st.assigned == Some(block) {
                            st.assigned = None;
                        }
                        st.blocks_done += 1;
                        let (first, worker_done) = (st.first, st.blocks_done);
                        if !done[b] {
                            write_atomic(&spool_path(&spec.state_dir, block), &table)?;
                            writer
                                .complete(block, table.len() as u64, crate::fnv1a(&table))
                                .map_err(|e| format!("cannot append manifest: {e}"))?;
                            done[b] = true;
                            done_count += 1;
                            if let Some(progress) = &spec.progress {
                                progress(done_count, nblocks);
                            }
                        }
                        if let Some(n) = spec.chaos_kill_after {
                            if first && !chaos_killed && worker_done >= n {
                                chaos_killed = true;
                                bury(&mut report, &mut pending, &mut fleet, worker);
                                continue;
                            }
                        }
                        if let Some(n) = spec.chaos_stop_after {
                            if done_count >= n as usize && done_count < nblocks {
                                for (_, st) in fleet.iter_mut() {
                                    st.link.kill();
                                }
                                return Err(format!(
                                    "aborted by --chaos-stop-after {n}: {done_count}/{nblocks} \
                                     blocks checkpointed in {:?}",
                                    spec.state_dir
                                ));
                            }
                        }
                        let st = fleet.get_mut(&worker).expect("still here");
                        assign(&mut report, &mut writer, &mut pending, &blocks, &done, st, worker)?;
                    }
                    EventKind::Frame(Msg::Bye { .. }) => {
                        // Clean exits only happen after Shutdown, which is
                        // only sent after all blocks are done.
                        fleet.remove(&worker);
                    }
                    EventKind::Frame(other) => {
                        // A worker speaking coordinator verbs is confused.
                        let _ = other;
                        report.corrupt_events += 1;
                        bury(&mut report, &mut pending, &mut fleet, worker);
                    }
                    EventKind::Corrupt(_why) => {
                        report.corrupt_events += 1;
                        bury(&mut report, &mut pending, &mut fleet, worker);
                    }
                    EventKind::Closed => {
                        bury(&mut report, &mut pending, &mut fleet, worker);
                    }
                }
            }
        }
    }

    for (_, st) in fleet.iter_mut() {
        let _ = st.link.send(&Msg::Shutdown);
    }
    drop(fleet); // kills any worker that ignores the drain

    // Deterministic merge straight from the spool.
    let mut parts = Vec::with_capacity(nblocks);
    for b in 0..nblocks as u32 {
        let path = spool_path(&spec.state_dir, b);
        let bytes =
            std::fs::read(&path).map_err(|e| format!("spool file {path:?} vanished: {e}"))?;
        parts.push(
            RouteTableSet::decode(&bytes).map_err(|e| format!("spool file {path:?}: {e}"))?,
        );
    }
    let merged = RouteTableSet::merge(spec.num_nodes, &spec.dests, parts)?;
    let encoded = merged.encode();
    write_atomic(&spec.out_path, &encoded)?;
    report.merged_bytes = encoded.len();
    report.elapsed = t0.elapsed();
    Ok(report)
}

/// Hand the next pending block to an idle worker. A killed worker's block
/// can get requeued after a twin finished it (kill race); those are
/// dropped here so a finished block is never re-dispatched.
fn assign(
    report: &mut JobReport,
    writer: &mut ManifestWriter,
    pending: &mut VecDeque<u32>,
    blocks: &[std::ops::Range<usize>],
    done: &[bool],
    st: &mut WorkerState,
    worker: u32,
) -> Result<(), String> {
    if st.assigned.is_some() {
        return Ok(());
    }
    let block = loop {
        let Some(block) = pending.pop_front() else { return Ok(()) };
        if !done[block as usize] {
            break block;
        }
    };
    writer
        .dispatch(block, worker)
        .map_err(|e| format!("cannot append manifest: {e}"))?;
    report.dispatches += 1;
    st.assigned = Some(block);
    let range = &blocks[block as usize];
    // The send can fail if the worker died between events; the reader
    // thread's Closed event will then requeue the block.
    let _ = st.link.send(&Msg::Assign {
        block,
        start: range.start as u32,
        len: range.len() as u32,
    });
    Ok(())
}
