//! `RouteTableSet` — the compact columnar binary format whole-table
//! results land in.
//!
//! One file holds, for a set of destinations, the full per-AS route row
//! of each: next-hop AS, business-class code, and AS-hop count (the
//! sentinels and class codes are [`miro_bgp::solver`]'s
//! `UNROUTED_*`/[`route_class_code`] contract). Layout, all
//! little-endian:
//!
//! ```text
//! 0        magic "MIRT"
//! 4        format version (u32)
//! 8        num_nodes V (u32)
//! 12       num_dests D (u32)
//! 16       destination ids          u32 × D
//! 16+4D    per-row checksums        u64 × D   (FNV-1a of each row's bytes)
//! 16+12D   rows, one per dest:      next u32 × V | hops u16 × V | class u8 × V
//! end-8    whole-file checksum      u64        (FNV-1a of everything above)
//! ```
//!
//! The checksum granularity is the *row* (one destination's columns), not
//! the dispatch block: dispatch blocking is a runtime knob, and the merged
//! file must be byte-identical whatever block size, worker count, or
//! failure history produced it. Rows are stored in the job's canonical
//! destination order, so [`RouteTableSet::merge`] is order-independent by
//! construction — it places each partial table's rows by destination id
//! and encodes once.

use crate::fnv1a;
use miro_bgp::engine::{par_over_dests, par_over_dests_pooled, ScratchPool};
use miro_bgp::solver::RoutingState;
use miro_topology::{NodeId, Topology};

/// File magic: "MIRO Route Table".
pub const TABLE_MAGIC: [u8; 4] = *b"MIRT";
/// On-disk format version; bump on any layout or encoding change.
pub const TABLE_FORMAT_VERSION: u32 = 1;

/// Whole-table solve results for a set of destinations, columnar per
/// destination. Row `i` covers `dests[i]`; within a row, index `x` is the
/// route of AS `x` toward that destination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteTableSet {
    num_nodes: u32,
    dests: Vec<NodeId>,
    /// `dests.len() * num_nodes` entries each, row-major.
    next: Vec<u32>,
    hops: Vec<u16>,
    class: Vec<u8>,
}

impl RouteTableSet {
    /// An all-unrouted table over `dests`, ready to be filled row by row.
    pub fn with_dests(num_nodes: u32, dests: Vec<NodeId>) -> RouteTableSet {
        let cells = dests.len() * num_nodes as usize;
        RouteTableSet {
            num_nodes,
            dests,
            next: vec![miro_bgp::solver::UNROUTED_NEXT; cells],
            hops: vec![miro_bgp::solver::UNROUTED_HOPS; cells],
            class: vec![miro_bgp::solver::UNROUTED_CLASS; cells],
        }
    }

    /// Solve every destination and extract its row — the single-process
    /// reference the sharded service must reproduce byte for byte, and
    /// the workhorse each shard worker runs on its own block.
    pub fn from_solves(topo: &Topology, dests: &[NodeId], threads: usize) -> RouteTableSet {
        let v = topo.num_nodes();
        let rows = par_over_dests(topo, dests, threads, |_, st: &RoutingState<'_>| {
            let (mut next, mut hops, mut class) = (vec![0u32; v], vec![0u16; v], vec![0u8; v]);
            st.write_table_row(&mut next, &mut hops, &mut class);
            (next, hops, class)
        });
        let mut set = RouteTableSet::with_dests(v as u32, dests.to_vec());
        for (i, (next, hops, class)) in rows.into_iter().enumerate() {
            set.set_row(i, &next, &hops, &class);
        }
        set
    }

    /// [`RouteTableSet::from_solves`] drawing per-thread solve arenas
    /// from `pool` — the shard-worker path, where one pool spans every
    /// block of a job so the steady state allocates no scratch at all.
    /// Byte-identical to `from_solves` by construction.
    pub fn from_solves_pooled(
        topo: &Topology,
        dests: &[NodeId],
        threads: usize,
        pool: &ScratchPool,
    ) -> RouteTableSet {
        let v = topo.num_nodes();
        let rows = par_over_dests_pooled(topo, dests, threads, pool, |_, st: &RoutingState<'_>| {
            let (mut next, mut hops, mut class) = (vec![0u32; v], vec![0u16; v], vec![0u8; v]);
            st.write_table_row(&mut next, &mut hops, &mut class);
            (next, hops, class)
        });
        let mut set = RouteTableSet::with_dests(v as u32, dests.to_vec());
        for (i, (next, hops, class)) in rows.into_iter().enumerate() {
            set.set_row(i, &next, &hops, &class);
        }
        set
    }

    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    pub fn dests(&self) -> &[NodeId] {
        &self.dests
    }

    /// Fill row `i` from extracted columns.
    pub fn set_row(&mut self, i: usize, next: &[u32], hops: &[u16], class: &[u8]) {
        let v = self.num_nodes as usize;
        self.next[i * v..(i + 1) * v].copy_from_slice(next);
        self.hops[i * v..(i + 1) * v].copy_from_slice(hops);
        self.class[i * v..(i + 1) * v].copy_from_slice(class);
    }

    /// Row `i`'s columns: `(next, hops, class)`, each `num_nodes` long.
    pub fn row(&self, i: usize) -> (&[u32], &[u16], &[u8]) {
        let v = self.num_nodes as usize;
        (&self.next[i * v..(i + 1) * v], &self.hops[i * v..(i + 1) * v], &self.class[i * v..(i + 1) * v])
    }

    /// Serialize. The output is a pure function of the logical content:
    /// same destinations + same rows ⇒ same bytes.
    pub fn encode(&self) -> Vec<u8> {
        let v = self.num_nodes as usize;
        let d = self.dests.len();
        let row_bytes = 7 * v;
        let mut out = Vec::with_capacity(16 + 12 * d + d * row_bytes + 8);
        out.extend_from_slice(&TABLE_MAGIC);
        out.extend_from_slice(&TABLE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.num_nodes.to_le_bytes());
        out.extend_from_slice(&(d as u32).to_le_bytes());
        for &dest in &self.dests {
            out.extend_from_slice(&dest.to_le_bytes());
        }
        // Checksum table placeholder; filled after the rows are written.
        let sums_at = out.len();
        out.resize(out.len() + 8 * d, 0);
        for i in 0..d {
            let row_at = out.len();
            for x in i * v..(i + 1) * v {
                out.extend_from_slice(&self.next[x].to_le_bytes());
            }
            for x in i * v..(i + 1) * v {
                out.extend_from_slice(&self.hops[x].to_le_bytes());
            }
            out.extend_from_slice(&self.class[i * v..(i + 1) * v]);
            let sum = fnv1a(&out[row_at..]).to_le_bytes();
            out[sums_at + 8 * i..sums_at + 8 * (i + 1)].copy_from_slice(&sum);
        }
        let total = fnv1a(&out);
        out.extend_from_slice(&total.to_le_bytes());
        out
    }

    /// Parse and fully verify an encoded table: magic, version, geometry,
    /// the whole-file checksum, and every per-row checksum.
    pub fn decode(bytes: &[u8]) -> Result<RouteTableSet, String> {
        let rd = |at: usize, n: usize| -> Result<&[u8], String> {
            bytes.get(at..at + n).ok_or_else(|| format!("truncated at byte {at}"))
        };
        let u32_at = |at: usize| -> Result<u32, String> {
            Ok(u32::from_le_bytes(rd(at, 4)?.try_into().unwrap()))
        };
        if rd(0, 4)? != TABLE_MAGIC {
            return Err("bad magic (not a RouteTableSet)".to_string());
        }
        let version = u32_at(4)?;
        if version != TABLE_FORMAT_VERSION {
            return Err(format!(
                "table format version {version}, but this build reads version {TABLE_FORMAT_VERSION}"
            ));
        }
        let v = u32_at(8)? as usize;
        let d = u32_at(12)? as usize;
        let row_bytes = 7 * v;
        let expect = 16 + 12 * d + d * row_bytes + 8;
        if bytes.len() != expect {
            return Err(format!("wrong length: {} bytes, geometry says {expect}", bytes.len()));
        }
        let total = u64::from_le_bytes(bytes[expect - 8..].try_into().unwrap());
        if fnv1a(&bytes[..expect - 8]) != total {
            return Err("whole-file checksum mismatch".to_string());
        }
        let mut dests = Vec::with_capacity(d);
        for i in 0..d {
            dests.push(u32_at(16 + 4 * i)?);
        }
        let sums_at = 16 + 4 * d;
        let rows_at = 16 + 12 * d;
        let mut set = RouteTableSet::with_dests(v as u32, dests);
        for i in 0..d {
            let row = &bytes[rows_at + i * row_bytes..rows_at + (i + 1) * row_bytes];
            let want = u64::from_le_bytes(bytes[sums_at + 8 * i..sums_at + 8 * (i + 1)].try_into().unwrap());
            if fnv1a(row) != want {
                return Err(format!("row {i} checksum mismatch"));
            }
            for x in 0..v {
                set.next[i * v + x] = u32::from_le_bytes(row[4 * x..4 * x + 4].try_into().unwrap());
            }
            let hops_at = 4 * v;
            for x in 0..v {
                set.hops[i * v + x] =
                    u16::from_le_bytes(row[hops_at + 2 * x..hops_at + 2 * x + 2].try_into().unwrap());
            }
            set.class[i * v..(i + 1) * v].copy_from_slice(&row[6 * v..]);
        }
        Ok(set)
    }

    /// Assemble partial tables (one per completed dispatch block, in any
    /// order) into the full table over `dests`. Every destination must be
    /// covered exactly once and every partial must share `num_nodes`.
    pub fn merge(
        num_nodes: u32,
        dests: &[NodeId],
        parts: impl IntoIterator<Item = RouteTableSet>,
    ) -> Result<RouteTableSet, String> {
        let index: std::collections::HashMap<NodeId, usize> =
            dests.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let mut out = RouteTableSet::with_dests(num_nodes, dests.to_vec());
        let mut filled = vec![false; dests.len()];
        for part in parts {
            if part.num_nodes != num_nodes {
                return Err(format!(
                    "partial table solved over {} nodes, job has {num_nodes}",
                    part.num_nodes
                ));
            }
            for (j, &dest) in part.dests.iter().enumerate() {
                let &i = index
                    .get(&dest)
                    .ok_or_else(|| format!("partial table covers unknown destination {dest}"))?;
                if std::mem::replace(&mut filled[i], true) {
                    return Err(format!("destination {dest} covered twice"));
                }
                let (next, hops, class) = part.row(j);
                out.set_row(i, next, hops, class);
            }
        }
        if let Some(i) = filled.iter().position(|&f| !f) {
            return Err(format!("destination {} missing from every partial table", dests[i]));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::GenParams;

    fn sample() -> (Topology, RouteTableSet) {
        let t = GenParams::tiny(3).generate();
        let dests: Vec<NodeId> = crate::sample_dests(t.num_nodes(), 12);
        let set = RouteTableSet::from_solves(&t, &dests, 2);
        (t, set)
    }

    #[test]
    fn encode_decode_round_trips() {
        let (_t, set) = sample();
        let bytes = set.encode();
        let back = RouteTableSet::decode(&bytes).expect("decodes");
        assert_eq!(back, set);
        // Encoding is deterministic.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn rows_match_direct_solves() {
        let (t, set) = sample();
        for (i, &d) in set.dests().iter().enumerate() {
            let st = RoutingState::solve(&t, d);
            let (next, hops, _class) = set.row(i);
            for x in t.nodes() {
                match st.best(x) {
                    Some(b) => {
                        assert_eq!(next[x as usize], b.next);
                        assert_eq!(hops[x as usize], b.len);
                    }
                    None => assert_eq!(next[x as usize], miro_bgp::solver::UNROUTED_NEXT),
                }
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let (_t, set) = sample();
        let bytes = set.encode();
        // Flip one byte in the middle of a row: row checksum catches it
        // (and the file checksum before that).
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x40;
        assert!(RouteTableSet::decode(&bad).is_err());
        // Truncation.
        assert!(RouteTableSet::decode(&bytes[..bytes.len() - 3]).is_err());
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(RouteTableSet::decode(&bad).unwrap_err().contains("magic"));
        // Future version.
        let mut bad = bytes;
        bad[4] = 0xEE;
        assert!(RouteTableSet::decode(&bad).unwrap_err().contains("version"));
    }

    #[test]
    fn merge_is_order_independent_and_strict() {
        let (t, whole) = sample();
        let dests = whole.dests().to_vec();
        let mk = |range: std::ops::Range<usize>| {
            RouteTableSet::from_solves(&t, &dests[range], 1)
        };
        let (a, b, c) = (mk(0..5), mk(5..6), mk(6..12));
        let v = t.num_nodes() as u32;
        let m1 = RouteTableSet::merge(v, &dests, [a.clone(), b.clone(), c.clone()]).unwrap();
        let m2 = RouteTableSet::merge(v, &dests, [c.clone(), a.clone(), b.clone()]).unwrap();
        assert_eq!(m1.encode(), whole.encode());
        assert_eq!(m2.encode(), whole.encode());

        let err = RouteTableSet::merge(v, &dests, [a.clone(), c.clone()]).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        let err = RouteTableSet::merge(v, &dests, [a.clone(), a.clone(), b, c]).unwrap_err();
        assert!(err.contains("covered twice"), "{err}");
        let err = RouteTableSet::merge(v + 1, &dests, [a]).unwrap_err();
        assert!(err.contains("nodes"), "{err}");
    }
}
