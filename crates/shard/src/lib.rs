//! Sharded whole-table solve service.
//!
//! [`miro_bgp::engine::par_over_dests`] parallelizes a whole-network
//! solve *within* one process; this crate is the layer above it — the
//! batch service that turns "solve every destination of a 70k-AS graph"
//! into work a fleet of worker processes can chew through, survive
//! crashes during, and resume after a coordinator restart.
//!
//! The shape is deliberately boring: a coordinator partitions the
//! destination space into fixed-size blocks ([`miro_bgp::engine::dest_blocks`]),
//! spawns N worker subprocesses, and speaks a small length-prefixed
//! framed protocol ([`protocol`]) over each worker's stdin/stdout. Every
//! completed block lands in a spool directory and is recorded in an
//! append-only [`manifest`]; the final merge assembles the spool into one
//! columnar [`format::RouteTableSet`] whose bytes are identical no matter
//! how many blocks, workers, or worker deaths the run saw.
//!
//! Robustness is first-class, not bolted on:
//!
//! * a worker that **crashes** (stdout EOF) gets its in-flight block
//!   pushed back to the front of the queue and is replaced while the
//!   respawn budget lasts;
//! * a worker that **hangs** past the heartbeat deadline is killed and
//!   treated as crashed;
//! * a worker that returns a **corrupt frame** (checksum mismatch) or a
//!   block that fails validation is killed and treated as crashed;
//! * a coordinator that dies mid-run leaves a valid manifest behind —
//!   `--resume` re-verifies every checkpointed block against its spool
//!   file and re-dispatches only what is missing.

pub mod coordinator;
pub mod format;
pub mod manifest;
pub mod protocol;
pub mod worker;

use miro_topology::gen::DatasetPreset;
use miro_topology::{NodeId, Topology};

/// 64-bit FNV-1a: the checksum used by the wire frames, the spool
/// manifest, and the route-table format. Not cryptographic — it guards
/// against truncation, bit rot, and torn writes, which is what a batch
/// service on one machine actually faces.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The destination sample a job solves: every node when `sample == 0` or
/// `sample >= num_nodes`, otherwise `sample` destinations spread evenly
/// by stride. Coordinator and workers both derive the list from this one
/// function (it is part of the job fingerprint), so a block's
/// `(start, len)` indices mean the same destinations everywhere.
pub fn sample_dests(num_nodes: usize, sample: usize) -> Vec<NodeId> {
    if sample == 0 || sample >= num_nodes {
        return (0..num_nodes as NodeId).collect();
    }
    let stride = num_nodes / sample;
    (0..num_nodes as NodeId).step_by(stride.max(1)).take(sample).collect()
}

/// How a worker obtains the topology the coordinator is sharding: both
/// sides rebuild it independently (generation is deterministic and the
/// ingest cache is on shared disk), so the protocol never has to move a
/// 350k-edge graph through a pipe.
#[derive(Clone, Debug, PartialEq)]
pub enum TopoSpec {
    /// A generated preset: name as accepted by [`parse_preset`], scale
    /// factor, and seed.
    Preset { preset: String, factor: f64, seed: u64 },
    /// A `miro ingest` JSON cache on disk.
    Cache { path: String },
}

/// Preset names as spelled on the `miro` command line.
pub fn parse_preset(name: &str) -> Result<DatasetPreset, String> {
    Ok(match name {
        "gao2000" => DatasetPreset::Gao2000,
        "gao2003" => DatasetPreset::Gao2003,
        "gao2005" => DatasetPreset::Gao2005,
        "agarwal2004" => DatasetPreset::Agarwal2004,
        "internet" => DatasetPreset::InternetScale,
        other => {
            return Err(format!(
                "unknown preset {other:?} (expected gao2000|gao2003|gao2005|agarwal2004|internet)"
            ))
        }
    })
}

impl TopoSpec {
    /// Build the topology this spec describes.
    pub fn build(&self) -> Result<Topology, String> {
        match self {
            TopoSpec::Preset { preset, factor, seed } => {
                Ok(parse_preset(preset)?.params(*factor, *seed).generate())
            }
            TopoSpec::Cache { path } => {
                let json = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read cache {path:?}: {e}"))?;
                let cache = miro_topology::io::stream::IngestCache::from_json(&json)
                    .map_err(|e| format!("cache {path:?}: {e}"))?;
                cache
                    .topology
                    .build()
                    .map_err(|e| format!("cache {path:?} holds an invalid topology: {e}"))
            }
        }
    }

    /// The argv fragment that makes `miro shard-worker` rebuild the same
    /// topology.
    pub fn to_args(&self) -> Vec<String> {
        match self {
            TopoSpec::Preset { preset, factor, seed } => vec![
                "--preset".into(),
                preset.clone(),
                "--factor".into(),
                factor.to_string(),
                "--seed".into(),
                seed.to_string(),
            ],
            TopoSpec::Cache { path } => vec!["--cache".into(), path.clone()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        // Pinned: these values are baked into on-disk artifacts.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"miro"), fnv1a(b"miro"));
        assert_ne!(fnv1a(b"miro"), fnv1a(b"mirp"));
    }

    #[test]
    fn sample_dests_covers_and_strides() {
        assert_eq!(sample_dests(5, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(sample_dests(5, 9), vec![0, 1, 2, 3, 4]);
        let s = sample_dests(100, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        assert_eq!(s[1], 10);
    }

    #[test]
    fn preset_spec_round_trips_and_builds() {
        let spec =
            TopoSpec::Preset { preset: "gao2005".into(), factor: 0.01, seed: 42 };
        let t = spec.build().expect("preset builds");
        assert_eq!(t.num_nodes(), 209);
        assert_eq!(
            spec.to_args(),
            vec!["--preset", "gao2005", "--factor", "0.01", "--seed", "42"]
        );
        assert!(TopoSpec::Preset { preset: "nope".into(), factor: 1.0, seed: 1 }
            .build()
            .unwrap_err()
            .contains("unknown preset"));
    }
}
