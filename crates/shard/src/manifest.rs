//! The append-only checkpoint manifest that makes a shard job resumable.
//!
//! The coordinator appends one line per event, flushing after each, so
//! the on-disk state is never more than one torn line behind reality:
//!
//! ```text
//! H <manifest_version> <table_format> <nodes> <edges> <dests> <block_size> <dests_fnv>
//! D <block> <worker>                  block dispatched to worker
//! C <block> <bytes> <checksum>        block's spool file fully written
//! ```
//!
//! `D` lines are the block-execution counters: a block dispatched twice
//! (worker death, deadline kill, corrupt result) has two `D` lines, and a
//! resumed run adds `D` lines only for blocks it actually re-runs — which
//! is how the resume tests *prove* finished work is skipped. A `C` line
//! is written only after the block's spool file is atomically in place;
//! on resume every `C` claim is re-verified against the spool before the
//! block is trusted.
//!
//! A torn final line (coordinator killed mid-append) is expected and
//! ignored; a malformed line anywhere *else* means the file is not a
//! manifest, and the job refuses to trust it.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Manifest schema revision.
pub const MANIFEST_VERSION: u32 = 1;

/// Everything that must match for a manifest to be resumable into a job:
/// the table format it spooled, the topology's shape, and the exact
/// destination partition. `dests_fnv` fingerprints the canonical
/// destination list (ids in order), so a job resumed with a different
/// sample or block size is rejected instead of merged wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobFingerprint {
    pub table_format: u32,
    pub num_nodes: u32,
    pub num_edges: u32,
    pub num_dests: u32,
    pub block_size: u32,
    pub dests_fnv: u64,
}

impl JobFingerprint {
    /// Explain the first mismatch between a manifest's job and this one.
    pub fn ensure_matches(&self, manifest: &JobFingerprint) -> Result<(), String> {
        let fields: [(&str, u64, u64); 6] = [
            ("table format", self.table_format as u64, manifest.table_format as u64),
            ("node count", self.num_nodes as u64, manifest.num_nodes as u64),
            ("edge count", self.num_edges as u64, manifest.num_edges as u64),
            ("destination count", self.num_dests as u64, manifest.num_dests as u64),
            ("block size", self.block_size as u64, manifest.block_size as u64),
            ("destination fingerprint", self.dests_fnv, manifest.dests_fnv),
        ];
        for (name, ours, theirs) in fields {
            if ours != theirs {
                return Err(format!(
                    "manifest belongs to a different job: {name} is {theirs}, this job has {ours}"
                ));
            }
        }
        Ok(())
    }
}

/// Append handle. Every event is flushed before the call returns.
pub struct ManifestWriter {
    file: File,
}

impl ManifestWriter {
    /// Start a fresh manifest (truncating any previous one) with the
    /// job's header line.
    pub fn create(path: &Path, job: &JobFingerprint) -> std::io::Result<ManifestWriter> {
        let mut file = File::create(path)?;
        writeln!(
            file,
            "H {MANIFEST_VERSION} {} {} {} {} {} {}",
            job.table_format, job.num_nodes, job.num_edges, job.num_dests, job.block_size, job.dests_fnv
        )?;
        file.flush()?;
        Ok(ManifestWriter { file })
    }

    /// Reopen an existing manifest for appending (resume).
    pub fn append(path: &Path) -> std::io::Result<ManifestWriter> {
        Ok(ManifestWriter { file: OpenOptions::new().append(true).open(path)? })
    }

    /// Record a block assignment — one execution attempt.
    pub fn dispatch(&mut self, block: u32, worker: u32) -> std::io::Result<()> {
        writeln!(self.file, "D {block} {worker}")?;
        self.file.flush()
    }

    /// Record a block whose spool file is durably in place.
    pub fn complete(&mut self, block: u32, bytes: u64, checksum: u64) -> std::io::Result<()> {
        writeln!(self.file, "C {block} {bytes} {checksum}")?;
        self.file.flush()
    }
}

/// Parsed manifest contents.
#[derive(Clone, Debug)]
pub struct ManifestState {
    pub job: JobFingerprint,
    /// Execution attempts per block (count of `D` lines).
    pub dispatches: HashMap<u32, u32>,
    /// Completed blocks: `block → (spool bytes, spool checksum)`.
    pub completed: HashMap<u32, (u64, u64)>,
    /// Whether a torn trailing line was discarded.
    pub torn_tail: bool,
}

/// Read and validate a manifest file.
pub fn read(path: &Path) -> Result<ManifestState, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read manifest {path:?}: {e}"))?;
    let ends_clean = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let mut job = None;
    let mut dispatches: HashMap<u32, u32> = HashMap::new();
    let mut completed = HashMap::new();
    let mut torn_tail = false;

    for (i, line) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        match parse_line(line, i == 0) {
            Ok(Line::Header(fp)) => job = Some(fp),
            Ok(Line::Dispatch(block, _worker)) => *dispatches.entry(block).or_insert(0) += 1,
            Ok(Line::Complete(block, bytes, sum)) => {
                completed.insert(block, (bytes, sum));
            }
            Err(e) => {
                // Only the very last line may be torn, and only if the
                // file does not end with a newline (append died mid-line).
                if last && !ends_clean {
                    torn_tail = true;
                } else {
                    return Err(format!("manifest {path:?} line {}: {e}", i + 1));
                }
            }
        }
    }
    let job = job.ok_or_else(|| format!("manifest {path:?} has no header line"))?;
    Ok(ManifestState { job, dispatches, completed, torn_tail })
}

enum Line {
    Header(JobFingerprint),
    Dispatch(u32, u32),
    Complete(u32, u64, u64),
}

fn parse_line(line: &str, first: bool) -> Result<Line, String> {
    let fields: Vec<&str> = line.split_ascii_whitespace().collect();
    let num = |s: &str| -> Result<u64, String> {
        s.parse().map_err(|_| format!("not a number: {s:?}"))
    };
    match fields.as_slice() {
        ["H", ver, fmt, nodes, edges, dests, block, fp] => {
            if !first {
                return Err("header line after the first line".to_string());
            }
            let ver = num(ver)?;
            if ver != MANIFEST_VERSION as u64 {
                return Err(format!(
                    "manifest version {ver}, but this build reads version {MANIFEST_VERSION}"
                ));
            }
            Ok(Line::Header(JobFingerprint {
                table_format: num(fmt)? as u32,
                num_nodes: num(nodes)? as u32,
                num_edges: num(edges)? as u32,
                num_dests: num(dests)? as u32,
                block_size: num(block)? as u32,
                dests_fnv: num(fp)?,
            }))
        }
        ["D", block, worker] => Ok(Line::Dispatch(num(block)? as u32, num(worker)? as u32)),
        ["C", block, bytes, sum] => Ok(Line::Complete(num(block)? as u32, num(bytes)?, num(sum)?)),
        _ => Err(format!("unrecognized line {line:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> JobFingerprint {
        JobFingerprint {
            table_format: 1,
            num_nodes: 209,
            num_edges: 430,
            num_dests: 209,
            block_size: 16,
            dests_fnv: 0x1234_5678_9abc_def0,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn events_round_trip_with_attempt_counters() {
        let path = tmp("miro_shard_manifest_rt.log");
        let mut w = ManifestWriter::create(&path, &fp()).unwrap();
        w.dispatch(0, 0).unwrap();
        w.dispatch(1, 1).unwrap();
        w.complete(0, 100, 7).unwrap();
        // Worker 1 died; block 1 re-dispatched.
        w.dispatch(1, 2).unwrap();
        w.complete(1, 100, 8).unwrap();
        drop(w);
        // Appending after reopen (resume) keeps prior state.
        let mut w = ManifestWriter::append(&path).unwrap();
        w.dispatch(2, 0).unwrap();
        w.complete(2, 90, 9).unwrap();
        drop(w);

        let st = read(&path).unwrap();
        assert_eq!(st.job, fp());
        assert!(!st.torn_tail);
        assert_eq!(st.dispatches[&0], 1);
        assert_eq!(st.dispatches[&1], 2, "death means two execution attempts");
        assert_eq!(st.dispatches[&2], 1);
        assert_eq!(st.completed[&1], (100, 8));
        assert_eq!(st.completed.len(), 3);
    }

    #[test]
    fn torn_tail_is_ignored_but_interior_garbage_is_not() {
        let path = tmp("miro_shard_manifest_torn.log");
        let mut w = ManifestWriter::create(&path, &fp()).unwrap();
        w.complete(0, 10, 1).unwrap();
        drop(w);
        // Simulate a coordinator killed mid-append: partial line, no newline.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"C 1 55").unwrap();
        drop(f);
        let st = read(&path).unwrap();
        assert!(st.torn_tail);
        assert_eq!(st.completed.len(), 1, "torn completion is not trusted");

        // Garbage with more lines after it is corruption, not a torn tail.
        std::fs::write(&path, "H 1 1 209 430 209 16 5\nwhat even\nC 0 10 1\n").unwrap();
        let err = read(&path).unwrap_err();
        assert!(err.contains("line 2"), "{err}");

        // A complete (newline-terminated) garbage last line is also corruption.
        std::fs::write(&path, "H 1 1 209 430 209 16 5\nC 0 10 1\nnope\n").unwrap();
        assert!(read(&path).is_err());
    }

    #[test]
    fn fingerprint_mismatches_are_named() {
        let ours = fp();
        let mut theirs = fp();
        theirs.block_size = 64;
        let err = ours.ensure_matches(&theirs).unwrap_err();
        assert!(err.contains("block size is 64"), "{err}");
        assert!(ours.ensure_matches(&fp()).is_ok());

        let path = tmp("miro_shard_manifest_ver.log");
        std::fs::write(&path, "H 9 1 209 430 209 16 5\n").unwrap();
        let err = read(&path).unwrap_err();
        assert!(err.contains("manifest version 9"), "{err}");
    }
}
