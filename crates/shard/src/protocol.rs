//! The coordinator↔worker wire protocol: length-prefixed, checksummed
//! frames over the worker's stdin/stdout.
//!
//! Frame layout (all little-endian):
//!
//! ```text
//! u32  payload length N (kind byte + body)
//! u8   message kind        ┐
//! ...  body (N-1 bytes)    ┘ payload
//! u64  FNV-1a checksum of the payload
//! ```
//!
//! A frame whose checksum does not match, whose kind is unknown, or whose
//! body does not parse exactly is a [`FrameError::Corrupt`] — the
//! coordinator treats a worker that sends one as crashed (kill, reassign
//! its block). Clean EOF between frames is [`FrameError::Eof`]; EOF *in*
//! a frame is corruption (a torn write). The length field is capped by
//! [`MAX_FRAME`] so a corrupted length cannot make the reader allocate
//! gigabytes.
//!
//! The framing itself (length prefix + FNV-1a trailer) is message-set
//! agnostic and split out as [`encode_raw_frame`] / [`write_raw_frame`] /
//! [`read_raw_frame`]: the shard [`Msg`] codec here and the route-query
//! serving protocol in `miro-serve` both speak it, so one fuzz corpus
//! covers both wire formats' framing.

use crate::fnv1a;
use std::io::{Read, Write};

/// Protocol revision spoken in [`Msg::Hello`]; both sides must agree.
pub const PROTOCOL_VERSION: u32 = 1;

/// Largest acceptable payload: a block result is the dominant frame, and
/// 256 MiB of columnar rows is ~38k destinations of a 70k-AS table —
/// far above any sane block size.
pub const MAX_FRAME: u32 = 256 << 20;

/// One protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Worker → coordinator, once at startup.
    Hello { protocol: u32, worker: u32 },
    /// Coordinator → worker: solve destinations `start..start+len` (block
    /// indices into the job's canonical destination list).
    Assign { block: u32, start: u32, len: u32 },
    /// Worker → coordinator, periodically: still alive; `block` is the
    /// assignment in progress (`u32::MAX` when idle).
    Heartbeat { worker: u32, block: u32 },
    /// Worker → coordinator: one completed block, as an encoded
    /// [`crate::format::RouteTableSet`] restricted to the block's dests.
    BlockResult { block: u32, table: Vec<u8> },
    /// Coordinator → worker: drain and exit.
    Shutdown,
    /// Worker → coordinator: clean exit acknowledgement.
    Bye { worker: u32, blocks_done: u32 },
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream between frames (worker exited / closed pipe).
    Eof,
    /// The stream broke mid-frame or the bytes fail validation.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
            FrameError::Io(e) => write!(f, "frame read error: {e}"),
        }
    }
}

const KIND_HELLO: u8 = 1;
const KIND_ASSIGN: u8 = 2;
const KIND_HEARTBEAT: u8 = 3;
const KIND_BLOCK_RESULT: u8 = 4;
const KIND_SHUTDOWN: u8 = 5;
const KIND_BYE: u8 = 6;

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Wrap an opaque payload as a frame: `u32` length, the payload, an
/// FNV-1a trailer. The message-set-agnostic half of the codec.
pub fn encode_raw_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    push_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

/// Write one payload as a frame and flush (frames carry control flow, so
/// they must not sit in a BufWriter).
pub fn write_raw_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_raw_frame(payload))?;
    w.flush()
}

/// Read one frame's payload, verifying the length cap and the FNV-1a
/// trailer. Blocks until a full frame (or EOF) arrives. The payload is
/// returned unparsed — message-set decoding is the caller's layer.
pub fn read_raw_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut len4 = [0u8; 4];
    read_exact_or(r, &mut len4, true)?;
    let len = u32::from_le_bytes(len4);
    if len == 0 {
        return Err(FrameError::Corrupt("zero-length payload".to_string()));
    }
    if len > MAX_FRAME {
        return Err(FrameError::Corrupt(format!("{len}-byte payload exceeds MAX_FRAME")));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, false)?;
    let mut sum8 = [0u8; 8];
    read_exact_or(r, &mut sum8, false)?;
    if fnv1a(&payload) != u64::from_le_bytes(sum8) {
        return Err(FrameError::Corrupt("checksum mismatch".to_string()));
    }
    Ok(payload)
}

/// Serialize one message as a frame.
pub fn encode_frame(msg: &Msg) -> Vec<u8> {
    let mut payload = Vec::new();
    match msg {
        Msg::Hello { protocol, worker } => {
            payload.push(KIND_HELLO);
            push_u32(&mut payload, *protocol);
            push_u32(&mut payload, *worker);
        }
        Msg::Assign { block, start, len } => {
            payload.push(KIND_ASSIGN);
            push_u32(&mut payload, *block);
            push_u32(&mut payload, *start);
            push_u32(&mut payload, *len);
        }
        Msg::Heartbeat { worker, block } => {
            payload.push(KIND_HEARTBEAT);
            push_u32(&mut payload, *worker);
            push_u32(&mut payload, *block);
        }
        Msg::BlockResult { block, table } => {
            payload.reserve(5 + table.len());
            payload.push(KIND_BLOCK_RESULT);
            push_u32(&mut payload, *block);
            payload.extend_from_slice(table);
        }
        Msg::Shutdown => payload.push(KIND_SHUTDOWN),
        Msg::Bye { worker, blocks_done } => {
            payload.push(KIND_BYE);
            push_u32(&mut payload, *worker);
            push_u32(&mut payload, *blocks_done);
        }
    }
    encode_raw_frame(&payload)
}

/// Write one message as a frame and flush (frames carry control flow, so
/// they must not sit in a BufWriter).
pub fn write_frame<W: Write>(w: &mut W, msg: &Msg) -> std::io::Result<()> {
    w.write_all(&encode_frame(msg))?;
    w.flush()
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], start_of_frame: bool) -> Result<(), FrameError> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) => {
                return Err(if start_of_frame && at == 0 {
                    FrameError::Eof
                } else {
                    FrameError::Corrupt("stream ended mid-frame".to_string())
                });
            }
            Ok(n) => at += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

fn body_u32(body: &[u8], at: usize) -> Result<u32, FrameError> {
    body.get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        .ok_or_else(|| FrameError::Corrupt("short body".to_string()))
}

/// Read one message. Blocks until a full frame (or EOF) arrives.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Msg, FrameError> {
    decode_payload(&read_raw_frame(r)?)
}

/// Parse one verified frame payload into a [`Msg`]. Split from
/// [`read_frame`] so fuzzers can hit the parser without the framing.
pub fn decode_payload(payload: &[u8]) -> Result<Msg, FrameError> {
    if payload.is_empty() {
        return Err(FrameError::Corrupt("zero-length payload".to_string()));
    }
    let (kind, body) = (payload[0], &payload[1..]);
    let fixed = |want: usize| -> Result<(), FrameError> {
        (body.len() == want)
            .then_some(())
            .ok_or_else(|| FrameError::Corrupt(format!("kind {kind}: bad body length")))
    };
    match kind {
        KIND_HELLO => {
            fixed(8)?;
            Ok(Msg::Hello { protocol: body_u32(body, 0)?, worker: body_u32(body, 4)? })
        }
        KIND_ASSIGN => {
            fixed(12)?;
            Ok(Msg::Assign {
                block: body_u32(body, 0)?,
                start: body_u32(body, 4)?,
                len: body_u32(body, 8)?,
            })
        }
        KIND_HEARTBEAT => {
            fixed(8)?;
            Ok(Msg::Heartbeat { worker: body_u32(body, 0)?, block: body_u32(body, 4)? })
        }
        KIND_BLOCK_RESULT => {
            if body.len() < 4 {
                return Err(FrameError::Corrupt("block result without header".to_string()));
            }
            Ok(Msg::BlockResult { block: body_u32(body, 0)?, table: body[4..].to_vec() })
        }
        KIND_SHUTDOWN => {
            fixed(0)?;
            Ok(Msg::Shutdown)
        }
        KIND_BYE => {
            fixed(8)?;
            Ok(Msg::Bye { worker: body_u32(body, 0)?, blocks_done: body_u32(body, 4)? })
        }
        other => Err(FrameError::Corrupt(format!("unknown message kind {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_msgs() -> Vec<Msg> {
        vec![
            Msg::Hello { protocol: PROTOCOL_VERSION, worker: 3 },
            Msg::Assign { block: 7, start: 448, len: 64 },
            Msg::Heartbeat { worker: 3, block: u32::MAX },
            Msg::BlockResult { block: 7, table: vec![1, 2, 3, 250, 0, 9] },
            Msg::Shutdown,
            Msg::Bye { worker: 3, blocks_done: 12 },
        ]
    }

    #[test]
    fn frames_round_trip_back_to_back() {
        let msgs = all_msgs();
        let mut stream = Vec::new();
        for m in &msgs {
            write_frame(&mut stream, m).unwrap();
        }
        let mut r = &stream[..];
        for m in &msgs {
            assert_eq!(&read_frame(&mut r).unwrap(), m);
        }
        assert!(matches!(read_frame(&mut r), Err(FrameError::Eof)));
    }

    #[test]
    fn corruption_truncation_and_oversize_are_rejected() {
        let good = encode_frame(&Msg::Assign { block: 1, start: 2, len: 3 });

        // Bit flip in the body → checksum mismatch.
        let mut bad = good.clone();
        bad[6] ^= 0x01;
        let err = read_frame(&mut &bad[..]).unwrap_err();
        assert!(matches!(err, FrameError::Corrupt(ref w) if w.contains("checksum")), "{err}");

        // Bit flip in the trailing checksum itself.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x80;
        assert!(matches!(read_frame(&mut &bad[..]).unwrap_err(), FrameError::Corrupt(_)));

        // Torn mid-frame: corruption, not clean EOF.
        let err = read_frame(&mut &good[..good.len() - 2]).unwrap_err();
        assert!(matches!(err, FrameError::Corrupt(ref w) if w.contains("mid-frame")), "{err}");

        // Absurd length prefix refuses before allocating.
        let mut bad = good.clone();
        bad[..4].copy_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let err = read_frame(&mut &bad[..]).unwrap_err();
        assert!(matches!(err, FrameError::Corrupt(ref w) if w.contains("MAX_FRAME")), "{err}");

        // Unknown kind (re-checksummed so only the kind is wrong).
        let mut payload = vec![99u8];
        payload.extend_from_slice(&[0; 12]);
        let mut bad = Vec::new();
        bad.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bad.extend_from_slice(&payload);
        bad.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        let err = read_frame(&mut &bad[..]).unwrap_err();
        assert!(matches!(err, FrameError::Corrupt(ref w) if w.contains("unknown message kind")), "{err}");

        // A wrong body length for a known kind.
        let payload = vec![KIND_SHUTDOWN, 0xAB];
        let mut bad = Vec::new();
        bad.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bad.extend_from_slice(&payload);
        bad.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        assert!(matches!(read_frame(&mut &bad[..]).unwrap_err(), FrameError::Corrupt(_)));
    }
}
