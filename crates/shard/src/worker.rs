//! The shard worker: the subprocess end of the protocol.
//!
//! A worker rebuilds the job's topology from its argv spec, says
//! [`Msg::Hello`], and then loops: take a block assignment, solve it with
//! [`RouteTableSet::from_solves_pooled`] against one [`ScratchPool`] held
//! for the worker's whole life — per-thread solve arenas survive from
//! block to block, so after the first block a worker allocates no scratch
//! at all — send the encoded block back, repeat until [`Msg::Shutdown`]
//! or the coordinator's pipe closes. A background
//! thread heartbeats the whole time — including *during* a long solve —
//! so the coordinator can tell "still grinding block 17" from "hung".
//! Both threads write frames through one mutex so heartbeats never tear a
//! block-result frame.

use crate::format::RouteTableSet;
use crate::protocol::{read_frame, write_frame, FrameError, Msg, PROTOCOL_VERSION};
use miro_bgp::engine::ScratchPool;
use miro_topology::{NodeId, Topology};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Heartbeat block id meaning "idle".
pub const IDLE_BLOCK: u32 = u32::MAX;

/// Per-worker settings, fixed for the worker's lifetime.
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    /// Id the coordinator assigned (echoed in every heartbeat).
    pub worker: u32,
    /// Solver threads inside this worker.
    pub threads: usize,
    /// Interval between heartbeats.
    pub heartbeat: Duration,
}

/// Run the worker loop over `input`/`output` until shutdown or EOF.
/// `dests` is the job's canonical destination list — assignments index
/// into it, so it must match the coordinator's (both sides derive it with
/// [`crate::sample_dests`] from the same spec).
pub fn run<R, W>(
    topo: &Topology,
    dests: &[NodeId],
    cfg: WorkerConfig,
    mut input: R,
    output: W,
) -> Result<(), String>
where
    R: Read,
    W: Write + Send + 'static,
{
    let output = Arc::new(Mutex::new(output));
    let current = Arc::new(AtomicU32::new(IDLE_BLOCK));
    let stop = Arc::new(AtomicBool::new(false));

    {
        let mut out = output.lock().expect("worker stdout mutex");
        write_frame(&mut *out, &Msg::Hello { protocol: PROTOCOL_VERSION, worker: cfg.worker })
            .map_err(|e| format!("worker {}: cannot greet coordinator: {e}", cfg.worker))?;
    }

    let beat = {
        let (output, current, stop) = (output.clone(), current.clone(), stop.clone());
        let (worker, interval) = (cfg.worker, cfg.heartbeat);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                let msg = Msg::Heartbeat { worker, block: current.load(Ordering::Relaxed) };
                let mut out = output.lock().expect("worker stdout mutex");
                if write_frame(&mut *out, &msg).is_err() {
                    break; // coordinator is gone; the main loop will see EOF
                }
            }
        })
    };

    let pool = ScratchPool::for_nodes(topo.num_nodes());
    let mut blocks_done = 0u32;
    let result = loop {
        match read_frame(&mut input) {
            Ok(Msg::Assign { block, start, len }) => {
                let (start, len) = (start as usize, len as usize);
                if start + len > dests.len() || len == 0 {
                    break Err(format!(
                        "worker {}: assignment {block} covers {start}..{} of {} dests",
                        cfg.worker,
                        start + len,
                        dests.len()
                    ));
                }
                current.store(block, Ordering::Relaxed);
                let table = RouteTableSet::from_solves_pooled(
                    topo,
                    &dests[start..start + len],
                    cfg.threads,
                    &pool,
                );
                current.store(IDLE_BLOCK, Ordering::Relaxed);
                let msg = Msg::BlockResult { block, table: table.encode() };
                let mut out = output.lock().expect("worker stdout mutex");
                if let Err(e) = write_frame(&mut *out, &msg) {
                    break Err(format!("worker {}: cannot send block {block}: {e}", cfg.worker));
                }
                blocks_done += 1;
            }
            Ok(Msg::Shutdown) => {
                let mut out = output.lock().expect("worker stdout mutex");
                let _ = write_frame(&mut *out, &Msg::Bye { worker: cfg.worker, blocks_done });
                break Ok(());
            }
            // Coordinator exited (cleanly or not): nothing left to do.
            Err(FrameError::Eof) => break Ok(()),
            Err(e) => break Err(format!("worker {}: {e}", cfg.worker)),
            Ok(other) => {
                break Err(format!("worker {}: unexpected message {other:?}", cfg.worker))
            }
        }
    };
    stop.store(true, Ordering::Relaxed);
    let _ = beat.join();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::GenParams;

    /// Drive a worker end-to-end over in-memory byte streams.
    #[test]
    fn worker_solves_blocks_and_drains() {
        let topo = GenParams::tiny(5).generate();
        let dests = crate::sample_dests(topo.num_nodes(), 10);
        let mut script = Vec::new();
        write_frame(&mut script, &Msg::Assign { block: 0, start: 0, len: 4 }).unwrap();
        write_frame(&mut script, &Msg::Assign { block: 1, start: 4, len: 6 }).unwrap();
        write_frame(&mut script, &Msg::Shutdown).unwrap();

        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let cfg = WorkerConfig { worker: 9, threads: 2, heartbeat: Duration::from_millis(5) };
        run(&topo, &dests, cfg, &script[..], Shared(out.clone())).expect("worker runs");

        let replies = out.lock().unwrap();
        let mut r = &replies[..];
        let mut results = Vec::new();
        let mut heartbeats = 0;
        let mut said_hello = false;
        let mut said_bye = false;
        loop {
            match read_frame(&mut r) {
                Ok(Msg::Hello { protocol, worker }) => {
                    assert_eq!((protocol, worker), (PROTOCOL_VERSION, 9));
                    said_hello = true;
                }
                Ok(Msg::Heartbeat { worker, .. }) => {
                    assert_eq!(worker, 9);
                    heartbeats += 1;
                }
                Ok(Msg::BlockResult { block, table }) => {
                    results.push((block, RouteTableSet::decode(&table).expect("block decodes")));
                }
                Ok(Msg::Bye { worker, blocks_done }) => {
                    assert_eq!((worker, blocks_done), (9, 2));
                    said_bye = true;
                }
                Err(FrameError::Eof) => break,
                other => panic!("unexpected worker output: {other:?}"),
            }
        }
        assert!(said_hello && said_bye, "hello={said_hello} bye={said_bye}");
        let _ = heartbeats; // interval-dependent; zero is legal on a fast machine
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].1.dests(), &dests[0..4]);
        assert_eq!(results[1].1.dests(), &dests[4..10]);
        let reference = RouteTableSet::from_solves(&topo, &dests[0..4], 1);
        assert_eq!(results[0].1, reference, "worker block matches direct solve");
    }

    #[test]
    fn out_of_range_assignment_is_fatal() {
        let topo = GenParams::tiny(5).generate();
        let dests = crate::sample_dests(topo.num_nodes(), 4);
        let mut script = Vec::new();
        write_frame(&mut script, &Msg::Assign { block: 0, start: 2, len: 10 }).unwrap();
        let cfg = WorkerConfig { worker: 0, threads: 1, heartbeat: Duration::from_secs(10) };
        let err = run(&topo, &dests, cfg, &script[..], Vec::new()).unwrap_err();
        assert!(err.contains("covers"), "{err}");
    }
}
