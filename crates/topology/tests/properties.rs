//! Property-based tests for the topology substrate.

use miro_topology::io::{from_text, stream, to_text, TopologyDoc};
use miro_topology::{is_valley_free, AsId, GenParams, Rel, Topology, TopologyBuilder};
use proptest::prelude::*;

/// Render a topology in the CAIDA `as1|as2|rel` format. The builder's
/// `link(a, b, rel)` convention says `rel` is what *b is to a*, so a
/// `Customer` annotation maps to `a|b|-1` (a provides b) and a
/// `Provider` annotation flips the endpoints.
fn to_caida_text(t: &Topology) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(t.num_edges());
    for x in t.nodes() {
        for &(y, rel) in t.neighbors(x) {
            let (ax, ay) = (t.asn(x).0, t.asn(y).0);
            if ax < ay {
                lines.push(match rel {
                    Rel::Customer => format!("{ax}|{ay}|-1"),
                    Rel::Provider => format!("{ay}|{ax}|-1"),
                    Rel::Peer => format!("{ax}|{ay}|0"),
                    Rel::Sibling => format!("{ax}|{ay}|1"),
                });
            }
        }
    }
    lines.sort();
    lines.join("\n")
}

/// Strategy: an arbitrary valid annotated topology (connected not
/// required) over up to 24 ASes with consistent reciprocal relationships
/// and no self-loops or duplicate edges.
fn arb_topology() -> impl Strategy<Value = Topology> {
    let edge = (0u32..24, 0u32..24, 0u8..4);
    proptest::collection::vec(edge, 0..80).prop_map(|edges| {
        let mut b = TopologyBuilder::new();
        for n in 0..24u32 {
            b.intern_as(AsId(100 + n));
        }
        let mut seen = std::collections::HashSet::new();
        for (x, y, r) in edges {
            if x == y {
                continue;
            }
            let key = (x.min(y), x.max(y));
            if !seen.insert(key) {
                continue; // keep the first relationship for a pair
            }
            let rel = match r {
                0 => Rel::Customer,
                1 => Rel::Provider,
                2 => Rel::Peer,
                _ => Rel::Sibling,
            };
            b.link(AsId(100 + x), AsId(100 + y), rel);
        }
        b.build().expect("constructed edges are consistent")
    })
}

proptest! {
    /// Text serialization round-trips exactly.
    #[test]
    fn text_round_trip(t in arb_topology()) {
        let text = to_text(&t);
        let u = from_text(&text).expect("serializer output parses");
        prop_assert_eq!(to_text(&u), text);
        prop_assert_eq!(t.num_edges(), u.num_edges());
    }

    /// JSON document round-trips exactly (including isolated nodes).
    #[test]
    fn json_round_trip(t in arb_topology()) {
        let doc = TopologyDoc::of(&t);
        let json = serde_json::to_string(&doc).expect("serializes");
        let doc2: TopologyDoc = serde_json::from_str(&json).expect("parses");
        let u = doc2.build().expect("valid");
        prop_assert_eq!(t.num_nodes(), u.num_nodes());
        prop_assert_eq!(to_text(&t), to_text(&u));
    }

    /// The streaming parser agrees with the strict whole-string parser on
    /// every valid serialized topology (the zero-edge case is the one
    /// documented divergence: `stream::parse` refuses empty inputs).
    #[test]
    fn stream_parse_agrees_with_from_text(t in arb_topology()) {
        let text = to_text(&t);
        match stream::parse_str(&text) {
            Ok((u, stats)) => {
                let v = from_text(&text).expect("strict parser accepts its own format");
                prop_assert_eq!(to_text(&u), to_text(&v));
                prop_assert_eq!(u.num_nodes(), v.num_nodes());
                prop_assert_eq!(stats.edges, t.num_edges());
                prop_assert_eq!(stats.duplicate_edges, 0);
                prop_assert_eq!(stats.self_loops, 0);
                prop_assert_eq!(stats.bytes as usize, text.len());
            }
            Err(e) => {
                prop_assert_eq!(t.num_edges(), 0, "only empty inputs may fail: {}", e);
                prop_assert_eq!(e.kind, stream::ErrorKind::Empty);
            }
        }
    }

    /// The CAIDA rendering of any topology parses back to the same graph,
    /// and doubling every record changes nothing but the duplicate count.
    #[test]
    fn caida_format_round_trips_and_dedups(t in arb_topology()) {
        let caida = to_caida_text(&t);
        if t.num_edges() == 0 { return Ok(()); }
        let (u, stats) = stream::parse_str(&caida).expect("caida rendering parses");
        prop_assert_eq!(to_text(&u), to_text(&t));
        prop_assert_eq!(stats.edges, t.num_edges());

        let doubled: String = caida.lines().flat_map(|l| [l, "\n", l, "\n"]).collect();
        let (w, stats2) = stream::parse_str(&doubled).expect("doubled records parse");
        prop_assert_eq!(to_text(&w), to_text(&t));
        prop_assert_eq!(stats2.edges, t.num_edges());
        prop_assert_eq!(stats2.duplicate_edges, t.num_edges());
    }

    /// Reciprocity: rel(a, b) is always the reverse of rel(b, a).
    #[test]
    fn relationships_are_reciprocal(t in arb_topology()) {
        for x in t.nodes() {
            for &(y, rel) in t.neighbors(x) {
                prop_assert_eq!(t.rel(y, x), Some(rel.reverse()));
                prop_assert_eq!(t.rel(x, y), Some(rel));
            }
        }
    }

    /// Degree equals neighbor count and edges sum to twice the degrees.
    #[test]
    fn degree_invariants(t in arb_topology()) {
        let total: usize = t.nodes().map(|x| t.degree(x)).sum();
        prop_assert_eq!(total, 2 * t.num_edges());
    }

    /// A single-hop path over an existing non-sibling link is always
    /// valley-free; a path over a non-existent link never is.
    #[test]
    fn single_links_are_valley_free(t in arb_topology()) {
        for x in t.nodes() {
            for &(y, _) in t.neighbors(x) {
                prop_assert!(is_valley_free(&t, &[x, y]));
            }
        }
    }

    /// Reversing a valley-free path keeps it valley-free only when it has
    /// no peer step *or* is symmetric; but the weaker, always-true claim:
    /// a valley-free path never contains a repeated AS.
    #[test]
    fn valley_free_paths_are_simple(t in arb_topology()) {
        // Build some paths by walking up provider links.
        for start in t.nodes() {
            let mut path = vec![start];
            let mut at = start;
            for _ in 0..4 {
                let Some(p) = t.providers(at).next() else { break };
                if path.contains(&p) {
                    break;
                }
                path.push(p);
                at = p;
            }
            if path.len() >= 2 && is_valley_free(&t, &path) {
                let mut sorted = path.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), path.len());
            }
        }
    }

    /// The generator always produces valid, connected hierarchies whose
    /// census adds up, for any seed.
    #[test]
    fn generator_invariants(seed in 0u64..5000) {
        let t = GenParams::tiny(seed).generate();
        prop_assert!(t.is_connected());
        prop_assert!(t.customer_to_provider_order().is_some());
        let census = miro_topology::stats::link_census(&t);
        prop_assert_eq!(
            census.edges,
            census.pc_links + census.peering_links + census.sibling_links
        );
        prop_assert!(census.stubs * 2 > census.nodes, "stub majority");
    }

    /// Reachability-avoiding is monotone: if dst is reachable avoiding x,
    /// it is reachable with no constraint at all.
    #[test]
    fn avoidance_is_stricter_than_reachability(t in arb_topology(), s in 0u32..24, d in 0u32..24, a in 0u32..24) {
        let n = t.num_nodes() as u32;
        if n == 0 { return Ok(()); }
        let (s, d, a) = (s % n, d % n, a % n);
        if t.reachable_avoiding(s, d, a) && s != d && d != a && s != a {
            // Plain reachability: avoid an AS not on any path by using an
            // id outside the graph? Instead: avoiding d itself fails, and
            // avoiding an isolated vertex equals plain reachability.
            prop_assert!(!t.reachable_avoiding(s, d, d));
        }
    }
}
