//! The annotated AS graph.
//!
//! [`Topology`] is immutable once built: the evaluation harness builds one
//! graph per dataset and then runs hundreds of thousands of routing
//! computations against it, so the representation is optimized for reads
//! (dense `u32` node indices, flat adjacency vectors) and constructed
//! through a validating [`TopologyBuilder`].

use std::collections::HashMap;
use std::fmt;

/// A public Autonomous System number, as carried in BGP AS paths.
///
/// The dissertation (Chapter 1) describes 16-bit AS numbers with 32-bit
/// numbers being introduced; we use `u32` throughout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsId(pub u32);

impl fmt::Debug for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Dense index of an AS inside one [`Topology`].
///
/// All hot-path data structures (routing tables, candidate sets, traffic
/// counters) are `Vec`s indexed by `NodeId`; the mapping to the sparse
/// [`AsId`] space happens only at the edges of the system.
pub type NodeId = u32;

/// What a neighbor *is to me* across one inter-AS link (section 2.2.1).
///
/// Relationships are stored from the perspective of the node that owns the
/// adjacency list: if `x`'s entry for `y` says [`Rel::Customer`], then `y`
/// pays `x` for transit, and `y`'s entry for `x` must say [`Rel::Provider`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rel {
    /// The neighbor is my customer (it pays me for transit).
    Customer,
    /// The neighbor is my provider (I pay it for transit).
    Provider,
    /// Settlement-free peer: we exchange our customers' traffic only.
    Peer,
    /// Sibling: same institution; mutual full transit.
    Sibling,
}

impl Rel {
    /// The same link seen from the other endpoint.
    pub fn reverse(self) -> Rel {
        match self {
            Rel::Customer => Rel::Provider,
            Rel::Provider => Rel::Customer,
            Rel::Peer => Rel::Peer,
            Rel::Sibling => Rel::Sibling,
        }
    }

    /// Short single-letter tag used by the text serialization format.
    pub fn tag(self) -> char {
        match self {
            Rel::Customer => 'c',
            Rel::Provider => 'p',
            Rel::Peer => 'e',
            Rel::Sibling => 's',
        }
    }

    /// Inverse of [`Rel::tag`].
    pub fn from_tag(c: char) -> Option<Rel> {
        match c {
            'c' => Some(Rel::Customer),
            'p' => Some(Rel::Provider),
            'e' => Some(Rel::Peer),
            's' => Some(Rel::Sibling),
            _ => None,
        }
    }
}

/// What happened to one edge declaration handed to
/// [`TopologyBuilder::try_link`].
///
/// Unlike [`TopologyBuilder::link`], which latches the first problem and
/// reports it at [`TopologyBuilder::build`] time, `try_link` tells the
/// caller immediately — the streaming ingest path uses this to count
/// duplicates, drop self-loops, and abort on conflicts *with the offending
/// line still in hand*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// A new edge was recorded.
    Added,
    /// The same unordered pair was already declared with the same
    /// relationship; nothing was recorded.
    Duplicate,
    /// The same unordered pair was already declared with a *different*
    /// relationship; nothing was recorded and the builder is unchanged.
    Conflict,
    /// Both endpoints are the same AS; nothing was recorded.
    SelfLoop,
}

/// Errors detected while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The same AS number was registered twice.
    DuplicateAs(AsId),
    /// An edge references an AS that was never registered.
    UnknownAs(AsId),
    /// A self-loop was declared.
    SelfLoop(AsId),
    /// The same unordered pair was given two conflicting relationships.
    ConflictingEdge(AsId, AsId),
    /// The provider-customer subgraph contains a cycle, so the graph is not
    /// hierarchical (section 7.1.3 requires a DAG for the convergence results).
    ProviderCycle(AsId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateAs(a) => write!(f, "duplicate AS {a}"),
            TopologyError::UnknownAs(a) => write!(f, "edge references unknown AS {a}"),
            TopologyError::SelfLoop(a) => write!(f, "self loop at AS {a}"),
            TopologyError::ConflictingEdge(a, b) => {
                write!(f, "conflicting relationship declared for link {a}-{b}")
            }
            TopologyError::ProviderCycle(a) => {
                write!(f, "customer-provider cycle through AS {a}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Builder that accumulates ASes and annotated links, then validates.
///
/// Validation enforces: unique AS numbers, known endpoints, no self-loops,
/// reciprocal relationship consistency, and (optionally) acyclicity of the
/// customer-provider subgraph.
///
/// ```
/// use miro_topology::{AsId, Rel, TopologyBuilder};
///
/// let mut b = TopologyBuilder::new();
/// for asn in [701, 7018, 88] {
///     b.add_as(AsId(asn));
/// }
/// b.peering(AsId(701), AsId(7018));          // two tier-1 peers
/// b.provider_customer(AsId(7018), AsId(88)); // 7018 provides 88
/// let topo = b.build_checked(true).unwrap();
///
/// let stub = topo.node(AsId(88)).unwrap();
/// assert!(topo.is_leaf(stub));
/// let t1 = topo.node(AsId(701)).unwrap();
/// assert_eq!(topo.rel(stub, topo.node(AsId(7018)).unwrap()), Some(Rel::Provider));
/// assert_eq!(topo.peers(t1).count(), 1);
/// ```
#[derive(Default)]
pub struct TopologyBuilder {
    asns: Vec<AsId>,
    index: HashMap<AsId, NodeId>,
    // Edges stored once, from the lower NodeId's perspective.
    edges: HashMap<(NodeId, NodeId), Rel>,
    conflict: Option<(AsId, AsId)>,
    duplicate: Option<AsId>,
    unknown: Option<AsId>,
    self_loop: Option<AsId>,
}

impl TopologyBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an AS. Returns its dense node id.
    pub fn add_as(&mut self, asn: AsId) -> NodeId {
        if let Some(&id) = self.index.get(&asn) {
            self.duplicate = Some(asn);
            return id;
        }
        let id = self.asns.len() as NodeId;
        self.asns.push(asn);
        self.index.insert(asn, id);
        id
    }

    /// Register an AS if new, otherwise return the existing id. Unlike
    /// [`TopologyBuilder::add_as`] this never flags a duplicate.
    pub fn intern_as(&mut self, asn: AsId) -> NodeId {
        if let Some(&id) = self.index.get(&asn) {
            return id;
        }
        let id = self.asns.len() as NodeId;
        self.asns.push(asn);
        self.index.insert(asn, id);
        id
    }

    /// Declare that `b` is `rel` *to* `a` — e.g. `link(a, b, Rel::Customer)`
    /// means `b` is a customer of `a`.
    pub fn link(&mut self, a: AsId, b: AsId, rel: Rel) -> &mut Self {
        if a == b {
            self.self_loop = Some(a);
            return self;
        }
        let (Some(&ia), Some(&ib)) = (self.index.get(&a), self.index.get(&b)) else {
            self.unknown = Some(if self.index.contains_key(&a) { b } else { a });
            return self;
        };
        // Normalize to the lower node id's perspective.
        let (key, stored) = if ia < ib { ((ia, ib), rel) } else { ((ib, ia), rel.reverse()) };
        if let Some(&prev) = self.edges.get(&key) {
            if prev != stored {
                self.conflict = Some((a, b));
            }
            return self;
        }
        self.edges.insert(key, stored);
        self
    }

    /// Declare that `b` is `rel` *to* `a`, interning both endpoints, and
    /// report what happened instead of latching an error for `build`.
    ///
    /// This is the single-pass entry point for streaming ingest: AS numbers
    /// are remapped to dense node ids as they are first seen, duplicates
    /// and self-loops are reported (not recorded), and a conflicting
    /// redeclaration leaves the builder untouched so the caller can attach
    /// its own source location to the error.
    pub fn try_link(&mut self, a: AsId, b: AsId, rel: Rel) -> LinkOutcome {
        if a == b {
            return LinkOutcome::SelfLoop;
        }
        let ia = self.intern_as(a);
        let ib = self.intern_as(b);
        let (key, stored) = if ia < ib { ((ia, ib), rel) } else { ((ib, ia), rel.reverse()) };
        match self.edges.get(&key) {
            Some(&prev) if prev == stored => LinkOutcome::Duplicate,
            Some(_) => LinkOutcome::Conflict,
            None => {
                self.edges.insert(key, stored);
                LinkOutcome::Added
            }
        }
    }

    /// Convenience: declare a customer-provider link (`customer` pays
    /// `provider`).
    pub fn provider_customer(&mut self, provider: AsId, customer: AsId) -> &mut Self {
        self.link(provider, customer, Rel::Customer)
    }

    /// Convenience: declare a settlement-free peering link.
    pub fn peering(&mut self, a: AsId, b: AsId) -> &mut Self {
        self.link(a, b, Rel::Peer)
    }

    /// Convenience: declare a sibling link.
    pub fn sibling(&mut self, a: AsId, b: AsId) -> &mut Self {
        self.link(a, b, Rel::Sibling)
    }

    /// Validate and freeze. `require_hierarchy` additionally checks that the
    /// customer-provider subgraph is a DAG (the standing assumption of the
    /// Chapter 7 convergence results).
    pub fn build_checked(self, require_hierarchy: bool) -> Result<Topology, TopologyError> {
        if let Some(a) = self.duplicate {
            return Err(TopologyError::DuplicateAs(a));
        }
        if let Some(a) = self.unknown {
            return Err(TopologyError::UnknownAs(a));
        }
        if let Some(a) = self.self_loop {
            return Err(TopologyError::SelfLoop(a));
        }
        if let Some((a, b)) = self.conflict {
            return Err(TopologyError::ConflictingEdge(a, b));
        }
        let n = self.asns.len();
        let mut neighbors: Vec<Vec<(NodeId, Rel)>> = vec![Vec::new(); n];
        for (&(ia, ib), &rel) in &self.edges {
            neighbors[ia as usize].push((ib, rel));
            neighbors[ib as usize].push((ia, rel.reverse()));
        }
        // Deterministic iteration order regardless of HashMap internals.
        for list in &mut neighbors {
            list.sort_unstable_by_key(|&(id, _)| id);
        }

        // Flatten into CSR form: one contiguous adjacency array plus
        // per-node offsets, and a second copy of the neighbor ids grouped
        // by relationship class (see `Topology::class_slice`).
        let total: usize = neighbors.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(total);
        let mut part = Vec::with_capacity(total);
        let mut part_off = Vec::with_capacity(4 * n + 1);
        offsets.push(0u32);
        part_off.push(0u32);
        for list in &neighbors {
            adj.extend_from_slice(list);
            offsets.push(adj.len() as u32);
            // Class partitions in the fixed order Provider, Sibling,
            // Customer, Peer; each keeps the sorted-by-id order of `list`.
            for class in [Rel::Provider, Rel::Sibling, Rel::Customer, Rel::Peer] {
                part.extend(list.iter().filter(|&&(_, r)| r == class).map(|&(y, _)| y));
                part_off.push(part.len() as u32);
            }
        }
        let topo = Topology { asns: self.asns, index: self.index, offsets, adj, part, part_off };
        if require_hierarchy {
            if let Some(node) = topo.find_provider_cycle() {
                return Err(TopologyError::ProviderCycle(topo.asn(node)));
            }
        }
        Ok(topo)
    }

    /// Validate and freeze without the hierarchy check.
    pub fn build(self) -> Result<Topology, TopologyError> {
        self.build_checked(false)
    }
}

/// An immutable, validated AS-level topology with relationship annotations.
///
/// Adjacency is stored twice, both in flat CSR (compressed sparse row)
/// form so traversals touch contiguous memory instead of chasing one heap
/// allocation per node:
///
/// * `offsets`/`adj` — node `i`'s neighbors, sorted by id, are
///   `adj[offsets[i]..offsets[i+1]]`. Backs [`Topology::neighbors`] and the
///   binary-searched [`Topology::rel`].
/// * `part_off`/`part` — the same neighbor ids grouped per node by
///   relationship class in the fixed order Provider, Sibling, Customer,
///   Peer. Each routing sweep's edge set (providers+siblings going up,
///   siblings+customers going down, peers sideways) is then one contiguous
///   slice: see [`Topology::up_neighbors`] and friends.
#[derive(Clone, Debug)]
pub struct Topology {
    asns: Vec<AsId>,
    index: HashMap<AsId, NodeId>,
    offsets: Vec<u32>,
    adj: Vec<(NodeId, Rel)>,
    part: Vec<NodeId>,
    part_off: Vec<u32>,
}

/// Index of each relationship class inside a node's `part` partition. The
/// order makes both sweep unions (`Provider+Sibling`, `Sibling+Customer`)
/// contiguous.
const CLASS_PROVIDER: usize = 0;
const CLASS_SIBLING: usize = 1;
const CLASS_CUSTOMER: usize = 2;
const CLASS_PEER: usize = 3;

impl Topology {
    /// Number of ASes.
    pub fn num_nodes(&self) -> usize {
        self.asns.len()
    }

    /// Number of inter-AS links (each unordered pair counted once).
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// All node ids, `0..num_nodes`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.asns.len() as NodeId
    }

    /// The AS number of a node.
    pub fn asn(&self, id: NodeId) -> AsId {
        self.asns[id as usize]
    }

    /// Look up the dense id of an AS number.
    pub fn node(&self, asn: AsId) -> Option<NodeId> {
        self.index.get(&asn).copied()
    }

    /// Neighbors of `id` with the relationship each neighbor is *to* `id`,
    /// sorted by neighbor id.
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, Rel)] {
        &self.adj[self.offsets[id as usize] as usize..self.offsets[id as usize + 1] as usize]
    }

    /// The relationship `b` is to `a`, if the link exists.
    pub fn rel(&self, a: NodeId, b: NodeId) -> Option<Rel> {
        let list = self.neighbors(a);
        list.binary_search_by_key(&b, |&(id, _)| id)
            .ok()
            .map(|i| list[i].1)
    }

    /// Degree (total neighbor count) of a node.
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        (self.offsets[id as usize + 1] - self.offsets[id as usize]) as usize
    }

    /// One class partition of `id`'s neighbors: classes `lo..hi` in the
    /// Provider, Sibling, Customer, Peer order.
    #[inline]
    fn class_slice(&self, id: NodeId, lo: usize, hi: usize) -> &[NodeId] {
        let base = 4 * id as usize;
        &self.part[self.part_off[base + lo] as usize..self.part_off[base + hi] as usize]
    }

    /// Neighbors a route propagates to on the way *up* the hierarchy:
    /// providers and siblings, one contiguous slice.
    #[inline]
    pub fn up_neighbors(&self, id: NodeId) -> &[NodeId] {
        self.class_slice(id, CLASS_PROVIDER, CLASS_CUSTOMER)
    }

    /// Neighbors a route propagates to on the way *down*: siblings and
    /// customers, one contiguous slice.
    #[inline]
    pub fn down_neighbors(&self, id: NodeId) -> &[NodeId] {
        self.class_slice(id, CLASS_SIBLING, CLASS_PEER)
    }

    /// Provider neighbors of `id` as a contiguous slice.
    #[inline]
    pub fn provider_neighbors(&self, id: NodeId) -> &[NodeId] {
        self.class_slice(id, CLASS_PROVIDER, CLASS_SIBLING)
    }

    /// Sibling neighbors of `id` as a contiguous slice.
    #[inline]
    pub fn sibling_neighbors(&self, id: NodeId) -> &[NodeId] {
        self.class_slice(id, CLASS_SIBLING, CLASS_CUSTOMER)
    }

    /// Customer neighbors of `id` as a contiguous slice.
    #[inline]
    pub fn customer_neighbors(&self, id: NodeId) -> &[NodeId] {
        self.class_slice(id, CLASS_CUSTOMER, CLASS_PEER)
    }

    /// Peer neighbors of `id` as a contiguous slice.
    #[inline]
    pub fn peer_neighbors(&self, id: NodeId) -> &[NodeId] {
        self.class_slice(id, CLASS_PEER, CLASS_PEER + 1)
    }

    /// Customers of `id`.
    pub fn customers(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.customer_neighbors(id).iter().copied()
    }

    /// Providers of `id`.
    pub fn providers(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.provider_neighbors(id).iter().copied()
    }

    /// Peers of `id`.
    pub fn peers(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.peer_neighbors(id).iter().copied()
    }

    /// Siblings of `id`.
    pub fn siblings(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.sibling_neighbors(id).iter().copied()
    }

    /// A *leaf node* in the sense of section 7.3.2: an AS that acts only as a
    /// customer in every one of its inter-AS agreements.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        !self.neighbors(id).is_empty()
            && self.neighbors(id).iter().all(|&(_, r)| r == Rel::Provider)
    }

    /// A *stub AS*: no customers (it provides transit to nobody). Stubs may
    /// still have peers; leaf nodes are the stricter notion.
    pub fn is_stub(&self, id: NodeId) -> bool {
        self.customers(id).next().is_none()
    }

    /// A multi-homed stub: a stub with at least two providers (section 5.4's
    /// study population).
    pub fn is_multihomed_stub(&self, id: NodeId) -> bool {
        self.is_stub(id) && self.providers(id).count() >= 2
    }

    /// Is the graph connected when edges are taken as undirected?
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1;
        while let Some(x) = stack.pop() {
            for &(y, _) in self.neighbors(x) {
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    count += 1;
                    stack.push(y);
                }
            }
        }
        count == n
    }

    /// Whether `dst` stays reachable from `src` after deleting `avoid`
    /// (ignoring all policy). This is exactly the paper's feasibility test
    /// for the avoid-AS application: "a depth-first search algorithm is run
    /// on the graph to identify those nodes" (section 5.3.1). Source routing
    /// succeeds if and only if this returns `true`.
    pub fn reachable_avoiding(&self, src: NodeId, dst: NodeId, avoid: NodeId) -> bool {
        if src == avoid || dst == avoid {
            return false;
        }
        if src == dst {
            return true;
        }
        let mut seen = vec![false; self.num_nodes()];
        seen[src as usize] = true;
        seen[avoid as usize] = true; // never enter the avoided AS
        let mut stack = vec![src];
        while let Some(x) = stack.pop() {
            for &(y, _) in self.neighbors(x) {
                if y == dst {
                    return true;
                }
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    stack.push(y);
                }
            }
        }
        false
    }

    /// Topological order of the customer->provider DAG (customers first).
    /// Sibling and peer edges are ignored. Returns `None` if the
    /// provider-customer subgraph has a cycle.
    pub fn customer_to_provider_order(&self) -> Option<Vec<NodeId>> {
        // Kahn's algorithm over edges customer -> provider.
        let n = self.num_nodes();
        let mut indeg = vec![0usize; n]; // number of customers
        for x in self.nodes() {
            indeg[x as usize] = self.customers(x).count();
        }
        let mut queue: Vec<NodeId> =
            self.nodes().filter(|&x| indeg[x as usize] == 0).collect();
        // Deterministic order.
        queue.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            order.push(x);
            for p in self.providers(x) {
                indeg[p as usize] -= 1;
                if indeg[p as usize] == 0 {
                    queue.push(p);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    fn find_provider_cycle(&self) -> Option<NodeId> {
        if self.customer_to_provider_order().is_some() {
            return None;
        }
        // Find some node on a cycle for the error message: any node whose
        // in-degree never drained.
        let n = self.num_nodes();
        let mut indeg = vec![0usize; n];
        for x in self.nodes() {
            indeg[x as usize] = self.customers(x).count();
        }
        let mut queue: Vec<NodeId> =
            self.nodes().filter(|&x| indeg[x as usize] == 0).collect();
        let mut head = 0;
        let mut drained = vec![false; n];
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            drained[x as usize] = true;
            for p in self.providers(x) {
                indeg[p as usize] -= 1;
                if indeg[p as usize] == 0 {
                    queue.push(p);
                }
            }
        }
        self.nodes().find(|&x| !drained[x as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_node() -> Topology {
        // D provides to A and B; A-B peer; B provides to C.
        let mut b = TopologyBuilder::new();
        for n in [1, 2, 3, 4] {
            b.add_as(AsId(n));
        }
        b.provider_customer(AsId(4), AsId(1));
        b.provider_customer(AsId(4), AsId(2));
        b.peering(AsId(1), AsId(2));
        b.provider_customer(AsId(2), AsId(3));
        b.build_checked(true).unwrap()
    }

    #[test]
    fn builds_and_reports_sizes() {
        let t = four_node();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_edges(), 4);
        assert!(t.is_connected());
    }

    #[test]
    fn reciprocal_relationships() {
        let t = four_node();
        let a = t.node(AsId(1)).unwrap();
        let d = t.node(AsId(4)).unwrap();
        assert_eq!(t.rel(a, d), Some(Rel::Provider)); // D is A's provider
        assert_eq!(t.rel(d, a), Some(Rel::Customer)); // A is D's customer
    }

    #[test]
    fn peer_is_symmetric() {
        let t = four_node();
        let a = t.node(AsId(1)).unwrap();
        let b = t.node(AsId(2)).unwrap();
        assert_eq!(t.rel(a, b), Some(Rel::Peer));
        assert_eq!(t.rel(b, a), Some(Rel::Peer));
    }

    #[test]
    fn missing_link_is_none() {
        let t = four_node();
        let a = t.node(AsId(1)).unwrap();
        let c = t.node(AsId(3)).unwrap();
        assert_eq!(t.rel(a, c), None);
    }

    #[test]
    fn leaf_and_stub_census() {
        let t = four_node();
        let a = t.node(AsId(1)).unwrap();
        let c = t.node(AsId(3)).unwrap();
        let d = t.node(AsId(4)).unwrap();
        assert!(t.is_stub(a)); // A has no customers (peer + provider only)
        assert!(!t.is_leaf(a)); // ... but A peers, so not a leaf
        assert!(t.is_leaf(c));
        assert!(!t.is_stub(d));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_as(AsId(1));
        b.link(AsId(1), AsId(1), Rel::Peer);
        assert_eq!(b.build().unwrap_err(), TopologyError::SelfLoop(AsId(1)));
    }

    #[test]
    fn duplicate_as_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_as(AsId(7));
        b.add_as(AsId(7));
        assert_eq!(b.build().unwrap_err(), TopologyError::DuplicateAs(AsId(7)));
    }

    #[test]
    fn conflicting_edge_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_as(AsId(1));
        b.add_as(AsId(2));
        b.peering(AsId(1), AsId(2));
        b.provider_customer(AsId(1), AsId(2));
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::ConflictingEdge(_, _)
        ));
    }

    #[test]
    fn redeclaring_same_edge_is_fine() {
        let mut b = TopologyBuilder::new();
        b.add_as(AsId(1));
        b.add_as(AsId(2));
        b.provider_customer(AsId(1), AsId(2));
        // Same fact from the other side.
        b.link(AsId(2), AsId(1), Rel::Provider);
        assert!(b.build().is_ok());
    }

    #[test]
    fn provider_cycle_detected() {
        let mut b = TopologyBuilder::new();
        for n in [1, 2, 3] {
            b.add_as(AsId(n));
        }
        b.provider_customer(AsId(1), AsId(2));
        b.provider_customer(AsId(2), AsId(3));
        b.provider_customer(AsId(3), AsId(1));
        assert!(matches!(
            b.build_checked(true).unwrap_err(),
            TopologyError::ProviderCycle(_)
        ));
        // Without the hierarchy requirement the same graph is accepted.
        let mut b = TopologyBuilder::new();
        for n in [1, 2, 3] {
            b.add_as(AsId(n));
        }
        b.provider_customer(AsId(1), AsId(2));
        b.provider_customer(AsId(2), AsId(3));
        b.provider_customer(AsId(3), AsId(1));
        assert!(b.build().is_ok());
    }

    #[test]
    fn try_link_reports_outcomes_without_latching() {
        let mut b = TopologyBuilder::new();
        assert_eq!(b.try_link(AsId(1), AsId(2), Rel::Customer), LinkOutcome::Added);
        // Same fact, same side.
        assert_eq!(b.try_link(AsId(1), AsId(2), Rel::Customer), LinkOutcome::Duplicate);
        // Same fact, other side (normalized before comparison).
        assert_eq!(b.try_link(AsId(2), AsId(1), Rel::Provider), LinkOutcome::Duplicate);
        // Different fact for the same pair.
        assert_eq!(b.try_link(AsId(1), AsId(2), Rel::Peer), LinkOutcome::Conflict);
        assert_eq!(b.try_link(AsId(3), AsId(3), Rel::Peer), LinkOutcome::SelfLoop);
        // None of the above latched an error: the builder still builds,
        // with only the one recorded edge (and interned endpoints).
        let t = b.build().unwrap();
        assert_eq!(t.num_edges(), 1);
        assert_eq!(t.num_nodes(), 2, "self-loop endpoints are not interned");
        let (a, c) = (t.node(AsId(1)).unwrap(), t.node(AsId(2)).unwrap());
        assert_eq!(t.rel(a, c), Some(Rel::Customer));
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_as(AsId(1));
        b.peering(AsId(1), AsId(99));
        assert_eq!(b.build().unwrap_err(), TopologyError::UnknownAs(AsId(99)));
    }

    #[test]
    fn reachability_avoiding_cut_node() {
        // Chain 1 - 2 - 3: node 2 separates 1 from 3.
        let mut b = TopologyBuilder::new();
        for n in [1, 2, 3] {
            b.add_as(AsId(n));
        }
        b.provider_customer(AsId(2), AsId(1));
        b.provider_customer(AsId(2), AsId(3));
        let t = b.build().unwrap();
        let (n1, n2, n3) = (
            t.node(AsId(1)).unwrap(),
            t.node(AsId(2)).unwrap(),
            t.node(AsId(3)).unwrap(),
        );
        assert!(!t.reachable_avoiding(n1, n3, n2));
        assert!(t.reachable_avoiding(n1, n2, n3));
    }

    #[test]
    fn reachability_avoiding_with_detour() {
        let t = four_node();
        let a = t.node(AsId(1)).unwrap();
        let b = t.node(AsId(2)).unwrap();
        let d = t.node(AsId(4)).unwrap();
        // A can reach B either directly (peer) or via D.
        assert!(t.reachable_avoiding(a, b, d));
    }

    #[test]
    fn csr_partitions_cover_all_neighbors() {
        let t = four_node();
        for x in t.nodes() {
            let mut from_classes: Vec<NodeId> = t
                .provider_neighbors(x)
                .iter()
                .chain(t.sibling_neighbors(x))
                .chain(t.customer_neighbors(x))
                .chain(t.peer_neighbors(x))
                .copied()
                .collect();
            from_classes.sort_unstable();
            let all: Vec<NodeId> = t.neighbors(x).iter().map(|&(y, _)| y).collect();
            assert_eq!(from_classes, all, "partitions partition the adjacency");
            assert_eq!(
                t.up_neighbors(x).len(),
                t.provider_neighbors(x).len() + t.sibling_neighbors(x).len()
            );
            assert_eq!(
                t.down_neighbors(x).len(),
                t.sibling_neighbors(x).len() + t.customer_neighbors(x).len()
            );
            for &y in t.up_neighbors(x) {
                assert!(matches!(t.rel(x, y), Some(Rel::Provider | Rel::Sibling)));
            }
            for &y in t.down_neighbors(x) {
                assert!(matches!(t.rel(x, y), Some(Rel::Sibling | Rel::Customer)));
            }
            assert_eq!(t.degree(x), t.neighbors(x).len());
        }
    }

    #[test]
    fn topological_order_respects_hierarchy() {
        let t = four_node();
        let order = t.customer_to_provider_order().unwrap();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &x)| (x, i)).collect();
        // Every customer precedes its provider.
        for x in t.nodes() {
            for p in t.providers(x) {
                assert!(pos[&x] < pos[&p], "customer must precede provider");
            }
        }
    }
}
