//! Deterministic synthetic-Internet generator.
//!
//! The paper evaluates MIRO on four AS-level topologies derived from
//! RouteViews BGP tables (Table 5.1). Those snapshots are not
//! redistributable, so — per the substitution rule in `DESIGN.md` — this
//! module generates seeded synthetic topologies that reproduce the
//! *properties the paper says its conclusions rest on* (section 5.1): the
//! power-law degree distribution with a small clique-like tier-1 core, the
//! ~90/8/1.5% split between provider-customer / peering / sibling links,
//! mean AS-path lengths around four hops, and a majority-stub population
//! with ~60% multi-homing.
//!
//! The construction is the classic three-tier model: a tier-1 peering
//! clique, transit tiers attached by preferential attachment (which yields
//! the heavy-tailed degree distribution), and a large stub fringe.

use crate::graph::{AsId, NodeId, Topology, TopologyBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The four dataset presets of Table 5.1, plus a RouteViews-scale preset.
///
/// `scale = 1.0` matches the paper's node counts; the default evaluation
/// scale of `0.1` keeps experiments laptop-sized while preserving the
/// degree-distribution shape and relationship mix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DatasetPreset {
    /// "Gao 2000": 8829 nodes, 17793 edges (16531 P/C, 1031 peer, 231 sibling).
    Gao2000,
    /// "Gao 2003": 16130 nodes, 34231 edges (30649 P/C, 3062 peer, 520 sibling).
    Gao2003,
    /// "Gao 2005": 20930 nodes, 44998 edges (40558 P/C, 3753 peer, 687 sibling).
    Gao2005,
    /// "Agarwal 2004": 16921 nodes, 38282 edges (34552 P/C, 3553 peer, 177 sibling).
    Agarwal2004,
    /// Full-Internet scale, calibrated to a present-day RouteViews/CAIDA
    /// snapshot rather than Table 5.1: 70000 nodes, ~349k edges with the
    /// same ~90/8/1.5% P/C / peering / sibling split and tier shape. Not
    /// part of [`DatasetPreset::ALL`] — the Table 5.1 experiments do not
    /// use it; `miro ingest` substitutes and `bench-solver internet`
    /// measures at this size.
    InternetScale,
}

impl DatasetPreset {
    /// All presets, in the order Table 5.1 lists them.
    pub const ALL: [DatasetPreset; 4] = [
        DatasetPreset::Gao2000,
        DatasetPreset::Gao2003,
        DatasetPreset::Gao2005,
        DatasetPreset::Agarwal2004,
    ];

    /// Dataset name as printed in Table 5.1.
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::Gao2000 => "Gao 2000",
            DatasetPreset::Gao2003 => "Gao 2003",
            DatasetPreset::Gao2005 => "Gao 2005",
            DatasetPreset::Agarwal2004 => "Agarwal 2004",
            DatasetPreset::InternetScale => "Internet 70k",
        }
    }

    /// Calibration targets: (nodes, P/C links, peering links, sibling
    /// links). For the four Table 5.1 presets these are the paper's
    /// counts; for [`DatasetPreset::InternetScale`] they approximate a
    /// full RouteViews-derived snapshot with the same relationship mix.
    pub fn paper_counts(self) -> (usize, usize, usize, usize) {
        match self {
            DatasetPreset::Gao2000 => (8829, 16531, 1031, 231),
            DatasetPreset::Gao2003 => (16130, 30649, 3062, 520),
            DatasetPreset::Gao2005 => (20930, 40558, 3753, 687),
            DatasetPreset::Agarwal2004 => (16921, 34552, 3553, 177),
            DatasetPreset::InternetScale => (70000, 315900, 28000, 5250),
        }
    }

    /// Generation parameters scaled by `scale` (1.0 = paper size).
    pub fn params(self, scale: f64, seed: u64) -> GenParams {
        let (nodes, pc, peer, sib) = self.paper_counts();
        let s = |v: usize| ((v as f64 * scale).round() as usize).max(4);
        GenParams {
            name: self.name().to_string(),
            num_nodes: s(nodes),
            target_pc_links: s(pc),
            target_peer_links: s(peer).max(8),
            target_sibling_links: (sib as f64 * scale).round() as usize,
            // The Agarwal inference is known to label more links as peering
            // between mid-tier ASes; emulate by spreading peers lower.
            lowtier_peering: matches!(self, DatasetPreset::Agarwal2004),
            seed,
        }
    }
}

/// Parameters of one synthetic topology.
///
/// ```
/// use miro_topology::gen::DatasetPreset;
///
/// // The paper's "Gao 2005" dataset at 2% scale, fully deterministic:
/// let topo = DatasetPreset::Gao2005.params(0.02, 42).generate();
/// assert_eq!(topo.num_nodes(), 419); // 20930 * 0.02, rounded
/// assert!(topo.is_connected());
/// // Same seed, same graph:
/// let again = DatasetPreset::Gao2005.params(0.02, 42).generate();
/// assert_eq!(topo.num_edges(), again.num_edges());
/// ```
#[derive(Clone, Debug)]
pub struct GenParams {
    /// Dataset label (shows up in Table 5.1 output).
    pub name: String,
    /// Total AS count.
    pub num_nodes: usize,
    /// Target number of provider-customer links.
    pub target_pc_links: usize,
    /// Target number of peer-peer links.
    pub target_peer_links: usize,
    /// Target number of sibling links.
    pub target_sibling_links: usize,
    /// Spread peering links across lower tiers too (Agarwal-style).
    pub lowtier_peering: bool,
    /// RNG seed; equal seeds produce identical topologies.
    pub seed: u64,
}

impl GenParams {
    /// A small, quick topology for unit tests and examples.
    pub fn tiny(seed: u64) -> GenParams {
        GenParams {
            name: "tiny".to_string(),
            num_nodes: 120,
            target_pc_links: 210,
            target_peer_links: 18,
            target_sibling_links: 4,
            lowtier_peering: false,
            seed,
        }
    }

    /// Generate the topology. Deterministic in `self` (including seed).
    ///
    /// Construction:
    /// 1. a tier-1 core (~0.15% of nodes, at least 5) meshed with peer links;
    /// 2. a tier-2 of regional transit ASes (~7%) multi-homed into tier 1 by
    ///    preferential attachment, with peer links among themselves;
    /// 3. a tier-3 of small transit ASes (~23%) homed into tier 2;
    /// 4. a stub fringe (the remainder) homed into tiers 2-3, ~60%
    ///    multi-homed (matching the measurement cited in section 1.2);
    /// 5. sibling links between randomly chosen same-tier pairs.
    ///
    /// The provider side of every attachment is drawn degree-proportionally
    /// (preferential attachment), which produces the heavy-tailed degree
    /// distribution of Figure 5.1.
    pub fn generate(&self) -> Topology {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x4d49_524f); // "MIRO"
        let n = self.num_nodes;
        let n_t1 = ((n as f64 * 0.0015).round() as usize).clamp(3, 16);
        let n_t2 = ((n as f64 * 0.07).round() as usize).max(4);
        let n_t3 = ((n as f64 * 0.23).round() as usize).max(4);
        let n_stub = n.saturating_sub(n_t1 + n_t2 + n_t3);
        debug_assert!(n_stub > 0 || n <= n_t1 + n_t2 + n_t3);

        let mut b = TopologyBuilder::new();
        // AS numbers: deterministic but non-contiguous, so code cannot
        // accidentally conflate AsId and NodeId.
        let asn_of = |i: usize| AsId(100 + 3 * i as u32);
        for i in 0..n {
            b.add_as(asn_of(i));
        }
        let tier1: Vec<usize> = (0..n_t1).collect();
        let tier2: Vec<usize> = (n_t1..n_t1 + n_t2).collect();
        let tier3: Vec<usize> = (n_t1 + n_t2..n_t1 + n_t2 + n_t3).collect();
        let stubs: Vec<usize> = (n_t1 + n_t2 + n_t3..n).collect();

        // Degree counter driving preferential attachment.
        let mut deg = vec![1usize; n]; // +1 smoothing so new nodes are pickable
        let mut pc_links = 0usize;
        let mut peer_links = 0usize;
        let mut edges: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        let add_pc = |b: &mut TopologyBuilder,
                          deg: &mut Vec<usize>,
                          edges: &mut std::collections::HashSet<(usize, usize)>,
                          provider: usize,
                          customer: usize|
         -> bool {
            let key = (provider.min(customer), provider.max(customer));
            if provider == customer || !edges.insert(key) {
                return false;
            }
            b.provider_customer(asn_of(provider), asn_of(customer));
            deg[provider] += 1;
            deg[customer] += 1;
            true
        };
        let add_peer = |b: &mut TopologyBuilder,
                            deg: &mut Vec<usize>,
                            edges: &mut std::collections::HashSet<(usize, usize)>,
                            x: usize,
                            y: usize|
         -> bool {
            let key = (x.min(y), x.max(y));
            if x == y || !edges.insert(key) {
                return false;
            }
            b.peering(asn_of(x), asn_of(y));
            deg[x] += 1;
            deg[y] += 1;
            true
        };

        // 1. Tier-1 full peering mesh.
        for i in 0..tier1.len() {
            for j in i + 1..tier1.len() {
                if add_peer(&mut b, &mut deg, &mut edges, tier1[i], tier1[j]) {
                    peer_links += 1;
                }
            }
        }

        // 2. Tier-2: 2-4 tier-1 providers each.
        let mut pool = PrefPool::new(&tier1, &deg, n);
        for &x in &tier2 {
            let k = rng.gen_range(2..=4usize.min(tier1.len()));
            for _ in 0..k {
                let p = pool.pick(&mut rng);
                if add_pc(&mut b, &mut deg, &mut edges, p, x) {
                    pc_links += 1;
                    pool.bump(p);
                    pool.bump(x);
                }
            }
        }

        // 3. Tier-3: 1-3 providers from tier 2 (preferential).
        let mut pool = PrefPool::new(&tier2, &deg, n);
        for &x in &tier3 {
            let k = rng.gen_range(1..=3usize);
            for _ in 0..k {
                let p = pool.pick(&mut rng);
                if add_pc(&mut b, &mut deg, &mut edges, p, x) {
                    pc_links += 1;
                    pool.bump(p);
                    pool.bump(x);
                }
            }
        }

        // 4. Stubs: ~60% multi-homed, providers from tiers 2-3.
        let transit_pool: Vec<usize> =
            tier2.iter().chain(tier3.iter()).copied().collect();
        let mut pool = PrefPool::new(&transit_pool, &deg, n);
        for &x in &stubs {
            let k = if rng.gen_bool(0.6) { rng.gen_range(2..=3usize) } else { 1 };
            for _ in 0..k {
                let p = pool.pick(&mut rng);
                if add_pc(&mut b, &mut deg, &mut edges, p, x) {
                    pc_links += 1;
                    pool.bump(p);
                    pool.bump(x);
                }
            }
        }

        // Top up provider-customer links toward the target: extra
        // multi-homing for random stubs / tier-3 nodes. (Same pool as
        // phase 4, carried over with its degree counts.)
        let fringe: Vec<usize> = tier3.iter().chain(stubs.iter()).copied().collect();
        let mut guard = 0;
        while pc_links < self.target_pc_links && guard < self.target_pc_links * 20 {
            guard += 1;
            let x = *fringe.choose(&mut rng).expect("fringe non-empty");
            let p = pool.pick(&mut rng);
            // Keep the hierarchy: provider must be in a strictly higher tier
            // slot (lower index) than the customer.
            if p < x && add_pc(&mut b, &mut deg, &mut edges, p, x) {
                pc_links += 1;
                pool.bump(p);
                pool.bump(x);
            }
        }

        // 5. Peering links among transit tiers (and, Agarwal-style, the
        // upper stub fringe) until the target is met.
        let peer_pool: Vec<usize> = if self.lowtier_peering {
            tier2
                .iter()
                .chain(tier3.iter())
                .chain(stubs.iter().take(stubs.len() / 4))
                .copied()
                .collect()
        } else {
            tier2.iter().chain(tier3.iter()).copied().collect()
        };
        let mut pool = PrefPool::new(&peer_pool, &deg, n);
        let mut guard = 0;
        while peer_links < self.target_peer_links && guard < self.target_peer_links * 40 {
            guard += 1;
            let x = pool.pick(&mut rng);
            let y = pool.pick(&mut rng);
            if add_peer(&mut b, &mut deg, &mut edges, x, y) {
                peer_links += 1;
                pool.bump(x);
                pool.bump(y);
            }
        }

        // 6. Sibling links between same-tier pairs.
        let mut sib = 0;
        let mut guard = 0;
        let tiers: [&[usize]; 3] = [&tier2, &tier3, &stubs];
        while sib < self.target_sibling_links && guard < self.target_sibling_links * 50 + 50 {
            guard += 1;
            let tier = tiers[rng.gen_range(0..tiers.len())];
            if tier.len() < 2 {
                continue;
            }
            let x = *tier.choose(&mut rng).expect("tier non-empty");
            let y = *tier.choose(&mut rng).expect("tier non-empty");
            let key = (x.min(y), x.max(y));
            if x != y && edges.insert(key) {
                b.sibling(asn_of(x), asn_of(y));
                deg[x] += 1;
                deg[y] += 1;
                sib += 1;
            }
        }

        b.build_checked(true)
            .expect("generator must produce a valid hierarchical topology")
    }
}

/// Degree-proportional sampler over one fixed candidate pool.
///
/// A Fenwick (binary-indexed) tree over the pool members' degrees makes
/// each preferential-attachment pick O(log |pool|) where the old linear
/// walk was O(|pool|) — the difference between ~1 s and ~20 min of
/// generation at the [`DatasetPreset::InternetScale`] preset (~350k picks
/// over a 21k-node transit pool). The draw is bit-for-bit identical to
/// the walk it replaced: one `gen_range(0..total)` call, then the first
/// pool position whose cumulative degree exceeds the draw, so seeds keep
/// producing the same graphs as before the change.
struct PrefPool {
    /// Pool members, in pick-priority order.
    members: Vec<usize>,
    /// `pos[node] + 1` = Fenwick index of the node, or `u32::MAX` if the
    /// node is not in this pool (degree bumps for non-members are no-ops).
    pos: Vec<u32>,
    /// Fenwick tree over member degrees (1-based).
    tree: Vec<usize>,
    total: usize,
}

impl PrefPool {
    /// Snapshot the current degrees of `pool`'s members. Later increments
    /// must be reported through [`PrefPool::bump`].
    fn new(pool: &[usize], deg: &[usize], n: usize) -> PrefPool {
        let mut pos = vec![u32::MAX; n];
        let mut tree = vec![0usize; pool.len() + 1];
        let mut total = 0;
        for (i, &node) in pool.iter().enumerate() {
            pos[node] = i as u32;
            tree[i + 1] = deg[node];
            total += deg[node];
        }
        // In-place Fenwick construction.
        for i in 1..tree.len() {
            let j = i + (i & i.wrapping_neg());
            if j < tree.len() {
                tree[j] += tree[i];
            }
        }
        PrefPool { members: pool.to_vec(), pos, tree, total }
    }

    /// Record a +1 degree change; no-op if `node` is not a member.
    fn bump(&mut self, node: usize) {
        let p = self.pos[node];
        if p == u32::MAX {
            return;
        }
        let mut i = p as usize + 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
        self.total += 1;
    }

    /// Draw a member with probability proportional to its degree (the
    /// last member if all degrees are zero, mirroring the linear walk).
    fn pick(&self, rng: &mut StdRng) -> usize {
        let mut t = rng.gen_range(0..self.total.max(1));
        let len = self.members.len();
        let mut idx = 0usize; // number of members whose cumulative sum <= t
        let mut step = len.next_power_of_two();
        while step > 0 {
            let next = idx + step;
            if next <= len && self.tree[next] <= t {
                t -= self.tree[next];
                idx = next;
            }
            step >>= 1;
        }
        self.members
            .get(idx)
            .copied()
            .unwrap_or_else(|| *self.members.last().expect("pool must be non-empty"))
    }
}

/// Convenience: generate a preset dataset at the given scale.
pub fn dataset(preset: DatasetPreset, scale: f64, seed: u64) -> Topology {
    preset.params(scale, seed).generate()
}

/// A hand-built six-AS topology matching Figure 1.1 / Figure 2.1 of the
/// paper (ASes A-F), used by examples and tests.
///
/// Relationships are chosen so the default BGP routes match the figure:
/// A and D are customers of B/D's providers... concretely:
/// F is a customer of C and E; E is a customer of B and D and peers with C;
/// B and D are customers of A's providers — we model A as customer of B and
/// D, and B peers with C.
pub fn figure_1_1() -> (Topology, [NodeId; 6]) {
    let mut b = TopologyBuilder::new();
    let ids = [
        AsId(1), // A
        AsId(2), // B
        AsId(3), // C
        AsId(4), // D
        AsId(5), // E
        AsId(6), // F
    ];
    for a in ids {
        b.add_as(a);
    }
    b.provider_customer(ids[1], ids[0]); // B provides A
    b.provider_customer(ids[3], ids[0]); // D provides A
    b.provider_customer(ids[1], ids[4]); // B provides E
    b.provider_customer(ids[3], ids[4]); // D provides E
    b.peering(ids[1], ids[2]); // B - C peer
    b.provider_customer(ids[4], ids[5]); // E provides F
    b.provider_customer(ids[2], ids[5]); // C provides F
    b.peering(ids[2], ids[4]); // C - E peer
    let t = b.build_checked(true).expect("figure 1.1 topology is valid");
    let nodes = ids.map(|a| t.node(a).expect("node interned"));
    (t, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Rel;

    #[test]
    fn tiny_is_valid_and_connected() {
        let t = GenParams::tiny(7).generate();
        assert_eq!(t.num_nodes(), 120);
        assert!(t.is_connected(), "generated graph must be connected");
        assert!(t.customer_to_provider_order().is_some());
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = GenParams::tiny(42).generate();
        let b = GenParams::tiny(42).generate();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for x in a.nodes() {
            assert_eq!(a.neighbors(x), b.neighbors(x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = GenParams::tiny(1).generate();
        let b = GenParams::tiny(2).generate();
        let same = a.nodes().all(|x| a.neighbors(x) == b.neighbors(x));
        assert!(!same, "different seeds should give different graphs");
    }

    #[test]
    fn presets_scale_counts() {
        let p = DatasetPreset::Gao2005.params(0.05, 1);
        assert_eq!(p.num_nodes, (20930.0_f64 * 0.05).round() as usize);
        let t = p.generate();
        assert_eq!(t.num_nodes(), p.num_nodes);
        // Edge total should be within 20% of the scaled paper total.
        let target = p.target_pc_links + p.target_peer_links + p.target_sibling_links;
        let got = t.num_edges();
        assert!(
            (got as f64) > 0.75 * target as f64 && (got as f64) < 1.25 * target as f64,
            "edges {got} vs target {target}"
        );
    }

    #[test]
    fn majority_are_stubs_and_many_multihomed() {
        let t = dataset(DatasetPreset::Gao2005, 0.05, 3);
        let stubs = t.nodes().filter(|&x| t.is_stub(x)).count();
        assert!(
            stubs * 2 > t.num_nodes(),
            "most ASes must be stubs ({stubs}/{})",
            t.num_nodes()
        );
        let multi = t.nodes().filter(|&x| t.is_multihomed_stub(x)).count();
        assert!(
            multi as f64 > 0.35 * stubs as f64,
            "multi-homing should be common: {multi}/{stubs}"
        );
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let t = dataset(DatasetPreset::Gao2005, 0.05, 3);
        let mut degs: Vec<usize> = t.nodes().map(|x| t.degree(x)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let max = degs[0];
        let median = degs[degs.len() / 2];
        assert!(
            max > 10 * median.max(1),
            "tier-1 degree ({max}) should dwarf the median ({median})"
        );
    }

    #[test]
    fn pref_pool_matches_linear_walk() {
        // The retired O(|pool|) walk, kept as the oracle.
        fn linear(t: usize, pool: &[usize], deg: &[usize]) -> usize {
            let mut t = t;
            for &i in pool {
                if t < deg[i] {
                    return i;
                }
                t -= deg[i];
            }
            *pool.last().unwrap()
        }
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..200 {
            let n = 3 + (trial % 37);
            let pool: Vec<usize> = (0..n).collect();
            let mut deg: Vec<usize> = (0..n).map(|_| rng.gen_range(0..5usize)).collect();
            let mut pp = PrefPool::new(&pool, &deg, n);
            for _ in 0..20 {
                let total: usize = pool.iter().map(|&i| deg[i]).sum();
                assert_eq!(pp.total, total);
                let t = rng.gen_range(0..total.max(1));
                // Drive both from the same draw (pick() consumes the rng,
                // so feed it a clone).
                let mut probe = StdRng::seed_from_u64(trial as u64 * 31 + t as u64);
                let picked = PrefPool::pick(&pp, &mut probe);
                let mut replay = StdRng::seed_from_u64(trial as u64 * 31 + t as u64);
                let drawn = replay.gen_range(0..total.max(1));
                assert_eq!(picked, linear(drawn, &pool, &deg), "n={n} t={drawn}");
                // Mutate a random member and keep the tree in sync.
                let bumped = rng.gen_range(0..n);
                deg[bumped] += 1;
                pp.bump(bumped);
            }
        }
    }

    #[test]
    fn internet_scale_preset_is_valid_when_scaled_down() {
        // 1% of the full preset: 700 nodes, ~3.5k edges — the full 70k
        // graph is exercised by `bench-solver internet`, not unit tests.
        let p = DatasetPreset::InternetScale.params(0.01, 11);
        assert_eq!(p.num_nodes, 700);
        let t = p.generate();
        assert!(t.is_connected());
        assert!(t.customer_to_provider_order().is_some());
        let census = crate::stats::link_census(&t);
        assert!(census.pc_links > 10 * census.peering_links.max(1) / 2, "P/C dominates");
        assert!(census.stubs * 2 > census.nodes, "stub majority");
    }

    #[test]
    fn internet_scale_is_not_in_table_5_1() {
        assert!(!DatasetPreset::ALL.contains(&DatasetPreset::InternetScale));
        assert_eq!(DatasetPreset::InternetScale.name(), "Internet 70k");
        let (nodes, pc, peer, sib) = DatasetPreset::InternetScale.paper_counts();
        assert_eq!(nodes, 70000);
        let edges = pc + peer + sib;
        assert!((340_000..360_000).contains(&edges), "~350k edges: {edges}");
    }

    #[test]
    fn figure_1_1_shape() {
        let (t, [a, b, c, d, e, f]) = figure_1_1();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.rel(a, b), Some(Rel::Provider));
        assert_eq!(t.rel(b, c), Some(Rel::Peer));
        assert_eq!(t.rel(e, f), Some(Rel::Customer));
        assert_eq!(t.rel(c, f), Some(Rel::Customer));
        assert!(t.reachable_avoiding(a, f, e), "A can avoid E via B-C-F");
        let _ = d;
    }
}
