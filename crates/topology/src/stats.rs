//! Topology statistics backing Table 5.1 and Figure 5.1.

use crate::graph::{NodeId, Rel, Topology};

/// Per-dataset attribute row, as in Table 5.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkCensus {
    /// Number of ASes.
    pub nodes: usize,
    /// Total inter-AS links.
    pub edges: usize,
    /// Provider-customer links.
    pub pc_links: usize,
    /// Peer-peer links.
    pub peering_links: usize,
    /// Sibling links.
    pub sibling_links: usize,
    /// Stub ASes (no customers).
    pub stubs: usize,
    /// Multi-homed stubs (stub with >= 2 providers) — the section 5.4 cohort.
    pub multihomed_stubs: usize,
    /// Leaf ASes (only providers; section 7.3.2's notion).
    pub leaves: usize,
}

/// Count nodes and links by class.
pub fn link_census(topo: &Topology) -> LinkCensus {
    let mut pc = 0;
    let mut peer = 0;
    let mut sib = 0;
    for x in topo.nodes() {
        for &(y, rel) in topo.neighbors(x) {
            if y < x {
                continue; // count each link once
            }
            match rel {
                Rel::Customer | Rel::Provider => pc += 1,
                Rel::Peer => peer += 1,
                Rel::Sibling => sib += 1,
            }
        }
    }
    LinkCensus {
        nodes: topo.num_nodes(),
        edges: topo.num_edges(),
        pc_links: pc,
        peering_links: peer,
        sibling_links: sib,
        stubs: topo.nodes().filter(|&x| topo.is_stub(x)).count(),
        multihomed_stubs: topo.nodes().filter(|&x| topo.is_multihomed_stub(x)).count(),
        leaves: topo.nodes().filter(|&x| topo.is_leaf(x)).count(),
    }
}

/// One point of the Figure 5.1 curve: `count` nodes have degree >= `degree`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegreePoint {
    pub degree: usize,
    /// Number of nodes with at least this degree.
    pub count: usize,
    /// Same as a fraction of all nodes.
    pub fraction_permille: u32,
}

/// Complementary cumulative degree distribution (Figure 5.1): for each
/// distinct degree value, how many nodes have at least that degree.
pub fn degree_ccdf(topo: &Topology) -> Vec<DegreePoint> {
    let n = topo.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut degs: Vec<usize> = topo.nodes().map(|x| topo.degree(x)).collect();
    degs.sort_unstable();
    let mut out = Vec::new();
    let mut i = 0;
    while i < degs.len() {
        let d = degs[i];
        let count = degs.len() - i; // nodes with degree >= d
        out.push(DegreePoint {
            degree: d,
            count,
            fraction_permille: ((count * 1000) / n) as u32,
        });
        while i < degs.len() && degs[i] == d {
            i += 1;
        }
    }
    out
}

/// Nodes sorted by decreasing degree (ties broken by ascending AS number,
/// for determinism). This is the adoption order used by the incremental-
/// deployment experiment (section 5.3.3: "in order of decreasing node degree
/// to capture the likely scenario where the nodes with higher degree adopt
/// MIRO first").
pub fn nodes_by_degree_desc(topo: &Topology) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = topo.nodes().collect();
    v.sort_by_key(|&x| (std::cmp::Reverse(topo.degree(x)), topo.asn(x)));
    v
}

/// The `k` highest-degree nodes ("power node" candidates / early adopters).
pub fn top_degree_nodes(topo: &Topology, k: usize) -> Vec<NodeId> {
    let mut v = nodes_by_degree_desc(topo);
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenParams;
    use crate::graph::{AsId, TopologyBuilder};

    #[test]
    fn census_matches_construction() {
        let mut b = TopologyBuilder::new();
        for n in 1..=5 {
            b.add_as(AsId(n));
        }
        b.provider_customer(AsId(1), AsId(2));
        b.provider_customer(AsId(1), AsId(3));
        b.peering(AsId(2), AsId(3));
        b.sibling(AsId(4), AsId(5));
        b.provider_customer(AsId(2), AsId(4));
        let t = b.build().unwrap();
        let c = link_census(&t);
        assert_eq!(c.nodes, 5);
        assert_eq!(c.edges, 5);
        assert_eq!(c.pc_links, 3);
        assert_eq!(c.peering_links, 1);
        assert_eq!(c.sibling_links, 1);
        assert_eq!(c.pc_links + c.peering_links + c.sibling_links, c.edges);
    }

    #[test]
    fn ccdf_is_monotone_and_starts_at_all_nodes() {
        let t = GenParams::tiny(5).generate();
        let ccdf = degree_ccdf(&t);
        assert_eq!(ccdf[0].count, t.num_nodes());
        for w in ccdf.windows(2) {
            assert!(w[0].degree < w[1].degree);
            assert!(w[0].count > w[1].count);
        }
        // The highest-degree point covers at least one node.
        assert!(ccdf.last().unwrap().count >= 1);
    }

    #[test]
    fn degree_ordering_is_deterministic_and_sorted() {
        let t = GenParams::tiny(5).generate();
        let order = nodes_by_degree_desc(&t);
        assert_eq!(order.len(), t.num_nodes());
        for w in order.windows(2) {
            assert!(t.degree(w[0]) >= t.degree(w[1]));
        }
        assert_eq!(order, nodes_by_degree_desc(&t));
        assert_eq!(top_degree_nodes(&t, 3), order[..3].to_vec());
    }

    #[test]
    fn empty_topology_ccdf() {
        let t = TopologyBuilder::new().build().unwrap();
        assert!(degree_ccdf(&t).is_empty());
    }
}
