//! AS-level topology substrate for the MIRO reproduction.
//!
//! The Internet, at the granularity MIRO operates on, is a graph of
//! *Autonomous Systems* (ASes) whose edges are annotated with the business
//! relationship between the two endpoints: customer-provider, peer-peer, or
//! sibling-sibling (section 2.2.1 of the dissertation). Everything in the
//! evaluation chapter is driven by such an annotated graph, which the paper
//! derives from RouteViews BGP tables via the inference algorithms of Gao
//! (2001) and Subramanian/Agarwal et al. (2002).
//!
//! This crate provides:
//!
//! * [`Topology`] - a compact, immutable, validated AS graph with per-edge
//!   relationship annotations ([`graph`]).
//! * [`gen`] - a deterministic, seeded synthetic-Internet generator
//!   calibrated to the four datasets of Table 5.1 (our substitution for the
//!   proprietary RouteViews snapshots; see `DESIGN.md`).
//! * [`infer`] - from-scratch implementations of the Gao and
//!   Agarwal/Subramanian relationship-inference algorithms, so the paper's
//!   full measurement pipeline (paths -> inferred relationships -> policy
//!   evaluation) can be exercised end to end.
//! * [`stats`] - degree distributions (Figure 5.1), link-type counts
//!   (Table 5.1), stub/multi-homing census (sections 1.2 and 5.4).
//! * [`path`] - valley-free path machinery shared by the BGP and MIRO
//!   layers.
//! * [`io`] - plain-text and JSON (de)serialization of annotated graphs.
//!
//! Design follows the smoltcp house style: simple robust data structures,
//! no clever type-level tricks, dense integer indices on the hot paths, and
//! documentation of what is *not* modeled (router-level topology lives in
//! `miro-dataplane`, not here).

pub mod gen;
pub mod graph;
pub mod infer;
pub mod io;
pub mod path;
pub mod stats;

pub use gen::{DatasetPreset, GenParams};
pub use graph::{AsId, LinkOutcome, NodeId, Rel, Topology, TopologyBuilder, TopologyError};
pub use path::{classify_route, is_valley_free, RouteClass};
