//! (De)serialization of annotated AS graphs.
//!
//! Three formats:
//!
//! * a line-oriented text format in the spirit of the CAIDA AS-relationship
//!   files the measurement community uses (`<asn> <asn> <tag>` where the tag
//!   says what the *second* AS is to the first),
//! * the real CAIDA/RouteViews `as1|as2|rel` format, via the allocation-free
//!   streaming loader in [`stream`] (which also reads the format above), and
//! * JSON via `serde`, used by the evaluation harness to cache datasets.
//!
//! [`from_text`] here is the strict whole-string parser: any self-loop or
//! duplicate is a hard error, which is what generated fixtures deserve.
//! [`stream::parse`] is the lenient, `BufRead`-based ingest path for
//! multi-megabyte real-world snapshots; see the module docs for how the
//! two differ.

pub mod stream;

use crate::graph::{AsId, Rel, Topology, TopologyBuilder, TopologyError};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Errors from parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Line did not have three whitespace-separated fields.
    BadLine(usize),
    /// An AS number field was not a number.
    BadAsn(usize),
    /// Unknown relationship tag.
    BadTag(usize, char),
    /// The resulting edge set failed topology validation.
    Invalid(TopologyError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine(l) => write!(f, "line {l}: expected `<asn> <asn> <tag>`"),
            ParseError::BadAsn(l) => write!(f, "line {l}: bad AS number"),
            ParseError::BadTag(l, c) => write!(f, "line {l}: unknown relationship tag {c:?}"),
            ParseError::Invalid(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize to the text format. Each link appears once, from the
/// lower-numbered AS's perspective; lines are sorted, so equal topologies
/// serialize identically.
pub fn to_text(topo: &Topology) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(topo.num_edges());
    for x in topo.nodes() {
        for &(y, rel) in topo.neighbors(x) {
            let (ax, ay) = (topo.asn(x), topo.asn(y));
            if ax < ay {
                lines.push(format!("{} {} {}", ax, ay, rel.tag()));
            }
        }
    }
    lines.sort();
    let mut out = String::new();
    for l in lines {
        let _ = writeln!(out, "{l}");
    }
    out
}

/// Parse the text format. Blank lines and `#` comments are ignored.
pub fn from_text(text: &str) -> Result<Topology, ParseError> {
    let mut b = TopologyBuilder::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(a), Some(c), Some(t)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ParseError::BadLine(lineno));
        };
        if parts.next().is_some() {
            return Err(ParseError::BadLine(lineno));
        }
        let a: u32 = a.parse().map_err(|_| ParseError::BadAsn(lineno))?;
        let c: u32 = c.parse().map_err(|_| ParseError::BadAsn(lineno))?;
        let tag = t.chars().next().filter(|_| t.len() == 1);
        let rel = tag
            .and_then(Rel::from_tag)
            .ok_or(ParseError::BadTag(lineno, t.chars().next().unwrap_or('?')))?;
        b.intern_as(AsId(a));
        b.intern_as(AsId(c));
        b.link(AsId(a), AsId(c), rel);
    }
    b.build().map_err(ParseError::Invalid)
}

/// Serde-friendly mirror of a topology.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Eq)]
pub struct TopologyDoc {
    /// `[a, b, tag]` triples; tag as in [`Rel::tag`].
    pub links: Vec<(u32, u32, char)>,
    /// ASes with no links (so empty graphs round-trip).
    pub isolated: Vec<u32>,
}

impl TopologyDoc {
    /// Capture a topology.
    pub fn of(topo: &Topology) -> TopologyDoc {
        let mut links = Vec::with_capacity(topo.num_edges());
        let mut isolated = Vec::new();
        for x in topo.nodes() {
            if topo.neighbors(x).is_empty() {
                isolated.push(topo.asn(x).0);
            }
            for &(y, rel) in topo.neighbors(x) {
                let (ax, ay) = (topo.asn(x), topo.asn(y));
                if ax < ay {
                    links.push((ax.0, ay.0, rel.tag()));
                }
            }
        }
        links.sort_unstable();
        isolated.sort_unstable();
        TopologyDoc { links, isolated }
    }

    /// Rebuild the topology.
    pub fn build(&self) -> Result<Topology, ParseError> {
        let mut b = TopologyBuilder::new();
        for &asn in &self.isolated {
            b.intern_as(AsId(asn));
        }
        for &(x, y, tag) in &self.links {
            let rel = Rel::from_tag(tag).ok_or(ParseError::BadTag(0, tag))?;
            b.intern_as(AsId(x));
            b.intern_as(AsId(y));
            b.link(AsId(x), AsId(y), rel);
        }
        b.build().map_err(ParseError::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenParams;

    #[test]
    fn text_round_trip() {
        let t = GenParams::tiny(9).generate();
        let text = to_text(&t);
        let u = from_text(&text).unwrap();
        assert_eq!(to_text(&u), text);
        assert_eq!(t.num_nodes(), u.num_nodes());
        assert_eq!(t.num_edges(), u.num_edges());
    }

    #[test]
    fn text_parses_comments_and_blanks() {
        let t = from_text("# header\n\n1 2 c\n2 3 e\n").unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 2);
        let (a, b) = (t.node(AsId(1)).unwrap(), t.node(AsId(2)).unwrap());
        assert_eq!(t.rel(a, b), Some(Rel::Customer));
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(from_text("1 2"), Err(ParseError::BadLine(1))));
        assert!(matches!(from_text("x 2 c"), Err(ParseError::BadAsn(1))));
        assert!(matches!(from_text("1 2 z"), Err(ParseError::BadTag(1, 'z'))));
        assert!(matches!(from_text("1 2 c d"), Err(ParseError::BadLine(1))));
        assert!(matches!(from_text("1 1 c"), Err(ParseError::Invalid(_))));
    }

    #[test]
    fn json_round_trip() {
        let t = GenParams::tiny(11).generate();
        let doc = TopologyDoc::of(&t);
        let json = serde_json::to_string(&doc).unwrap();
        let doc2: TopologyDoc = serde_json::from_str(&json).unwrap();
        assert_eq!(doc, doc2);
        let u = doc2.build().unwrap();
        assert_eq!(to_text(&t), to_text(&u));
    }
}
