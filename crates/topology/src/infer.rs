//! AS-relationship inference from observed AS paths.
//!
//! The paper annotates its topologies by running two published inference
//! algorithms over RouteViews BGP tables (section 5.1): the Gao (2001)
//! algorithm and the Subramanian/Agarwal et al. (2002) rank-based
//! algorithm. We implement both from scratch so the full measurement
//! pipeline — AS paths in, annotated graph out — can be exercised and its
//! imperfections studied (the paper notes "even the best inference
//! algorithms are imperfect" and compares results across both).
//!
//! Inputs are bare AS paths (`Vec<AsId>`, source first). Use
//! `miro-bgp`'s solver to produce realistic paths from a ground-truth
//! topology, then [`gao_infer`]/[`agarwal_infer`] to re-annotate, and
//! [`agreement`] to quantify inference accuracy.

use crate::graph::{AsId, Rel, Topology, TopologyBuilder};
use std::collections::HashMap;

/// Parse a RouteViews-style AS-path dump: one path per line, AS numbers
/// whitespace-separated, `#` comments and blanks ignored, AS-path
/// prepending collapsed (consecutive duplicates merged, as inference
/// should see topology, not traffic engineering).
///
/// ```
/// let paths = miro_topology::infer::paths_from_text(
///     "# vantage 1\n701 1239 7018 88 88 88\n701 3549 88\n",
/// ).unwrap();
/// assert_eq!(paths.len(), 2);
/// assert_eq!(paths[0].len(), 4, "prepending collapsed");
/// ```
pub fn paths_from_text(text: &str) -> Result<Vec<Vec<AsId>>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut path: Vec<AsId> = Vec::new();
        for tok in line.split_whitespace() {
            let asn: u32 = tok
                .parse()
                .map_err(|_| format!("line {}: bad AS number {:?}", i + 1, tok))?;
            // Collapse prepending.
            if path.last() != Some(&AsId(asn)) {
                path.push(AsId(asn));
            }
        }
        if !path.is_empty() {
            out.push(path);
        }
    }
    Ok(out)
}

/// Degree of each AS as observed in the path set (number of distinct
/// neighbors it appears adjacent to).
pub fn observed_degrees(paths: &[Vec<AsId>]) -> HashMap<AsId, usize> {
    let mut adj: HashMap<AsId, std::collections::HashSet<AsId>> = HashMap::new();
    for p in paths {
        for w in p.windows(2) {
            if w[0] == w[1] {
                continue;
            }
            adj.entry(w[0]).or_default().insert(w[1]);
            adj.entry(w[1]).or_default().insert(w[0]);
        }
    }
    adj.into_iter().map(|(a, s)| (a, s.len())).collect()
}

/// Tunable knobs of the Gao algorithm.
#[derive(Clone, Copy, Debug)]
pub struct GaoParams {
    /// Sibling threshold `L`: if transit votes exist in both directions and
    /// neither exceeds `L` times the other, the link is a sibling link.
    pub sibling_ratio: f64,
    /// Peering degree ratio `R`: the two endpoints of a candidate peering
    /// edge must have degrees within a factor `R` of each other.
    pub peer_degree_ratio: f64,
}

impl Default for GaoParams {
    fn default() -> Self {
        GaoParams { sibling_ratio: 3.0, peer_degree_ratio: 8.0 }
    }
}

/// The Gao (2001) relationship-inference algorithm.
///
/// Phase 1: find each path's *top provider* (its highest-degree AS) and cast
/// transit votes — every link left of the top is customer-to-provider,
/// every link right of it provider-to-customer.
/// Phase 2: classify each link from its votes — one-directional votes give
/// provider-customer, balanced bidirectional votes give sibling.
/// Phase 3: links adjacent to a path's top whose endpoint degrees are
/// within a factor `R`, with no transit evidence in either direction strong
/// enough to force a hierarchy, are re-labeled peering.
pub fn gao_infer(paths: &[Vec<AsId>], params: GaoParams) -> Topology {
    let deg = observed_degrees(paths);
    let d = |a: AsId| *deg.get(&a).unwrap_or(&0);

    // transit[(u, v)] = number of path positions asserting "v provides
    // transit to u" (i.e. the link was traversed climbing from u to v).
    let mut transit: HashMap<(AsId, AsId), u32> = HashMap::new();
    // How often each edge appears in any path at all.
    let mut appearances: HashMap<(AsId, AsId), u32> = HashMap::new();
    // Candidate peering votes: one per path, for the edge between the
    // summit and its *higher-degree* path neighbor (Gao's phase 3: a true
    // peering link spans the two tops; a provider-customer link adjacent
    // to the summit loses the candidacy to the other side).
    let mut peer_candidate: HashMap<(AsId, AsId), u32> = HashMap::new();

    for p in paths {
        if p.len() < 2 {
            continue;
        }
        for w in p.windows(2) {
            *appearances.entry(norm(w[0], w[1])).or_insert(0) += 1;
        }
        // Index of the highest-degree AS (the path's summit).
        let top = (0..p.len())
            .max_by_key(|&i| (d(p[i]), std::cmp::Reverse(p[i])))
            .expect("non-empty path");
        for i in 0..p.len() - 1 {
            let (u, v) = (p[i], p[i + 1]);
            if i < top {
                // climbing: v provides u
                *transit.entry((u, v)).or_insert(0) += 1;
            } else {
                // descending: u provides v
                *transit.entry((v, u)).or_insert(0) += 1;
            }
        }
        // One peering candidate per path: the summit's higher-degree
        // neighbor side.
        let left = top.checked_sub(1).map(|j| p[j]);
        let right = (top + 1 < p.len()).then(|| p[top + 1]);
        let side = match (left, right) {
            (Some(l), Some(r)) => Some(if d(l) >= d(r) { l } else { r }),
            (Some(l), None) => Some(l),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        };
        if let Some(s) = side {
            *peer_candidate.entry(norm(p[top], s)).or_insert(0) += 1;
        }
    }
    let edge_seen: std::collections::HashSet<(AsId, AsId)> =
        appearances.keys().copied().collect();

    let mut b = TopologyBuilder::new();
    let mut sorted_edges: Vec<(AsId, AsId)> = edge_seen.into_iter().collect();
    sorted_edges.sort_unstable();
    for (u, v) in sorted_edges {
        b.intern_as(u);
        b.intern_as(v);
        let up = *transit.get(&(u, v)).unwrap_or(&0) as f64; // v provides u
        let down = *transit.get(&(v, u)).unwrap_or(&0) as f64; // u provides v
        let rel_of_v_to_u = if up > 0.0 && down > 0.0 {
            let hi = up.max(down);
            let lo = up.min(down);
            if hi <= params.sibling_ratio * lo {
                Rel::Sibling
            } else if up > down {
                Rel::Provider
            } else {
                Rel::Customer
            }
        } else if up > 0.0 {
            Rel::Provider
        } else {
            Rel::Customer
        };
        // Peering re-labeling: a true peering link is the summit-spanning
        // link of (almost) every path it appears in, so its candidacy
        // count approaches its appearance count; a provider-customer link
        // adjacent to the summit loses most candidacies to the other,
        // higher-degree side.
        let cand = *peer_candidate.get(&norm(u, v)).unwrap_or(&0) as f64;
        let seen = *appearances.get(&norm(u, v)).unwrap_or(&0) as f64;
        let (du, dv) = (d(u).max(1) as f64, d(v).max(1) as f64);
        let comparable =
            du / dv <= params.peer_degree_ratio && dv / du <= params.peer_degree_ratio;
        let rel = if rel_of_v_to_u != Rel::Sibling
            && comparable
            && cand > 0.0
            && 2.0 * cand >= seen
        {
            Rel::Peer
        } else {
            rel_of_v_to_u
        };
        b.link(u, v, rel);
    }
    b.build().expect("inference output is structurally valid")
}

/// Tunable knobs of the Agarwal/Subramanian rank-based algorithm.
#[derive(Clone, Copy, Debug)]
pub struct AgarwalParams {
    /// Two ASes whose log-degree ranks differ by less than this are placed
    /// in the same level, making their link a peering link.
    pub same_level_band: f64,
    /// Minimum observed degree for an AS to participate in peering.
    pub min_peer_degree: usize,
}

impl Default for AgarwalParams {
    fn default() -> Self {
        AgarwalParams { same_level_band: 0.35, min_peer_degree: 3 }
    }
}

/// The Subramanian/Agarwal et al. (2002) rank-based inference.
///
/// Each AS gets a rank (log of observed degree — the published algorithm's
/// multi-vantage level assignment is dominated by degree in practice); a
/// link between same-level ASes is a peering link, otherwise the
/// higher-ranked AS is the provider. Transit votes (as in Gao phase 1) that
/// fire in both directions mark siblings. The paper observes this algorithm
/// finds more peering and fewer sibling links than Gao's (Table 5.1), which
/// this construction reproduces.
pub fn agarwal_infer(paths: &[Vec<AsId>], params: AgarwalParams) -> Topology {
    let deg = observed_degrees(paths);
    let d = |a: AsId| *deg.get(&a).unwrap_or(&0);
    let rank = |a: AsId| (d(a).max(1) as f64).ln();

    let mut transit: HashMap<(AsId, AsId), u32> = HashMap::new();
    let mut edge_seen: std::collections::HashSet<(AsId, AsId)> =
        std::collections::HashSet::new();
    for p in paths {
        if p.len() < 2 {
            continue;
        }
        let top = (0..p.len())
            .max_by_key(|&i| (d(p[i]), std::cmp::Reverse(p[i])))
            .expect("non-empty path");
        for i in 0..p.len() - 1 {
            let (u, v) = (p[i], p[i + 1]);
            edge_seen.insert(norm(u, v));
            if i < top {
                *transit.entry((u, v)).or_insert(0) += 1;
            } else {
                *transit.entry((v, u)).or_insert(0) += 1;
            }
        }
    }

    let mut b = TopologyBuilder::new();
    let mut sorted_edges: Vec<(AsId, AsId)> = edge_seen.into_iter().collect();
    sorted_edges.sort_unstable();
    for (u, v) in sorted_edges {
        b.intern_as(u);
        b.intern_as(v);
        let up = *transit.get(&(u, v)).unwrap_or(&0);
        let down = *transit.get(&(v, u)).unwrap_or(&0);
        let rel = if up > 0 && down > 0 && up.min(down) * 2 >= up.max(down) {
            // Strong bidirectional transit: sibling. The 2x band is much
            // narrower than Gao's L, so fewer siblings — as in Table 5.1.
            Rel::Sibling
        } else if (rank(u) - rank(v)).abs() < params.same_level_band
            && d(u) >= params.min_peer_degree
            && d(v) >= params.min_peer_degree
        {
            Rel::Peer
        } else if rank(v) > rank(u) {
            Rel::Provider // v is u's provider
        } else {
            Rel::Customer
        };
        b.link(u, v, rel);
    }
    b.build().expect("inference output is structurally valid")
}

/// Fraction (0..=1) of links present in both topologies whose relationship
/// labels agree. Links present in only one topology are ignored.
pub fn agreement(truth: &Topology, inferred: &Topology) -> f64 {
    let mut total = 0usize;
    let mut agree = 0usize;
    for x in truth.nodes() {
        for &(y, rel) in truth.neighbors(x) {
            if y < x {
                continue;
            }
            let (ax, ay) = (truth.asn(x), truth.asn(y));
            let (Some(ix), Some(iy)) = (inferred.node(ax), inferred.node(ay)) else {
                continue;
            };
            let Some(irel) = inferred.rel(ix, iy) else { continue };
            total += 1;
            if irel == rel {
                agree += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        agree as f64 / total as f64
    }
}

fn norm(a: AsId, b: AsId) -> (AsId, AsId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A small hierarchy: 1 and 2 are tier-1 peers (degree 4 each);
    // 10, 11, 13 customers of 1; 12, 14, 15 customers of 2;
    // 20 customer of 10; 21 customer of 12.
    // Paths are what BGP would produce (valley-free, up-peer-down).
    fn sample_paths() -> Vec<Vec<AsId>> {
        let p = |v: &[u32]| v.iter().map(|&x| AsId(x)).collect::<Vec<_>>();
        vec![
            p(&[20, 10, 1, 11]),
            p(&[20, 10, 1, 2, 12]),
            p(&[20, 10, 1, 2, 12, 21]),
            p(&[11, 1, 2, 12]),
            p(&[11, 1, 10, 20]),
            p(&[21, 12, 2, 1, 10, 20]),
            p(&[21, 12, 2, 1, 11]),
            p(&[10, 1, 2, 12]),
            p(&[12, 2, 1, 11]),
            p(&[12, 2, 1, 10, 20]),
            p(&[13, 1, 2, 14]),
            p(&[14, 2, 1, 13]),
            p(&[15, 2, 1, 13]),
        ]
    }

    /// Toy graphs have flat degrees, so narrow the peer ratio band below
    /// the provider/customer degree gap (4 vs 2) of the fixture.
    fn tight_params() -> GaoParams {
        GaoParams { peer_degree_ratio: 1.9, ..GaoParams::default() }
    }

    #[test]
    fn observed_degree_counts_distinct_neighbors() {
        let deg = observed_degrees(&sample_paths());
        assert_eq!(deg[&AsId(1)], 4); // neighbors 10, 11, 13, 2
        assert_eq!(deg[&AsId(20)], 1);
        assert_eq!(deg[&AsId(2)], 4); // neighbors 1, 12, 14, 15
    }

    #[test]
    fn gao_recovers_hierarchy() {
        let t = gao_infer(&sample_paths(), tight_params());
        let n = |a: u32| t.node(AsId(a)).unwrap();
        // 1 provides 10 and 11.
        assert_eq!(t.rel(n(10), n(1)), Some(Rel::Provider));
        assert_eq!(t.rel(n(11), n(1)), Some(Rel::Provider));
        // 10 provides 20.
        assert_eq!(t.rel(n(20), n(10)), Some(Rel::Provider));
        // 2 provides 12.
        assert_eq!(t.rel(n(12), n(2)), Some(Rel::Provider));
    }

    #[test]
    fn gao_finds_tier1_peering() {
        let t = gao_infer(&sample_paths(), tight_params());
        let n = |a: u32| t.node(AsId(a)).unwrap();
        assert_eq!(
            t.rel(n(1), n(2)),
            Some(Rel::Peer),
            "the summit link between comparable-degree tops should be peering"
        );
    }

    #[test]
    fn gao_finds_siblings_from_bidirectional_transit() {
        // 5 and 6 transit for each other: with summits 7 and 9 (degree 4)
        // on either side, the 5-6 link is climbed in both directions.
        let p = |v: &[u32]| v.iter().map(|&x| AsId(x)).collect::<Vec<_>>();
        let paths = vec![
            // Degree padding: make 7 and 9 the high-degree summits.
            p(&[71, 7]),
            p(&[72, 7]),
            p(&[73, 7]),
            p(&[91, 9]),
            p(&[92, 9]),
            p(&[93, 9]),
            p(&[5, 6, 9]), // summit 9: the 5->6 hop climbs (6 provides 5)
            p(&[6, 5, 7]), // summit 7: the 6->5 hop climbs (5 provides 6)
        ];
        let t = gao_infer(&paths, GaoParams::default());
        let n = |a: u32| t.node(AsId(a)).unwrap();
        assert_eq!(t.rel(n(5), n(6)), Some(Rel::Sibling));
    }

    #[test]
    fn agarwal_recovers_hierarchy_and_peering() {
        let t = agarwal_infer(&sample_paths(), AgarwalParams::default());
        let n = |a: u32| t.node(AsId(a)).unwrap();
        assert_eq!(t.rel(n(20), n(10)), Some(Rel::Provider));
        // 1 and 2 have equal degree (4): same level, hence peering.
        assert_eq!(t.rel(n(1), n(2)), Some(Rel::Peer));
    }

    #[test]
    fn agreement_is_one_for_identical() {
        let t = gao_infer(&sample_paths(), GaoParams::default());
        assert!((agreement(&t, &t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn agreement_counts_common_links_only() {
        let a = gao_infer(&sample_paths(), GaoParams::default());
        // An unrelated graph shares no links: agreement over zero links = 0.
        let mut b = TopologyBuilder::new();
        b.intern_as(AsId(7000));
        b.intern_as(AsId(7001));
        b.peering(AsId(7000), AsId(7001));
        let b = b.build().unwrap();
        assert_eq!(agreement(&a, &b), 0.0);
    }

    #[test]
    fn inference_handles_empty_and_trivial_input() {
        let t = gao_infer(&[], GaoParams::default());
        assert_eq!(t.num_nodes(), 0);
        let t = agarwal_infer(&[vec![AsId(1)]], AgarwalParams::default());
        assert_eq!(t.num_edges(), 0);
    }
}

#[cfg(test)]
mod path_text_tests {
    use super::*;

    #[test]
    fn parses_dump_with_comments_and_prepending() {
        let paths = paths_from_text(
            "# RouteViews-ish dump\n\n701 1239 7018 88 88 88\n701 3549 88\n",
        )
        .unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(
            paths[0],
            vec![AsId(701), AsId(1239), AsId(7018), AsId(88)],
            "prepending collapsed"
        );
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        let err = paths_from_text("701 88\n701 banana\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn pipeline_from_text_dump() {
        // A dump in, an annotated graph out: the external-data entry into
        // the inference pipeline.
        let dump = "\
20 10 1 11
20 10 1 2 12
11 1 2 12
21 12 2 1 10 20
12 2 1 11
13 1 2 14
14 2 1 13
15 2 1 13
";
        let paths = paths_from_text(dump).unwrap();
        let t = gao_infer(&paths, GaoParams { peer_degree_ratio: 1.9, ..Default::default() });
        let n = |a: u32| t.node(AsId(a)).unwrap();
        assert_eq!(t.rel(n(20), n(10)), Some(Rel::Provider));
    }
}
