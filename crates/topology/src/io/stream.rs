//! Streaming ingest of real-world AS-relationship snapshots.
//!
//! [`from_text`](super::from_text) is fine for generated fixtures, but it
//! wants the whole file in one `String` and allocates per line — at
//! RouteViews scale (~70k ASes, ~350k edges, tens of MB of text) that is
//! the wrong shape. This module parses from any [`BufRead`] line by line
//! into a [`TopologyBuilder`] with **zero per-line allocation**: one
//! reusable byte buffer, field splitting and integer parsing directly on
//! `&[u8]`, and AS numbers remapped to dense node ids by the builder's
//! single-pass interner as they are first seen.
//!
//! Two record formats are auto-detected per line:
//!
//! * the repo's whitespace format `<asn> <asn> <tag>` (tags as in
//!   [`Rel::tag`]: `c`/`p`/`e`/`s`), and
//! * the CAIDA AS-relationship format `<as1>|<as2>|<rel>` where `-1`
//!   means *as1 is a provider of as2*, `0` means peering, and `1` means
//!   sibling (the serial-2 files' trailing `|<source>` field is ignored).
//!
//! `#` comments and blank lines are skipped; CRLF line endings and a
//! missing final newline are accepted. Real snapshots contain junk, so the
//! parser is lenient where the strict loader is not: exact duplicate edges
//! and self-loops are *counted and dropped* (see [`ParseStats`]) rather
//! than rejected. A duplicate edge with a **conflicting** relationship is
//! still an error — silently picking one annotation would corrupt every
//! policy computation downstream.
//!
//! Errors carry the 1-based line number and the byte offset of the start
//! of the offending line, so `dataset.txt:193417` style messages point at
//! the actual record even in a 30 MB file.

use super::TopologyDoc;
use crate::graph::{AsId, LinkOutcome, Rel, Topology, TopologyBuilder, TopologyError};
use serde::{Deserialize, Serialize};
use std::io::BufRead;

/// Summary counters for one streaming parse.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Total lines seen, including comments and blanks.
    pub lines: usize,
    /// Comment and blank lines skipped.
    pub comments: usize,
    /// Edge records accepted into the builder.
    pub edges: usize,
    /// Exact duplicate edge declarations dropped.
    pub duplicate_edges: usize,
    /// Self-loop records dropped.
    pub self_loops: usize,
    /// Distinct ASes interned.
    pub nodes: usize,
    /// Total bytes consumed from the reader.
    pub bytes: u64,
}

/// Where and why a streaming parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending record (0 for end-of-input
    /// conditions such as [`ErrorKind::Empty`]).
    pub line: usize,
    /// Byte offset of the start of that line.
    pub offset: u64,
    pub kind: ErrorKind,
}

/// The failure class of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line did not have the expected number of fields (covers a
    /// truncated final record: `1 2` with the tag cut off).
    BadLine,
    /// An AS-number field was not a decimal number.
    BadAsn,
    /// An AS-number field was numeric but exceeds `u32::MAX`.
    AsnOverflow,
    /// Unknown single-letter relationship tag (whitespace format).
    BadTag(char),
    /// Unknown numeric relationship code (CAIDA format expects -1, 0, 1).
    BadRel(i64),
    /// The same AS pair was declared twice with different relationships.
    ConflictingEdge(AsId, AsId),
    /// No edge records at all (only comments/blanks, or nothing).
    Empty,
    /// The accumulated edge set failed topology validation.
    Invalid(TopologyError),
    /// The underlying reader failed.
    Io(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let at = format_args!("line {} (byte {})", self.line, self.offset);
        match &self.kind {
            ErrorKind::BadLine => {
                write!(f, "{at}: expected `<asn> <asn> <tag>` or `<as1>|<as2>|<rel>`")
            }
            ErrorKind::BadAsn => write!(f, "{at}: bad AS number"),
            ErrorKind::AsnOverflow => write!(f, "{at}: AS number exceeds u32::MAX"),
            ErrorKind::BadTag(c) => write!(f, "{at}: unknown relationship tag {c:?}"),
            ErrorKind::BadRel(r) => {
                write!(f, "{at}: unknown CAIDA relationship code {r} (expected -1, 0 or 1)")
            }
            ErrorKind::ConflictingEdge(a, b) => {
                write!(f, "{at}: conflicting relationship redeclared for link {a}-{b}")
            }
            ErrorKind::Empty => write!(f, "no edge records in input"),
            ErrorKind::Invalid(e) => write!(f, "invalid topology: {e}"),
            ErrorKind::Io(e) => write!(f, "{at}: read error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// On-disk format version of [`IngestCache`] documents. Version 1 is the
/// original unstamped layout (files without a `format_version` field read
/// as 1); bump this whenever the cache schema changes shape. Loaders must
/// reject any other version — a stale cache silently reinterpreted is a
/// corrupted experiment, and the fix (re-run `miro ingest`) is cheap.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// The JSON cache `miro ingest` writes and `miro-eval --cache` loads:
/// the parsed topology plus enough provenance to label result tables.
#[derive(Serialize, Deserialize, Clone, Debug)]
pub struct IngestCache {
    /// Schema version ([`CACHE_FORMAT_VERSION`] at write time).
    pub format_version: u32,
    /// Dataset label (defaults to the source file name).
    pub name: String,
    /// Where the snapshot came from.
    pub source: String,
    /// Parse counters recorded at ingest time.
    pub stats: ParseStats,
    /// The annotated graph itself.
    pub topology: TopologyDoc,
}

impl IngestCache {
    /// Assemble a cache stamped with the current format version.
    pub fn new(name: String, source: String, stats: ParseStats, topology: TopologyDoc) -> Self {
        IngestCache { format_version: CACHE_FORMAT_VERSION, name, source, stats, topology }
    }

    /// Parse a cache document, enforcing the format version *before*
    /// touching the rest of the schema: a version mismatch must report
    /// itself as such, not as whatever missing-field error the schema
    /// drift happens to trip first.
    pub fn from_json(json: &str) -> Result<IngestCache, String> {
        let value: serde::Value =
            serde_json::from_str(json).map_err(|e| format!("not an ingest cache: {e}"))?;
        let version = match &value {
            serde::Value::Obj(map) => match map.get("format_version") {
                Some(serde::Value::Num(n)) if n.fract() == 0.0 && *n >= 0.0 => *n as u32,
                Some(other) => {
                    return Err(format!("format_version is not a number (found {other:?})"))
                }
                // Pre-versioning caches carried no stamp at all.
                None => 1,
            },
            _ => return Err("not an ingest cache: top level is not an object".to_string()),
        };
        if version != CACHE_FORMAT_VERSION {
            return Err(format!(
                "cache format version {version}, but this build reads version \
                 {CACHE_FORMAT_VERSION} — re-run `miro ingest` to regenerate it"
            ));
        }
        serde::Deserialize::from_value(&value).map_err(|e| format!("not an ingest cache: {e}"))
    }
}

/// Parse a snapshot from any buffered reader. Returns the validated
/// topology plus the [`ParseStats`] counters.
///
/// The hot loop reuses one line buffer and parses fields straight from the
/// bytes — no per-line `String`s, no `split_whitespace` collect. An input
/// with no edge records at all yields [`ErrorKind::Empty`]: ingesting an
/// empty snapshot is always a mistake, and catching it here beats
/// reporting "0 routes reachable" three experiment stages later.
pub fn parse<R: BufRead>(mut reader: R) -> Result<(Topology, ParseStats), ParseError> {
    let mut b = TopologyBuilder::new();
    let mut stats = ParseStats::default();
    let mut buf: Vec<u8> = Vec::with_capacity(256);
    let mut offset = 0u64;
    let mut lineno = 0usize;
    loop {
        buf.clear();
        let line_start = offset;
        let n = reader.read_until(b'\n', &mut buf).map_err(|e| ParseError {
            line: lineno + 1,
            offset: line_start,
            kind: ErrorKind::Io(e.to_string()),
        })?;
        if n == 0 {
            break;
        }
        offset += n as u64;
        lineno += 1;
        stats.lines += 1;
        // Strip the newline and any CRLF carriage return.
        let mut line: &[u8] = &buf;
        if line.last() == Some(&b'\n') {
            line = &line[..line.len() - 1];
        }
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let line = trim_ascii(line);
        if line.is_empty() || line[0] == b'#' {
            stats.comments += 1;
            continue;
        }
        let err = |kind| ParseError { line: lineno, offset: line_start, kind };
        let (a, c, rel) = if line.contains(&b'|') {
            parse_caida(line).map_err(err)?
        } else {
            parse_whitespace(line).map_err(err)?
        };
        match b.try_link(AsId(a), AsId(c), rel) {
            LinkOutcome::Added => stats.edges += 1,
            LinkOutcome::Duplicate => stats.duplicate_edges += 1,
            LinkOutcome::SelfLoop => stats.self_loops += 1,
            LinkOutcome::Conflict => {
                return Err(err(ErrorKind::ConflictingEdge(AsId(a.min(c)), AsId(a.max(c)))))
            }
        }
    }
    stats.bytes = offset;
    if stats.edges == 0 && stats.self_loops == 0 && stats.duplicate_edges == 0 {
        return Err(ParseError { line: 0, offset, kind: ErrorKind::Empty });
    }
    let topo = b.build().map_err(|e| ParseError {
        line: 0,
        offset,
        kind: ErrorKind::Invalid(e),
    })?;
    stats.nodes = topo.num_nodes();
    Ok((topo, stats))
}

/// Convenience wrapper for in-memory text (tests, proptests).
pub fn parse_str(text: &str) -> Result<(Topology, ParseStats), ParseError> {
    parse(std::io::Cursor::new(text.as_bytes()))
}

/// One whitespace-format record: `<asn> <asn> <tag>`.
fn parse_whitespace(line: &[u8]) -> Result<(u32, u32, Rel), ErrorKind> {
    let mut fields = Fields::new(line, |b| b == b' ' || b == b'\t');
    let (Some(fa), Some(fc), Some(ft)) = (fields.next(), fields.next(), fields.next()) else {
        return Err(ErrorKind::BadLine);
    };
    if fields.next().is_some() {
        return Err(ErrorKind::BadLine);
    }
    let a = parse_u32(fa)?;
    let c = parse_u32(fc)?;
    if ft.len() != 1 {
        return Err(ErrorKind::BadTag(first_char(ft)));
    }
    let rel = Rel::from_tag(ft[0] as char).ok_or(ErrorKind::BadTag(ft[0] as char))?;
    Ok((a, c, rel))
}

/// One CAIDA record: `<as1>|<as2>|<rel>[|<source>]` — the relationship
/// code is what *as2 is to as1* after mapping: -1 provider→customer,
/// 0 peer, 1 sibling.
fn parse_caida(line: &[u8]) -> Result<(u32, u32, Rel), ErrorKind> {
    let mut fields = Fields::new(line, |b| b == b'|');
    let (Some(fa), Some(fc), Some(fr)) = (fields.next(), fields.next(), fields.next()) else {
        return Err(ErrorKind::BadLine);
    };
    // serial-2 files append `|<source>` (e.g. `|bgp`); ignore one trailing
    // field, reject anything beyond that.
    let _source = fields.next();
    if fields.next().is_some() {
        return Err(ErrorKind::BadLine);
    }
    let a = parse_u32(trim_ascii(fa))?;
    let c = parse_u32(trim_ascii(fc))?;
    let rel = match parse_i64(trim_ascii(fr))? {
        // as1 is a provider of as2: as2 is as1's customer.
        -1 => Rel::Customer,
        0 => Rel::Peer,
        1 => Rel::Sibling,
        other => return Err(ErrorKind::BadRel(other)),
    };
    Ok((a, c, rel))
}

/// Split on a delimiter predicate, skipping empty fields for whitespace
/// runs but preserving them for `|` (an empty `||` field is bad input).
struct Fields<'a, F: Fn(u8) -> bool> {
    rest: &'a [u8],
    is_delim: F,
    skip_empty: bool,
    done: bool,
}

impl<'a, F: Fn(u8) -> bool> Fields<'a, F> {
    fn new(line: &'a [u8], is_delim: F) -> Self {
        // Whitespace splitting collapses runs; `|` splitting must not.
        let skip_empty = is_delim(b' ');
        Fields { rest: line, is_delim, skip_empty, done: false }
    }
}

impl<'a, F: Fn(u8) -> bool> Iterator for Fields<'a, F> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.skip_empty {
            while let Some(&b) = self.rest.first() {
                if (self.is_delim)(b) {
                    self.rest = &self.rest[1..];
                } else {
                    break;
                }
            }
            if self.rest.is_empty() {
                return None;
            }
        } else if self.done {
            return None;
        }
        let end = self
            .rest
            .iter()
            .position(|&b| (self.is_delim)(b))
            .unwrap_or(self.rest.len());
        let field = &self.rest[..end];
        if end < self.rest.len() {
            self.rest = &self.rest[end + 1..];
        } else {
            self.rest = &[];
            self.done = true;
        }
        Some(field)
    }
}

fn trim_ascii(mut s: &[u8]) -> &[u8] {
    while let Some(&b) = s.first() {
        if b.is_ascii_whitespace() {
            s = &s[1..];
        } else {
            break;
        }
    }
    while let Some(&b) = s.last() {
        if b.is_ascii_whitespace() {
            s = &s[..s.len() - 1];
        } else {
            break;
        }
    }
    s
}

/// Decimal `u32` from bytes, distinguishing "not a number" from
/// "a number too large for an AS number".
fn parse_u32(s: &[u8]) -> Result<u32, ErrorKind> {
    if s.is_empty() {
        return Err(ErrorKind::BadAsn);
    }
    let mut v: u64 = 0;
    for &b in s {
        if !b.is_ascii_digit() {
            return Err(ErrorKind::BadAsn);
        }
        v = v * 10 + (b - b'0') as u64;
        if v > u32::MAX as u64 {
            // Keep consuming digits? No — the verdict cannot change.
            return Err(ErrorKind::AsnOverflow);
        }
    }
    Ok(v as u32)
}

/// Decimal `i64` (optional leading `-`) for the CAIDA relationship code.
fn parse_i64(s: &[u8]) -> Result<i64, ErrorKind> {
    let (neg, digits) = match s.first() {
        Some(&b'-') => (true, &s[1..]),
        _ => (false, s),
    };
    if digits.is_empty() || digits.len() > 18 {
        return Err(ErrorKind::BadLine);
    }
    let mut v: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return Err(ErrorKind::BadLine);
        }
        v = v * 10 + (b - b'0') as i64;
    }
    Ok(if neg { -v } else { v })
}

fn first_char(s: &[u8]) -> char {
    s.first().map(|&b| b as char).unwrap_or('?')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenParams;
    use crate::io::to_text;

    #[test]
    fn parses_whitespace_format_like_from_text() {
        let t = GenParams::tiny(5).generate();
        let text = to_text(&t);
        let (u, stats) = parse_str(&text).unwrap();
        assert_eq!(to_text(&u), text);
        assert_eq!(stats.edges, t.num_edges());
        assert_eq!(stats.nodes, t.num_nodes());
        assert_eq!(stats.duplicate_edges, 0);
        assert_eq!(stats.bytes, text.len() as u64);
    }

    #[test]
    fn parses_caida_format() {
        // 701 provides 88 and 99; 701-1239 peer; 88-99 siblings.
        let text = "# CAIDA-ish header\n701|88|-1\n701|99|-1\n701|1239|0\n88|99|1\n";
        let (t, stats) = parse_str(text).unwrap();
        assert_eq!(stats.edges, 4);
        assert_eq!(stats.comments, 1);
        let n = |a: u32| t.node(AsId(a)).unwrap();
        assert_eq!(t.rel(n(88), n(701)), Some(Rel::Provider));
        assert_eq!(t.rel(n(701), n(1239)), Some(Rel::Peer));
        assert_eq!(t.rel(n(88), n(99)), Some(Rel::Sibling));
    }

    #[test]
    fn caida_serial2_source_field_is_ignored() {
        let (t, _) = parse_str("1|2|-1|bgp\n1|3|0|mlp\n").unwrap();
        assert_eq!(t.num_edges(), 2);
        // ... but a fifth field is still garbage.
        let err = parse_str("1|2|-1|bgp|x\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadLine);
    }

    #[test]
    fn mixed_formats_in_one_file() {
        let (t, _) = parse_str("1 2 c\n1|3|0\n").unwrap();
        assert_eq!(t.num_edges(), 2);
    }

    #[test]
    fn duplicates_and_self_loops_are_counted_and_dropped() {
        let text = "1 2 c\n1 2 c\n2 1 p\n3 3 e\n1 4 e\n";
        let (t, stats) = parse_str(text).unwrap();
        assert_eq!(t.num_edges(), 2);
        assert_eq!(stats.duplicate_edges, 2, "both restatements counted");
        assert_eq!(stats.self_loops, 1);
        assert!(t.node(AsId(3)).is_none(), "self-loop endpoints are not interned");
    }

    #[test]
    fn missing_final_newline_is_fine() {
        let (t, stats) = parse_str("1 2 c\n3 4 e").unwrap();
        assert_eq!(t.num_edges(), 2);
        assert_eq!(stats.lines, 2);
    }

    // --- the malformed-input matrix -------------------------------------

    #[test]
    fn truncated_last_line_reports_bad_line_with_location() {
        // The tag of the final record was cut off mid-write.
        let err = parse_str("1 2 c\n3 4").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadLine);
        assert_eq!(err.line, 2);
        assert_eq!(err.offset, 6, "second line starts at byte 6");
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("byte 6"), "{msg}");
    }

    #[test]
    fn crlf_endings_parse_cleanly() {
        let (t, stats) = parse_str("# dos file\r\n1 2 c\r\n3|4|0\r\n").unwrap();
        assert_eq!(t.num_edges(), 2);
        assert_eq!(stats.comments, 1);
        // A lone CR must not leak into the tag field.
        assert_eq!(t.rel(t.node(AsId(1)).unwrap(), t.node(AsId(2)).unwrap()), Some(Rel::Customer));
    }

    #[test]
    fn conflicting_duplicate_is_an_error_at_the_offending_line() {
        let err = parse_str("1 2 c\n5 6 e\n2 1 c\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::ConflictingEdge(AsId(1), AsId(2)));
        assert_eq!(err.line, 3);
        assert_eq!(err.offset, 12);
        // CAIDA-format conflicts too.
        let err = parse_str("1|2|-1\n1|2|0\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::ConflictingEdge(AsId(1), AsId(2)));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn asn_beyond_u32_reports_overflow_not_bad_asn() {
        // 4294967296 == u32::MAX + 1.
        let err = parse_str("4294967296 2 c\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::AsnOverflow);
        assert_eq!(err.line, 1);
        // ... while u32::MAX itself is a legal (if reserved) AS number.
        let (t, _) = parse_str("4294967295 2 c\n").unwrap();
        assert!(t.node(AsId(u32::MAX)).is_some());
        // Non-numeric stays BadAsn.
        let err = parse_str("banana 2 c\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadAsn);
        // CAIDA side of the same distinction.
        let err = parse_str("4294967296|2|-1\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::AsnOverflow);
    }

    #[test]
    fn empty_inputs_report_empty() {
        for text in ["", "\n\n", "# only comments\n# here\n", "   \n"] {
            let err = parse_str(text).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Empty, "input {text:?}");
            assert_eq!(err.line, 0);
        }
    }

    #[test]
    fn bad_tags_and_rels_are_distinct_errors() {
        let err = parse_str("1 2 z\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadTag('z'));
        let err = parse_str("1 2 cc\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadTag('c'));
        let err = parse_str("1|2|7\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRel(7));
        let err = parse_str("1|2|-2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRel(-2));
        let err = parse_str("1||-1\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadAsn, "empty CAIDA field");
        let err = parse_str("1 2 c d\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadLine, "too many fields");
    }

    #[test]
    fn ingest_cache_round_trips_through_json() {
        let (t, stats) = parse_str("1 2 c\n2 3 e\n").unwrap();
        let cache =
            IngestCache::new("sample".to_string(), "unit test".to_string(), stats, TopologyDoc::of(&t));
        assert_eq!(cache.format_version, CACHE_FORMAT_VERSION);
        let json = serde_json::to_string(&cache).unwrap();
        let back = IngestCache::from_json(&json).unwrap();
        assert_eq!(back.name, "sample");
        assert_eq!(back.stats, stats);
        assert_eq!(back.format_version, CACHE_FORMAT_VERSION);
        let u = back.topology.build().unwrap();
        assert_eq!(to_text(&t), to_text(&u));
    }

    #[test]
    fn ingest_cache_rejects_mismatched_format_versions() {
        let (t, stats) = parse_str("1 2 c\n").unwrap();
        let cache =
            IngestCache::new("v".to_string(), "unit test".to_string(), stats, TopologyDoc::of(&t));
        let json = serde_json::to_string(&cache).unwrap();

        // A future version must be refused, not guessed at.
        let newer = json.replace(
            &format!("\"format_version\":{CACHE_FORMAT_VERSION}"),
            &format!("\"format_version\":{}", CACHE_FORMAT_VERSION + 7),
        );
        assert_ne!(newer, json, "replacement found the version field");
        let err = IngestCache::from_json(&newer).unwrap_err();
        assert!(err.contains(&format!("cache format version {}", CACHE_FORMAT_VERSION + 7)), "{err}");
        assert!(err.contains("re-run `miro ingest`"), "{err}");

        // A pre-versioning cache (no stamp at all) reads as version 1.
        let unstamped = json.replace(&format!("\"format_version\":{CACHE_FORMAT_VERSION},"), "");
        assert_ne!(unstamped, json);
        let err = IngestCache::from_json(&unstamped).unwrap_err();
        assert!(err.contains("cache format version 1"), "{err}");

        // Garbage in the field is its own error, not a silent default.
        let garbage = json.replace(
            &format!("\"format_version\":{CACHE_FORMAT_VERSION}"),
            "\"format_version\":\"two\"",
        );
        let err = IngestCache::from_json(&garbage).unwrap_err();
        assert!(err.contains("format_version is not a number"), "{err}");
    }
}
