//! Valley-free path machinery and route classification.
//!
//! Gao's export rules (section 2.2.1) imply that every AS path visible in BGP
//! is *valley-free*: reading from the traffic source toward the
//! destination, it climbs zero or more customer-to-provider (or sibling)
//! links, optionally crosses one peer link, then descends zero or more
//! provider-to-customer (or sibling) links. Section 7.3.3's proof relies on
//! this shape, and the evaluation's route classes derive from it.

use crate::graph::{NodeId, Rel, Topology};

/// The business class of a route *as seen by the AS holding it*
/// (section 2.2.1). Ordering is by preference: customer routes are most
/// preferred, then peers, then providers (Guideline A).
///
/// Sibling routes are not a class of their own: per the paper's
/// approximation, a route whose first links are sibling links takes the
/// class of its first non-sibling link, and counts as a customer route if
/// every link is a sibling link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RouteClass {
    /// Learned (possibly through siblings) from a customer, or the AS's own
    /// prefix. Highest preference, exportable to everyone.
    Customer,
    /// Learned (possibly through siblings) from a peer. Exportable only to
    /// customers and siblings.
    Peer,
    /// Learned (possibly through siblings) from a provider. Lowest
    /// preference; exportable only to customers and siblings.
    Provider,
}

impl RouteClass {
    /// Local-preference band conventionally assigned to this class
    /// (section 2.2.2 gives 400-500 / 200-300 / 50-100 as the worked example).
    pub fn local_pref(self) -> u32 {
        match self {
            RouteClass::Customer => 450,
            RouteClass::Peer => 250,
            RouteClass::Provider => 80,
        }
    }

    /// Inverse of [`RouteClass::local_pref`] banding: classify an arbitrary
    /// local-preference value back into a class.
    pub fn from_local_pref(lp: u32) -> RouteClass {
        if lp >= 400 {
            RouteClass::Customer
        } else if lp >= 200 {
            RouteClass::Peer
        } else {
            RouteClass::Provider
        }
    }
}

/// Classify the route `path` as held by `holder`, where `path[0]` is the
/// next-hop AS and `path.last()` the destination (the holder itself is not
/// on the path). Skips leading sibling links per the paper's sibling
/// approximation. An empty path (the AS's own prefix) is a customer route.
///
/// Returns `None` if some consecutive pair on the path is not actually
/// linked in the topology (a malformed path).
pub fn classify_route(topo: &Topology, holder: NodeId, path: &[NodeId]) -> Option<RouteClass> {
    let mut at = holder;
    for &next in path {
        match topo.rel(at, next)? {
            Rel::Sibling => at = next,
            Rel::Customer => return Some(RouteClass::Customer),
            Rel::Peer => return Some(RouteClass::Peer),
            Rel::Provider => return Some(RouteClass::Provider),
        }
    }
    // All-sibling (or empty) path: treated as a customer route.
    Some(RouteClass::Customer)
}

/// Phase of a valley-free walk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Still climbing customer-to-provider (or sibling) links.
    Up,
    /// Crossed the single allowed peer link.
    AfterPeer,
    /// Descending provider-to-customer (or sibling) links.
    Down,
}

/// Check that `nodes` (a full AS path including both endpoints, read from
/// traffic source to destination) is valley-free in `topo`: (c2p | sibling)*
/// (peer)? (p2c | sibling)*. Also rejects paths with repeated ASes and
/// paths using non-existent links.
pub fn is_valley_free(topo: &Topology, nodes: &[NodeId]) -> bool {
    if nodes.is_empty() {
        return false;
    }
    if has_duplicates(nodes) {
        return false;
    }
    let mut phase = Phase::Up;
    for w in nodes.windows(2) {
        let (a, b) = (w[0], w[1]);
        // rel = what b is to a.
        let Some(rel) = topo.rel(a, b) else { return false };
        phase = match (phase, rel) {
            (p, Rel::Sibling) => p,
            (Phase::Up, Rel::Provider) => Phase::Up, // b is a's provider: climbing
            (Phase::Up, Rel::Peer) => Phase::AfterPeer,
            (Phase::Up, Rel::Customer) => Phase::Down, // b is a's customer: descending
            (Phase::AfterPeer | Phase::Down, Rel::Customer) => Phase::Down,
            // Second peer link or a climb after the apex: a valley.
            (Phase::AfterPeer | Phase::Down, Rel::Peer | Rel::Provider) => return false,
        };
    }
    true
}

/// Does the slice contain the same AS twice? AS paths are short (mean ~4),
/// so the quadratic scan beats hashing.
pub fn has_duplicates(nodes: &[NodeId]) -> bool {
    for (i, &a) in nodes.iter().enumerate() {
        if nodes[i + 1..].contains(&a) {
            return true;
        }
    }
    false
}

/// Does `path` (next-hop first, destination last) traverse `avoid`?
pub fn traverses(path: &[NodeId], avoid: NodeId) -> bool {
    path.contains(&avoid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsId, TopologyBuilder};

    /// Five-AS topology:
    ///   T1a -peer- T1b   (tier 1)
    ///    |          |
    ///   Mid        Mid2  (customers of tier 1)
    ///    |
    ///   Stub             (customer of Mid; sibling of Sib)
    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        for n in [10, 11, 20, 21, 30, 31] {
            b.add_as(AsId(n));
        }
        b.peering(AsId(10), AsId(11));
        b.provider_customer(AsId(10), AsId(20));
        b.provider_customer(AsId(11), AsId(21));
        b.provider_customer(AsId(20), AsId(30));
        b.sibling(AsId(30), AsId(31));
        b.build_checked(true).unwrap()
    }

    fn n(t: &Topology, asn: u32) -> NodeId {
        t.node(AsId(asn)).unwrap()
    }

    #[test]
    fn up_peer_down_is_valley_free() {
        let t = topo();
        let p = [n(&t, 30), n(&t, 20), n(&t, 10), n(&t, 11), n(&t, 21)];
        assert!(is_valley_free(&t, &p));
    }

    #[test]
    fn pure_descent_is_valley_free() {
        let t = topo();
        assert!(is_valley_free(&t, &[n(&t, 10), n(&t, 20), n(&t, 30)]));
    }

    #[test]
    fn valley_is_rejected() {
        let t = topo();
        // Down to stub 30 then back up to 20 would revisit; craft a real
        // valley instead: 10 -> 20 (down) -> 30 (down) -> 31 (sibling) is
        // fine, but 20 -> 30 (down) -> ... there is no way back up without a
        // repeat, so test a peer-after-down valley on tier 1:
        // 20 -> 10 (up) -> 11 (peer) -> 10? repeats. Use: descent then peer.
        let p = [n(&t, 20), n(&t, 30), n(&t, 31)];
        assert!(is_valley_free(&t, &p)); // down + sibling ok
        let bad = [n(&t, 10), n(&t, 20), n(&t, 30), n(&t, 31), n(&t, 20)];
        assert!(!is_valley_free(&t, &bad)); // repeat + climb after descent
    }

    #[test]
    fn two_peer_links_rejected() {
        let mut b = TopologyBuilder::new();
        for x in [1, 2, 3] {
            b.add_as(AsId(x));
        }
        b.peering(AsId(1), AsId(2));
        b.peering(AsId(2), AsId(3));
        let t = b.build().unwrap();
        let p = [n(&t, 1), n(&t, 2), n(&t, 3)];
        assert!(!is_valley_free(&t, &p));
    }

    #[test]
    fn sibling_links_are_transparent() {
        let t = topo();
        // 31 -sib- 30 -up- 20 -up- 10: still "up" phase throughout.
        let p = [n(&t, 31), n(&t, 30), n(&t, 20), n(&t, 10)];
        assert!(is_valley_free(&t, &p));
    }

    #[test]
    fn nonexistent_link_rejected() {
        let t = topo();
        assert!(!is_valley_free(&t, &[n(&t, 30), n(&t, 10)]));
    }

    #[test]
    fn classify_direct_links() {
        let t = topo();
        // Held by 20: next hop 30 is a customer.
        assert_eq!(
            classify_route(&t, n(&t, 20), &[n(&t, 30)]),
            Some(RouteClass::Customer)
        );
        // Held by 20: next hop 10 is a provider.
        assert_eq!(
            classify_route(&t, n(&t, 20), &[n(&t, 10)]),
            Some(RouteClass::Provider)
        );
        // Held by 10: next hop 11 is a peer.
        assert_eq!(
            classify_route(&t, n(&t, 10), &[n(&t, 11), n(&t, 21)]),
            Some(RouteClass::Peer)
        );
    }

    #[test]
    fn classify_skips_leading_siblings() {
        let t = topo();
        // Held by 31: 30 is a sibling, then 20 is a provider of 30.
        assert_eq!(
            classify_route(&t, n(&t, 31), &[n(&t, 30), n(&t, 20)]),
            Some(RouteClass::Provider)
        );
    }

    #[test]
    fn classify_all_sibling_is_customer() {
        let t = topo();
        assert_eq!(
            classify_route(&t, n(&t, 31), &[n(&t, 30)]),
            Some(RouteClass::Customer)
        );
        // Own prefix (empty path) is also a customer route.
        assert_eq!(
            classify_route(&t, n(&t, 31), &[]),
            Some(RouteClass::Customer)
        );
    }

    #[test]
    fn classify_malformed_path_is_none() {
        let t = topo();
        assert_eq!(classify_route(&t, n(&t, 30), &[n(&t, 10)]), None);
    }

    #[test]
    fn class_preference_order() {
        assert!(RouteClass::Customer < RouteClass::Peer);
        assert!(RouteClass::Peer < RouteClass::Provider);
        assert!(RouteClass::Customer.local_pref() > RouteClass::Peer.local_pref());
        for c in [RouteClass::Customer, RouteClass::Peer, RouteClass::Provider] {
            assert_eq!(RouteClass::from_local_pref(c.local_pref()), c);
        }
    }

    #[test]
    fn duplicate_detection() {
        assert!(has_duplicates(&[1, 2, 1]));
        assert!(!has_duplicates(&[1, 2, 3]));
        assert!(!has_duplicates(&[]));
    }
}
