//! One Criterion bench per paper *table*: each benchmark regenerates the
//! table's data end to end (dataset -> probes -> rows), so `cargo bench`
//! doubles as a smoke-test that every reproduction still produces
//! paper-shaped numbers (the assertions are in the unit/integration
//! tests; here we measure cost).

use criterion::{criterion_group, criterion_main, Criterion};
use miro_eval::avoid::{sample_probes, table5_2_row, table5_3_rows};
use miro_eval::datasets::{table5_1, Dataset, EvalConfig};
use miro_topology::gen::DatasetPreset;
use std::hint::black_box;

fn bench_cfg() -> EvalConfig {
    EvalConfig {
        scale: 0.02,
        seed: 11,
        dest_samples: 30,
        src_samples: 20,
        threads: 1, // single-threaded for stable measurements
    }
}

/// Table 5.1: generate all four datasets and compute the link census.
fn bench_table5_1(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("table5_1/generate_and_census", |b| {
        b.iter(|| {
            let ds = Dataset::build_all(black_box(&cfg));
            black_box(table5_1(&ds))
        })
    });
}

/// Table 5.2: the avoid-AS success rates for one dataset.
fn bench_table5_2(c: &mut Criterion) {
    let cfg = bench_cfg();
    let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
    c.bench_function("table5_2/probe_and_rate", |b| {
        b.iter(|| {
            let probes = sample_probes(black_box(&ds), &cfg);
            black_box(table5_2_row(ds.name(), &probes))
        })
    });
}

/// Table 5.3: negotiation-state metrics, computed from cached probes
/// (isolates the table computation from the probing).
fn bench_table5_3(c: &mut Criterion) {
    let cfg = bench_cfg();
    let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
    let probes = sample_probes(&ds, &cfg);
    c.bench_function("table5_3/rows_from_probes", |b| {
        b.iter(|| black_box(table5_3_rows(black_box(&probes))))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_table5_1, bench_table5_2, bench_table5_3
}
criterion_main!(tables);
