//! One Criterion bench per paper *figure*: each regenerates the figure's
//! series end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use miro_eval::avoid::sample_probes;
use miro_eval::convergence_exp::{run_fig7_1, run_fig7_2};
use miro_eval::datasets::{fig5_1, Dataset, EvalConfig};
use miro_eval::{deploy, inbound, routes};
use miro_topology::gen::DatasetPreset;
use std::hint::black_box;

fn bench_cfg() -> EvalConfig {
    EvalConfig {
        scale: 0.02,
        seed: 11,
        dest_samples: 30,
        src_samples: 20,
        threads: 1,
    }
}

/// Figure 5.1: the degree CCDF over all four datasets.
fn bench_fig5_1(c: &mut Criterion) {
    let cfg = bench_cfg();
    let ds = Dataset::build_all(&cfg);
    c.bench_function("fig5_1/degree_ccdf", |b| {
        b.iter(|| black_box(fig5_1(black_box(&ds))))
    });
}

/// Figures 5.2/5.3: route counts (6 series: 2 scopes x 3 policies).
fn bench_fig5_2(c: &mut Criterion) {
    let cfg = bench_cfg();
    let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
    c.bench_function("fig5_2/available_routes", |b| {
        b.iter(|| black_box(routes::fig5_2(black_box(&ds), &cfg)))
    });
}

/// Figures 5.4/5.5: deployment curves from cached probes.
fn bench_fig5_4(c: &mut Criterion) {
    let cfg = bench_cfg();
    let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
    let probes = sample_probes(&ds, &cfg);
    c.bench_function("fig5_4/deployment_curves", |b| {
        b.iter(|| black_box(deploy::fig5_4(black_box(&ds), &probes)))
    });
}

/// Figures 5.6/5.7: one stub's full power-node evaluation (the expensive
/// inner loop: pinned-route BGP re-simulations).
fn bench_fig5_6(c: &mut Criterion) {
    let cfg = bench_cfg();
    let ds = Dataset::build(DatasetPreset::Gao2005, &cfg);
    let stub = ds
        .topo
        .nodes()
        .find(|&x| ds.topo.is_multihomed_stub(x))
        .expect("dataset has multi-homed stubs");
    c.bench_function("fig5_6/evaluate_one_stub", |b| {
        b.iter(|| {
            black_box(inbound::evaluate_stub(
                black_box(&ds.topo),
                stub,
                4,
                1,
                100 * ds.topo.num_nodes(),
            ))
        })
    });
}

/// Figure 7.1: the gadget under unrestricted + Guidelines B/C.
fn bench_fig7_1(c: &mut Criterion) {
    c.bench_function("fig7_1/gadget_all_configs", |b| {
        b.iter(|| black_box(run_fig7_1(black_box(100))))
    });
}

/// Figure 7.2: the strict-policy gadget under all three configurations.
fn bench_fig7_2(c: &mut Criterion) {
    c.bench_function("fig7_2/gadget_all_configs", |b| {
        b.iter(|| black_box(run_fig7_2(black_box(100))))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig5_1, bench_fig5_2, bench_fig5_4, bench_fig5_6,
              bench_fig7_1, bench_fig7_2
}
criterion_main!(figures);
