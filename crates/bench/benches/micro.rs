//! Micro-benchmarks and the DESIGN.md ablations:
//!
//! * solver vs event simulator (the two route engines);
//! * negotiation targeting strategies (on-path vs 1-hop vs both);
//! * tunnel endpoint addressing schemes (per-link / per-router / single
//!   reserved address) — per-packet forwarding cost;
//! * the hot primitives: the 8-step decision process, IP-in-IP
//!   encapsulation, LPM lookups, AS-path regex matching.

use criterion::{criterion_group, criterion_main, Criterion};
use miro_bgp::decision::{select_best, RouteAttrs};
use miro_bgp::sim::{GaoRexford, Sim};
use miro_bgp::solver::RoutingState;
use miro_core::export::ExportPolicy;
use miro_core::strategy::{avoid_via_negotiation, TargetStrategy};
use miro_dataplane::encap::{decapsulate, encapsulate, EndpointScheme};
use miro_dataplane::ipv4::{Ipv4Addr4, Ipv4Header};
use miro_dataplane::lpm::{Prefix, PrefixTrie};
use miro_policy::AsPathRegex;
use miro_topology::GenParams;
use std::hint::black_box;

fn topo() -> miro_topology::Topology {
    GenParams {
        name: "bench".into(),
        num_nodes: 400,
        target_pc_links: 720,
        target_peer_links: 60,
        target_sibling_links: 10,
        lowtier_peering: false,
        seed: 5,
    }
    .generate()
}

/// Ablation: closed-form stable-state solver vs event-driven simulator,
/// same topology, same destination, same answer (asserted in the
/// integration tests) — very different costs.
fn bench_engines(c: &mut Criterion) {
    let t = topo();
    let d = t.nodes().next().expect("non-empty");
    let mut g = c.benchmark_group("engine");
    g.bench_function("solver_one_dest", |b| {
        b.iter(|| black_box(RoutingState::solve(black_box(&t), d)))
    });
    g.bench_function("simulator_one_dest", |b| {
        b.iter(|| {
            let mut sim = Sim::new(black_box(&t), GaoRexford, d);
            black_box(sim.run(1, 10_000_000))
        })
    });
    g.finish();
}

/// Ablation: targeting strategies for the avoid-AS search.
fn bench_strategies(c: &mut Criterion) {
    let t = topo();
    let d = t.nodes().next().expect("non-empty");
    let st = RoutingState::solve(&t, d);
    // A source with a long default path makes the contrast visible.
    let src = t
        .nodes()
        .filter(|&x| st.path(x).map_or(0, |p| p.len()) >= 3)
        .last()
        .expect("long path exists");
    let avoid = st.path(src).expect("routed")[1];
    let mut g = c.benchmark_group("strategy");
    for strat in [
        TargetStrategy::OnPath,
        TargetStrategy::OneHop,
        TargetStrategy::OnPathThenNeighbors,
    ] {
        g.bench_function(strat.label(), |b| {
            b.iter(|| {
                black_box(avoid_via_negotiation(
                    black_box(&st),
                    src,
                    avoid,
                    ExportPolicy::RespectExport,
                    strat,
                    None,
                ))
            })
        });
    }
    g.finish();
}

/// Ablation: per-packet cost of the three endpoint addressing schemes.
fn bench_endpoint_schemes(c: &mut Criterion) {
    let inner = Ipv4Header::new(
        Ipv4Addr4::new(10, 0, 0, 1),
        Ipv4Addr4::new(12, 34, 56, 78),
        6,
        64,
    )
    .emit_with_payload(&[0u8; 64]);
    let per_link = EndpointScheme::PerExitLink {
        links: (0..8).map(|i| (i, Ipv4Addr4::new(12, 34, 56, 100 + i as u8))).collect(),
    };
    let per_router = EndpointScheme::PerEgressRouter {
        routers: (0..4).map(|i| (i, Ipv4Addr4::new(12, 34, 56, 2 + i as u8))).collect(),
    };
    let single = EndpointScheme::SingleAddress {
        address: Ipv4Addr4::new(12, 34, 56, 100),
        egress_map: (0..32)
            .map(|t| (t, vec![Ipv4Addr4::new(12, 34, 56, 2), Ipv4Addr4::new(12, 34, 56, 3)]))
            .collect(),
    };
    let mut g = c.benchmark_group("endpoint_scheme");
    for (name, scheme) in
        [("per_exit_link", &per_link), ("per_egress_router", &per_router), ("single_address", &single)]
    {
        g.bench_function(name, |b| {
            b.iter(|| {
                // Full tunnel path: resolve endpoint, encapsulate,
                // ingress rewrite, decapsulate.
                let ep = scheme.advertised_endpoint(7, 1).expect("endpoint known");
                let wire =
                    encapsulate(black_box(&inner), Ipv4Addr4::new(9, 9, 9, 9), ep, 7).expect("fits");
                let rewritten = scheme.ingress_rewrite(ep, 7).expect("resolvable");
                black_box(rewritten);
                black_box(decapsulate(wire).expect("valid"))
            })
        });
    }
    g.finish();
}

/// The eight-step decision process (Table 2.1) over a rib-in of 16 routes.
fn bench_decision(c: &mut Criterion) {
    let routes: Vec<RouteAttrs> = (0..16)
        .map(|i| RouteAttrs {
            local_pref: 100 + (i % 3) * 50,
            as_path_len: 2 + (i % 4),
            med: i,
            neighbor_as: i % 2,
            ebgp: i % 2 == 0,
            igp_dist: i * 3,
            router_id: i,
            peer_addr: 1000 - i,
            ..RouteAttrs::default()
        })
        .collect();
    c.bench_function("decision/select_best_16", |b| {
        b.iter(|| black_box(select_best(black_box(&routes))))
    });
}

/// Encapsulation throughput for a 1400-byte payload.
fn bench_encap(c: &mut Criterion) {
    let inner = Ipv4Header::new(
        Ipv4Addr4::new(10, 0, 0, 1),
        Ipv4Addr4::new(12, 34, 56, 78),
        6,
        1400,
    )
    .emit_with_payload(&[0xabu8; 1400]);
    c.bench_function("encap/wrap_unwrap_1400B", |b| {
        b.iter(|| {
            let wire = encapsulate(
                black_box(&inner),
                Ipv4Addr4::new(9, 9, 9, 9),
                Ipv4Addr4::new(8, 8, 8, 8),
                7,
            )
            .expect("fits");
            black_box(decapsulate(wire).expect("valid"))
        })
    });
}

/// LPM over a 10k-prefix table.
fn bench_lpm(c: &mut Criterion) {
    let mut trie: PrefixTrie<u32> = PrefixTrie::new();
    for i in 0u32..10_000 {
        trie.insert(Prefix::new(Ipv4Addr4::from_u32(i << 14), 16 + (i % 9) as u8), i);
    }
    let probes: Vec<Ipv4Addr4> =
        (0u32..64).map(|i| Ipv4Addr4::from_u32(i.wrapping_mul(0x0101_4567))).collect();
    c.bench_function("lpm/lookup_10k_table", |b| {
        b.iter(|| {
            for &p in &probes {
                black_box(trie.lookup(black_box(p)));
            }
        })
    });
}

/// AS-path regex matching on typical paths.
fn bench_regex(c: &mut Criterion) {
    let re = AsPathRegex::parse("_312_").expect("valid");
    let wild = AsPathRegex::parse("^701 .* 88+$").expect("valid");
    let paths: Vec<Vec<u32>> = (0..32)
        .map(|i| vec![701, 1239 + i, 7018, if i % 3 == 0 { 312 } else { 99 }, 88, 88])
        .collect();
    c.bench_function("aspath_regex/match_32_paths", |b| {
        b.iter(|| {
            let mut hits = 0;
            for p in &paths {
                if re.is_match(black_box(p)) {
                    hits += 1;
                }
                if wild.is_match(black_box(p)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

/// BGP wire codec throughput: encode + parse a realistic UPDATE.
fn bench_bgp_wire(c: &mut Criterion) {
    use miro_bgp::wire::{BgpMessage, PathAttributes, WirePrefix};
    let update = BgpMessage::Update {
        withdrawn: vec![WirePrefix::new(0x0a000000, 8)],
        attrs: PathAttributes {
            origin: Some(0),
            as_path: vec![6509, 11537, 10466, 88],
            next_hop: Some(0x01020304),
            med: Some(10),
            local_pref: Some(250),
        },
        nlri: vec![WirePrefix::new(0x80700000, 16), WirePrefix::new(0x80710b00, 24)],
    };
    let bytes = update.emit().expect("encodes");
    let mut g = c.benchmark_group("bgp_wire");
    g.bench_function("emit_update", |b| b.iter(|| black_box(update.emit().expect("ok"))));
    g.bench_function("parse_update", |b| {
        b.iter(|| black_box(BgpMessage::parse(black_box(&bytes)).expect("ok")))
    });
    g.finish();
}

/// MIRO control codec throughput: a full negotiation transcript.
fn bench_miro_wire(c: &mut Criterion) {
    use miro_core::negotiate::{Constraint, Message, NegotiationId};
    let msg = Message::Request {
        id: NegotiationId(42),
        dest: 7,
        constraints: vec![Constraint::AvoidAs(312), Constraint::MaxPrice(250)],
    };
    let bytes = miro_core::wire::emit(&msg).expect("encodes");
    let mut g = c.benchmark_group("miro_wire");
    g.bench_function("emit_request", |b| {
        b.iter(|| black_box(miro_core::wire::emit(black_box(&msg)).expect("ok")))
    });
    g.bench_function("parse_request", |b| {
        b.iter(|| black_box(miro_core::wire::parse(black_box(&bytes)).expect("ok")))
    });
    g.finish();
}

/// Wire-level BGP speakers: full session bring-up + table exchange for a
/// three-AS line (handshake bytes, UPDATEs, convergence).
fn bench_speaker_convergence(c: &mut Criterion) {
    use miro_bgp::speaker::{pump, PeerConfig, Speaker};
    use miro_bgp::wire::WirePrefix;
    c.bench_function("speaker/line3_converge", |b| {
        b.iter(|| {
            let mut s1 = Speaker::new(65001, 1);
            let mut s2 = Speaker::new(65002, 2);
            let mut s3 = Speaker::new(65003, 3);
            let p12 = s1.add_peer(PeerConfig::ebgp(65002, 80, false));
            let p21 = s2.add_peer(PeerConfig::ebgp(65001, 450, true));
            let p23 = s2.add_peer(PeerConfig::ebgp(65003, 450, true));
            let p32 = s3.add_peer(PeerConfig::ebgp(65002, 80, false));
            for i in 0..16u32 {
                s3.originate(WirePrefix::new(0x0a000000 + (i << 16), 16));
            }
            for s in [&mut s1, &mut s2, &mut s3] {
                s.start();
            }
            let mut sp = vec![s1, s2, s3];
            pump(&mut sp, &[(0, p12, 1, p21), (1, p23, 2, p32)]);
            black_box(sp[0].best_path(WirePrefix::new(0x0a000000, 16)))
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engines, bench_strategies, bench_endpoint_schemes,
              bench_decision, bench_encap, bench_lpm, bench_regex,
              bench_bgp_wire, bench_miro_wire, bench_speaker_convergence
}
criterion_main!(micro);
