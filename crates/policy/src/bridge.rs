//! Bridge from the Chapter 6 policy language to the live MIRO control
//! plane: a parsed configuration *drives* negotiations.
//!
//! Section 4.3 envisions exactly this split: "each AS defines a set of
//! local policies regarding tunnel management, and then some software on
//! the routers or end hosts can automatically monitor current routing
//! situations and conduct the negotiations. This is similar to the
//! current BGP protocol, where BGP policies are defined by human
//! operators and actual path selections are performed by programs on
//! routers." [`run_policy`] is that software: it evaluates the
//! requester's route-maps against its current candidate set, and for
//! every fired trigger executes the negotiation through
//! [`miro_core::node::MiroNetwork`], honoring the configured budget,
//! avoid set, and target list.

use crate::eval::{PolicyEngine, PolicyRoute, Trigger};
use miro_bgp::solver::RoutingState;
use miro_core::negotiate::{Constraint, NegotiationError};
use miro_core::node::MiroNetwork;
use miro_core::tunnel::TunnelId;
use miro_topology::{AsId, NodeId};

/// The outcome of executing one fired trigger.
#[derive(Debug)]
pub struct TriggerOutcome {
    pub trigger: Trigger,
    /// Per contacted target (in configuration order): the result.
    pub attempts: Vec<(NodeId, Result<TunnelId, NegotiationError>)>,
    /// The first successful tunnel, if any.
    pub tunnel: Option<TunnelId>,
}

/// Evaluate route-map `map_name` for `requester` against its live BGP
/// candidate set and execute any fired negotiations. Returns the
/// surviving policy routes and per-trigger outcomes.
pub fn run_policy(
    engine: &PolicyEngine,
    net: &mut MiroNetwork<'_>,
    st: &RoutingState<'_>,
    requester: NodeId,
    map_name: &str,
) -> (Vec<PolicyRoute>, Vec<TriggerOutcome>) {
    let topo = st.topology();
    // The candidate set as the policy layer sees it: AS-number paths
    // with conventional local preferences.
    let routes: Vec<PolicyRoute> = st
        .candidates(requester)
        .into_iter()
        .map(|c| PolicyRoute {
            path: c.path.iter().map(|&h| topo.asn(h).0).collect(),
            local_pref: c.class.local_pref(),
        })
        .collect();
    let (kept, triggers) = engine.apply_route_map(map_name, &routes);

    let mut outcomes = Vec::new();
    for trigger in triggers {
        let constraints: Vec<Constraint> = trigger
            .avoid
            .iter()
            .filter_map(|&asn| topo.node(AsId(asn)))
            .map(Constraint::AvoidAs)
            .collect();
        let budget = trigger.max_cost.unwrap_or(u32::MAX);
        let mut attempts = Vec::new();
        let mut tunnel = None;
        for &target_asn in &trigger.targets {
            let Some(target) = topo.node(AsId(target_asn)) else { continue };
            let r = net.negotiate(st, requester, target, constraints.clone(), budget);
            let ok = r.is_ok();
            attempts.push((target, r));
            if ok {
                tunnel = attempts.last().and_then(|(_, r)| r.as_ref().ok().copied());
                break; // one tunnel satisfies the objective (section 7.4)
            }
        }
        outcomes.push(TriggerOutcome { trigger, attempts, tunnel });
    }
    (kept, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_config;
    use miro_topology::gen::figure_1_1;

    /// The full Chapter 6 loop on Figure 1.1: AS A (ASN 1) configured to
    /// avoid AS E (ASN 5) toward F; the trigger fires, the bridge
    /// negotiates with B (ASN 2), and the BCF tunnel comes up — all from
    /// configuration text.
    #[test]
    fn configuration_text_drives_a_real_negotiation() {
        let (topo, [a, b, c, _d, _e, f]) = figure_1_1();
        let config_text = "\
router bgp 1
route-map AVOID_AS permit 10
match empty path 200
try negotiation NEG-5
ip as-path access-list 200 deny _5_
ip as-path access-list 200 permit .*
negotiation NEG-5
match all path _5_
start negotiation #1 with maximum cost 250
";
        let engine = PolicyEngine::new(parse_config(config_text).expect("parses"));
        let st = RoutingState::solve(&topo, f);
        let mut net = MiroNetwork::new(&topo);
        let (kept, outcomes) = run_policy(&engine, &mut net, &st, a, "AVOID_AS");
        assert!(kept.is_empty(), "both candidates cross AS 5");
        assert_eq!(outcomes.len(), 1);
        let out = &outcomes[0];
        assert_eq!(out.trigger.avoid, vec![5]);
        // Targets mined from the matching candidate paths: B (2) and D (4)
        // precede E (5) on A's candidates.
        assert_eq!(out.trigger.targets, vec![2, 4]);
        let tid = out.tunnel.expect("negotiation succeeded");
        let lease = &net.leases()[0];
        assert_eq!(lease.id, tid);
        assert_eq!(lease.upstream, a);
        assert_eq!(lease.downstream, b);
        assert_eq!(lease.path, vec![c, f], "the BCF alternate");
        assert_eq!(lease.budget, 250, "budget from `maximum cost`");
    }

    /// When the budget is below every offer, the bridge tries each target
    /// and reports the failures faithfully.
    #[test]
    fn insufficient_budget_fails_all_targets() {
        let (topo, [a, ..]) = figure_1_1();
        let f = topo.node(miro_topology::AsId(6)).expect("F");
        let config_text = "\
router bgp 1
route-map AVOID_AS permit 10
match empty path 200
try negotiation NEG-5
ip as-path access-list 200 deny _5_
ip as-path access-list 200 permit .*
negotiation NEG-5
match all path _5_
start negotiation #1 with maximum cost 10
";
        let engine = PolicyEngine::new(parse_config(config_text).expect("parses"));
        let st = RoutingState::solve(&topo, f);
        let mut net = MiroNetwork::new(&topo);
        let (_, outcomes) = run_policy(&engine, &mut net, &st, a, "AVOID_AS");
        let out = &outcomes[0];
        assert!(out.tunnel.is_none());
        assert_eq!(out.attempts.len(), 2, "both targets were tried");
        assert!(net.leases().is_empty());
    }

    /// A clean candidate suppresses the trigger entirely: no negotiation
    /// traffic is generated (the pull-based economy of section 3.2).
    #[test]
    fn no_trigger_no_messages() {
        let (topo, [_a, b, ..]) = figure_1_1();
        let f = topo.node(miro_topology::AsId(6)).expect("F");
        // B avoiding AS 3 (C): B's best BEF already avoids it.
        let config_text = "\
router bgp 2
route-map AVOID_AS permit 10
match empty path 200
try negotiation NEG-3
route-map AVOID_AS permit 20
match as-path 200
ip as-path access-list 200 deny _3_
ip as-path access-list 200 permit .*
negotiation NEG-3
match all path _3_
start negotiation #1 with maximum cost 250
";
        let engine = PolicyEngine::new(parse_config(config_text).expect("parses"));
        let st = RoutingState::solve(&topo, f);
        let mut net = MiroNetwork::new(&topo);
        let (kept, outcomes) = run_policy(&engine, &mut net, &st, b, "AVOID_AS");
        assert!(!kept.is_empty(), "the clean BEF candidate survives");
        assert!(outcomes.is_empty());
        assert!(net.log.is_empty(), "zero control-plane overhead");
    }
}
