//! Cisco-style AS-path regular expressions, from scratch.
//!
//! The dialect operators (section 6.1's `ip as-path access-list 200 deny
//! _312_` example):
//!
//! * `NNN` — a literal AS number;
//! * `.` — any single AS number;
//! * `_` — a boundary (start of path, end of path, or the gap between two
//!   AS numbers). Over tokenized AS paths every inter-AS position *is* a
//!   boundary, so `_` is a zero-width assertion that also documents
//!   intent, exactly like the Cisco idiom;
//! * `^` / `$` — anchors;
//! * `*`, `+`, `?` — quantifiers on the preceding atom.
//!
//! Matching is unanchored unless `^`/`$` say otherwise, over `&[u32]`
//! paths (source end first, origin last — direction does not matter to
//! the engine).

/// A compiled AS-path regex.
///
/// ```
/// use miro_policy::AsPathRegex;
///
/// // The dissertation's `ip as-path access-list 200 deny _312_`:
/// let re = AsPathRegex::parse("_312_").unwrap();
/// assert!(re.is_match(&[100, 312, 200]));
/// assert!(!re.is_match(&[100, 200]));
/// // Anchored forms work too:
/// assert!(AsPathRegex::parse("^701 .*$").unwrap().is_match(&[701, 1, 2]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsPathRegex {
    pattern: String,
    anchored_start: bool,
    anchored_end: bool,
    items: Vec<Item>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Atom {
    Asn(u32),
    Any,
    Boundary,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Quant {
    One,
    Star,
    Plus,
    Opt,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Item {
    atom: Atom,
    quant: Quant,
}

/// Regex compilation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegexError {
    /// A quantifier with nothing before it.
    DanglingQuantifier(usize),
    /// `^` not at the start or `$` not at the end.
    MisplacedAnchor(usize),
    /// Character the dialect does not know.
    BadChar(usize, char),
    /// The pattern is empty.
    Empty,
}

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegexError::DanglingQuantifier(i) => write!(f, "dangling quantifier at {i}"),
            RegexError::MisplacedAnchor(i) => write!(f, "misplaced anchor at {i}"),
            RegexError::BadChar(i, c) => write!(f, "unsupported character {c:?} at {i}"),
            RegexError::Empty => write!(f, "empty pattern"),
        }
    }
}

impl std::error::Error for RegexError {}

impl AsPathRegex {
    /// Compile a pattern.
    pub fn parse(pattern: &str) -> Result<AsPathRegex, RegexError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut items: Vec<Item> = Vec::new();
        let mut anchored_start = false;
        let mut anchored_end = false;
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match c {
                '^' => {
                    if i != 0 {
                        return Err(RegexError::MisplacedAnchor(i));
                    }
                    anchored_start = true;
                    i += 1;
                }
                '$' => {
                    if i != chars.len() - 1 {
                        return Err(RegexError::MisplacedAnchor(i));
                    }
                    anchored_end = true;
                    i += 1;
                }
                '_' => {
                    items.push(Item { atom: Atom::Boundary, quant: Quant::One });
                    i += 1;
                }
                '.' => {
                    items.push(Item { atom: Atom::Any, quant: Quant::One });
                    i += 1;
                }
                '*' | '+' | '?' => {
                    let quant = match c {
                        '*' => Quant::Star,
                        '+' => Quant::Plus,
                        _ => Quant::Opt,
                    };
                    match items.last_mut() {
                        Some(item) if item.quant == Quant::One => item.quant = quant,
                        _ => return Err(RegexError::DanglingQuantifier(i)),
                    }
                    i += 1;
                }
                ' ' => {
                    // Whitespace between numbers reads as a boundary too.
                    items.push(Item { atom: Atom::Boundary, quant: Quant::One });
                    i += 1;
                }
                d if d.is_ascii_digit() => {
                    let start = i;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    let n: u32 = chars[start..i]
                        .iter()
                        .collect::<String>()
                        .parse()
                        .map_err(|_| RegexError::BadChar(start, d))?;
                    items.push(Item { atom: Atom::Asn(n), quant: Quant::One });
                }
                other => return Err(RegexError::BadChar(i, other)),
            }
        }
        if items.is_empty() && !anchored_start && !anchored_end {
            return Err(RegexError::Empty);
        }
        Ok(AsPathRegex {
            pattern: pattern.to_string(),
            anchored_start,
            anchored_end,
            items,
        })
    }

    /// The source text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Does the regex match anywhere in `path` (subject to anchors)?
    pub fn is_match(&self, path: &[u32]) -> bool {
        if self.anchored_start {
            self.match_here(0, path, 0)
        } else {
            (0..=path.len()).any(|s| self.match_here(0, path, s))
        }
    }

    /// Backtracking matcher: items from `item` against path from `pos`.
    fn match_here(&self, item: usize, path: &[u32], pos: usize) -> bool {
        if item == self.items.len() {
            return !self.anchored_end || pos == path.len();
        }
        let it = self.items[item];
        match it.quant {
            Quant::One => {
                self.eat(it.atom, path, pos)
                    .is_some_and(|next| self.match_here(item + 1, path, next))
            }
            Quant::Opt => {
                self.match_here(item + 1, path, pos)
                    || self
                        .eat(it.atom, path, pos)
                        .is_some_and(|next| self.match_here(item + 1, path, next))
            }
            Quant::Star | Quant::Plus => {
                let mut at = pos;
                if it.quant == Quant::Plus {
                    match self.eat(it.atom, path, at) {
                        Some(next) => at = next,
                        None => return false,
                    }
                }
                loop {
                    if self.match_here(item + 1, path, at) {
                        return true;
                    }
                    match self.eat(it.atom, path, at) {
                        Some(next) if next != at => at = next,
                        // Zero-width atoms (boundary) must not loop.
                        _ => return false,
                    }
                }
            }
        }
    }

    /// Consume one atom at `pos`; returns the new position.
    fn eat(&self, atom: Atom, path: &[u32], pos: usize) -> Option<usize> {
        match atom {
            Atom::Boundary => Some(pos), // every token gap, start and end
            Atom::Any => (pos < path.len()).then_some(pos + 1),
            Atom::Asn(n) => (pos < path.len() && path[pos] == n).then_some(pos + 1),
        }
    }

    /// The literal AS numbers in the pattern, in order — used by the
    /// policy evaluator to recover "the AS this rule is about" (e.g. the
    /// 312 of `_312_`).
    pub fn literals(&self) -> Vec<u32> {
        self.items
            .iter()
            .filter_map(|it| match it.atom {
                Atom::Asn(n) => Some(n),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, path: &[u32]) -> bool {
        AsPathRegex::parse(pat).unwrap().is_match(path)
    }

    #[test]
    fn the_paper_pattern_underscore_312_underscore() {
        assert!(m("_312_", &[100, 312, 200]));
        assert!(m("_312_", &[312]));
        assert!(m("_312_", &[312, 5]));
        assert!(!m("_312_", &[100, 200]));
        assert!(!m("_312_", &[3120, 3, 12]));
    }

    #[test]
    fn anchors() {
        assert!(m("^701", &[701, 1, 2]));
        assert!(!m("^701", &[1, 701]));
        assert!(m("88$", &[1, 2, 88]));
        assert!(!m("88$", &[88, 1]));
        assert!(m("^$", &[]));
        assert!(!m("^$", &[1]));
        assert!(m("^1 2$", &[1, 2]));
        assert!(!m("^1 2$", &[1, 2, 3]));
    }

    #[test]
    fn dot_and_quantifiers() {
        assert!(m("^.$", &[42]));
        assert!(!m("^.$", &[]));
        assert!(m("^.*$", &[]));
        assert!(m("^.*$", &[1, 2, 3]));
        assert!(m("^.+$", &[1]));
        assert!(!m("^.+$", &[]));
        assert!(m("^1 .? 2$", &[1, 2]));
        assert!(m("^1 .? 2$", &[1, 9, 2]));
        assert!(!m("^1 .? 2$", &[1, 9, 9, 2]));
    }

    #[test]
    fn literal_repetition() {
        // Prepended paths like "1239 7018 88 88 88" (Table 1.1).
        assert!(m("88 88 88$", &[1239, 7018, 88, 88, 88]));
        assert!(m("^1239 7018 88+$", &[1239, 7018, 88, 88, 88]));
        assert!(!m("^1239 88+$", &[1239, 7018, 88]));
        assert!(m("7018*", &[1, 2])); // zero repetitions allowed, matches anywhere
    }

    #[test]
    fn subsequence_matching_is_contiguous() {
        assert!(m("2 3", &[1, 2, 3, 4]));
        assert!(!m("1 3", &[1, 2, 3]));
        assert!(m("1 .* 3", &[1, 2, 9, 3]));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(AsPathRegex::parse("*1").unwrap_err(), RegexError::DanglingQuantifier(0));
        assert_eq!(AsPathRegex::parse("1^"), Err(RegexError::MisplacedAnchor(1)));
        assert_eq!(AsPathRegex::parse("$1"), Err(RegexError::MisplacedAnchor(0)));
        assert!(matches!(AsPathRegex::parse("a"), Err(RegexError::BadChar(0, 'a'))));
        assert_eq!(AsPathRegex::parse(""), Err(RegexError::Empty));
        assert!(matches!(
            AsPathRegex::parse("__*"),
            Err(RegexError::DanglingQuantifier(_)) | Ok(_)
        ));
    }

    #[test]
    fn starred_boundary_terminates() {
        // A zero-width starred atom must not hang the matcher.
        if let Ok(r) = AsPathRegex::parse("_* 5") {
            assert!(r.is_match(&[5]));
            assert!(!r.is_match(&[6]));
        }
    }

    #[test]
    fn literals_extraction() {
        let r = AsPathRegex::parse("^100 .* _312_ 7$").unwrap();
        assert_eq!(r.literals(), vec![100, 312, 7]);
        assert!(AsPathRegex::parse("^.*$").unwrap().literals().is_empty());
    }
}
