//! Parser for the dissertation's extended route-map configuration dialect
//! (sections 6.1 and 6.3).
//!
//! Line-oriented, like the router configurations it imitates: `!` lines
//! are comments, indentation is ignored, and `match`/`set`/`try`/`when`/
//! `filter` lines attach to the block most recently opened by a
//! `route-map`, `negotiation`, `accept negotiation` or `negotiation
//! filter` statement.

use crate::aspath::AsPathRegex;

/// One clause inside a `route-map` block.
#[derive(Clone, Debug, PartialEq)]
pub enum RouteMapClause {
    /// `match as-path <acl>`: the route's AS path must be permitted by the
    /// access list.
    MatchAsPath(u32),
    /// `match empty path <acl>`: fires when filtering the candidate set by
    /// the access list leaves *nothing* — the negotiation trigger of
    /// section 6.3 ("initiate a negotiation if the 'deny AS 312' rule
    /// results in an empty candidate set").
    MatchEmptyPath(u32),
    /// `set local-preference <n>`.
    SetLocalPref(u32),
    /// `try negotiation <name>`.
    TryNegotiation(String),
}

/// A `route-map <name> (permit|deny) <seq>` block.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteMap {
    pub name: String,
    pub permit: bool,
    pub seq: u32,
    pub clauses: Vec<RouteMapClause>,
}

/// One `ip as-path access-list` rule.
#[derive(Clone, Debug, PartialEq)]
pub struct AclRule {
    pub permit: bool,
    pub regex: AsPathRegex,
}

/// A `negotiation <name>` block (requester side).
#[derive(Clone, Debug, PartialEq)]
pub struct NegotiationDecl {
    pub name: String,
    /// `match all path <regex>`: which candidate paths to mine for
    /// negotiation targets.
    pub path_regex: Option<AsPathRegex>,
    /// `start negotiation #<n> with maximum cost <c>`.
    pub start_index: Option<u32>,
    pub max_cost: Option<u32>,
}

/// `accept negotiation from ...` (responder side).
#[derive(Clone, Debug, PartialEq)]
pub struct AcceptDecl {
    /// `from any` vs an explicit AS list.
    pub from_any: bool,
    pub allowed: Vec<u32>,
    /// `when tunnel_number < N`.
    pub max_tunnels: Option<u64>,
}

/// One `filter permit local_pref > N` + `set tunnel_cost C` pair inside a
/// `negotiation filter` block.
#[derive(Clone, Debug, PartialEq)]
pub struct FilterRule {
    pub min_local_pref: u32,
    pub tunnel_cost: Option<u32>,
}

/// A `negotiation filter <name>` block.
#[derive(Clone, Debug, PartialEq)]
pub struct FilterDecl {
    pub name: String,
    pub rules: Vec<FilterRule>,
}

/// A neighbor statement.
#[derive(Clone, Debug, PartialEq)]
pub struct NeighborDecl {
    pub addr: String,
    pub remote_as: Option<u32>,
    pub route_map_in: Option<String>,
    pub route_map_out: Option<String>,
}

/// A parsed configuration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Config {
    pub router_asn: Option<u32>,
    pub neighbors: Vec<NeighborDecl>,
    pub route_maps: Vec<RouteMap>,
    pub access_lists: Vec<(u32, Vec<AclRule>)>,
    pub negotiations: Vec<NegotiationDecl>,
    pub accept: Option<AcceptDecl>,
    pub filters: Vec<FilterDecl>,
}

impl Config {
    /// Find an access list by id.
    pub fn acl(&self, id: u32) -> Option<&[AclRule]> {
        self.access_lists
            .iter()
            .find(|&&(i, _)| i == id)
            .map(|(_, rules)| rules.as_slice())
    }

    /// Find a negotiation declaration by name.
    pub fn negotiation(&self, name: &str) -> Option<&NegotiationDecl> {
        self.negotiations.iter().find(|n| n.name == name)
    }
}

/// Parse failures, with the 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

enum Block {
    None,
    RouteMap,
    Negotiation,
    Accept,
    Filter,
}

/// Parse a configuration document.
///
/// ```
/// let cfg = miro_policy::parse_config("\
/// router bgp 100
/// route-map AVOID permit 10
/// match as-path 200
/// set local-preference 250
/// ip as-path access-list 200 deny _312_
/// ip as-path access-list 200 permit .*
/// ").unwrap();
/// assert_eq!(cfg.router_asn, Some(100));
/// assert_eq!(cfg.acl(200).unwrap().len(), 2);
/// ```
pub fn parse_config(text: &str) -> Result<Config, ParseError> {
    let mut cfg = Config::default();
    let mut block = Block::None;
    let err = |line: usize, msg: &str| ParseError { line, message: msg.to_string() };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('!') || line.starts_with('#') {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let num = |s: &str, what: &str| -> Result<u32, ParseError> {
            s.parse().map_err(|_| err(lineno, &format!("bad {what}: {s:?}")))
        };
        match words.as_slice() {
            ["router", "bgp", asn] => {
                cfg.router_asn = Some(num(asn, "AS number")?);
                block = Block::None;
            }
            ["neighbor", addr, "remote-as", asn] => {
                let n = neighbor_mut(&mut cfg, addr);
                n.remote_as = Some(num(asn, "AS number")?);
            }
            ["neighbor", addr, "route-map", name, dir] => {
                let name = name.to_string();
                let n = neighbor_mut(&mut cfg, addr);
                match *dir {
                    "in" => n.route_map_in = Some(name),
                    "out" => n.route_map_out = Some(name),
                    _ => return Err(err(lineno, "route-map direction must be in|out")),
                }
            }
            ["route-map", name, action, rest @ ..] => {
                let permit = match *action {
                    "permit" => true,
                    "deny" => false,
                    _ => return Err(err(lineno, "route-map action must be permit|deny")),
                };
                let seq = match rest {
                    [] => 10,
                    [s] => num(s, "sequence number")?,
                    _ => return Err(err(lineno, "trailing tokens after route-map")),
                };
                cfg.route_maps.push(RouteMap {
                    name: name.to_string(),
                    permit,
                    seq,
                    clauses: Vec::new(),
                });
                block = Block::RouteMap;
            }
            ["ip", "as-path", "access-list", id, action, rest @ ..] => {
                let id = num(id, "access-list id")?;
                let permit = match *action {
                    "permit" => true,
                    "deny" => false,
                    _ => return Err(err(lineno, "access-list action must be permit|deny")),
                };
                if rest.is_empty() {
                    return Err(err(lineno, "access-list needs a pattern"));
                }
                let pattern = rest.join(" ");
                let regex = AsPathRegex::parse(&pattern)
                    .map_err(|e| err(lineno, &format!("bad pattern: {e}")))?;
                match cfg.access_lists.iter_mut().find(|(i, _)| *i == id) {
                    Some((_, rules)) => rules.push(AclRule { permit, regex }),
                    None => cfg.access_lists.push((id, vec![AclRule { permit, regex }])),
                }
            }
            ["negotiation", "filter", name] => {
                cfg.filters.push(FilterDecl { name: name.to_string(), rules: Vec::new() });
                block = Block::Filter;
            }
            ["negotiation", name] => {
                cfg.negotiations.push(NegotiationDecl {
                    name: name.to_string(),
                    path_regex: None,
                    start_index: None,
                    max_cost: None,
                });
                block = Block::Negotiation;
            }
            ["accept", "negotiation", "from", rest @ ..] => {
                let (from_any, allowed) = if rest == ["any"] {
                    (true, Vec::new())
                } else {
                    let mut list = Vec::new();
                    for a in rest {
                        list.push(num(a, "AS number")?);
                    }
                    (false, list)
                };
                cfg.accept = Some(AcceptDecl { from_any, allowed, max_tunnels: None });
                block = Block::Accept;
            }
            ["when", "tunnel_number", "<", n] => match block {
                Block::Accept => {
                    let acc = cfg.accept.as_mut().expect("accept block open");
                    acc.max_tunnels = Some(
                        n.parse().map_err(|_| err(lineno, "bad tunnel limit"))?,
                    );
                }
                _ => return Err(err(lineno, "`when` outside accept block")),
            },
            ["match", rest @ ..] => match block {
                Block::RouteMap => {
                    let rm = cfg.route_maps.last_mut().expect("route-map open");
                    let clause = match rest {
                        ["as-path", id] => RouteMapClause::MatchAsPath(num(id, "acl id")?),
                        ["empty", "path", id] => {
                            RouteMapClause::MatchEmptyPath(num(id, "acl id")?)
                        }
                        _ => return Err(err(lineno, "unknown route-map match")),
                    };
                    rm.clauses.push(clause);
                }
                Block::Negotiation => {
                    let ng = cfg.negotiations.last_mut().expect("negotiation open");
                    match rest {
                        ["all", "path", pat @ ..] if !pat.is_empty() => {
                            let pattern = pat.join(" ");
                            ng.path_regex = Some(
                                AsPathRegex::parse(&pattern)
                                    .map_err(|e| err(lineno, &format!("bad pattern: {e}")))?,
                            );
                        }
                        _ => return Err(err(lineno, "unknown negotiation match")),
                    }
                }
                _ => return Err(err(lineno, "`match` outside a block")),
            },
            ["set", rest @ ..] => match (&block, rest) {
                (Block::RouteMap, ["local-preference", n]) => {
                    cfg.route_maps
                        .last_mut()
                        .expect("route-map open")
                        .clauses
                        .push(RouteMapClause::SetLocalPref(num(n, "local preference")?));
                }
                (Block::Filter, ["tunnel_cost", n]) => {
                    let f = cfg.filters.last_mut().expect("filter open");
                    match f.rules.last_mut() {
                        Some(rule) => rule.tunnel_cost = Some(num(n, "tunnel cost")?),
                        None => return Err(err(lineno, "set tunnel_cost before any filter rule")),
                    }
                }
                _ => return Err(err(lineno, "unknown set statement")),
            },
            ["try", "negotiation", name] => match block {
                Block::RouteMap => {
                    cfg.route_maps
                        .last_mut()
                        .expect("route-map open")
                        .clauses
                        .push(RouteMapClause::TryNegotiation(name.to_string()));
                }
                _ => return Err(err(lineno, "`try negotiation` outside route-map")),
            },
            ["start", "negotiation", index, "with", "maximum", "cost", c] => match block {
                Block::Negotiation => {
                    let ng = cfg.negotiations.last_mut().expect("negotiation open");
                    let idx = index.trim_start_matches('#');
                    ng.start_index = Some(num(idx, "negotiation index")?);
                    ng.max_cost = Some(num(c, "maximum cost")?);
                }
                _ => return Err(err(lineno, "`start negotiation` outside negotiation block")),
            },
            ["filter", action, "local_pref", ">", n] => match block {
                Block::Filter => {
                    if *action != "permit" {
                        return Err(err(lineno, "only `filter permit` is supported"));
                    }
                    cfg.filters
                        .last_mut()
                        .expect("filter open")
                        .rules
                        .push(FilterRule {
                            min_local_pref: num(n, "local preference")?,
                            tunnel_cost: None,
                        });
                }
                _ => return Err(err(lineno, "`filter` outside filter block")),
            },
            _ => return Err(err(lineno, &format!("unrecognized statement: {line:?}"))),
        }
    }
    Ok(cfg)
}

fn neighbor_mut<'c>(cfg: &'c mut Config, addr: &str) -> &'c mut NeighborDecl {
    if let Some(i) = cfg.neighbors.iter().position(|n| n.addr == addr) {
        return &mut cfg.neighbors[i];
    }
    cfg.neighbors.push(NeighborDecl {
        addr: addr.to_string(),
        remote_as: None,
        route_map_in: None,
        route_map_out: None,
    });
    cfg.neighbors.last_mut().expect("just pushed")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact section 6.1 example.
    const CISCO_EXAMPLE: &str = "\
router bgp 100
!
neighbor 12.34.56.1 route-map FIX-LOCALPREF in
neighbor 12.34.56.1 remote-as 1
!
route-map FIX-LOCALPREF permit
match as-path 200
set local-preference 250
!
ip as-path access-list 200 deny _312_
";

    /// The section 6.3 requesting-AS example.
    const REQUESTER_EXAMPLE: &str = "\
router bgp 100
!
route-map AVOID_AS permit 10
match empty path 200
try negotiation NEG-312
!
ip as-path access-list 200 deny _312_
ip as-path access-list 200 permit .*
!
negotiation NEG-312
match all path _312_
start negotiation #1 with maximum cost 250
";

    /// The section 6.3 responding-AS example.
    const RESPONDER_EXAMPLE: &str = "\
router bgp 150
!
accept negotiation from any
when tunnel_number < 1000
!
negotiation filter FILTER-1
filter permit local_pref > 200
set tunnel_cost 120
filter permit local_pref > 100
set tunnel_cost 180
";

    #[test]
    fn parses_the_section_6_1_example() {
        let cfg = parse_config(CISCO_EXAMPLE).unwrap();
        assert_eq!(cfg.router_asn, Some(100));
        assert_eq!(cfg.neighbors.len(), 1);
        assert_eq!(cfg.neighbors[0].remote_as, Some(1));
        assert_eq!(cfg.neighbors[0].route_map_in.as_deref(), Some("FIX-LOCALPREF"));
        let rm = &cfg.route_maps[0];
        assert!(rm.permit);
        assert_eq!(rm.seq, 10);
        assert_eq!(
            rm.clauses,
            vec![RouteMapClause::MatchAsPath(200), RouteMapClause::SetLocalPref(250)]
        );
        let acl = cfg.acl(200).unwrap();
        assert_eq!(acl.len(), 1);
        assert!(!acl[0].permit);
        assert!(acl[0].regex.is_match(&[1, 312, 9]));
    }

    #[test]
    fn parses_the_section_6_3_requester() {
        let cfg = parse_config(REQUESTER_EXAMPLE).unwrap();
        let rm = &cfg.route_maps[0];
        assert_eq!(rm.name, "AVOID_AS");
        assert_eq!(
            rm.clauses,
            vec![
                RouteMapClause::MatchEmptyPath(200),
                RouteMapClause::TryNegotiation("NEG-312".into())
            ]
        );
        let ng = cfg.negotiation("NEG-312").unwrap();
        assert_eq!(ng.start_index, Some(1));
        assert_eq!(ng.max_cost, Some(250));
        assert!(ng.path_regex.as_ref().unwrap().is_match(&[7, 312]));
        assert_eq!(cfg.acl(200).unwrap().len(), 2);
    }

    #[test]
    fn parses_the_section_6_3_responder() {
        let cfg = parse_config(RESPONDER_EXAMPLE).unwrap();
        assert_eq!(cfg.router_asn, Some(150));
        let acc = cfg.accept.as_ref().unwrap();
        assert!(acc.from_any);
        assert_eq!(acc.max_tunnels, Some(1000));
        let f = &cfg.filters[0];
        assert_eq!(f.name, "FILTER-1");
        assert_eq!(
            f.rules,
            vec![
                FilterRule { min_local_pref: 200, tunnel_cost: Some(120) },
                FilterRule { min_local_pref: 100, tunnel_cost: Some(180) },
            ]
        );
    }

    #[test]
    fn accept_from_explicit_list() {
        let cfg = parse_config("accept negotiation from 100 200 300\n").unwrap();
        let acc = cfg.accept.unwrap();
        assert!(!acc.from_any);
        assert_eq!(acc.allowed, vec![100, 200, 300]);
        assert_eq!(acc.max_tunnels, None);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_config("router bgp 100\nbogus line here\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_config("match as-path 200\n").unwrap_err();
        assert!(e.message.contains("outside"));
        let e = parse_config("ip as-path access-list 5 permit [junk]\n").unwrap_err();
        assert!(e.message.contains("bad pattern"));
        let e = parse_config("when tunnel_number < 10\n").unwrap_err();
        assert!(e.message.contains("outside accept"));
    }

    #[test]
    fn multiple_route_map_entries_keep_order() {
        let cfg = parse_config(
            "route-map M permit 10\nmatch as-path 1\nroute-map M deny 20\nmatch as-path 2\nip as-path access-list 1 permit .*\nip as-path access-list 2 permit .*\n",
        )
        .unwrap();
        assert_eq!(cfg.route_maps.len(), 2);
        assert_eq!(cfg.route_maps[0].seq, 10);
        assert!(!cfg.route_maps[1].permit);
    }
}
