//! The routing-policy layer of Chapter 6: a Cisco-style AS-path regex
//! engine and the dissertation's "imaginary extended route-map"
//! configuration language, parsed and executed.
//!
//! The paper deliberately does not standardize a policy language
//! ("the underlying mechanisms should give users maximum flexibility"),
//! but Chapter 6.3 works a complete example in an extended route-map
//! syntax. This crate implements that dialect:
//!
//! * [`aspath`] - `ip as-path access-list`-style regular expressions over
//!   AS paths (`_312_`, `^701 .*$`, ...), with a from-scratch backtracking
//!   matcher (no regex crate);
//! * [`parse`] - tokenizer and parser for the configuration statements of
//!   sections 6.1 and 6.3 (`router bgp`, `route-map`, `ip as-path
//!   access-list`, `negotiation`, `accept negotiation`, `negotiation
//!   filter`);
//! * [`eval`] - execution semantics: route-map application over candidate
//!   routes, the `match empty path` negotiation trigger, target selection
//!   from `match all path`, and responder-side offer filtering/pricing
//!   (`filter permit local_pref > N` / `set tunnel_cost C`) - bridged to
//!   the `miro-core` negotiation machinery.

pub mod aspath;
pub mod bridge;
pub mod eval;
pub mod parse;

pub use aspath::AsPathRegex;
pub use eval::{PolicyEngine, Trigger};
pub use parse::{parse_config, Config, ParseError};
