//! Execution semantics for the parsed configuration (section 6.2's
//! negotiation-related and route-selection rules).

use crate::parse::{Config, NegotiationDecl, RouteMapClause};

/// A route as the policy layer sees it: the AS-number path (next hop
/// first, origin last) and its local-preference value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyRoute {
    pub path: Vec<u32>,
    pub local_pref: u32,
}

/// A negotiation request produced by a `try negotiation` clause firing.
#[derive(Clone, Debug, PartialEq)]
pub struct Trigger {
    /// The negotiation block to execute.
    pub negotiation: String,
    /// Budget from `start negotiation ... with maximum cost`.
    pub max_cost: Option<u32>,
    /// ASes to avoid, recovered from the deny rules of the access list
    /// that came up empty (the 312 of `deny _312_`).
    pub avoid: Vec<u32>,
    /// Candidate negotiation targets: the ASes sitting between the
    /// requester and the first avoided AS on each matching path
    /// (section 6.2.1's targeting heuristic), in path order, deduplicated.
    pub targets: Vec<u32>,
}

/// The policy engine: a parsed [`Config`] plus evaluation methods.
pub struct PolicyEngine {
    cfg: Config,
}

impl PolicyEngine {
    pub fn new(cfg: Config) -> Self {
        PolicyEngine { cfg }
    }

    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Access-list evaluation: the first rule whose regex matches decides;
    /// an unmatched path is denied (the Cisco implicit deny-all).
    pub fn acl_permits(&self, id: u32, path: &[u32]) -> bool {
        let Some(rules) = self.cfg.acl(id) else { return false };
        for rule in rules {
            if rule.regex.is_match(path) {
                return rule.permit;
            }
        }
        false
    }

    /// Apply route-map `name` to a candidate set: returns the surviving
    /// (possibly modified) routes, and any negotiation triggers fired by
    /// `match empty path` entries (section 6.3's AVOID_AS example).
    pub fn apply_route_map(
        &self,
        name: &str,
        routes: &[PolicyRoute],
    ) -> (Vec<PolicyRoute>, Vec<Trigger>) {
        let mut entries: Vec<_> =
            self.cfg.route_maps.iter().filter(|rm| rm.name == name).collect();
        entries.sort_by_key(|rm| rm.seq);

        // Per-route filtering by the non-trigger entries.
        let mut kept = Vec::new();
        'routes: for route in routes {
            for rm in &entries {
                // Trigger entries don't classify individual routes.
                if rm.clauses.iter().any(|c| matches!(c, RouteMapClause::MatchEmptyPath(_))) {
                    continue;
                }
                let matches = rm.clauses.iter().all(|c| match c {
                    RouteMapClause::MatchAsPath(acl) => self.acl_permits(*acl, &route.path),
                    _ => true,
                });
                if matches {
                    if rm.permit {
                        let mut out = route.clone();
                        for c in &rm.clauses {
                            if let RouteMapClause::SetLocalPref(lp) = c {
                                out.local_pref = *lp;
                            }
                        }
                        kept.push(out);
                    }
                    continue 'routes; // first matching entry decides
                }
            }
            // No entry matched: implicit deny.
        }

        // Trigger entries: fire when the ACL-filtered candidate set is
        // empty.
        let mut triggers = Vec::new();
        for rm in &entries {
            let empty_acls: Vec<u32> = rm
                .clauses
                .iter()
                .filter_map(|c| match c {
                    RouteMapClause::MatchEmptyPath(id) => Some(*id),
                    _ => None,
                })
                .collect();
            if empty_acls.is_empty() {
                continue;
            }
            let fired = empty_acls
                .iter()
                .all(|&acl| routes.iter().all(|r| !self.acl_permits(acl, &r.path)));
            if !fired {
                continue;
            }
            let avoid: Vec<u32> = empty_acls
                .iter()
                .flat_map(|&acl| {
                    self.cfg
                        .acl(acl)
                        .into_iter()
                        .flatten()
                        .filter(|r| !r.permit)
                        .flat_map(|r| r.regex.literals())
                })
                .collect();
            for c in &rm.clauses {
                if let RouteMapClause::TryNegotiation(nname) = c {
                    let decl = self.cfg.negotiation(nname);
                    let targets = decl
                        .map(|d| negotiation_targets(d, routes, &avoid))
                        .unwrap_or_default();
                    triggers.push(Trigger {
                        negotiation: nname.clone(),
                        max_cost: decl.and_then(|d| d.max_cost),
                        avoid: avoid.clone(),
                        targets,
                    });
                }
            }
        }
        (kept, triggers)
    }

    /// Responder admission (section 6.2.1): is this requester allowed to
    /// open a negotiation, given the current live tunnel count?
    pub fn admits(&self, from_asn: u32, current_tunnels: u64) -> bool {
        match &self.cfg.accept {
            None => false, // no accept statement: negotiations refused
            Some(acc) => {
                (acc.from_any || acc.allowed.contains(&from_asn))
                    && acc.max_tunnels.is_none_or(|m| current_tunnels < m)
            }
        }
    }

    /// Responder offer pricing: run a route's local preference through a
    /// `negotiation filter` block. The first `filter permit local_pref >
    /// N` rule that admits it sets the price; inadmissible routes are not
    /// offered (section 6.3's FILTER-1 sells customer routes at 120, peer
    /// routes at 180, and provider routes not at all).
    pub fn price(&self, filter: &str, local_pref: u32) -> Option<u32> {
        let f = self.cfg.filters.iter().find(|f| f.name == filter)?;
        for rule in &f.rules {
            if local_pref > rule.min_local_pref {
                return rule.tunnel_cost.or(Some(0));
            }
        }
        None
    }
}

/// Target mining for the section 6.2.1 heuristic: on every candidate path
/// matching the negotiation's `match all path` regex, the ASes *before*
/// the first avoided AS are plausible responders (they sit between the
/// requester and the offender). Order follows path position; duplicates
/// removed.
pub fn negotiation_targets(
    decl: &NegotiationDecl,
    routes: &[PolicyRoute],
    avoid: &[u32],
) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for r in routes {
        if let Some(re) = &decl.path_regex {
            if !re.is_match(&r.path) {
                continue;
            }
        }
        let cut = r
            .path
            .iter()
            .position(|a| avoid.contains(a))
            .unwrap_or(r.path.len());
        for &hop in &r.path[..cut] {
            if !out.contains(&hop) {
                out.push(hop);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_config;

    const REQUESTER: &str = "\
router bgp 100
route-map AVOID_AS permit 10
match empty path 200
try negotiation NEG-312
ip as-path access-list 200 deny _312_
ip as-path access-list 200 permit .*
negotiation NEG-312
match all path _312_
start negotiation #1 with maximum cost 250
";

    // The section 6.3 responder, with the thresholds aligned to the
    // local-preference bands of section 2.2.2 (customer 400-500, peer
    // 200-300): rules are first-match, so the tighter band comes first.
    const RESPONDER: &str = "\
router bgp 150
accept negotiation from any
when tunnel_number < 1000
negotiation filter FILTER-1
filter permit local_pref > 400
set tunnel_cost 120
filter permit local_pref > 200
set tunnel_cost 180
";

    fn route(path: &[u32], lp: u32) -> PolicyRoute {
        PolicyRoute { path: path.to_vec(), local_pref: lp }
    }

    #[test]
    fn acl_first_match_and_implicit_deny() {
        let e = PolicyEngine::new(parse_config(REQUESTER).unwrap());
        assert!(!e.acl_permits(200, &[7, 312, 9]), "deny rule hits first");
        assert!(e.acl_permits(200, &[7, 9]), "falls through to permit .*");
        assert!(!e.acl_permits(999, &[7]), "unknown list denies");
        // Implicit deny when no rule matches at all.
        let only_deny =
            PolicyEngine::new(parse_config("ip as-path access-list 1 deny _5_\n").unwrap());
        assert!(!only_deny.acl_permits(1, &[7, 9]));
    }

    #[test]
    fn trigger_fires_only_when_candidates_all_traverse_the_bad_as() {
        let e = PolicyEngine::new(parse_config(REQUESTER).unwrap());
        // Both candidates go through 312: trigger fires.
        let routes = [route(&[2, 312, 6], 450), route(&[4, 312, 6], 450)];
        let (kept, triggers) = e.apply_route_map("AVOID_AS", &routes);
        assert!(kept.is_empty(), "no clean route survives the intent");
        assert_eq!(triggers.len(), 1);
        let t = &triggers[0];
        assert_eq!(t.negotiation, "NEG-312");
        assert_eq!(t.max_cost, Some(250));
        assert_eq!(t.avoid, vec![312]);
        // Targets: ASes before 312 on the matching paths.
        assert_eq!(t.targets, vec![2, 4]);
        // One clean candidate exists: no trigger.
        let routes = [route(&[2, 312, 6], 450), route(&[4, 5, 6], 450)];
        let (_, triggers) = e.apply_route_map("AVOID_AS", &routes);
        assert!(triggers.is_empty());
    }

    #[test]
    fn section_6_1_route_map_sets_local_pref() {
        let text = "\
route-map FIX-LOCALPREF permit
match as-path 200
set local-preference 250
ip as-path access-list 200 deny _312_
ip as-path access-list 200 permit .*
";
        let e = PolicyEngine::new(parse_config(text).unwrap());
        let routes = [route(&[1, 2], 100), route(&[1, 312], 100)];
        let (kept, _) = e.apply_route_map("FIX-LOCALPREF", &routes);
        // The clean route is accepted with local-pref 250; the 312 route
        // fails the match and hits the implicit deny.
        assert_eq!(kept, vec![route(&[1, 2], 250)]);
    }

    #[test]
    fn responder_admission() {
        let e = PolicyEngine::new(parse_config(RESPONDER).unwrap());
        assert!(e.admits(42, 0));
        assert!(e.admits(42, 999));
        assert!(!e.admits(42, 1000), "tunnel budget exhausted");
        // A config with no accept statement refuses everything.
        let closed = PolicyEngine::new(parse_config("router bgp 1\n").unwrap());
        assert!(!closed.admits(42, 0));
        // Allow-list admission.
        let listed =
            PolicyEngine::new(parse_config("accept negotiation from 100 200\n").unwrap());
        assert!(listed.admits(100, 0));
        assert!(!listed.admits(300, 0));
    }

    #[test]
    fn filter_prices_by_local_pref_band() {
        let e = PolicyEngine::new(parse_config(RESPONDER).unwrap());
        // Customer band (450) -> 120; peer band (250) -> 180; provider
        // band (80) -> not offered. Exactly the section 6.3 narrative.
        assert_eq!(e.price("FILTER-1", 450), Some(120));
        assert_eq!(e.price("FILTER-1", 250), Some(180));
        assert_eq!(e.price("FILTER-1", 80), None);
        assert_eq!(e.price("NO-SUCH", 450), None);
    }

    #[test]
    fn target_mining_respects_regex_and_cut() {
        let decl = NegotiationDecl {
            name: "N".into(),
            path_regex: Some(crate::aspath::AsPathRegex::parse("_312_").unwrap()),
            start_index: Some(1),
            max_cost: Some(9),
        };
        let routes = [
            route(&[2, 3, 312, 6], 0),
            route(&[4, 5, 6], 0), // does not match the regex: ignored
            route(&[3, 312, 7], 0),
        ];
        let t = negotiation_targets(&decl, &routes, &[312]);
        assert_eq!(t, vec![2, 3], "prefix ASes, deduplicated, path order");
    }
}
