//! Property-based tests for the policy layer: the AS-path regex engine
//! and the configuration parser are total (no panics), and their
//! semantics satisfy algebraic invariants.

use miro_policy::eval::{PolicyEngine, PolicyRoute};
use miro_policy::{parse_config, AsPathRegex};
use proptest::prelude::*;

fn arb_path() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(1u32..1000, 0..8)
}

proptest! {
    /// A literal pattern built from a path matches that path, anchored
    /// and unanchored.
    #[test]
    fn literal_pattern_matches_itself(path in proptest::collection::vec(1u32..1000, 1..8)) {
        let body = path.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(" ");
        let unanchored = AsPathRegex::parse(&body).expect("valid literal pattern");
        prop_assert!(unanchored.is_match(&path));
        let anchored = AsPathRegex::parse(&format!("^{body}$")).expect("valid");
        prop_assert!(anchored.is_match(&path));
        // Anchored pattern must not match the path with an extra hop.
        let mut longer = path.clone();
        longer.push(1);
        prop_assert!(!anchored.is_match(&longer));
    }

    /// `_N_` matches exactly the paths containing N.
    #[test]
    fn underscore_literal_is_containment(n in 1u32..1000, path in arb_path()) {
        let re = AsPathRegex::parse(&format!("_{n}_")).expect("valid");
        prop_assert_eq!(re.is_match(&path), path.contains(&n));
    }

    /// `^.*$` matches everything; `^$` matches only the empty path.
    #[test]
    fn universal_and_empty_patterns(path in arb_path()) {
        prop_assert!(AsPathRegex::parse("^.*$").expect("valid").is_match(&path));
        prop_assert_eq!(AsPathRegex::parse("^$").expect("valid").is_match(&path), path.is_empty());
    }

    /// An unanchored pattern that matches still matches after adding
    /// arbitrary prefix/suffix hops (substring semantics).
    #[test]
    fn unanchored_matching_is_substring_closed(
        core in proptest::collection::vec(1u32..1000, 1..5),
        pre in arb_path(),
        post in arb_path(),
    ) {
        let body = core.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(" ");
        let re = AsPathRegex::parse(&body).expect("valid");
        let mut full = pre;
        full.extend(&core);
        full.extend(&post);
        prop_assert!(re.is_match(&full));
    }

    /// The regex parser is total over arbitrary strings from the dialect
    /// alphabet: it returns Ok or Err, never panics, and the matcher
    /// terminates on every accepted pattern.
    #[test]
    fn regex_engine_is_total(
        pattern in "[0-9 ._*+?^$]{0,16}",
        path in arb_path(),
    ) {
        if let Ok(re) = AsPathRegex::parse(&pattern) {
            let _ = re.is_match(&path); // must terminate without panic
        }
    }

    /// The configuration parser never panics on arbitrary line soup, and
    /// accepts-or-rejects deterministically.
    #[test]
    fn config_parser_is_total(text in "[a-z0-9 <>#!._\\-\n]{0,400}") {
        let a = parse_config(&text);
        let b = parse_config(&text);
        prop_assert_eq!(a.is_ok(), b.is_ok());
    }

    /// ACL semantics: permit-all permits everything; deny-then-permit is
    /// first-match (the deny wins for covered paths).
    #[test]
    fn acl_first_match_semantics(n in 1u32..1000, path in arb_path()) {
        let cfg = format!(
            "ip as-path access-list 9 deny _{n}_\nip as-path access-list 9 permit .*\n"
        );
        let e = PolicyEngine::new(parse_config(&cfg).expect("valid config"));
        prop_assert_eq!(e.acl_permits(9, &path), !path.contains(&n));
    }

    /// Route-map filter + trigger coherence: the AVOID trigger fires iff
    /// no candidate survives the ACL, for arbitrary candidate sets.
    #[test]
    fn trigger_fires_iff_no_clean_candidate(
        n in 1u32..1000,
        paths in proptest::collection::vec(proptest::collection::vec(1u32..1000, 1..6), 1..6),
    ) {
        let cfg = format!(
            "route-map M permit 10\nmatch empty path 9\ntry negotiation N\n\
             ip as-path access-list 9 deny _{n}_\nip as-path access-list 9 permit .*\n\
             negotiation N\nstart negotiation #1 with maximum cost 100\n"
        );
        let e = PolicyEngine::new(parse_config(&cfg).expect("valid config"));
        let routes: Vec<PolicyRoute> = paths
            .iter()
            .map(|p| PolicyRoute { path: p.clone(), local_pref: 100 })
            .collect();
        let (_, triggers) = e.apply_route_map("M", &routes);
        let any_clean = paths.iter().any(|p| !p.contains(&n));
        prop_assert_eq!(triggers.is_empty(), any_clean);
    }
}
