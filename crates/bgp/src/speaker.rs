//! A wire-level BGP speaker: sessions, real UPDATE messages, rib-in,
//! decision process, and re-advertisement — the protocol machinery of
//! section 2.2.2 joined up, byte-for-byte.
//!
//! The AS-level solver and simulator answer the evaluation's questions;
//! this speaker exists because MIRO claims *backward compatibility with
//! deployed BGP* (section 3.2), and that claim is only credible if the
//! reproduction actually speaks the protocol: OPEN handshakes, UPDATEs
//! with path attributes, implicit withdraws, loop rejection on AS_PATH,
//! and incremental re-advertisement on best-path changes. Transport is
//! abstract: callers move the byte queues between speakers (tests pump
//! them in-memory; a deployment would use TCP sockets).

use crate::decision::{select_best, Origin, RouteAttrs};
use crate::session::{Action, Event, Session, SessionConfig, State};
use crate::wire::{BgpMessage, PathAttributes, WireError, WirePrefix};
use std::collections::HashMap;

/// Per-peer configuration: who we expect and how we value their routes.
#[derive(Clone, Debug)]
pub struct PeerConfig {
    pub remote_as: u16,
    /// LOCAL_PREF assigned to routes from this peer (the section 2.2.2
    /// convention: customers 400-500, peers 200-300, providers 50-100).
    /// Ignored for iBGP peers, whose UPDATEs carry LOCAL_PREF explicitly.
    pub local_pref: u32,
    /// May we advertise non-customer-learned routes to this peer? (The
    /// export rule abstraction: `true` for customers, `false` for peers
    /// and providers.) iBGP peers always receive the best route.
    pub full_export: bool,
    /// iBGP session (same AS): no AS prepending, LOCAL_PREF carried on
    /// the wire, iBGP-learned routes never re-advertised to other iBGP
    /// peers (full-mesh rule), and eBGP beats iBGP at decision step 5.
    pub ibgp: bool,
}

impl PeerConfig {
    /// An eBGP peer.
    pub fn ebgp(remote_as: u16, local_pref: u32, full_export: bool) -> PeerConfig {
        PeerConfig { remote_as, local_pref, full_export, ibgp: false }
    }

    /// An iBGP peer in the same AS.
    pub fn ibgp(my_as: u16) -> PeerConfig {
        PeerConfig { remote_as: my_as, local_pref: 0, full_export: true, ibgp: true }
    }
}

struct Peer {
    cfg: PeerConfig,
    session: Session,
    /// Bytes waiting for the transport to carry to this peer.
    out: Vec<u8>,
    /// Partial inbound bytes (stream reassembly).
    inbuf: Vec<u8>,
    /// rib-in: latest route per prefix from this peer.
    rib_in: HashMap<WirePrefix, PathAttributes>,
    /// What we have advertised to this peer (to withdraw on change).
    advertised: HashMap<WirePrefix, Vec<u32>>,
}

/// One BGP speaker (a router with eBGP and/or iBGP sessions).
///
/// ```
/// use miro_bgp::speaker::{pump, PeerConfig, Speaker};
/// use miro_bgp::wire::WirePrefix;
///
/// let mut origin = Speaker::new(65003, 3);
/// let mut transit = Speaker::new(65002, 2);
/// let p_o = origin.add_peer(PeerConfig::ebgp(65002, 80, false));
/// let p_t = transit.add_peer(PeerConfig::ebgp(65003, 450, true));
/// let prefix = WirePrefix::new(0x0a030000, 16);
/// origin.originate(prefix);
/// origin.start();
/// transit.start();
/// let mut speakers = vec![origin, transit];
/// pump(&mut speakers, &[(0, p_o, 1, p_t)]);
/// assert_eq!(speakers[1].best_path(prefix), Some(vec![65003]));
/// ```
pub struct Speaker {
    pub asn: u16,
    bgp_id: u32,
    peers: Vec<Peer>,
    /// Prefixes this speaker originates.
    originated: Vec<WirePrefix>,
    /// Current best per prefix: (peer index or None for originated, attrs).
    selected: HashMap<WirePrefix, (Option<usize>, PathAttributes)>,
}

impl Speaker {
    pub fn new(asn: u16, bgp_id: u32) -> Speaker {
        Speaker { asn, bgp_id, peers: Vec::new(), originated: Vec::new(), selected: HashMap::new() }
    }

    /// Register a peer; returns its index. Sessions start Idle.
    pub fn add_peer(&mut self, cfg: PeerConfig) -> usize {
        let session = Session::new(SessionConfig {
            my_as: self.asn,
            bgp_id: self.bgp_id,
            hold_time: 90,
            expect_as: Some(cfg.remote_as),
        });
        self.peers.push(Peer {
            cfg,
            session,
            out: Vec::new(),
            inbuf: Vec::new(),
            rib_in: HashMap::new(),
            advertised: HashMap::new(),
        });
        self.peers.len() - 1
    }

    /// Originate a prefix (and advertise it once sessions come up).
    pub fn originate(&mut self, prefix: WirePrefix) {
        self.originated.push(prefix);
        self.selected.insert(
            prefix,
            (None, PathAttributes { origin: Some(0), ..Default::default() }),
        );
        self.readvertise(prefix);
    }

    /// Start all sessions (operator `ManualStart` + transport up).
    pub fn start(&mut self) {
        for i in 0..self.peers.len() {
            let mut acts = self.peers[i].session.handle(Event::ManualStart);
            acts.extend(self.peers[i].session.handle(Event::TransportUp));
            self.apply_actions(i, acts);
        }
    }

    /// Drain the bytes queued for peer `i` (the transport's job).
    pub fn output(&mut self, i: usize) -> Vec<u8> {
        std::mem::take(&mut self.peers[i].out)
    }

    /// Feed bytes that arrived from peer `i`.
    pub fn input(&mut self, i: usize, bytes: &[u8]) {
        self.peers[i].inbuf.extend_from_slice(bytes);
        loop {
            let parse_result = BgpMessage::parse(&self.peers[i].inbuf);
            match parse_result {
                Ok((msg, used)) => {
                    self.peers[i].inbuf.drain(..used);
                    let acts = self.peers[i].session.handle(Event::Message(msg));
                    self.apply_actions(i, acts);
                }
                Err(WireError::Truncated) => break, // wait for more bytes
                Err(e) => {
                    self.peers[i].inbuf.clear();
                    let acts = self.peers[i].session.handle(Event::Garbage(e));
                    self.apply_actions(i, acts);
                    break;
                }
            }
        }
    }

    /// Advance session timers.
    pub fn tick(&mut self, now: u64) {
        for i in 0..self.peers.len() {
            let acts = self.peers[i].session.tick(now);
            self.apply_actions(i, acts);
        }
    }

    /// Session state of peer `i`.
    pub fn session_state(&self, i: usize) -> State {
        self.peers[i].session.state()
    }

    /// The selected AS path toward `prefix` (empty for originated; `None`
    /// if unknown).
    pub fn best_path(&self, prefix: WirePrefix) -> Option<Vec<u32>> {
        self.selected.get(&prefix).map(|(_, a)| a.as_path.clone())
    }

    fn apply_actions(&mut self, i: usize, actions: Vec<Action>) {
        for act in actions {
            match act {
                Action::Send(m) => {
                    let bytes = m.emit().expect("session messages encode");
                    self.peers[i].out.extend_from_slice(&bytes);
                }
                Action::SessionUp => {
                    // Initial table transfer (section 2.2.2: "when a router
                    // first connects to a neighbor, the entire BGP routing
                    // table is transmitted").
                    let prefixes: Vec<WirePrefix> = self.selected.keys().copied().collect();
                    for p in prefixes {
                        self.advertise_to(i, p);
                    }
                }
                Action::SessionDown => {
                    // Routes from this peer are invalid: re-select.
                    let lost: Vec<WirePrefix> =
                        self.peers[i].rib_in.keys().copied().collect();
                    self.peers[i].rib_in.clear();
                    self.peers[i].advertised.clear();
                    for p in lost {
                        self.reselect(p);
                    }
                }
                Action::DeliverUpdate(BgpMessage::Update { withdrawn, attrs, nlri }) => {
                    for p in withdrawn {
                        self.peers[i].rib_in.remove(&p);
                        self.reselect(p);
                    }
                    if !nlri.is_empty() {
                        // Implicit import policy: reject our own AS in the
                        // path (loop prevention, section 2.1.1).
                        if !attrs.as_path.contains(&u32::from(self.asn)) {
                            for p in nlri {
                                self.peers[i].rib_in.insert(p, attrs.clone());
                                self.reselect(p);
                            }
                        }
                    }
                }
                Action::DeliverUpdate(_) | Action::CloseTransport => {}
            }
        }
    }

    /// Re-run the decision process for one prefix; re-advertise on change.
    fn reselect(&mut self, prefix: WirePrefix) {
        let mut cands: Vec<(Option<usize>, PathAttributes, RouteAttrs)> = Vec::new();
        if self.originated.contains(&prefix) {
            cands.push((
                None,
                PathAttributes { origin: Some(0), ..Default::default() },
                RouteAttrs {
                    local_pref: u32::MAX, // own prefix always wins
                    as_path_len: 0,
                    ..RouteAttrs::default()
                },
            ));
        }
        for (idx, peer) in self.peers.iter().enumerate() {
            if let Some(a) = peer.rib_in.get(&prefix) {
                cands.push((
                    Some(idx),
                    a.clone(),
                    RouteAttrs {
                        // iBGP routes carry LOCAL_PREF on the wire
                        // (section 2.2.2); eBGP routes get it from import
                        // configuration.
                        local_pref: if peer.cfg.ibgp {
                            a.local_pref.unwrap_or(100)
                        } else {
                            peer.cfg.local_pref
                        },
                        as_path_len: a.as_path.len() as u32,
                        origin: match a.origin {
                            Some(1) => Origin::Egp,
                            Some(2) => Origin::Incomplete,
                            _ => Origin::Igp,
                        },
                        med: a.med.unwrap_or(0),
                        neighbor_as: u32::from(peer.cfg.remote_as),
                        ebgp: !peer.cfg.ibgp, // decision step 5
                        igp_dist: 0,
                        router_id: idx as u32,
                        peer_addr: idx as u32,
                    },
                ));
            }
        }
        let new = select_best(&cands.iter().map(|(_, _, r)| r.clone()).collect::<Vec<_>>())
            .map(|i| (cands[i].0, cands[i].1.clone()));
        let old = self.selected.get(&prefix).cloned();
        match new {
            Some(n) => {
                if old.as_ref() != Some(&n) {
                    self.selected.insert(prefix, n);
                    self.readvertise(prefix);
                }
            }
            None => {
                if old.is_some() {
                    self.selected.remove(&prefix);
                    self.readvertise(prefix);
                }
            }
        }
    }

    /// Send the current best for `prefix` (or a withdraw) to every
    /// established peer the export policy allows.
    fn readvertise(&mut self, prefix: WirePrefix) {
        for i in 0..self.peers.len() {
            self.advertise_to(i, prefix);
        }
    }

    fn advertise_to(&mut self, i: usize, prefix: WirePrefix) {
        if self.peers[i].session.state() != State::Established {
            return;
        }
        let selected = self.selected.get(&prefix).cloned();
        // Export policy: full export to customers; to peers/providers only
        // routes we originated or learned from customers. We approximate
        // "customer-learned" as "learned from a full-export peer" — the
        // caller encodes relationships through PeerConfig. iBGP peers get
        // the best route unconditionally, except that iBGP-learned routes
        // are not re-reflected to other iBGP peers (full-mesh rule).
        let to_ibgp = self.peers[i].cfg.ibgp;
        let exportable = match &selected {
            None => None,
            Some((src, attrs)) => {
                let from_ibgp = src.is_some_and(|s| self.peers[s].cfg.ibgp);
                let allowed = if to_ibgp {
                    !from_ibgp // full mesh: eBGP-learned and originated only
                } else {
                    self.peers[i].cfg.full_export
                        || src.is_none()
                        || src.is_some_and(|s| {
                            // learned from a customer (customer peers are the
                            // ones we grant full export *to*; symmetric in the
                            // conventional policies).
                            self.peers[s].cfg.full_export
                        })
                };
                // Never send a route back to the peer it came from, and
                // never send a path already containing the peer's AS
                // (for eBGP receivers).
                let loops = src == &Some(i)
                    || (!to_ibgp
                        && attrs
                            .as_path
                            .contains(&u32::from(self.peers[i].cfg.remote_as)));
                (allowed && !loops).then(|| attrs.clone())
            }
        };
        match exportable {
            Some(attrs) => {
                let mut out_attrs = attrs;
                if to_ibgp {
                    // iBGP: no prepending; LOCAL_PREF travels; next hop is
                    // preserved (next-hop-self simplification: our id).
                    let lp = self
                        .selected
                        .get(&prefix)
                        .and_then(|(src, a)| match src {
                            Some(s) if self.peers[*s].cfg.ibgp => a.local_pref,
                            Some(s) => Some(self.peers[*s].cfg.local_pref),
                            None => Some(u32::MAX),
                        });
                    out_attrs.local_pref = lp;
                } else {
                    out_attrs.as_path.insert(0, u32::from(self.asn));
                    out_attrs.local_pref = None; // LOCAL_PREF is iBGP-only
                }
                out_attrs.next_hop = Some(self.bgp_id);
                if out_attrs.origin.is_none() {
                    out_attrs.origin = Some(0);
                }
                let already = self.peers[i].advertised.get(&prefix);
                if already == Some(&out_attrs.as_path) {
                    return; // incremental protocol: no change, no update
                }
                self.peers[i].advertised.insert(prefix, out_attrs.as_path.clone());
                let msg = BgpMessage::Update {
                    withdrawn: vec![],
                    attrs: out_attrs,
                    nlri: vec![prefix],
                };
                let bytes = msg.emit().expect("update encodes");
                self.peers[i].out.extend_from_slice(&bytes);
            }
            None => {
                if self.peers[i].advertised.remove(&prefix).is_some() {
                    let msg = BgpMessage::Update {
                        withdrawn: vec![prefix],
                        attrs: PathAttributes::default(),
                        nlri: vec![],
                    };
                    let bytes = msg.emit().expect("withdraw encodes");
                    self.peers[i].out.extend_from_slice(&bytes);
                }
            }
        }
    }
}

/// Pump bytes between speakers until nothing moves: `links` are
/// (speaker a, peer index at a, speaker b, peer index at b) pairs.
pub fn pump(speakers: &mut [Speaker], links: &[(usize, usize, usize, usize)]) {
    for _ in 0..1000 {
        let mut moved = false;
        for &(a, pa, b, pb) in links {
            let bytes_ab = speakers[a].output(pa);
            if !bytes_ab.is_empty() {
                moved = true;
                speakers[b].input(pb, &bytes_ab);
            }
            let bytes_ba = speakers[b].output(pb);
            if !bytes_ba.is_empty() {
                moved = true;
                speakers[a].input(pa, &bytes_ba);
            }
        }
        if !moved {
            return;
        }
    }
    panic!("speakers did not quiesce within the pump budget");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn px(a: u32, len: u8) -> WirePrefix {
        WirePrefix::new(a, len)
    }

    type Links = Vec<(usize, usize, usize, usize)>;

    /// Three ASes in a line: 65001 (customer) - 65002 (transit) - 65003
    /// (origin). Full wire-level propagation with AS_PATH growth.
    fn line() -> (Vec<Speaker>, Links) {
        let mut s1 = Speaker::new(65001, 1);
        let mut s2 = Speaker::new(65002, 2);
        let mut s3 = Speaker::new(65003, 3);
        // s1 sees s2 as provider; s2 sees s1 as customer, s3 as customer.
        let p12 = s1.add_peer(PeerConfig::ebgp(65002, 80, false));
        let p21 = s2.add_peer(PeerConfig::ebgp(65001, 450, true));
        let p23 = s2.add_peer(PeerConfig::ebgp(65003, 450, true));
        let p32 = s3.add_peer(PeerConfig::ebgp(65002, 80, false));
        s3.originate(px(0x0a030000, 16));
        for s in [&mut s1, &mut s2, &mut s3] {
            s.start();
        }
        (vec![s1, s2, s3], vec![(0, p12, 1, p21), (1, p23, 2, p32)])
    }

    #[test]
    fn sessions_establish_and_routes_propagate_end_to_end() {
        let (mut sp, links) = line();
        pump(&mut sp, &links);
        assert_eq!(sp[0].session_state(0), State::Established);
        assert_eq!(sp[1].session_state(0), State::Established);
        let p = px(0x0a030000, 16);
        // s2 learned [65003]; s1 learned [65002, 65003] — AS_PATH grows
        // hop by hop, exactly the Figure 2.1 walkthrough.
        assert_eq!(sp[1].best_path(p), Some(vec![65003]));
        assert_eq!(sp[0].best_path(p), Some(vec![65002, 65003]));
        assert_eq!(sp[2].best_path(p), Some(vec![]), "origin's own null path");
    }

    #[test]
    fn withdrawal_propagates_when_session_drops() {
        let (mut sp, links) = line();
        pump(&mut sp, &links);
        let p = px(0x0a030000, 16);
        assert!(sp[0].best_path(p).is_some());
        // s2 loses its session to s3.
        let acts = sp[1].peers[1].session.handle(Event::TransportDown);
        sp[1].apply_actions(1, acts);
        pump(&mut sp, &links);
        assert_eq!(sp[1].best_path(p), None);
        assert_eq!(sp[0].best_path(p), None, "withdraw reached the edge");
    }

    #[test]
    fn loop_prevention_rejects_own_as() {
        // A triangle where updates could circulate: 1 - 2 - 3 - 1, with 3
        // originating. Everyone is everyone's customer (full export) so
        // paths would loop forever without AS_PATH rejection.
        let mut s1 = Speaker::new(1, 1);
        let mut s2 = Speaker::new(2, 2);
        let mut s3 = Speaker::new(3, 3);
        let cfg = |asn| PeerConfig::ebgp(asn, 450, true);
        let a12 = s1.add_peer(cfg(2));
        let a13 = s1.add_peer(cfg(3));
        let b21 = s2.add_peer(cfg(1));
        let b23 = s2.add_peer(cfg(3));
        let c31 = s3.add_peer(cfg(1));
        let c32 = s3.add_peer(cfg(2));
        s3.originate(px(0x0a000000, 8));
        for s in [&mut s1, &mut s2, &mut s3] {
            s.start();
        }
        let mut sp = vec![s1, s2, s3];
        let links = vec![(0, a12, 1, b21), (0, a13, 2, c31), (1, b23, 2, c32)];
        pump(&mut sp, &links);
        let p = px(0x0a000000, 8);
        // Everyone converges on the direct route (shorter path wins).
        assert_eq!(sp[0].best_path(p), Some(vec![3]));
        assert_eq!(sp[1].best_path(p), Some(vec![3]));
    }

    #[test]
    fn local_pref_overrides_path_length() {
        // s1 hears the same prefix from a provider (short path, lp 80)
        // and a customer (longer path, lp 450): the customer route wins —
        // Guideline A at the wire level.
        let mut s1 = Speaker::new(100, 1);
        let prov = s1.add_peer(PeerConfig::ebgp(200, 80, false));
        let cust = s1.add_peer(PeerConfig::ebgp(300, 450, true));
        // Fake the sessions up by handshaking directly.
        let mut s2 = Speaker::new(200, 2);
        let p2 = s2.add_peer(PeerConfig::ebgp(100, 450, true));
        let mut s3 = Speaker::new(300, 3);
        let p3 = s3.add_peer(PeerConfig::ebgp(100, 80, false));
        s2.originate(px(0x0a990000, 16)); // 200 originates: path [200]
        // 300 learns it from its own side? Simpler: 300 also originates a
        // longer path by chaining through another AS is overkill — have
        // 300 originate the SAME prefix (anycast-style): path via 300 is
        // [300], same length... we need longer. Give 300 a stub child.
        let mut s4 = Speaker::new(400, 4);
        let p43 = s4.add_peer(PeerConfig::ebgp(300, 450, true));
        let p34 = s3.add_peer(PeerConfig::ebgp(400, 450, true));
        s4.originate(px(0x0a990000, 16));
        for s in [&mut s1, &mut s2, &mut s3, &mut s4] {
            s.start();
        }
        let mut sp = vec![s1, s2, s3, s4];
        let links = vec![(0, prov, 1, p2), (0, cust, 2, p3), (2, p34, 3, p43)];
        pump(&mut sp, &links);
        let p = px(0x0a990000, 16);
        // Provider offers [200] (len 1, lp 80); customer offers [300, 400]
        // (len 2, lp 450). LOCAL_PREF dominates (decision step 1).
        assert_eq!(sp[0].best_path(p), Some(vec![300, 400]));
    }

    #[test]
    fn export_policy_blocks_provider_routes_to_peers() {
        // s2 learns from its provider and must NOT re-export to another
        // non-customer.
        let mut s2 = Speaker::new(2, 2);
        let from_prov = s2.add_peer(PeerConfig::ebgp(9, 80, false));
        let to_peer = s2.add_peer(PeerConfig::ebgp(5, 250, false));
        let mut s9 = Speaker::new(9, 9);
        let p92 = s9.add_peer(PeerConfig::ebgp(2, 450, true));
        let mut s5 = Speaker::new(5, 5);
        let p52 = s5.add_peer(PeerConfig::ebgp(2, 250, false));
        s9.originate(px(0x0a070000, 16));
        for s in [&mut s2, &mut s9, &mut s5] {
            s.start();
        }
        let mut sp = vec![s2, s9, s5];
        let links = vec![(0, from_prov, 1, p92), (0, to_peer, 2, p52)];
        pump(&mut sp, &links);
        let p = px(0x0a070000, 16);
        assert_eq!(sp[0].best_path(p), Some(vec![9]), "s2 has the route");
        assert_eq!(sp[2].best_path(p), None, "peer must not receive a provider route");
    }

    /// Two routers of AS 100 in an iBGP full mesh; R1 has the eBGP session
    /// to the origin. R2 must learn the route over iBGP with no AS
    /// prepending and the LOCAL_PREF carried on the wire.
    #[test]
    fn ibgp_carries_local_pref_without_prepending() {
        let mut r1 = Speaker::new(100, 1);
        let mut r2 = Speaker::new(100, 2);
        let mut origin = Speaker::new(200, 9);
        let e_r1 = r1.add_peer(PeerConfig::ebgp(200, 450, true));
        let i_r1 = r1.add_peer(PeerConfig::ibgp(100));
        let i_r2 = r2.add_peer(PeerConfig::ibgp(100));
        let e_o = origin.add_peer(PeerConfig::ebgp(100, 80, false));
        let p = px(0x0a050000, 16);
        origin.originate(p);
        for s in [&mut r1, &mut r2, &mut origin] {
            s.start();
        }
        let mut sp = vec![r1, r2, origin];
        let links = vec![(0, e_r1, 2, e_o), (0, i_r1, 1, i_r2)];
        pump(&mut sp, &links);
        // R1 learned [200] over eBGP; R2 learned the SAME path over iBGP
        // (no 100 prepended inside the AS).
        assert_eq!(sp[0].best_path(p), Some(vec![200]));
        assert_eq!(sp[1].best_path(p), Some(vec![200]));
        // The iBGP rib-in carries the LOCAL_PREF R1 assigned on import.
        let a = sp[1].peers[i_r2].rib_in.get(&p).expect("ibgp route");
        assert_eq!(a.local_pref, Some(450));
    }

    /// Full-mesh rule: a route learned over iBGP is not re-advertised to
    /// other iBGP peers (R3 hears nothing from R2 about R1's route).
    #[test]
    fn ibgp_routes_are_not_reflected() {
        let mut r1 = Speaker::new(100, 1);
        let mut r2 = Speaker::new(100, 2);
        let mut r3 = Speaker::new(100, 3);
        let mut origin = Speaker::new(200, 9);
        let e_r1 = r1.add_peer(PeerConfig::ebgp(200, 450, true));
        let r1_to_r2 = r1.add_peer(PeerConfig::ibgp(100));
        let r2_to_r1 = r2.add_peer(PeerConfig::ibgp(100));
        let r2_to_r3 = r2.add_peer(PeerConfig::ibgp(100));
        let r3_to_r2 = r3.add_peer(PeerConfig::ibgp(100));
        let e_o = origin.add_peer(PeerConfig::ebgp(100, 80, false));
        let p = px(0x0a060000, 16);
        origin.originate(p);
        for s in [&mut r1, &mut r2, &mut r3, &mut origin] {
            s.start();
        }
        let mut sp = vec![r1, r2, r3, origin];
        // Note: deliberately NOT a full mesh (no r1-r3 session) to expose
        // the non-reflection rule.
        let links = vec![(0, e_r1, 3, e_o), (0, r1_to_r2, 1, r2_to_r1), (1, r2_to_r3, 2, r3_to_r2)];
        pump(&mut sp, &links);
        assert_eq!(sp[1].best_path(p), Some(vec![200]), "R2 got it over iBGP");
        assert_eq!(
            sp[2].best_path(p),
            None,
            "R3 must NOT hear it from R2 (that is why real iBGP needs a full mesh)"
        );
    }

    /// Decision step 5 at wire level: a router with its own eBGP route
    /// prefers it over an equally-good iBGP route.
    #[test]
    fn ebgp_beats_ibgp_at_step_5() {
        let mut r1 = Speaker::new(100, 1);
        let mut r2 = Speaker::new(100, 2);
        let mut o1 = Speaker::new(200, 8);
        let mut o2 = Speaker::new(300, 9);
        // Both origins announce the same prefix with equal import policy.
        let r1_e = r1.add_peer(PeerConfig::ebgp(200, 450, true));
        let r1_i = r1.add_peer(PeerConfig::ibgp(100));
        let r2_i = r2.add_peer(PeerConfig::ibgp(100));
        let r2_e = r2.add_peer(PeerConfig::ebgp(300, 450, true));
        let o1_e = o1.add_peer(PeerConfig::ebgp(100, 80, false));
        let o2_e = o2.add_peer(PeerConfig::ebgp(100, 80, false));
        let p = px(0x0a070000, 16);
        o1.originate(p);
        o2.originate(p);
        for s in [&mut r1, &mut r2, &mut o1, &mut o2] {
            s.start();
        }
        let mut sp = vec![r1, r2, o1, o2];
        let links = vec![
            (0, r1_e, 2, o1_e),
            (1, r2_e, 3, o2_e),
            (0, r1_i, 1, r2_i),
        ];
        pump(&mut sp, &links);
        // Each edge router sticks to its own eBGP session -- the R2/R3
        // phenomenon of Figure 4.1, reproduced on real messages.
        assert_eq!(sp[0].best_path(p), Some(vec![200]));
        assert_eq!(sp[1].best_path(p), Some(vec![300]));
    }

    #[test]
    fn incremental_protocol_sends_no_redundant_updates() {
        let (mut sp, links) = line();
        pump(&mut sp, &links);
        // Quiescent: another pump moves nothing (pump would panic on
        // non-quiescence; explicitly check outputs are empty).
        for s in &mut sp {
            for i in 0..s.peers.len() {
                assert!(s.output(i).is_empty(), "no gratuitous updates");
            }
        }
        let _ = links;
    }
}
