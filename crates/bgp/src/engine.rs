//! Whole-network solve engine: shard destinations over scoped threads.
//!
//! Destinations are independent, so a whole-network solve is
//! embarrassingly parallel. The classic pitfall is making the workers
//! fight over a shared results vector; here each worker keeps a private
//! `(index, result)` buffer and the buffers are merged into destination
//! order after the scope joins, so the hot loop takes no locks at all.
//! Work is claimed one destination at a time off an atomic cursor, which
//! load-balances the skewed solve times of high-degree destinations.
//!
//! Each worker also owns one [`SolveScratch`] arena for its whole run, so
//! after the first destination a worker allocates nothing per solve: the
//! routing table, stamps, and bucket storage are recycled between
//! destinations (generation-stamped, so there is no O(V) clear either).
//!
//! [`par_over_dests_whatif`] layers the what-if cache on top: each worker
//! additionally owns a [`DeltaScratch`], and the per-destination closure
//! can answer failed-link variants through the incremental delta path
//! instead of full re-solves.

use crate::solver::{DeltaScratch, FailedLink, RoutingState, SolveScratch};
use miro_topology::{NodeId, Topology};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counters for one destination's what-if sweep (see [`WhatIf`]).
#[derive(Clone, Copy, Default, Debug)]
pub struct WhatIfStats {
    /// What-if variants answered against this base solve.
    pub what_ifs: usize,
    /// Variants whose link the base routing tree never used — answered
    /// straight from the cached base with zero recomputation.
    pub skipped: usize,
    /// Total nodes recomputed across all variants.
    pub recomputed: usize,
}

/// The what-if cache: one unmasked base solve per destination, with every
/// failed-link variant answered through the incremental delta path
/// ([`RoutingState::with_failed_link`]). Variants whose link the base
/// solution never touches — the common case in Table 5.2-style sweeps —
/// cost O(1) beyond candidate suppression.
pub struct WhatIf<'s, 't> {
    base: RoutingState<'t>,
    delta: &'s mut DeltaScratch,
    stats: WhatIfStats,
}

impl<'s, 't> WhatIf<'s, 't> {
    pub fn new(base: RoutingState<'t>, delta: &'s mut DeltaScratch) -> WhatIf<'s, 't> {
        WhatIf { base, delta, stats: WhatIfStats::default() }
    }

    /// The cached unmasked solve.
    pub fn base(&self) -> &RoutingState<'t> {
        &self.base
    }

    /// Answer one failed-link variant: `f` sees the incrementally
    /// re-solved state (plus its cone statistics) and the base is
    /// restored before this returns.
    pub fn without_link<R>(
        &mut self,
        a: NodeId,
        b: NodeId,
        f: impl FnOnce(&FailedLink<'_, 't>) -> R,
    ) -> R {
        let guard = self.base.with_failed_link(a, b, self.delta);
        let recomputed = guard.recomputed();
        let out = f(&guard);
        drop(guard);
        self.stats.what_ifs += 1;
        self.stats.recomputed += recomputed;
        if recomputed == 0 {
            self.stats.skipped += 1;
        }
        out
    }

    /// Counters accumulated over every [`WhatIf::without_link`] call.
    pub fn stats(&self) -> WhatIfStats {
        self.stats
    }

    /// Take the base solve back (e.g. to recycle its storage).
    pub fn into_base(self) -> RoutingState<'t> {
        self.base
    }
}

/// Partition `num_dests` destinations into fixed-size contiguous blocks:
/// the dispatch unit of the sharded whole-table service (`miro
/// shard-solve`). Block `b` covers destination indices
/// `b*block_size .. min((b+1)*block_size, num_dests)`; the final block may
/// be short. Both the coordinator and its workers derive block extents
/// from this one function, so an `(block_id, start, len)` assignment means
/// the same destinations on both sides of the protocol.
pub fn dest_blocks(
    num_dests: usize,
    block_size: usize,
) -> impl ExactSizeIterator<Item = std::ops::Range<usize>> {
    let bs = block_size.max(1);
    let blocks = num_dests.div_ceil(bs);
    (0..blocks).map(move |b| (b * bs)..((b + 1) * bs).min(num_dests))
}

/// Solve each destination's routing state and map `f` over them; results
/// come back in destination order regardless of thread count or schedule.
pub fn par_over_dests<T, F>(topo: &Topology, dests: &[NodeId], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(NodeId, &RoutingState<'_>) -> T + Sync,
{
    par_over_dests_whatif(topo, dests, threads, |d, wi| f(d, wi.base()))
}

/// [`par_over_dests`] with the what-if cache: `f` gets a mutable
/// [`WhatIf`] holding the destination's base solve, and can answer any
/// number of failed-link variants through the per-thread delta scratch.
pub fn par_over_dests_whatif<T, F>(
    topo: &Topology,
    dests: &[NodeId],
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(NodeId, &mut WhatIf<'_, '_>) -> T + Sync,
{
    let threads = threads.max(1).min(dests.len().max(1));
    if threads == 1 {
        let mut scratch = SolveScratch::new();
        let mut delta = DeltaScratch::new();
        return dests
            .iter()
            .map(|&d| {
                let st = RoutingState::solve_into(topo, d, &mut scratch);
                let mut wi = WhatIf::new(st, &mut delta);
                let out = f(d, &mut wi);
                wi.into_base().recycle(&mut scratch);
                out
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    let mut scratch = SolveScratch::new();
                    let mut delta = DeltaScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= dests.len() {
                            break;
                        }
                        let d = dests[i];
                        let st = RoutingState::solve_into(topo, d, &mut scratch);
                        let mut wi = WhatIf::new(st, &mut delta);
                        local.push((i, f(d, &mut wi)));
                        wi.into_base().recycle(&mut scratch);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    // Deterministic merge: every index is produced exactly once.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(dests.len());
    slots.resize_with(dests.len(), || None);
    for buf in buffers {
        for (i, out) in buf {
            debug_assert!(slots[i].is_none(), "destination solved twice");
            slots[i] = Some(out);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every destination produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::GenParams;

    #[test]
    fn thread_counts_agree_including_candidates() {
        let t = GenParams::tiny(7).generate();
        let dests: Vec<NodeId> = t.nodes().take(12).collect();
        // A closure exercising the learned-routes surface, not just best.
        let probe = |d: NodeId, st: &RoutingState<'_>| {
            let mut sig = Vec::new();
            for x in t.nodes().take(20) {
                sig.push((d, x, st.candidates(x).len(), st.path(x)));
            }
            sig
        };
        let base = par_over_dests(&t, &dests, 1, probe);
        for threads in [2, 4, 8] {
            assert_eq!(
                par_over_dests(&t, &dests, threads, probe),
                base,
                "{threads} threads diverged from serial"
            );
        }
    }

    #[test]
    fn more_threads_than_dests_is_fine() {
        let t = GenParams::tiny(8).generate();
        let dests: Vec<NodeId> = t.nodes().take(3).collect();
        let out = par_over_dests(&t, &dests, 64, |d, st| (d, st.reachable_count()));
        assert_eq!(out.len(), 3);
        for (i, &(d, _)) in out.iter().enumerate() {
            assert_eq!(d, dests[i]);
        }
    }

    #[test]
    fn dest_blocks_tile_the_destination_space() {
        for (n, bs) in [(0usize, 4usize), (1, 4), (4, 4), (5, 4), (12, 1), (7, 100)] {
            let blocks: Vec<_> = dest_blocks(n, bs).collect();
            assert_eq!(blocks.len(), n.div_ceil(bs.max(1)), "n={n} bs={bs}");
            let flat: Vec<usize> = blocks.iter().cloned().flatten().collect();
            assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} bs={bs}");
            for r in &blocks[..blocks.len().saturating_sub(1)] {
                assert_eq!(r.len(), bs, "only the last block may be short");
            }
        }
        // A zero block size is clamped, not a divide-by-zero.
        assert_eq!(dest_blocks(3, 0).count(), 3);
    }

    #[test]
    fn empty_dest_list() {
        let t = GenParams::tiny(9).generate();
        let out = par_over_dests(&t, &[], 4, |d, _| d);
        assert!(out.is_empty());
    }

    #[test]
    fn whatif_variants_match_full_masked_solves() {
        let t = GenParams::tiny(11).generate();
        let dests: Vec<NodeId> = t.nodes().take(6).collect();
        // For each destination, fail the first hop of the three
        // highest-numbered routed nodes and record the rerouted paths.
        let probe = |d: NodeId, wi: &mut WhatIf<'_, '_>| {
            let mut victims: Vec<(NodeId, NodeId)> = t
                .nodes()
                .filter(|&v| v != d)
                .filter_map(|v| wi.base().best(v).map(|b| (v, b.next)))
                .collect();
            victims.truncate(3);
            let mut sig = Vec::new();
            for (v, hop) in victims {
                sig.push(wi.without_link(v, hop, |failed| {
                    (failed.recomputed(), failed.path(v), failed.reachable_count())
                }));
            }
            (sig, wi.stats().what_ifs)
        };
        let serial = par_over_dests_whatif(&t, &dests, 1, probe);
        assert_eq!(par_over_dests_whatif(&t, &dests, 4, probe), serial);

        // Spot-check against the full masked solve.
        let d = dests[0];
        let mut delta = crate::solver::DeltaScratch::new();
        let mut base = RoutingState::solve(&t, d);
        let v = t.nodes().find(|&v| v != d).unwrap();
        let hop = base.best(v).unwrap().next;
        let full = RoutingState::solve_without_link(&t, d, v, hop);
        let failed = base.with_failed_link(v, hop, &mut delta);
        for x in t.nodes() {
            assert_eq!(failed.best(x), full.best(x));
        }
    }

    #[test]
    fn whatif_skips_links_off_the_base_tree() {
        let t = GenParams::tiny(12).generate();
        let d = t.nodes().next().unwrap();
        let out = par_over_dests_whatif(&t, &[d], 1, |d, wi| {
            // A link between two non-adjacent-to-the-tree... any edge
            // whose endpoints both route *around* it: pick a node pair
            // where neither routes via the other.
            let off = t
                .nodes()
                .flat_map(|x| t.neighbors(x).iter().map(move |&(y, _)| (x, y)))
                .find(|&(x, y)| {
                    x < y
                        && wi.base().best(x).is_some_and(|b| b.next != y)
                        && wi.base().best(y).is_some_and(|b| b.next != x)
                })
                .expect("some edge is off the routing tree");
            wi.without_link(off.0, off.1, |failed| assert!(failed.is_noop()));
            let _ = d;
            wi.stats()
        });
        assert_eq!(out[0].what_ifs, 1);
        assert_eq!(out[0].skipped, 1);
        assert_eq!(out[0].recomputed, 0);
    }
}
