//! Whole-network solve engine: shard destinations over scoped threads.
//!
//! Destinations are independent, so a whole-network solve is
//! embarrassingly parallel. The classic pitfall is making the workers
//! fight over a shared results vector; here each worker keeps a private
//! `(index, result)` buffer and the buffers are merged into destination
//! order after the scope joins, so the hot loop takes no locks at all.
//! Work is claimed one destination at a time off an atomic cursor, which
//! load-balances the skewed solve times of high-degree destinations.
//!
//! Each worker also owns one [`SolveScratch`] arena for its whole run, so
//! after the first destination a worker allocates nothing per solve: the
//! routing table, stamps, and bucket storage are recycled between
//! destinations (generation-stamped, so there is no O(V) clear either).

use crate::solver::{RoutingState, SolveScratch};
use miro_topology::{NodeId, Topology};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Solve each destination's routing state and map `f` over them; results
/// come back in destination order regardless of thread count or schedule.
pub fn par_over_dests<T, F>(topo: &Topology, dests: &[NodeId], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(NodeId, &RoutingState<'_>) -> T + Sync,
{
    let threads = threads.max(1).min(dests.len().max(1));
    if threads == 1 {
        let mut scratch = SolveScratch::new();
        return dests
            .iter()
            .map(|&d| {
                let st = RoutingState::solve_into(topo, d, &mut scratch);
                let out = f(d, &st);
                st.recycle(&mut scratch);
                out
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    let mut scratch = SolveScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= dests.len() {
                            break;
                        }
                        let d = dests[i];
                        let st = RoutingState::solve_into(topo, d, &mut scratch);
                        local.push((i, f(d, &st)));
                        st.recycle(&mut scratch);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    // Deterministic merge: every index is produced exactly once.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(dests.len());
    slots.resize_with(dests.len(), || None);
    for buf in buffers {
        for (i, out) in buf {
            debug_assert!(slots[i].is_none(), "destination solved twice");
            slots[i] = Some(out);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every destination produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::GenParams;

    #[test]
    fn thread_counts_agree_including_candidates() {
        let t = GenParams::tiny(7).generate();
        let dests: Vec<NodeId> = t.nodes().take(12).collect();
        // A closure exercising the learned-routes surface, not just best.
        let probe = |d: NodeId, st: &RoutingState<'_>| {
            let mut sig = Vec::new();
            for x in t.nodes().take(20) {
                sig.push((d, x, st.candidates(x).len(), st.path(x)));
            }
            sig
        };
        let base = par_over_dests(&t, &dests, 1, probe);
        for threads in [2, 4, 8] {
            assert_eq!(
                par_over_dests(&t, &dests, threads, probe),
                base,
                "{threads} threads diverged from serial"
            );
        }
    }

    #[test]
    fn more_threads_than_dests_is_fine() {
        let t = GenParams::tiny(8).generate();
        let dests: Vec<NodeId> = t.nodes().take(3).collect();
        let out = par_over_dests(&t, &dests, 64, |d, st| (d, st.reachable_count()));
        assert_eq!(out.len(), 3);
        for (i, &(d, _)) in out.iter().enumerate() {
            assert_eq!(d, dests[i]);
        }
    }

    #[test]
    fn empty_dest_list() {
        let t = GenParams::tiny(9).generate();
        let out = par_over_dests(&t, &[], 4, |d, _| d);
        assert!(out.is_empty());
    }
}
