//! Whole-network solve engine: shard destinations over scoped threads.
//!
//! Destinations are independent, so a whole-network solve is
//! embarrassingly parallel. The classic pitfall is making the workers
//! fight over a shared results vector; here each worker keeps a private
//! `(index, result)` buffer and the buffers are merged into destination
//! order after the scope joins, so the hot loop takes no locks at all.
//! Work is claimed one destination at a time off an atomic cursor, which
//! load-balances the skewed solve times of high-degree destinations.
//!
//! Dispatch is **degree-descending by default**: the claim schedule sorts
//! destination indices by descending degree (ties by index), so the
//! slow, high-degree destinations start first and the end of the run
//! drains over cheap stub ASes instead of stalling every thread behind
//! one late tier-1 solve. The merge is by original index, so the
//! schedule never changes the output — byte-identical across thread
//! counts and orderings (see [`DestOrder`]).
//!
//! Each worker also owns one [`SolveScratch`] arena for its whole run, so
//! after the first destination a worker allocates nothing per solve: the
//! routing table, stamps, and bucket storage are recycled between
//! destinations (generation-stamped, so there is no O(V) clear either).
//! A [`ScratchPool`] extends that reuse across *calls*: shard workers
//! solving many blocks against one topology park their per-thread arenas
//! in the pool between blocks instead of reallocating them.
//!
//! [`par_over_dests_whatif`] layers the what-if cache on top: each worker
//! additionally owns a [`DeltaScratch`], and the per-destination closure
//! can answer failed-link variants through the incremental delta path
//! instead of full re-solves.

use crate::solver::{DeltaScratch, FailedLink, RoutingState, SolveScratch};
use miro_topology::{NodeId, Topology};
use std::cmp::Reverse;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Counters for one destination's what-if sweep (see [`WhatIf`]).
#[derive(Clone, Copy, Default, Debug)]
pub struct WhatIfStats {
    /// What-if variants answered against this base solve.
    pub what_ifs: usize,
    /// Variants whose link the base routing tree never used — answered
    /// straight from the cached base with zero recomputation.
    pub skipped: usize,
    /// Total nodes recomputed across all variants.
    pub recomputed: usize,
}

/// The what-if cache: one unmasked base solve per destination, with every
/// failed-link variant answered through the incremental delta path
/// ([`RoutingState::with_failed_link`]). Variants whose link the base
/// solution never touches — the common case in Table 5.2-style sweeps —
/// cost O(1) beyond candidate suppression.
pub struct WhatIf<'s, 't> {
    base: RoutingState<'t>,
    delta: &'s mut DeltaScratch,
    stats: WhatIfStats,
}

impl<'s, 't> WhatIf<'s, 't> {
    pub fn new(base: RoutingState<'t>, delta: &'s mut DeltaScratch) -> WhatIf<'s, 't> {
        WhatIf { base, delta, stats: WhatIfStats::default() }
    }

    /// The cached unmasked solve.
    pub fn base(&self) -> &RoutingState<'t> {
        &self.base
    }

    /// Answer one failed-link variant: `f` sees the incrementally
    /// re-solved state (plus its cone statistics) and the base is
    /// restored before this returns.
    pub fn without_link<R>(
        &mut self,
        a: NodeId,
        b: NodeId,
        f: impl FnOnce(&FailedLink<'_, 't>) -> R,
    ) -> R {
        let guard = self.base.with_failed_link(a, b, self.delta);
        let recomputed = guard.recomputed();
        let out = f(&guard);
        drop(guard);
        self.stats.what_ifs += 1;
        self.stats.recomputed += recomputed;
        if recomputed == 0 {
            self.stats.skipped += 1;
        }
        out
    }

    /// Counters accumulated over every [`WhatIf::without_link`] call.
    pub fn stats(&self) -> WhatIfStats {
        self.stats
    }

    /// Take the base solve back (e.g. to recycle its storage).
    pub fn into_base(self) -> RoutingState<'t> {
        self.base
    }
}

/// Partition `num_dests` destinations into fixed-size contiguous blocks:
/// the dispatch unit of the sharded whole-table service (`miro
/// shard-solve`). Block `b` covers destination indices
/// `b*block_size .. min((b+1)*block_size, num_dests)`; the final block may
/// be short. Both the coordinator and its workers derive block extents
/// from this one function, so an `(block_id, start, len)` assignment means
/// the same destinations on both sides of the protocol.
pub fn dest_blocks(
    num_dests: usize,
    block_size: usize,
) -> impl ExactSizeIterator<Item = std::ops::Range<usize>> {
    let bs = block_size.max(1);
    let blocks = num_dests.div_ceil(bs);
    (0..blocks).map(move |b| (b * bs)..((b + 1) * bs).min(num_dests))
}

/// Block-granularity counterpart of [`DestOrder::DegreeDescending`]:
/// the [`dest_blocks`] ids reordered so the blocks with the most total
/// adjacency (the slow ones) dispatch first, ties by block id. Feeding
/// this to the shard coordinator keeps the last assignments of a job
/// cheap, so a straggling worker holds up the tail as little as
/// possible. Block *extents* are unchanged — only dispatch order moves —
/// so the assembled table is identical.
pub fn heavy_blocks_first(topo: &Topology, dests: &[NodeId], block_size: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..dest_blocks(dests.len(), block_size).len() as u32).collect();
    let weight: Vec<usize> = dest_blocks(dests.len(), block_size)
        .map(|r| r.map(|i| topo.degree(dests[i])).sum())
        .collect();
    ids.sort_by_key(|&b| (Reverse(weight[b as usize]), b));
    ids
}

/// How a parallel whole-table solve orders destination *dispatch*.
/// Purely a scheduling knob: results always merge back in slice order,
/// so the output is byte-identical under every variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DestOrder {
    /// Claim destinations in slice order.
    Natural,
    /// Claim high-degree (slow) destinations first, ties by index — the
    /// default, so the tail of the run never straggles behind one
    /// late-dispatched tier-1 solve.
    DegreeDescending,
}

/// The claim schedule for `order`: `schedule[k]` is the destination
/// index the `k`-th claim takes. `None` means claim in slice order.
fn claim_schedule(topo: &Topology, dests: &[NodeId], order: DestOrder) -> Option<Vec<u32>> {
    match order {
        DestOrder::Natural => None,
        DestOrder::DegreeDescending => {
            let mut idx: Vec<u32> = (0..dests.len() as u32).collect();
            idx.sort_by_key(|&i| (Reverse(topo.degree(dests[i as usize])), i));
            Some(idx)
        }
    }
}

/// Pool of per-thread solve arenas shared across whole-table calls.
///
/// A single [`par_over_dests`] call already reuses one scratch per
/// thread for its whole run; a `ScratchPool` extends that reuse across
/// calls against the same topology — a shard worker solving hundreds of
/// blocks parks its arenas here between blocks, so the steady state of a
/// long job allocates nothing at all. Arenas are presized to the
/// topology ([`SolveScratch::for_nodes`]), so even the pool's first use
/// is allocation-free inside the solve loop.
pub struct ScratchPool {
    nodes: usize,
    slots: Mutex<Vec<(SolveScratch, DeltaScratch)>>,
}

impl ScratchPool {
    /// An empty pool for an `n`-node topology.
    pub fn for_nodes(nodes: usize) -> ScratchPool {
        ScratchPool { nodes, slots: Mutex::new(Vec::new()) }
    }

    /// Arenas currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.slots.lock().expect("scratch pool poisoned").len()
    }

    fn take(&self) -> (SolveScratch, DeltaScratch) {
        if let Some(pair) = self.slots.lock().expect("scratch pool poisoned").pop() {
            return pair;
        }
        (SolveScratch::for_nodes(self.nodes), DeltaScratch::for_nodes(self.nodes))
    }

    fn give(&self, pair: (SolveScratch, DeltaScratch)) {
        self.slots.lock().expect("scratch pool poisoned").push(pair);
    }
}

/// Solve each destination's routing state and map `f` over them; results
/// come back in destination order regardless of thread count or schedule.
pub fn par_over_dests<T, F>(topo: &Topology, dests: &[NodeId], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(NodeId, &RoutingState<'_>) -> T + Sync,
{
    par_over_dests_whatif(topo, dests, threads, |d, wi| f(d, wi.base()))
}

/// [`par_over_dests`] drawing per-thread arenas from (and returning them
/// to) `pool`: the shard-worker fast path, allocation-free across blocks.
pub fn par_over_dests_pooled<T, F>(
    topo: &Topology,
    dests: &[NodeId],
    threads: usize,
    pool: &ScratchPool,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(NodeId, &RoutingState<'_>) -> T + Sync,
{
    par_over_dests_scheduled(topo, dests, threads, DestOrder::DegreeDescending, Some(pool), |d, wi| {
        f(d, wi.base())
    })
}

/// [`par_over_dests`] with the what-if cache: `f` gets a mutable
/// [`WhatIf`] holding the destination's base solve, and can answer any
/// number of failed-link variants through the per-thread delta scratch.
pub fn par_over_dests_whatif<T, F>(
    topo: &Topology,
    dests: &[NodeId],
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(NodeId, &mut WhatIf<'_, '_>) -> T + Sync,
{
    par_over_dests_scheduled(topo, dests, threads, DestOrder::DegreeDescending, None, f)
}

/// The fully-general engine entry: explicit dispatch [`DestOrder`] and an
/// optional [`ScratchPool`]. The determinism suite drives this directly
/// to prove the schedule never leaks into the output.
pub fn par_over_dests_scheduled<T, F>(
    topo: &Topology,
    dests: &[NodeId],
    threads: usize,
    order: DestOrder,
    pool: Option<&ScratchPool>,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(NodeId, &mut WhatIf<'_, '_>) -> T + Sync,
{
    let take = |n: usize| match pool {
        Some(p) => p.take(),
        None => (SolveScratch::for_nodes(n), DeltaScratch::for_nodes(n)),
    };
    let park = |pair: (SolveScratch, DeltaScratch)| {
        if let Some(p) = pool {
            p.give(pair);
        }
    };
    let n = topo.num_nodes();

    let threads = threads.max(1).min(dests.len().max(1));
    if threads == 1 {
        let (mut scratch, mut delta) = take(n);
        let out = dests
            .iter()
            .map(|&d| {
                let st = RoutingState::solve_into(topo, d, &mut scratch);
                let mut wi = WhatIf::new(st, &mut delta);
                let out = f(d, &mut wi);
                wi.into_base().recycle(&mut scratch);
                out
            })
            .collect();
        park((scratch, delta));
        return out;
    }

    let schedule = claim_schedule(topo, dests, order);
    let next = AtomicUsize::new(0);
    let buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    let (mut scratch, mut delta) = take(n);
                    loop {
                        let claim = next.fetch_add(1, Ordering::Relaxed);
                        if claim >= dests.len() {
                            break;
                        }
                        let i = match &schedule {
                            Some(s) => s[claim] as usize,
                            None => claim,
                        };
                        let d = dests[i];
                        let st = RoutingState::solve_into(topo, d, &mut scratch);
                        let mut wi = WhatIf::new(st, &mut delta);
                        local.push((i, f(d, &mut wi)));
                        wi.into_base().recycle(&mut scratch);
                    }
                    park((scratch, delta));
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    // Deterministic merge: every index is produced exactly once,
    // regardless of which thread claimed it or in what order.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(dests.len());
    slots.resize_with(dests.len(), || None);
    for buf in buffers {
        for (i, out) in buf {
            debug_assert!(slots[i].is_none(), "destination solved twice");
            slots[i] = Some(out);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every destination produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::GenParams;

    #[test]
    fn thread_counts_agree_including_candidates() {
        let t = GenParams::tiny(7).generate();
        let dests: Vec<NodeId> = t.nodes().take(12).collect();
        // A closure exercising the learned-routes surface, not just best.
        let probe = |d: NodeId, st: &RoutingState<'_>| {
            let mut sig = Vec::new();
            for x in t.nodes().take(20) {
                sig.push((d, x, st.candidates(x).len(), st.path(x)));
            }
            sig
        };
        let base = par_over_dests(&t, &dests, 1, probe);
        for threads in [2, 4, 8] {
            assert_eq!(
                par_over_dests(&t, &dests, threads, probe),
                base,
                "{threads} threads diverged from serial"
            );
        }
    }

    #[test]
    fn more_threads_than_dests_is_fine() {
        let t = GenParams::tiny(8).generate();
        let dests: Vec<NodeId> = t.nodes().take(3).collect();
        let out = par_over_dests(&t, &dests, 64, |d, st| (d, st.reachable_count()));
        assert_eq!(out.len(), 3);
        for (i, &(d, _)) in out.iter().enumerate() {
            assert_eq!(d, dests[i]);
        }
    }

    #[test]
    fn dest_blocks_tile_the_destination_space() {
        for (n, bs) in [(0usize, 4usize), (1, 4), (4, 4), (5, 4), (12, 1), (7, 100)] {
            let blocks: Vec<_> = dest_blocks(n, bs).collect();
            assert_eq!(blocks.len(), n.div_ceil(bs.max(1)), "n={n} bs={bs}");
            let flat: Vec<usize> = blocks.iter().cloned().flatten().collect();
            assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} bs={bs}");
            for r in &blocks[..blocks.len().saturating_sub(1)] {
                assert_eq!(r.len(), bs, "only the last block may be short");
            }
        }
        // A zero block size is clamped, not a divide-by-zero.
        assert_eq!(dest_blocks(3, 0).count(), 3);
    }

    #[test]
    fn empty_dest_list() {
        let t = GenParams::tiny(9).generate();
        let out = par_over_dests(&t, &[], 4, |d, _| d);
        assert!(out.is_empty());
    }

    #[test]
    fn whatif_variants_match_full_masked_solves() {
        let t = GenParams::tiny(11).generate();
        let dests: Vec<NodeId> = t.nodes().take(6).collect();
        // For each destination, fail the first hop of the three
        // highest-numbered routed nodes and record the rerouted paths.
        let probe = |d: NodeId, wi: &mut WhatIf<'_, '_>| {
            let mut victims: Vec<(NodeId, NodeId)> = t
                .nodes()
                .filter(|&v| v != d)
                .filter_map(|v| wi.base().best(v).map(|b| (v, b.next)))
                .collect();
            victims.truncate(3);
            let mut sig = Vec::new();
            for (v, hop) in victims {
                sig.push(wi.without_link(v, hop, |failed| {
                    (failed.recomputed(), failed.path(v), failed.reachable_count())
                }));
            }
            (sig, wi.stats().what_ifs)
        };
        let serial = par_over_dests_whatif(&t, &dests, 1, probe);
        assert_eq!(par_over_dests_whatif(&t, &dests, 4, probe), serial);

        // Spot-check against the full masked solve.
        let d = dests[0];
        let mut delta = crate::solver::DeltaScratch::new();
        let mut base = RoutingState::solve(&t, d);
        let v = t.nodes().find(|&v| v != d).unwrap();
        let hop = base.best(v).unwrap().next;
        let full = RoutingState::solve_without_link(&t, d, v, hop);
        let failed = base.with_failed_link(v, hop, &mut delta);
        for x in t.nodes() {
            assert_eq!(failed.best(x), full.best(x));
        }
    }

    #[test]
    fn whatif_skips_links_off_the_base_tree() {
        let t = GenParams::tiny(12).generate();
        let d = t.nodes().next().unwrap();
        let out = par_over_dests_whatif(&t, &[d], 1, |d, wi| {
            // A link between two non-adjacent-to-the-tree... any edge
            // whose endpoints both route *around* it: pick a node pair
            // where neither routes via the other.
            let off = t
                .nodes()
                .flat_map(|x| t.neighbors(x).iter().map(move |&(y, _)| (x, y)))
                .find(|&(x, y)| {
                    x < y
                        && wi.base().best(x).is_some_and(|b| b.next != y)
                        && wi.base().best(y).is_some_and(|b| b.next != x)
                })
                .expect("some edge is off the routing tree");
            wi.without_link(off.0, off.1, |failed| assert!(failed.is_noop()));
            let _ = d;
            wi.stats()
        });
        assert_eq!(out[0].what_ifs, 1);
        assert_eq!(out[0].skipped, 1);
        assert_eq!(out[0].recomputed, 0);
    }

    /// The full route table for every destination: the byte-for-byte
    /// signature the scheduling policy must never change.
    fn full_tables(
        t: &Topology,
        dests: &[NodeId],
        threads: usize,
        order: DestOrder,
        pool: Option<&ScratchPool>,
    ) -> Vec<Vec<Option<crate::solver::BestRoute>>> {
        par_over_dests_scheduled(t, dests, threads, order, pool, |_, st| {
            t.nodes().map(|x| st.base().best(x)).collect()
        })
    }

    #[test]
    fn schedule_and_threads_never_change_the_table() {
        let t = GenParams::tiny(13).generate();
        let dests: Vec<NodeId> = t.nodes().take(24).collect();
        let base = full_tables(&t, &dests, 1, DestOrder::Natural, None);
        let pool = ScratchPool::for_nodes(t.num_nodes());
        for threads in [1, 2, 8] {
            for order in [DestOrder::Natural, DestOrder::DegreeDescending] {
                assert_eq!(
                    full_tables(&t, &dests, threads, order, None),
                    base,
                    "{threads} threads / {order:?} diverged"
                );
                assert_eq!(
                    full_tables(&t, &dests, threads, order, Some(&pool)),
                    base,
                    "{threads} threads / {order:?} (pooled) diverged"
                );
            }
        }
        // The pool really parked scratch for reuse across those runs.
        assert!(pool.parked() >= 1, "pool never parked a scratch pair");
    }

    #[test]
    fn degree_descending_schedule_is_a_permutation_by_degree() {
        let t = GenParams::tiny(14).generate();
        let dests: Vec<NodeId> = t.nodes().take(16).collect();
        let sched = claim_schedule(&t, &dests, DestOrder::DegreeDescending)
            .expect("degree order has a schedule");
        let mut seen = sched.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..dests.len() as u32).collect::<Vec<_>>());
        for w in sched.windows(2) {
            let (a, b) = (dests[w[0] as usize], dests[w[1] as usize]);
            assert!(
                t.degree(a) > t.degree(b) || (t.degree(a) == t.degree(b) && w[0] < w[1]),
                "schedule not degree-descending with index tie-break"
            );
        }
        assert!(claim_schedule(&t, &dests, DestOrder::Natural).is_none());
    }

    #[test]
    fn heavy_blocks_first_is_a_weight_ordered_permutation() {
        let t = GenParams::tiny(15).generate();
        let dests: Vec<NodeId> = t.nodes().take(21).collect();
        let order = heavy_blocks_first(&t, &dests, 4);
        assert_eq!(order.len(), dest_blocks(dests.len(), 4).len());
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..order.len() as u32).collect::<Vec<_>>());
        let weight: Vec<usize> = dest_blocks(dests.len(), 4)
            .map(|r| r.map(|i| t.degree(dests[i])).sum())
            .collect();
        for w in order.windows(2) {
            let (a, b) = (weight[w[0] as usize], weight[w[1] as usize]);
            assert!(a > b || (a == b && w[0] < w[1]), "blocks not heaviest-first");
        }
    }
}
