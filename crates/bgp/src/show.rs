//! `show ip bgp`-style rendering of routing state — the Table 1.1 view.
//!
//! Table 1.1 of the dissertation shows a real BGP table: one row per
//! candidate entry, `*` for valid, `>` for the selected best, with next
//! hop and AS path. This module renders the AS-level solver state in
//! that format for the examples and for operator-style debugging.

use crate::solver::RoutingState;
use miro_topology::NodeId;

/// One rendered row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShowRow {
    /// Candidate is usable (`*` in IOS output). Always true here: the
    /// solver's candidate set is post-import-filter.
    pub valid: bool,
    /// Selected best (`>`).
    pub best: bool,
    /// Destination rendered as a synthetic prefix derived from the
    /// destination AS (one prefix per AS, section 5.1).
    pub prefix: String,
    /// Next-hop AS number.
    pub next_hop: u32,
    /// Space-separated AS path.
    pub as_path: String,
}

/// Synthetic prefix for a destination AS: deterministic, distinct, and
/// readable (`10.<asn/256>.<asn%256>.0/24`).
pub fn prefix_of(asn: u32) -> String {
    format!("10.{}.{}.0/24", (asn >> 8) & 0xff, asn & 0xff)
}

/// Render the BGP table of `node` for the single destination `st` routes.
pub fn show_ip_bgp(st: &RoutingState<'_>, node: NodeId) -> Vec<ShowRow> {
    let topo = st.topology();
    let dest_asn = topo.asn(st.dest()).0;
    let best_path = st.path(node);
    st.candidates(node)
        .into_iter()
        .map(|c| ShowRow {
            valid: true,
            best: Some(&c.path) == best_path.as_ref(),
            prefix: prefix_of(dest_asn),
            next_hop: topo.asn(c.path[0]).0,
            as_path: c
                .path
                .iter()
                .map(|&h| topo.asn(h).0.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        })
        .collect()
}

/// Format rows as the classic fixed-width table.
pub fn format_table(rows: &[ShowRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<3} {:<18} {:<10} Path", "", "Network", "Next Hop");
    for r in rows {
        let _ = writeln!(
            out,
            "{}{:<2} {:<18} {:<10} {}",
            if r.valid { "*" } else { " " },
            if r.best { ">" } else { "" },
            r.prefix,
            r.next_hop,
            r.as_path
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::RoutingState;
    use miro_topology::gen::figure_1_1;

    #[test]
    fn renders_candidates_with_best_marker() {
        let (t, [a, b, _c, d, _e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        let rows = show_ip_bgp(&st, a);
        assert_eq!(rows.len(), 2, "A learned from both providers");
        let best: Vec<&ShowRow> = rows.iter().filter(|r| r.best).collect();
        assert_eq!(best.len(), 1, "exactly one best route");
        assert_eq!(best[0].next_hop, t.asn(b).0);
        assert!(rows.iter().any(|r| r.next_hop == t.asn(d).0 && !r.best));
        for r in &rows {
            assert!(r.valid);
            assert!(r.as_path.ends_with(&t.asn(f).0.to_string()));
            assert_eq!(r.prefix, prefix_of(t.asn(f).0));
        }
    }

    #[test]
    fn formatted_output_looks_like_table_1_1() {
        let (t, [a, _b, _c, _d, _e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        let text = format_table(&show_ip_bgp(&st, a));
        assert!(text.contains("Network"));
        assert!(text.contains("*> "), "best row marked with *>");
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn prefixes_are_distinct_per_as() {
        let mut seen = std::collections::HashSet::new();
        for asn in [1u32, 2, 255, 256, 257, 65535] {
            assert!(seen.insert(prefix_of(asn)), "collision at {asn}");
        }
    }
}
