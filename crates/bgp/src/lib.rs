//! BGP substrate for the MIRO reproduction.
//!
//! MIRO (Chapter 3) deliberately layers on top of ordinary BGP: default
//! paths come from today's path-vector protocol, and only the *extra* paths
//! go through MIRO negotiation. This crate is that substrate:
//!
//! * [`route`] - AS-level route representation and the Gao-Rexford
//!   import/export/preference rules of section 2.2.1.
//! * [`decision`] - the full router-level 8-step best-path selection
//!   process of Table 2.1 (local-pref, path length, origin, MED,
//!   eBGP-over-iBGP, IGP distance, router id, peer address).
//! * [`solver`] - a closed-form stable-state solver: for one destination it
//!   computes, in O(E log E), the routes every AS selects *and* the full
//!   candidate set every AS learns from its neighbors. This is the
//!   constructive two-phase argument inside the Gao-Rexford convergence
//!   proof (Chapter 7.2) turned into an algorithm, extended with the
//!   paper's sibling approximation.
//! * [`sim`] - an event-driven, activation-based path-vector simulator
//!   (in the style of Griffin's SPVP) with pluggable per-node ranking and
//!   export policies. The solver answers "what does BGP converge to";
//!   the simulator answers "does it converge, and how" - and is the engine
//!   reused by `miro-convergence` for the Chapter 7 results.
//!
//! Omitted on purpose: route aggregation, MRAI timers, prefix
//! de-aggregation and communities. The paper's evaluation operates at the
//! one-prefix-per-AS granularity (section 5.1), which is what we model; the
//! router-level attributes only matter inside `miro-dataplane`.

pub mod decision;
pub mod engine;
pub mod ns;
pub mod route;
pub mod session;
pub mod show;
pub mod speaker;
pub mod sim;
pub mod solver;
pub mod wire;

pub use route::{CandidateRoute, ExportScope};
pub use solver::{BestRoute, RoutingState};
