//! Event-driven, activation-based path-vector simulation.
//!
//! Chapter 7 models BGP/MIRO as a distributed asynchronous process:
//! *activating* a speaker makes it re-apply import policies, re-select, and
//! re-export (section 7.1.2). This module is that model, executable: nodes
//! hold per-neighbor rib-in entries, a scheduler activates dirty nodes in a
//! (seeded) random fair order, and the run either quiesces — convergence —
//! or exceeds a step budget, which we report as divergence. The classic
//! BGP gadgets (GOOD, DISAGREE, BAD) and the paper's Figures 7.1/7.2
//! gadgets (in `miro-convergence`) are all expressible through the
//! [`RankPolicy`] trait.
//!
//! The solver in [`crate::solver`] computes the unique Gao-Rexford stable
//! state directly; this simulator is the ground truth it is validated
//! against (see the cross-check test), and the only engine that can show
//! an *unstable* configuration oscillating.

use crate::route::ExportScope;
use miro_topology::{classify_route, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-node route ranking and export policy.
///
/// Paths are given from the evaluating node's perspective: `path[0]` is the
/// next hop, `path.last()` the destination; the node itself is absent. The
/// simulator applies the *implicit* import policy (loop rejection,
/// section 7.1.1) before consulting the explicit one.
pub trait RankPolicy {
    /// Rank of `path` at `node`; **lower is better**. `None` rejects the
    /// path outright (explicit import filter).
    fn rank(&self, topo: &Topology, node: NodeId, path: &[NodeId]) -> Option<u64>;

    /// May `node`, having selected `path`, advertise it to neighbor `to`?
    fn export(&self, topo: &Topology, node: NodeId, to: NodeId, path: &[NodeId]) -> bool;
}

/// The conventional Gao-Rexford policy (Guideline A + the export rules of
/// section 2.2.1), with the same deterministic tie-breaking as the solver.
pub struct GaoRexford;

impl RankPolicy for GaoRexford {
    fn rank(&self, topo: &Topology, node: NodeId, path: &[NodeId]) -> Option<u64> {
        let class = classify_route(topo, node, path)?;
        let class_rank = class as u64; // Customer=0 < Peer=1 < Provider=2
        let len = path.len() as u64;
        let next_asn = path.first().map(|&n| topo.asn(n).0 as u64).unwrap_or(0);
        Some(class_rank << 48 | len << 32 | next_asn)
    }

    fn export(&self, topo: &Topology, node: NodeId, to: NodeId, path: &[NodeId]) -> bool {
        let Some(class) = classify_route(topo, node, path) else { return false };
        let Some(rel_of_to) = topo.rel(node, to) else { return false };
        ExportScope::allows(class, rel_of_to)
    }
}

/// A policy given as an explicit preference table: for each node, an
/// ordered list of full paths (most preferred first). Paths not listed are
/// rejected. Export is unrestricted (classic SPVP gadget semantics).
/// This is how DISAGREE / BAD-GADGET style configurations are written.
pub struct TablePolicy {
    /// `prefs[node]` = ordered acceptable paths for that node.
    pub prefs: std::collections::HashMap<NodeId, Vec<Vec<NodeId>>>,
}

impl RankPolicy for TablePolicy {
    fn rank(&self, _topo: &Topology, node: NodeId, path: &[NodeId]) -> Option<u64> {
        if path.is_empty() {
            return Some(0); // own prefix
        }
        self.prefs
            .get(&node)?
            .iter()
            .position(|p| p == path)
            .map(|i| i as u64 + 1)
    }

    fn export(&self, _topo: &Topology, _node: NodeId, _to: NodeId, _path: &[NodeId]) -> bool {
        true
    }
}

/// Outcome of a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Quiesced: no speaker would change its selection on activation.
    Converged {
        /// Activations performed before quiescence.
        steps: usize,
    },
    /// The step budget was exhausted with speakers still flapping.
    Diverged {
        /// The budget that was exhausted.
        steps: usize,
    },
}

impl Outcome {
    pub fn converged(&self) -> bool {
        matches!(self, Outcome::Converged { .. })
    }
}

/// Simulator state for a single destination prefix.
pub struct Sim<'t, P: RankPolicy> {
    topo: &'t Topology,
    policy: P,
    dest: NodeId,
    /// rib_in[x][i] = latest path advertised to x by its i-th neighbor
    /// (indices aligned with `topo.neighbors(x)`).
    rib_in: Vec<Vec<Option<Vec<NodeId>>>>,
    /// Selected path of each node (None = no route).
    selected: Vec<Option<Vec<NodeId>>>,
    /// Dirty flags + worklist.
    dirty: Vec<bool>,
    work: Vec<NodeId>,
    /// Links administratively failed during the run (ordered pairs absent
    /// from message exchange).
    failed: std::collections::HashSet<(NodeId, NodeId)>,
    /// Number of selection changes per node (oscillation diagnostics).
    pub flaps: Vec<usize>,
}

impl<'t, P: RankPolicy> Sim<'t, P> {
    /// Create a simulation in the "cold start" state: only the destination
    /// knows its own prefix, nothing has been advertised yet.
    pub fn new(topo: &'t Topology, policy: P, dest: NodeId) -> Self {
        let n = topo.num_nodes();
        let mut sim = Sim {
            topo,
            policy,
            dest,
            rib_in: (0..n).map(|x| vec![None; topo.neighbors(x as NodeId).len()]).collect(),
            selected: vec![None; n],
            dirty: vec![false; n],
            work: Vec::new(),
            failed: std::collections::HashSet::new(),
            flaps: vec![0; n],
        };
        sim.selected[dest as usize] = Some(Vec::new());
        sim.announce(dest);
        sim
    }

    /// The destination's neighbors (and later everyone downstream) get the
    /// new selection of `x` in their rib-in and become dirty.
    fn announce(&mut self, x: NodeId) {
        let sel = self.selected[x as usize].clone();
        for &(y, _) in self.topo.neighbors(x).iter() {
            if self.failed.contains(&(x.min(y), x.max(y))) {
                continue;
            }
            let advertise = match &sel {
                Some(p) => self.policy.export(self.topo, x, y, p),
                None => true, // withdraw
            };
            // Find x's slot in y's rib-in.
            let slot = self
                .topo
                .neighbors(y)
                .iter()
                .position(|&(n, _)| n == x)
                .expect("adjacency is symmetric");
            let entry = if advertise {
                sel.as_ref().map(|p| {
                    let mut v = Vec::with_capacity(p.len() + 1);
                    v.push(x);
                    v.extend_from_slice(p);
                    v
                })
            } else {
                None
            };
            if self.rib_in[y as usize][slot] != entry {
                self.rib_in[y as usize][slot] = entry;
                self.mark_dirty(y);
            }
        }
    }

    fn mark_dirty(&mut self, y: NodeId) {
        if !self.dirty[y as usize] {
            self.dirty[y as usize] = true;
            self.work.push(y);
        }
    }

    /// Activate node `x` (section 7.1.2): re-run import + selection; if the
    /// selection changed, re-export. Returns whether the selection changed.
    pub fn activate(&mut self, x: NodeId) -> bool {
        self.dirty[x as usize] = false;
        if x == self.dest {
            return false; // the origin never changes its null route
        }
        let mut best: Option<(u64, Vec<NodeId>)> = None;
        for p in self.rib_in[x as usize].iter().flatten() {
            // Implicit import policy: reject loops.
            if p.contains(&x) {
                continue;
            }
            if let Some(r) = self.policy.rank(self.topo, x, p) {
                if best.as_ref().is_none_or(|(br, _)| r < *br) {
                    best = Some((r, p.clone()));
                }
            }
        }
        let new = best.map(|(_, p)| p);
        if new != self.selected[x as usize] {
            self.selected[x as usize] = new;
            self.flaps[x as usize] += 1;
            self.announce(x);
            true
        } else {
            false
        }
    }

    /// Run with a seeded random fair scheduler until quiescent or until
    /// `max_steps` activations.
    pub fn run(&mut self, seed: u64, max_steps: usize) -> Outcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut steps = 0;
        while !self.work.is_empty() {
            if steps >= max_steps {
                return Outcome::Diverged { steps };
            }
            let i = rng.gen_range(0..self.work.len());
            let x = self.work.swap_remove(i);
            if !self.dirty[x as usize] {
                continue;
            }
            self.activate(x);
            steps += 1;
        }
        Outcome::Converged { steps }
    }

    /// Administratively fail the link between `a` and `b`: both sides lose
    /// the rib-in entry learned over it and reconverge.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        self.failed.insert((a.min(b), a.max(b)));
        for (x, y) in [(a, b), (b, a)] {
            if let Some(slot) =
                self.topo.neighbors(x).iter().position(|&(n, _)| n == y)
            {
                if self.rib_in[x as usize][slot].take().is_some() {
                    self.mark_dirty(x);
                }
            }
        }
    }

    /// Restore a previously failed link: the sessions come back and both
    /// endpoints immediately re-advertise their current selections across
    /// it (a BGP session re-establish replays the full Adj-RIB-Out).
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        if self.failed.remove(&(a.min(b), a.max(b))) && self.topo.rel(a, b).is_some() {
            self.deliver(a, b);
            self.deliver(b, a);
        }
    }

    /// Is the link between `a` and `b` currently failed?
    pub fn link_is_failed(&self, a: NodeId, b: NodeId) -> bool {
        self.failed.contains(&(a.min(b), a.max(b)))
    }

    /// Deliver `x`'s current selection (or withdrawal) to the single
    /// neighbor `y`, as [`Sim::announce`] would across a live session.
    fn deliver(&mut self, x: NodeId, y: NodeId) {
        let sel = self.selected[x as usize].clone();
        let advertise = match &sel {
            Some(p) => self.policy.export(self.topo, x, y, p),
            None => true, // withdraw
        };
        let slot = self
            .topo
            .neighbors(y)
            .iter()
            .position(|&(n, _)| n == x)
            .expect("adjacency is symmetric");
        let entry = if advertise {
            sel.as_ref().map(|p| {
                let mut v = Vec::with_capacity(p.len() + 1);
                v.push(x);
                v.extend_from_slice(p);
                v
            })
        } else {
            None
        };
        if self.rib_in[y as usize][slot] != entry {
            self.rib_in[y as usize][slot] = entry;
            self.mark_dirty(y);
        }
    }

    /// The origin withdraws its prefix (an UPDATE-firehose withdraw event):
    /// the withdrawal propagates and every node ends routeless.
    pub fn withdraw_origin(&mut self) {
        if self.selected[self.dest as usize].is_some() {
            self.selected[self.dest as usize] = None;
            self.announce(self.dest);
        }
    }

    /// The origin (re-)announces its prefix after a withdrawal.
    pub fn announce_origin(&mut self) {
        if self.selected[self.dest as usize].is_none() {
            self.selected[self.dest as usize] = Some(Vec::new());
            self.announce(self.dest);
        }
    }

    /// Is the origin currently announcing its prefix?
    pub fn origin_announced(&self) -> bool {
        self.selected[self.dest as usize].is_some()
    }

    /// The currently selected path of `x` (next hop first, destination
    /// last; empty for the destination itself).
    pub fn selected(&self, x: NodeId) -> Option<&[NodeId]> {
        self.selected[x as usize].as_deref()
    }

    /// Is any speaker still dirty?
    pub fn quiescent(&self) -> bool {
        self.work.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::RoutingState;
    use miro_topology::{AsId, GenParams, TopologyBuilder};
    use std::collections::HashMap;

    #[test]
    fn converges_on_figure_1_1_and_matches_solver() {
        let (t, nodes) = miro_topology::gen::figure_1_1();
        let f = nodes[5];
        let mut sim = Sim::new(&t, GaoRexford, f);
        let out = sim.run(1, 100_000);
        assert!(out.converged());
        let st = RoutingState::solve(&t, f);
        for x in t.nodes() {
            assert_eq!(
                sim.selected(x).map(|p| p.to_vec()),
                st.path(x),
                "sim and solver disagree at node {x}"
            );
        }
    }

    #[test]
    fn sim_matches_solver_on_random_topologies_and_seeds() {
        for topo_seed in [3u64, 4, 5] {
            let t = GenParams::tiny(topo_seed).generate();
            for d in t.nodes().step_by(17) {
                let st = RoutingState::solve(&t, d);
                for sched_seed in [11u64, 12] {
                    let mut sim = Sim::new(&t, GaoRexford, d);
                    assert!(sim.run(sched_seed, 10_000_000).converged());
                    for x in t.nodes() {
                        assert_eq!(
                            sim.selected(x).map(|p| p.to_vec()),
                            st.path(x),
                            "divergence from solver: topo {topo_seed} dest {d} node {x}"
                        );
                    }
                }
            }
        }
    }

    /// Griffin's DISAGREE gadget has two stable states; the simulator must
    /// land in one of them (it may differ by schedule, but must converge).
    #[test]
    fn disagree_gadget_converges_to_a_stable_state() {
        let mut b = TopologyBuilder::new();
        for n in [0, 1, 2] {
            b.add_as(AsId(n));
        }
        b.peering(AsId(0), AsId(1));
        b.peering(AsId(0), AsId(2));
        b.peering(AsId(1), AsId(2));
        let t = b.build().unwrap();
        let d = t.node(AsId(0)).unwrap();
        let n1 = t.node(AsId(1)).unwrap();
        let n2 = t.node(AsId(2)).unwrap();
        // Each of 1, 2 prefers the path through the other.
        let mut prefs = HashMap::new();
        prefs.insert(n1, vec![vec![n2, d], vec![d]]);
        prefs.insert(n2, vec![vec![n1, d], vec![d]]);
        for seed in 0..20u64 {
            let mut sim = Sim::new(&t, TablePolicy { prefs: prefs.clone() }, d);
            assert!(sim.run(seed, 100_000).converged());
            // Exactly one of them gets its preferred indirect path.
            let p1 = sim.selected(n1).unwrap().to_vec();
            let p2 = sim.selected(n2).unwrap().to_vec();
            let stable_a = p1 == vec![n2, d] && p2 == vec![d];
            let stable_b = p2 == vec![n1, d] && p1 == vec![d];
            assert!(stable_a || stable_b, "must land in a DISAGREE stable state");
        }
    }

    /// Griffin's BAD GADGET: three nodes around a destination, each
    /// preferring the route through its clockwise neighbor; no stable state
    /// exists and SPVP oscillates forever.
    #[test]
    fn bad_gadget_diverges() {
        let mut b = TopologyBuilder::new();
        for n in [0, 1, 2, 3] {
            b.add_as(AsId(n));
        }
        for n in [1, 2, 3] {
            b.peering(AsId(0), AsId(n));
        }
        b.peering(AsId(1), AsId(2));
        b.peering(AsId(2), AsId(3));
        b.peering(AsId(3), AsId(1));
        let t = b.build().unwrap();
        let d = t.node(AsId(0)).unwrap();
        let n = |i: u32| t.node(AsId(i)).unwrap();
        let mut prefs = HashMap::new();
        prefs.insert(n(1), vec![vec![n(2), d], vec![d]]);
        prefs.insert(n(2), vec![vec![n(3), d], vec![d]]);
        prefs.insert(n(3), vec![vec![n(1), d], vec![d]]);
        let mut diverged = 0;
        for seed in 0..5u64 {
            let mut sim = Sim::new(&t, TablePolicy { prefs: prefs.clone() }, d);
            if !sim.run(seed, 50_000).converged() {
                diverged += 1;
                // Oscillation shows as sustained flapping at the gadget nodes.
                assert!(sim.flaps[n(1) as usize] > 10);
            }
        }
        assert_eq!(diverged, 5, "BAD GADGET must never converge");
    }

    #[test]
    fn link_failure_reconverges_to_alternate() {
        let (t, nodes) = miro_topology::gen::figure_1_1();
        let [_a, b, c, _d, e, f] = nodes;
        let mut sim = Sim::new(&t, GaoRexford, f);
        assert!(sim.run(7, 100_000).converged());
        assert_eq!(sim.selected(b).unwrap(), &[e, f]);
        // Fail E-F: B must fall over to its peer route BCF.
        sim.fail_link(e, f);
        assert!(sim.run(8, 100_000).converged());
        assert_eq!(sim.selected(b).unwrap(), &[c, f]);
        // E itself now routes via its provider B or D... via whichever
        // re-export reaches it: E is a customer of B and D, so it hears
        // B's new peer route (exportable to customers).
        let pe = sim.selected(e).unwrap();
        assert_eq!(*pe.last().unwrap(), f);
        assert!(!pe.is_empty());
    }

    #[test]
    fn withdrawal_propagates_when_destination_cut_off() {
        // Chain 0 -1- 2: fail the only link to the destination; everyone
        // must end with no route.
        let mut b = TopologyBuilder::new();
        for n in [0, 1, 2] {
            b.add_as(AsId(n));
        }
        b.provider_customer(AsId(1), AsId(0));
        b.provider_customer(AsId(2), AsId(1));
        let t = b.build().unwrap();
        let d = t.node(AsId(0)).unwrap();
        let n1 = t.node(AsId(1)).unwrap();
        let n2 = t.node(AsId(2)).unwrap();
        let mut sim = Sim::new(&t, GaoRexford, d);
        assert!(sim.run(3, 10_000).converged());
        assert!(sim.selected(n2).is_some());
        sim.fail_link(d, n1);
        assert!(sim.run(4, 10_000).converged());
        assert_eq!(sim.selected(n1), None);
        assert_eq!(sim.selected(n2), None);
    }

    #[test]
    fn restore_link_returns_to_the_base_state() {
        let (t, nodes) = miro_topology::gen::figure_1_1();
        let [_a, b, _c, _d, e, f] = nodes;
        let mut sim = Sim::new(&t, GaoRexford, f);
        assert!(sim.run(21, 100_000).converged());
        let base: Vec<_> = t.nodes().map(|x| sim.selected(x).map(|p| p.to_vec())).collect();

        sim.fail_link(e, f);
        assert!(sim.run(22, 100_000).converged());
        assert_ne!(sim.selected(b).unwrap(), &[e, f], "failure must move B off E");
        assert!(sim.link_is_failed(e, f));

        sim.restore_link(e, f);
        assert!(sim.run(23, 100_000).converged());
        assert!(!sim.link_is_failed(e, f));
        for x in t.nodes() {
            assert_eq!(
                sim.selected(x).map(|p| p.to_vec()),
                base[x as usize],
                "restore did not return node {x} to the base state"
            );
        }
    }

    #[test]
    fn origin_withdraw_and_reannounce_propagate() {
        let (t, nodes) = miro_topology::gen::figure_1_1();
        let f = nodes[5];
        let mut sim = Sim::new(&t, GaoRexford, f);
        assert!(sim.run(31, 100_000).converged());
        let base: Vec<_> = t.nodes().map(|x| sim.selected(x).map(|p| p.to_vec())).collect();

        sim.withdraw_origin();
        assert!(!sim.origin_announced());
        assert!(sim.run(32, 100_000).converged());
        for x in t.nodes() {
            if x != f {
                assert_eq!(sim.selected(x), None, "node {x} kept a withdrawn prefix");
            }
        }

        sim.announce_origin();
        assert!(sim.origin_announced());
        assert!(sim.run(33, 100_000).converged());
        for x in t.nodes() {
            assert_eq!(sim.selected(x).map(|p| p.to_vec()), base[x as usize]);
        }
    }

    /// Drive the same churn script through the simulator and the batched
    /// delta engine: after every reconvergence the sim's selected paths
    /// must match the engine's table exactly — two independent
    /// implementations of "the stable state under this failed set".
    #[test]
    fn churn_script_matches_batched_delta_engine() {
        use crate::solver::multi::{LinkEvent, MultiFailState};
        use crate::solver::{DeltaScratch, SolveScratch};

        let t = GenParams::tiny(13).generate();
        let n = t.num_nodes() as u32;
        let d = t.nodes().next().unwrap();
        let mut sim = Sim::new(&t, GaoRexford, d);
        assert!(sim.run(41, 10_000_000).converged());
        let mut mfs = MultiFailState::solve(&t, d, &mut SolveScratch::new());
        let mut scratch = DeltaScratch::new();

        // A deterministic little script: downs, a flap, restorations.
        let mut rng = StdRng::seed_from_u64(99);
        let mut downs: Vec<(NodeId, NodeId)> = Vec::new();
        for step in 0..12u32 {
            let batch: Vec<LinkEvent> = if step % 3 == 2 && !downs.is_empty() {
                let l = downs.swap_remove(rng.gen_range(0..downs.len()));
                vec![LinkEvent::Up(l.0, l.1)]
            } else {
                let a = rng.gen_range(0..n);
                let neigh = t.neighbors(a);
                if neigh.is_empty() {
                    continue;
                }
                let b = neigh[rng.gen_range(0..neigh.len())].0;
                if mfs.is_failed(a, b) {
                    continue;
                }
                downs.push((a.min(b), a.max(b)));
                vec![LinkEvent::Down(a, b)]
            };
            for &ev in &batch {
                match ev {
                    LinkEvent::Down(a, b) => sim.fail_link(a, b),
                    LinkEvent::Up(a, b) => sim.restore_link(a, b),
                }
            }
            assert!(sim.run(100 + step as u64, 10_000_000).converged());
            mfs.apply(&batch, &mut scratch);
            for x in t.nodes() {
                assert_eq!(
                    sim.selected(x).map(|p| p.to_vec()),
                    mfs.path(x),
                    "sim and batched engine disagree at node {x} after step {step}"
                );
            }
        }
    }

    #[test]
    fn flap_counters_stay_low_under_gao_rexford() {
        let t = GenParams::tiny(6).generate();
        let d = t.nodes().next().unwrap();
        let mut sim = Sim::new(&t, GaoRexford, d);
        assert!(sim.run(9, 1_000_000).converged());
        // Guideline A convergence is economical: no node should flap
        // excessively (loose bound; the point is "no sustained oscillation").
        for x in t.nodes() {
            assert!(sim.flaps[x as usize] < 50, "node {x} flapped {}", sim.flaps[x as usize]);
        }
    }
}
