//! Batched multi-link delta engine — the churn-replay workhorse.
//!
//! [`RoutingState::with_failed_link`] answers one what-if at a time and
//! undoes it; a churn stream is the opposite shape: an open-ended
//! sequence of link events whose effects must *persist*, arriving in
//! co-temporal bursts (a router reboot takes every session on the box
//! down in one tick; a flap announces and withdraws faster than the
//! control plane reacts). [`MultiFailState`] owns a routing table that
//! tracks an arbitrary failed-link set and applies whole event batches:
//!
//! * **Coalescing** — events are netted per link first, so a flap that
//!   cancels within a batch (down then up, or up then down on a dead
//!   link) costs nothing at all. This is where batching beats serial
//!   replay even before any cone overlap.
//! * **Batched failures** — all net link-downs are applied as one
//!   union-cone invalidation and a single boundary-seeded re-drain
//!   ([`super::redrain_cones`]): overlapping cones are recomputed once
//!   instead of once per event, and disjoint cones degenerate to
//!   exactly the serial work.
//! * **Restorations** — a link coming back *up* is not a monotone
//!   improvement under Gao-Rexford preference: class outranks length,
//!   so an endpoint that upgrades (say peer@2 to customer@9) makes
//!   every route through it *longer* while better in class, worsening
//!   its customers' routes. A relaxation that only ever improves nodes
//!   is therefore unsound for restorations. Instead the engine runs an
//!   exact **endpoint stability test**: a restored link changes the
//!   stable state iff one of its endpoints would change its selection
//!   (candidate sets elsewhere depend only on neighbor selections, so
//!   if both endpoints hold, the old state is still a stable state —
//!   and Gao-Rexford stable states are unique, so it is *the* state).
//!   Off-tree restorations — the overwhelming majority under random
//!   churn — are thus free; a restoration that does shift an endpoint
//!   pays one full masked re-solve for the whole batch.
//!
//! The equivalence contract (proptest-pinned below): after any sequence
//! of batches, the table is bit-for-bit identical to (a) applying the
//! same events one at a time, and (b) a from-scratch solve of a
//! topology rebuilt without the currently-failed links.

use super::{
    redrain_cones, route_class_code, BestRoute, DeltaScratch, Mask, RoutingState, Slot,
    SolveScratch, UNROUTED_CLASS, UNROUTED_HOPS, UNROUTED_NEXT,
};
use crate::route::ExportScope;
use miro_topology::{NodeId, Topology};

/// One link-state transition in a churn stream. Endpoints are dense
/// node ids; order does not matter (links are normalized low-high).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkEvent {
    /// The link between the two ASes went down.
    Down(NodeId, NodeId),
    /// The link between the two ASes came back up.
    Up(NodeId, NodeId),
}

impl LinkEvent {
    /// `(normalized link, is-down)` — `None` for a degenerate self-loop.
    #[inline]
    fn norm(self) -> Option<((NodeId, NodeId), bool)> {
        let (a, b, down) = match self {
            LinkEvent::Down(a, b) => (a, b, true),
            LinkEvent::Up(a, b) => (a, b, false),
        };
        (a != b).then_some(((a.min(b), a.max(b)), down))
    }
}

/// What one [`MultiFailState::apply`] call did.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ApplyStats {
    /// Net link failures applied (after coalescing).
    pub downs: usize,
    /// Net link restorations applied (after coalescing).
    pub ups: usize,
    /// Links whose events netted out against the current state — flap
    /// pairs that cancel inside the batch, repeated downs of a dead
    /// link, ups of a live one. Skipped entirely.
    pub cancelled: usize,
    /// Events naming self-loops or links absent from the topology.
    pub ignored: usize,
    /// Nodes whose table entry the engine rewrote: invalidated-cone +
    /// improvement-wave nodes, or the whole table on a full re-solve.
    pub recomputed: usize,
    /// Cone nodes that lost reachability in the failure phase (before
    /// any restoration processing).
    pub disconnected: usize,
    /// Did a restoration shift an endpoint's selection and force a full
    /// masked re-solve?
    pub full_resolve: bool,
}

/// A persistent routing table for one destination under an evolving
/// failed-link set. See the module docs for the batching strategy and
/// the equivalence contract.
pub struct MultiFailState<'t> {
    topo: &'t Topology,
    dest: NodeId,
    best: Vec<BestRoute>,
    /// `best[x]` is assigned iff `slots[x].stamp == gen`.
    slots: Vec<Slot>,
    gen: u32,
    round: u32,
    /// Currently failed links, sorted, low-high normalized.
    failed: Vec<(NodeId, NodeId)>,
}

impl<'t> MultiFailState<'t> {
    /// Solve the all-links-up base state for `dest`, taking ownership of
    /// the table (the scratch is drained and will re-grow on next use).
    pub fn solve(topo: &'t Topology, dest: NodeId, scratch: &mut SolveScratch) -> Self {
        let st = RoutingState::solve_into(topo, dest, scratch);
        let RoutingState { best, slots, gen, round, .. } = st;
        MultiFailState { topo, dest, best, slots, gen, round, failed: Vec::new() }
    }

    /// The destination this table routes toward.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The currently failed links (sorted, low-high normalized).
    pub fn failed_links(&self) -> &[(NodeId, NodeId)] {
        &self.failed
    }

    /// Is the link between `a` and `b` currently failed?
    #[inline]
    pub fn is_failed(&self, a: NodeId, b: NodeId) -> bool {
        self.failed.binary_search(&(a.min(b), a.max(b))).is_ok()
    }

    /// The selected route of `x`, if `x` can currently reach the
    /// destination.
    #[inline]
    pub fn best(&self, x: NodeId) -> Option<BestRoute> {
        (self.slots[x as usize].stamp == self.gen).then(|| self.best[x as usize])
    }

    /// The selected AS path of `x` (next hop first, destination last).
    pub fn path(&self, x: NodeId) -> Option<Vec<NodeId>> {
        let mut b = self.best(x)?;
        let mut out = Vec::with_capacity(b.len as usize);
        let mut at = x;
        while at != self.dest {
            at = b.next;
            out.push(at);
            b = self.best(at).expect("next hop of a routed AS is routed");
        }
        Some(out)
    }

    /// Number of ASes that can currently reach the destination.
    pub fn reachable_count(&self) -> usize {
        self.slots.iter().filter(|s| s.stamp == self.gen).count()
    }

    /// Order-independent FNV-1a digest of the whole table (per-node
    /// class/hops/next, unrouted as sentinels) — what the churn bench
    /// compares across serial and batched replays.
    pub fn table_fnv(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        };
        for x in 0..self.best.len() {
            let (c, l, nx) = match self.best(x as NodeId) {
                Some(b) => (route_class_code(b.class), b.len, b.next),
                None => (UNROUTED_CLASS, UNROUTED_HOPS, UNROUTED_NEXT),
            };
            eat(c);
            l.to_le_bytes().into_iter().for_each(&mut eat);
            nx.to_le_bytes().into_iter().for_each(&mut eat);
        }
        h
    }

    /// Apply one co-temporal batch of link events. Serial replay is the
    /// `events.len() == 1` special case; any grouping of the same event
    /// sequence into batches yields the identical table.
    pub fn apply(&mut self, events: &[LinkEvent], scratch: &mut DeltaScratch) -> ApplyStats {
        let mut stats = ApplyStats::default();

        // --- Net effect -------------------------------------------------
        // Last event per link wins within the batch; a final state equal
        // to the current one nets out and is skipped entirely.
        let mut finals: Vec<((NodeId, NodeId), bool)> = Vec::with_capacity(events.len());
        for &ev in events {
            let Some((key, down)) = ev.norm() else {
                stats.ignored += 1;
                continue;
            };
            if self.topo.rel(key.0, key.1).is_none() {
                stats.ignored += 1;
                continue;
            }
            match finals.iter_mut().find(|(k, _)| *k == key) {
                Some((_, d)) => *d = down,
                None => finals.push((key, down)),
            }
        }
        let mut net_downs: Vec<(NodeId, NodeId)> = Vec::new();
        let mut net_ups: Vec<(NodeId, NodeId)> = Vec::new();
        for (key, down) in finals {
            if down == self.failed.binary_search(&key).is_ok() {
                stats.cancelled += 1;
            } else if down {
                net_downs.push(key);
            } else {
                net_ups.push(key);
            }
        }
        stats.downs = net_downs.len();
        stats.ups = net_ups.len();

        // --- Failures: one union-cone recomputation ---------------------
        if !net_downs.is_empty() {
            for &key in &net_downs {
                let at = self.failed.binary_search(&key).unwrap_err();
                self.failed.insert(at, key);
            }
            // The child endpoint of a dead link is the one routing
            // *through* it (at most one per link: the parent's own path
            // never descends back into the subtree).
            let gen = self.gen;
            let mut children: Vec<NodeId> = Vec::new();
            for &(a, b) in &net_downs {
                for (c, p) in [(a, b), (b, a)] {
                    if self.slots[c as usize].stamp == gen && self.best[c as usize].next == p {
                        children.push(c);
                    }
                }
            }
            if !children.is_empty() {
                scratch.begin(self.topo.num_nodes());
                stats.disconnected = redrain_cones(
                    self.topo,
                    self.gen,
                    Mask::Many(&self.failed),
                    &mut self.round,
                    &mut self.best,
                    &mut self.slots,
                    scratch,
                    &children,
                );
                stats.recomputed = scratch.undo.len();
            }
        }

        // --- Restorations: stability test, then pay once or not at all --
        if !net_ups.is_empty() {
            for &key in &net_ups {
                let at = self.failed.binary_search(&key).expect("net-up of a failed link");
                self.failed.remove(at);
            }
            let shifted = net_ups
                .iter()
                .any(|&(a, b)| self.selection_shifts(a) || self.selection_shifts(b));
            if shifted {
                self.resolve_full(scratch);
                stats.full_resolve = true;
                stats.recomputed = self.best.len();
            }
        }

        stats
    }

    /// Would `x` pick a different route than its current one, given its
    /// neighbors' current selections and the current failed set? Exact:
    /// reproduces the stable-state selection rule (export scope, loop
    /// rejection, class > length > lowest-ASN preference).
    fn selection_shifts(&self, x: NodeId) -> bool {
        if x == self.dest {
            return false; // the origin never re-selects
        }
        self.best_candidate(x) != self.best(x)
    }

    /// The route `x` would select from its neighbors' current routes.
    fn best_candidate(&self, x: NodeId) -> Option<BestRoute> {
        let mut won: Option<(BestRoute, u32)> = None;
        for &(n, rel_nx) in self.topo.neighbors(x) {
            if self.is_failed(x, n) {
                continue; // session down
            }
            let Some(bn) = self.best(n) else { continue };
            // n's export decision is keyed on what *x* is to n.
            if !ExportScope::allows(bn.class, rel_nx.reverse()) {
                continue;
            }
            if self.chain_passes(n, x) {
                continue; // loop: x already on n's path
            }
            let cand = BestRoute {
                class: ExportScope::received_class(bn.class, rel_nx),
                len: bn.len + 1,
                next: n,
            };
            let asn = self.topo.asn(n).0;
            let better = won.is_none_or(|(w, wasn)| {
                (cand.class, cand.len, asn) < (w.class, w.len, wasn)
            });
            if better {
                won = Some((cand, asn));
            }
        }
        won.map(|(w, _)| w)
    }

    /// Does `n`'s selected next-hop chain pass through `x`?
    fn chain_passes(&self, n: NodeId, x: NodeId) -> bool {
        let mut at = n;
        while at != self.dest {
            at = self.best[at as usize].next;
            if at == x {
                return true;
            }
        }
        false
    }

    /// Full three-sweep re-solve under the current failed set, in place.
    fn resolve_full(&mut self, scratch: &mut DeltaScratch) {
        let inner = &mut scratch.inner;
        inner.best = std::mem::take(&mut self.best);
        inner.slots = std::mem::take(&mut self.slots);
        inner.gen = self.gen;
        // No live slot tag may outrun the round counter it is used with.
        inner.round = inner.round.max(self.round);
        let st =
            RoutingState::solve_core(self.topo, self.dest, Mask::Many(&self.failed), None, inner);
        let RoutingState { best, slots, gen, round, .. } = st;
        self.best = best;
        self.slots = slots;
        self.gen = gen;
        self.round = round;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::{gen::figure_1_1, AsId, Rel, TopologyBuilder};

    /// Down then up of an on-tree link inside one batch must cancel to a
    /// provable no-op, and the table must stay the base solve.
    #[test]
    fn intra_batch_flap_cancels() {
        let (topo, [a, b, _c, _d, e, f]) = figure_1_1();
        let mut st = MultiFailState::solve(&topo, f, &mut SolveScratch::new());
        let base = st.table_fnv();
        let mut scratch = DeltaScratch::new();
        let stats = st.apply(&[LinkEvent::Down(b, e), LinkEvent::Up(b, e)], &mut scratch);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.downs + stats.ups + stats.recomputed, 0);
        assert!(!stats.full_resolve);
        assert_eq!(st.table_fnv(), base);
        assert_eq!(st.path(a), Some(vec![b, e, f]));
    }

    /// A failure followed (in a later batch) by the restoration must
    /// return the table bit-for-bit to the base solve.
    #[test]
    fn down_then_up_round_trips() {
        let (topo, [a, b, c, _d, e, f]) = figure_1_1();
        let mut st = MultiFailState::solve(&topo, f, &mut SolveScratch::new());
        let base = st.table_fnv();
        let mut scratch = DeltaScratch::new();

        let stats = st.apply(&[LinkEvent::Down(b, e)], &mut scratch);
        assert_eq!(stats.downs, 1);
        assert!(stats.recomputed > 0, "an on-tree failure rewrites its cone");
        assert_eq!(st.failed_links(), &[(b.min(e), b.max(e))]);
        // B falls back to its peer route through C; A keeps B on the
        // lowest-ASN tie-break, so A now reaches F via B -> C.
        assert_eq!(st.path(a), Some(vec![b, c, f]));

        let stats = st.apply(&[LinkEvent::Up(b, e)], &mut scratch);
        assert_eq!(stats.ups, 1);
        assert!(stats.full_resolve, "restoring an adopted link shifts its endpoint");
        assert!(st.failed_links().is_empty());
        assert_eq!(st.table_fnv(), base);
        assert_eq!(st.path(a), Some(vec![b, e, f]));
    }

    /// Off-tree events — and restorations no endpoint wants — are free.
    #[test]
    fn off_tree_events_are_noops() {
        // dest -- x (customer chain), plus a peer link x -- y where y has
        // its own customer path to dest: the peer link is never adopted.
        let mut b = TopologyBuilder::new();
        let (dest, x, y) = (AsId(1), AsId(2), AsId(3));
        b.intern_as(dest);
        b.intern_as(x);
        b.intern_as(y);
        b.link(dest, x, Rel::Provider); // x is dest's provider
        b.link(dest, y, Rel::Provider);
        b.link(x, y, Rel::Peer);
        let topo = b.build().unwrap();
        let d = topo.node(dest).unwrap();
        let (xn, yn) = (topo.node(x).unwrap(), topo.node(y).unwrap());

        let mut st = MultiFailState::solve(&topo, d, &mut SolveScratch::new());
        let base = st.table_fnv();
        let mut scratch = DeltaScratch::new();

        let stats = st.apply(&[LinkEvent::Down(xn, yn)], &mut scratch);
        assert_eq!((stats.downs, stats.recomputed), (1, 0));
        assert_eq!(st.table_fnv(), base, "off-tree failure leaves the table alone");

        let stats = st.apply(&[LinkEvent::Up(xn, yn)], &mut scratch);
        assert_eq!(stats.ups, 1);
        assert!(!stats.full_resolve, "unwanted restoration must not re-solve");
        assert_eq!(st.table_fnv(), base);
    }

    /// Self-loops and links absent from the topology are counted and
    /// skipped, never applied.
    #[test]
    fn bogus_events_are_ignored() {
        let (topo, [_a, _b, _c, _d, e, f]) = figure_1_1();
        let mut st = MultiFailState::solve(&topo, f, &mut SolveScratch::new());
        let mut scratch = DeltaScratch::new();
        let stats = st.apply(
            &[LinkEvent::Down(e, e), LinkEvent::Down(0, 5), LinkEvent::Up(1, 4)],
            &mut scratch,
        );
        // (e,e) is a self-loop, (0,5) = A--F does not exist in Figure
        // 1.1, and (1,4) = B--E exists but is already up (nets out).
        assert_eq!(stats.ignored, 2);
        assert_eq!(stats.cancelled, 1);
        assert!(st.failed_links().is_empty());
    }
}

#[cfg(test)]
mod equivalence {
    use super::*;
    use miro_topology::{AsId, Rel, TopologyBuilder};
    use proptest::prelude::*;

    const N: u32 = 24;

    fn build(edges: Vec<(u32, u32, u8)>) -> Topology {
        let mut b = TopologyBuilder::new();
        for n in 0..N {
            b.intern_as(AsId(100 + n));
        }
        let mut seen = std::collections::HashSet::new();
        for (x, y, r) in edges {
            if x == y || !seen.insert((x.min(y), x.max(y))) {
                continue;
            }
            let rel = match r {
                0 => Rel::Customer,
                1 => Rel::Provider,
                2 => Rel::Peer,
                _ => Rel::Sibling,
            };
            b.link(AsId(100 + x), AsId(100 + y), rel);
        }
        b.build().expect("constructed edges are consistent")
    }

    /// The strongest oracle: physically rebuild the topology without the
    /// failed links (same interning order, so node ids align) and solve
    /// from scratch.
    fn rebuilt_without(t: &Topology, failed: &[(NodeId, NodeId)]) -> Topology {
        let mut b = TopologyBuilder::new();
        for x in t.nodes() {
            b.intern_as(t.asn(x));
        }
        for x in t.nodes() {
            for &(y, rel) in t.neighbors(x) {
                if x < y && failed.binary_search(&(x, y)).is_err() {
                    b.link(t.asn(x), t.asn(y), rel);
                }
            }
        }
        b.build().expect("subgraph of a consistent topology")
    }

    fn assert_matches_oracles(st: &MultiFailState<'_>, t: &Topology, dest: NodeId) {
        // Oracle 1: from-scratch solve of the physically pruned graph.
        let pruned = rebuilt_without(t, st.failed_links());
        let oracle = RoutingState::solve(&pruned, dest);
        // Oracle 2: full masked solve over the original graph — pins the
        // Mask::Many fast path against the rebuild at the same time.
        let masked = RoutingState::solve_core(
            t,
            dest,
            Mask::Many(st.failed_links()),
            None,
            &mut SolveScratch::new(),
        );
        for x in t.nodes() {
            assert_eq!(st.best(x), oracle.best(x), "pruned-rebuild diverged at node {x}");
            assert_eq!(st.best(x), masked.best(x), "masked solve diverged at node {x}");
        }
    }

    /// Strategy: a churn script over the node-pair space, plus how to
    /// chop it into co-temporal batches. Down/up pairs over the same
    /// links recur with high probability at this range, so cancelling
    /// flaps (the acceptance-criteria case) are exercised constantly.
    type ChurnScript = (Vec<(u32, u32, u8)>, u32, Vec<(u32, u32, u8)>, Vec<u8>);

    fn script() -> impl Strategy<Value = ChurnScript> {
        (
            proptest::collection::vec((0u32..N, 0u32..N, 0u8..4), 0..90),
            0u32..N,
            proptest::collection::vec((0u32..N, 0u32..N, 0u8..2), 0..24),
            proptest::collection::vec(1u8..6, 0..12),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Batched application over arbitrary event interleavings —
        /// including flap sequences that cancel out — is byte-identical
        /// to serial one-event-at-a-time application, to a from-scratch
        /// solve of the pruned topology, and to a full Mask::Many solve,
        /// after every single batch.
        #[test]
        fn batched_equals_serial_and_oracles((edges, dest_raw, script, cuts) in script()) {
            let t = build(edges);
            let dest = dest_raw % t.num_nodes() as u32;
            let events: Vec<LinkEvent> = script
                .iter()
                .map(|&(a, b, down)| {
                    let (a, b) = (a % t.num_nodes() as u32, b % t.num_nodes() as u32);
                    if down == 1 { LinkEvent::Down(a, b) } else { LinkEvent::Up(a, b) }
                })
                .collect();

            let mut solve = SolveScratch::new();
            let mut batched = MultiFailState::solve(&t, dest, &mut solve);
            let mut serial = MultiFailState::solve(&t, dest, &mut solve);
            let mut sb = DeltaScratch::new();
            let mut ss = DeltaScratch::new();

            // Chop the script into batches along the `cuts` sizes
            // (cycling), so batch boundaries are arbitrary.
            let mut at = 0usize;
            let mut cut_i = 0usize;
            while at < events.len() {
                let take = if cuts.is_empty() { 3 } else { cuts[cut_i % cuts.len()] as usize };
                cut_i += 1;
                let batch = &events[at..(at + take).min(events.len())];
                at += batch.len();

                batched.apply(batch, &mut sb);
                for &ev in batch {
                    serial.apply(std::slice::from_ref(&ev), &mut ss);
                }

                prop_assert_eq!(batched.failed_links(), serial.failed_links());
                for x in t.nodes() {
                    prop_assert_eq!(batched.best(x), serial.best(x), "serial diverged at {}", x);
                }
                prop_assert_eq!(batched.table_fnv(), serial.table_fnv());
                assert_matches_oracles(&batched, &t, dest);
            }
        }

        /// An explicit cancellation storm: every event is immediately
        /// contradicted inside the same batch, so whole batches must net
        /// to zero work and the base table must survive untouched.
        #[test]
        fn cancelling_flaps_are_free(
            edges in proptest::collection::vec((0u32..N, 0u32..N, 0u8..4), 0..90),
            dest_raw in 0u32..N,
            flaps in proptest::collection::vec((0u32..N, 0u32..N), 1..10),
        ) {
            let t = build(edges);
            let dest = dest_raw % t.num_nodes() as u32;
            let mut st = MultiFailState::solve(&t, dest, &mut SolveScratch::new());
            let base = st.table_fnv();
            let mut scratch = DeltaScratch::new();

            let mut batch = Vec::new();
            for &(a, b) in &flaps {
                batch.push(LinkEvent::Down(a, b));
                batch.push(LinkEvent::Up(a, b));
            }
            let stats = st.apply(&batch, &mut scratch);
            prop_assert_eq!(stats.downs + stats.ups + stats.recomputed, 0);
            prop_assert!(!stats.full_resolve);
            prop_assert_eq!(st.table_fnv(), base);
            prop_assert!(st.failed_links().is_empty());
        }
    }
}
