//! The router-level BGP best-path selection process of Table 2.1.
//!
//! The AS-level solver in this crate abstracts selection down to
//! (class, length, tie-break); real routers run the full eight-step
//! comparison, and MIRO's intra-AS story (section 4.1) hinges on steps 5-7:
//! two edge routers of the same AS can stick to *different* AS paths because
//! each prefers its own eBGP-learned route (step 5), and an internal router
//! picks between them by IGP distance (step 6). This module implements the
//! full process so `miro-dataplane` can reproduce the R1/R2/R3 example of
//! Figure 4.1 and the quickstart example can render Table 1.1.

/// Route origin attribute, ordered as BGP compares it (IGP < EGP <
/// Incomplete; lower wins in step 3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Origin {
    /// Originated by an IGP (`i` in show output).
    Igp,
    /// Originated via EGP (`e`).
    Egp,
    /// Redistributed (`?`).
    Incomplete,
}

/// Attributes a route carries into the decision process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RouteAttrs {
    /// Step 1: higher wins.
    pub local_pref: u32,
    /// Step 2: shorter wins. (Number of ASes in AS_PATH.)
    pub as_path_len: u32,
    /// Step 3: lower origin type wins.
    pub origin: Origin,
    /// Step 4: lower Multi-Exit Discriminator wins, but only when compared
    /// against a route from the same neighboring AS.
    pub med: u32,
    /// The neighboring AS this route was learned from (scopes the MED
    /// comparison).
    pub neighbor_as: u32,
    /// Step 5: eBGP-learned beats iBGP-learned.
    pub ebgp: bool,
    /// Step 6: lower IGP distance to the egress point wins.
    pub igp_dist: u32,
    /// Step 7: lower advertising router id wins.
    pub router_id: u32,
    /// Step 8: lower neighbor interface address wins.
    pub peer_addr: u32,
}

/// Which step of Table 2.1 decided the comparison (for diagnostics, tests,
/// and the quickstart example's narration).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecidedBy {
    LocalPref,
    AsPathLen,
    Origin,
    Med,
    EbgpOverIbgp,
    IgpDistance,
    RouterId,
    PeerAddr,
    /// All eight attributes tie (the routes are interchangeable; some
    /// routers would ECMP here, see section 2.2.2's Cisco multipath note).
    Tie,
}

/// Compare two routes with the eight-step process. Returns which route wins
/// (`Less` means `a` is better) and the step that decided.
pub fn compare(a: &RouteAttrs, b: &RouteAttrs) -> (std::cmp::Ordering, DecidedBy) {
    use std::cmp::Ordering::*;
    // 1. Higher local preference.
    match b.local_pref.cmp(&a.local_pref) {
        Equal => {}
        o => return (o, DecidedBy::LocalPref),
    }
    // 2. Shorter AS path.
    match a.as_path_len.cmp(&b.as_path_len) {
        Equal => {}
        o => return (o, DecidedBy::AsPathLen),
    }
    // 3. Lower origin type.
    match a.origin.cmp(&b.origin) {
        Equal => {}
        o => return (o, DecidedBy::Origin),
    }
    // 4. Lower MED, within the same next-hop AS only.
    if a.neighbor_as == b.neighbor_as {
        match a.med.cmp(&b.med) {
            Equal => {}
            o => return (o, DecidedBy::Med),
        }
    }
    // 5. eBGP over iBGP.
    match (a.ebgp, b.ebgp) {
        (true, false) => return (Less, DecidedBy::EbgpOverIbgp),
        (false, true) => return (Greater, DecidedBy::EbgpOverIbgp),
        _ => {}
    }
    // 6. Lower IGP distance to the egress point.
    match a.igp_dist.cmp(&b.igp_dist) {
        Equal => {}
        o => return (o, DecidedBy::IgpDistance),
    }
    // 7. Lower router id.
    match a.router_id.cmp(&b.router_id) {
        Equal => {}
        o => return (o, DecidedBy::RouterId),
    }
    // 8. Lower peer interface address.
    match a.peer_addr.cmp(&b.peer_addr) {
        Equal => {}
        o => return (o, DecidedBy::PeerAddr),
    }
    (Equal, DecidedBy::Tie)
}

/// Pick the single best route from `routes`, returning its index (BGP's
/// "only one best path" rule, section 2.2.2). `None` on an empty slice.
pub fn select_best(routes: &[RouteAttrs]) -> Option<usize> {
    let mut best = 0;
    if routes.is_empty() {
        return None;
    }
    for i in 1..routes.len() {
        if compare(&routes[i], &routes[best]).0 == std::cmp::Ordering::Less {
            best = i;
        }
    }
    Some(best)
}

/// Routes that tie with the best through step 6 and share its AS-path
/// length: the set limited-multipath Cisco routers would install together
/// (section 2.2.2). Always contains the best route itself.
pub fn ecmp_set(routes: &[RouteAttrs]) -> Vec<usize> {
    let Some(best) = select_best(routes) else { return Vec::new() };
    let b = &routes[best];
    routes
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            r.local_pref == b.local_pref
                && r.as_path_len == b.as_path_len
                && r.origin == b.origin
                && (r.neighbor_as != b.neighbor_as || r.med == b.med)
                && r.ebgp == b.ebgp
                && r.igp_dist == b.igp_dist
        })
        .map(|(i, _)| i)
        .collect()
}

impl Default for RouteAttrs {
    fn default() -> Self {
        RouteAttrs {
            local_pref: 100,
            as_path_len: 1,
            origin: Origin::Igp,
            med: 0,
            neighbor_as: 0,
            ebgp: true,
            igp_dist: 0,
            router_id: 0,
            peer_addr: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering::*;

    fn base() -> RouteAttrs {
        RouteAttrs::default()
    }

    #[test]
    fn step1_local_pref_dominates_everything() {
        let a = RouteAttrs { local_pref: 200, as_path_len: 9, ..base() };
        let b = RouteAttrs { local_pref: 100, as_path_len: 1, ..base() };
        assert_eq!(compare(&a, &b), (Less, DecidedBy::LocalPref));
    }

    #[test]
    fn step2_shorter_path_wins() {
        let a = RouteAttrs { as_path_len: 2, origin: Origin::Incomplete, ..base() };
        let b = RouteAttrs { as_path_len: 3, origin: Origin::Igp, ..base() };
        assert_eq!(compare(&a, &b), (Less, DecidedBy::AsPathLen));
    }

    #[test]
    fn step3_origin_ordering() {
        let a = RouteAttrs { origin: Origin::Igp, ..base() };
        let b = RouteAttrs { origin: Origin::Egp, ..base() };
        let c = RouteAttrs { origin: Origin::Incomplete, ..base() };
        assert_eq!(compare(&a, &b), (Less, DecidedBy::Origin));
        assert_eq!(compare(&b, &c), (Less, DecidedBy::Origin));
    }

    #[test]
    fn step4_med_only_within_same_neighbor_as() {
        let a = RouteAttrs { med: 10, neighbor_as: 7, ..base() };
        let b = RouteAttrs { med: 20, neighbor_as: 7, ..base() };
        assert_eq!(compare(&a, &b), (Less, DecidedBy::Med));
        // Different neighbor AS: MED skipped, falls through to tie.
        let c = RouteAttrs { med: 99, neighbor_as: 8, ..base() };
        let (ord, by) = compare(&a, &c);
        assert_eq!(ord, Equal);
        assert_eq!(by, DecidedBy::Tie);
    }

    #[test]
    fn step5_ebgp_over_ibgp() {
        let a = RouteAttrs { ebgp: true, igp_dist: 100, ..base() };
        let b = RouteAttrs { ebgp: false, igp_dist: 1, ..base() };
        assert_eq!(compare(&a, &b), (Less, DecidedBy::EbgpOverIbgp));
    }

    #[test]
    fn step6_igp_distance() {
        let a = RouteAttrs { igp_dist: 5, router_id: 9, ..base() };
        let b = RouteAttrs { igp_dist: 6, router_id: 1, ..base() };
        assert_eq!(compare(&a, &b), (Less, DecidedBy::IgpDistance));
    }

    #[test]
    fn step7_router_id_then_step8_peer_addr() {
        let a = RouteAttrs { router_id: 1, ..base() };
        let b = RouteAttrs { router_id: 2, ..base() };
        assert_eq!(compare(&a, &b), (Less, DecidedBy::RouterId));
        let c = RouteAttrs { peer_addr: 1, ..base() };
        let d = RouteAttrs { peer_addr: 2, ..base() };
        assert_eq!(compare(&c, &d), (Less, DecidedBy::PeerAddr));
    }

    #[test]
    fn select_best_is_total() {
        let routes = vec![
            RouteAttrs { local_pref: 100, as_path_len: 3, ..base() },
            RouteAttrs { local_pref: 300, as_path_len: 5, ..base() },
            RouteAttrs { local_pref: 300, as_path_len: 4, ..base() },
        ];
        assert_eq!(select_best(&routes), Some(2));
        assert_eq!(select_best(&[]), None);
    }

    #[test]
    fn figure_4_1_intra_as_scenario() {
        // Router R1 holds (VU, via R2) and (WU, via R3) as iBGP routes,
        // equal through step 5; IGP distance decides (section 4.1).
        let via_r2 = RouteAttrs { ebgp: false, igp_dist: 10, router_id: 2, ..base() };
        let via_r3 = RouteAttrs { ebgp: false, igp_dist: 20, router_id: 3, ..base() };
        assert_eq!(compare(&via_r2, &via_r3), (Less, DecidedBy::IgpDistance));
        // Router R2 prefers its own eBGP route over R3's iBGP route
        // (step 5), which is why R2 and R3 stick to different AS paths.
        let own_ebgp = RouteAttrs { ebgp: true, igp_dist: 0, router_id: 2, ..base() };
        let other_ibgp = RouteAttrs { ebgp: false, igp_dist: 5, router_id: 3, ..base() };
        assert_eq!(compare(&own_ebgp, &other_ibgp), (Less, DecidedBy::EbgpOverIbgp));
    }

    #[test]
    fn ecmp_set_contains_equal_routes() {
        let r1 = RouteAttrs { router_id: 1, ..base() };
        let r2 = RouteAttrs { router_id: 2, ..base() };
        let worse = RouteAttrs { igp_dist: 50, router_id: 0, ..base() };
        let set = ecmp_set(&[r1, r2, worse]);
        assert_eq!(set, vec![0, 1]);
        assert!(ecmp_set(&[]).is_empty());
    }
}
