//! BGP-4 message wire formats (RFC 4271, the protocol of section 2.2.2),
//! parsed and emitted over byte buffers in the smoltcp style.
//!
//! MIRO is explicitly backward compatible with deployed BGP (section 3.2),
//! so the reproduction carries the real message formats: the 19-byte
//! header with its all-ones marker, OPEN with the 16-bit AS number and
//! hold time, UPDATE with withdrawn routes / path attributes (ORIGIN,
//! AS_PATH, NEXT_HOP, MED, LOCAL_PREF) / NLRI, KEEPALIVE, and
//! NOTIFICATION. The session layer in [`crate::session`] speaks these.
//!
//! Omitted: multiprotocol extensions, 4-octet AS numbers in AS_PATH
//! (AS_TRANS handling), route refresh, and communities — none are needed
//! by any experiment; `AsPath` here carries `u32` internally but encodes
//! 16-bit, erroring on overflow, which matches the dissertation's
//! 16-bit-era tables.

use std::fmt;

/// The 16-byte all-ones marker of every BGP message.
pub const MARKER: [u8; 16] = [0xff; 16];
/// Fixed header length: marker + length + type.
pub const HEADER_LEN: usize = 19;
/// RFC 4271 maximum message size.
pub const MAX_MESSAGE: usize = 4096;

/// Message type octet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MessageType {
    Open = 1,
    Update = 2,
    Notification = 3,
    Keepalive = 4,
}

/// Wire-level decode errors (each maps onto a NOTIFICATION the session
/// layer would send).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Fewer bytes than the header demands.
    Truncated,
    /// Marker is not all ones (connection not synchronized).
    BadMarker,
    /// Length field below 19 or above 4096, or inconsistent with content.
    BadLength,
    /// Unknown type octet.
    BadType(u8),
    /// Malformed field inside the body.
    Malformed(&'static str),
    /// AS number or value does not fit the 16-bit encoding.
    Overflow(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadMarker => write!(f, "marker is not all ones"),
            WireError::BadLength => write!(f, "bad length field"),
            WireError::BadType(t) => write!(f, "unknown message type {t}"),
            WireError::Malformed(what) => write!(f, "malformed {what}"),
            WireError::Overflow(what) => write!(f, "{what} does not fit the encoding"),
        }
    }
}

impl std::error::Error for WireError {}

/// An IPv4 prefix in NLRI encoding (length in bits + minimal octets).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WirePrefix {
    pub len: u8,
    pub addr: u32,
}

impl WirePrefix {
    pub fn new(addr: u32, len: u8) -> WirePrefix {
        assert!(len <= 32);
        let masked = if len == 0 { 0 } else { addr & (!0u32 << (32 - len)) };
        WirePrefix { len, addr: masked }
    }

    fn emit(&self, out: &mut Vec<u8>) {
        out.push(self.len);
        let bytes = self.addr.to_be_bytes();
        out.extend_from_slice(&bytes[..(self.len as usize).div_ceil(8)]);
    }

    fn parse(data: &[u8], at: &mut usize) -> Result<WirePrefix, WireError> {
        let len = *data.get(*at).ok_or(WireError::Truncated)?;
        *at += 1;
        if len > 32 {
            return Err(WireError::Malformed("prefix length"));
        }
        let nbytes = (len as usize).div_ceil(8);
        if *at + nbytes > data.len() {
            return Err(WireError::Truncated);
        }
        let mut addr = [0u8; 4];
        addr[..nbytes].copy_from_slice(&data[*at..*at + nbytes]);
        *at += nbytes;
        let value = u32::from_be_bytes(addr);
        // Reject non-canonical encodings (set host bits).
        let canon = WirePrefix::new(value, len);
        if canon.addr != value {
            return Err(WireError::Malformed("prefix host bits"));
        }
        Ok(canon)
    }
}

/// Path attributes carried by an UPDATE (the ones the decision process of
/// Table 2.1 consumes).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PathAttributes {
    /// ORIGIN (type 1): 0 IGP, 1 EGP, 2 INCOMPLETE.
    pub origin: Option<u8>,
    /// AS_PATH (type 2), one AS_SEQUENCE segment.
    pub as_path: Vec<u32>,
    /// NEXT_HOP (type 3).
    pub next_hop: Option<u32>,
    /// MULTI_EXIT_DISC (type 4).
    pub med: Option<u32>,
    /// LOCAL_PREF (type 5).
    pub local_pref: Option<u32>,
}

/// A decoded BGP message.
///
/// ```
/// use miro_bgp::wire::BgpMessage;
///
/// let open = BgpMessage::open(65001, 90, 0x0a000001);
/// let bytes = open.emit().unwrap();
/// assert_eq!(bytes.len(), 29);                    // RFC 4271 OPEN size
/// let (parsed, used) = BgpMessage::parse(&bytes).unwrap();
/// assert_eq!(parsed, open);
/// assert_eq!(used, bytes.len());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BgpMessage {
    Open {
        version: u8,
        my_as: u16,
        hold_time: u16,
        bgp_id: u32,
    },
    Update {
        withdrawn: Vec<WirePrefix>,
        attrs: PathAttributes,
        nlri: Vec<WirePrefix>,
    },
    Notification {
        code: u8,
        subcode: u8,
        data: Vec<u8>,
    },
    Keepalive,
}

impl BgpMessage {
    /// Convenience constructors matching common session-layer needs.
    pub fn open(my_as: u16, hold_time: u16, bgp_id: u32) -> BgpMessage {
        BgpMessage::Open { version: 4, my_as, hold_time, bgp_id }
    }

    /// Encode to wire bytes.
    pub fn emit(&self) -> Result<Vec<u8>, WireError> {
        let mut body = Vec::new();
        let ty = match self {
            BgpMessage::Open { version, my_as, hold_time, bgp_id } => {
                body.push(*version);
                body.extend_from_slice(&my_as.to_be_bytes());
                body.extend_from_slice(&hold_time.to_be_bytes());
                body.extend_from_slice(&bgp_id.to_be_bytes());
                body.push(0); // no optional parameters
                MessageType::Open
            }
            BgpMessage::Update { withdrawn, attrs, nlri } => {
                let mut w = Vec::new();
                for p in withdrawn {
                    p.emit(&mut w);
                }
                if w.len() > u16::MAX as usize {
                    return Err(WireError::Overflow("withdrawn routes"));
                }
                body.extend_from_slice(&(w.len() as u16).to_be_bytes());
                body.extend_from_slice(&w);
                let mut a = Vec::new();
                emit_attrs(attrs, &mut a)?;
                if a.len() > u16::MAX as usize {
                    return Err(WireError::Overflow("path attributes"));
                }
                body.extend_from_slice(&(a.len() as u16).to_be_bytes());
                body.extend_from_slice(&a);
                for p in nlri {
                    p.emit(&mut body);
                }
                MessageType::Update
            }
            BgpMessage::Notification { code, subcode, data } => {
                body.push(*code);
                body.push(*subcode);
                body.extend_from_slice(data);
                MessageType::Notification
            }
            BgpMessage::Keepalive => MessageType::Keepalive,
        };
        let total = HEADER_LEN + body.len();
        if total > MAX_MESSAGE {
            return Err(WireError::Overflow("message"));
        }
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MARKER);
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.push(ty as u8);
        out.extend_from_slice(&body);
        Ok(out)
    }

    /// Decode one message from the front of `data`; returns the message
    /// and the number of bytes consumed (for stream reassembly).
    pub fn parse(data: &[u8]) -> Result<(BgpMessage, usize), WireError> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if data[..16] != MARKER {
            return Err(WireError::BadMarker);
        }
        let total = u16::from_be_bytes([data[16], data[17]]) as usize;
        if !(HEADER_LEN..=MAX_MESSAGE).contains(&total) {
            return Err(WireError::BadLength);
        }
        if data.len() < total {
            return Err(WireError::Truncated);
        }
        let body = &data[HEADER_LEN..total];
        let msg = match data[18] {
            1 => {
                if body.len() < 10 {
                    return Err(WireError::Malformed("OPEN body"));
                }
                let opt_len = body[9] as usize;
                if body.len() != 10 + opt_len {
                    return Err(WireError::Malformed("OPEN optional parameters"));
                }
                BgpMessage::Open {
                    version: body[0],
                    my_as: u16::from_be_bytes([body[1], body[2]]),
                    hold_time: u16::from_be_bytes([body[3], body[4]]),
                    bgp_id: u32::from_be_bytes([body[5], body[6], body[7], body[8]]),
                }
            }
            2 => parse_update(body)?,
            3 => {
                if body.len() < 2 {
                    return Err(WireError::Malformed("NOTIFICATION body"));
                }
                BgpMessage::Notification {
                    code: body[0],
                    subcode: body[1],
                    data: body[2..].to_vec(),
                }
            }
            4 => {
                if !body.is_empty() {
                    return Err(WireError::BadLength);
                }
                BgpMessage::Keepalive
            }
            t => return Err(WireError::BadType(t)),
        };
        Ok((msg, total))
    }
}

fn emit_attrs(attrs: &PathAttributes, out: &mut Vec<u8>) -> Result<(), WireError> {
    // flags: 0x40 = well-known transitive; 0x80 = optional.
    let mut put = |flags: u8, ty: u8, value: &[u8]| {
        out.push(flags);
        out.push(ty);
        out.push(value.len() as u8);
        out.extend_from_slice(value);
    };
    if let Some(o) = attrs.origin {
        put(0x40, 1, &[o]);
    }
    if !attrs.as_path.is_empty() {
        if attrs.as_path.len() > 255 {
            return Err(WireError::Overflow("AS_PATH length"));
        }
        let mut seg = vec![2u8 /* AS_SEQUENCE */, attrs.as_path.len() as u8];
        for &asn in &attrs.as_path {
            let short: u16 =
                asn.try_into().map_err(|_| WireError::Overflow("AS number"))?;
            seg.extend_from_slice(&short.to_be_bytes());
        }
        put(0x40, 2, &seg);
    }
    if let Some(nh) = attrs.next_hop {
        put(0x40, 3, &nh.to_be_bytes());
    }
    if let Some(med) = attrs.med {
        put(0x80, 4, &med.to_be_bytes());
    }
    if let Some(lp) = attrs.local_pref {
        put(0x40, 5, &lp.to_be_bytes());
    }
    Ok(())
}

fn parse_update(body: &[u8]) -> Result<BgpMessage, WireError> {
    if body.len() < 2 {
        return Err(WireError::Malformed("UPDATE body"));
    }
    let wlen = u16::from_be_bytes([body[0], body[1]]) as usize;
    if 2 + wlen + 2 > body.len() {
        return Err(WireError::Malformed("withdrawn routes length"));
    }
    let mut withdrawn = Vec::new();
    {
        let wdata = &body[2..2 + wlen];
        let mut at = 0;
        while at < wdata.len() {
            withdrawn.push(WirePrefix::parse(wdata, &mut at)?);
        }
    }
    let alen_off = 2 + wlen;
    let alen = u16::from_be_bytes([body[alen_off], body[alen_off + 1]]) as usize;
    let attrs_start = alen_off + 2;
    if attrs_start + alen > body.len() {
        return Err(WireError::Malformed("attribute length"));
    }
    let mut attrs = PathAttributes::default();
    {
        let adata = &body[attrs_start..attrs_start + alen];
        let mut at = 0;
        while at < adata.len() {
            if at + 3 > adata.len() {
                return Err(WireError::Malformed("attribute header"));
            }
            let flags = adata[at];
            let ty = adata[at + 1];
            let (len, header) = if flags & 0x10 != 0 {
                // extended length
                if at + 4 > adata.len() {
                    return Err(WireError::Malformed("extended attribute header"));
                }
                (u16::from_be_bytes([adata[at + 2], adata[at + 3]]) as usize, 4)
            } else {
                (adata[at + 2] as usize, 3)
            };
            let vstart = at + header;
            if vstart + len > adata.len() {
                return Err(WireError::Malformed("attribute value"));
            }
            let value = &adata[vstart..vstart + len];
            match ty {
                1 => {
                    if value.len() != 1 || value[0] > 2 {
                        return Err(WireError::Malformed("ORIGIN"));
                    }
                    attrs.origin = Some(value[0]);
                }
                2 => {
                    let mut at2 = 0;
                    while at2 < value.len() {
                        if at2 + 2 > value.len() {
                            return Err(WireError::Malformed("AS_PATH segment"));
                        }
                        let seg_ty = value[at2];
                        let count = value[at2 + 1] as usize;
                        at2 += 2;
                        if seg_ty != 1 && seg_ty != 2 {
                            return Err(WireError::Malformed("AS_PATH segment type"));
                        }
                        if at2 + count * 2 > value.len() {
                            return Err(WireError::Malformed("AS_PATH segment length"));
                        }
                        for _ in 0..count {
                            attrs.as_path.push(u32::from(u16::from_be_bytes([
                                value[at2],
                                value[at2 + 1],
                            ])));
                            at2 += 2;
                        }
                    }
                }
                3 => {
                    if value.len() != 4 {
                        return Err(WireError::Malformed("NEXT_HOP"));
                    }
                    attrs.next_hop =
                        Some(u32::from_be_bytes([value[0], value[1], value[2], value[3]]));
                }
                4 => {
                    if value.len() != 4 {
                        return Err(WireError::Malformed("MED"));
                    }
                    attrs.med =
                        Some(u32::from_be_bytes([value[0], value[1], value[2], value[3]]));
                }
                5 => {
                    if value.len() != 4 {
                        return Err(WireError::Malformed("LOCAL_PREF"));
                    }
                    attrs.local_pref =
                        Some(u32::from_be_bytes([value[0], value[1], value[2], value[3]]));
                }
                _ => {
                    // Unknown optional attributes are skipped (transit);
                    // unknown well-known attributes are an error.
                    if flags & 0x80 == 0 {
                        return Err(WireError::Malformed("unknown well-known attribute"));
                    }
                }
            }
            at = vstart + len;
        }
    }
    let mut nlri = Vec::new();
    {
        let ndata = &body[attrs_start + alen..];
        let mut at = 0;
        while at < ndata.len() {
            nlri.push(WirePrefix::parse(ndata, &mut at)?);
        }
    }
    Ok(BgpMessage::Update { withdrawn, attrs, nlri })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keepalive_is_19_bytes_exactly() {
        let bytes = BgpMessage::Keepalive.emit().unwrap();
        assert_eq!(bytes.len(), HEADER_LEN);
        let (msg, used) = BgpMessage::parse(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Keepalive);
        assert_eq!(used, HEADER_LEN);
    }

    #[test]
    fn open_round_trip_and_golden_bytes() {
        let m = BgpMessage::open(65001, 90, 0xc0a80001);
        let bytes = m.emit().unwrap();
        assert_eq!(bytes.len(), 29);
        // Header: marker, length 29, type 1.
        assert_eq!(&bytes[..16], &MARKER);
        assert_eq!(&bytes[16..19], &[0, 29, 1]);
        // Body: version 4, AS 65001, hold 90, id, optlen 0.
        assert_eq!(&bytes[19..], &[4, 0xfd, 0xe9, 0, 90, 0xc0, 0xa8, 0, 1, 0]);
        let (parsed, _) = BgpMessage::parse(&bytes).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn update_round_trip_with_all_attributes() {
        let m = BgpMessage::Update {
            withdrawn: vec![WirePrefix::new(0x0a000000, 8)],
            attrs: PathAttributes {
                origin: Some(0),
                as_path: vec![6509, 11537, 10466, 88],
                next_hop: Some(0xcebd202c), // 206.189.32.44-ish
                med: Some(10),
                local_pref: Some(250),
            },
            nlri: vec![
                WirePrefix::new(0x80700000, 16), // 128.112.0.0/16 (Table 1.1)
                WirePrefix::new(0x80710b00, 24), // 128.113.11.0/24
            ],
        };
        let bytes = m.emit().unwrap();
        let (parsed, used) = BgpMessage::parse(&bytes).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn empty_update_is_valid() {
        // RFC 4271: an UPDATE with no withdrawn routes and no NLRI (used
        // as end-of-rib in practice).
        let m = BgpMessage::Update {
            withdrawn: vec![],
            attrs: PathAttributes::default(),
            nlri: vec![],
        };
        let bytes = m.emit().unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + 4);
        assert_eq!(BgpMessage::parse(&bytes).unwrap().0, m);
    }

    #[test]
    fn notification_round_trip() {
        let m = BgpMessage::Notification { code: 6, subcode: 2, data: vec![1, 2, 3] };
        let bytes = m.emit().unwrap();
        assert_eq!(BgpMessage::parse(&bytes).unwrap().0, m);
    }

    #[test]
    fn bad_marker_rejected() {
        let mut bytes = BgpMessage::Keepalive.emit().unwrap();
        bytes[3] = 0x00;
        assert_eq!(BgpMessage::parse(&bytes).unwrap_err(), WireError::BadMarker);
    }

    #[test]
    fn truncation_and_bad_lengths() {
        let bytes = BgpMessage::open(1, 90, 7).emit().unwrap();
        assert_eq!(BgpMessage::parse(&bytes[..10]).unwrap_err(), WireError::Truncated);
        assert_eq!(
            BgpMessage::parse(&bytes[..HEADER_LEN]).unwrap_err(),
            WireError::Truncated,
            "header claims more than available"
        );
        let mut bad = bytes.clone();
        bad[16] = 0;
        bad[17] = 5; // length < 19
        assert_eq!(BgpMessage::parse(&bad).unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = BgpMessage::Keepalive.emit().unwrap();
        bytes[18] = 9;
        assert_eq!(BgpMessage::parse(&bytes).unwrap_err(), WireError::BadType(9));
    }

    #[test]
    fn as_number_overflow_detected() {
        let m = BgpMessage::Update {
            withdrawn: vec![],
            attrs: PathAttributes { as_path: vec![70_000], ..Default::default() },
            nlri: vec![],
        };
        assert_eq!(m.emit().unwrap_err(), WireError::Overflow("AS number"));
    }

    #[test]
    fn non_canonical_prefix_rejected() {
        // Hand-build an UPDATE whose NLRI has host bits set.
        let good = BgpMessage::Update {
            withdrawn: vec![],
            attrs: PathAttributes::default(),
            nlri: vec![WirePrefix::new(0x0a000000, 8)],
        };
        let mut bytes = good.emit().unwrap();
        // NLRI starts right after the 4 fixed body bytes: len=8, addr=0x0a.
        let n = bytes.len();
        bytes[n - 1] = 0x0a; // still canonical
        assert!(BgpMessage::parse(&bytes).is_ok());
        // Make the prefix length 4 but keep the 0x0a octet: host bits set.
        bytes[n - 2] = 4;
        assert_eq!(
            BgpMessage::parse(&bytes).unwrap_err(),
            WireError::Malformed("prefix host bits")
        );
    }

    #[test]
    fn stream_reassembly_consumes_exact_lengths() {
        // Two messages back to back on the "TCP stream".
        let mut stream = BgpMessage::Keepalive.emit().unwrap();
        stream.extend(BgpMessage::open(7, 30, 9).emit().unwrap());
        let (m1, used1) = BgpMessage::parse(&stream).unwrap();
        assert_eq!(m1, BgpMessage::Keepalive);
        let (m2, used2) = BgpMessage::parse(&stream[used1..]).unwrap();
        assert_eq!(m2, BgpMessage::open(7, 30, 9));
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn parse_arbitrary_garbage_never_panics() {
        for seed in 0u8..50 {
            let data: Vec<u8> = (0..64).map(|i| seed.wrapping_mul(31).wrapping_add(i)).collect();
            let _ = BgpMessage::parse(&data);
        }
    }
}
