//! AS-level route representation and relationship-driven policy rules.

use miro_topology::{NodeId, Rel, RouteClass, Topology};

/// A route some AS holds toward a destination, at AS-path granularity.
///
/// `path[0]` is the next-hop AS and `path.last()` the destination; the
/// holder itself is *not* on the path (matching how BGP AS_PATH is read by
/// the receiver before prepending).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CandidateRoute {
    /// Full AS-level path, next hop first, destination last. Empty for the
    /// destination's own prefix.
    pub path: Vec<NodeId>,
    /// Business class of this route as seen by the holder; determines
    /// local preference (Guideline A) and export scope.
    pub class: RouteClass,
}

impl CandidateRoute {
    /// Number of AS hops.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// True for the destination's own (null AS path) route.
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// The next-hop AS, or `None` for the null route.
    pub fn next_hop(&self) -> Option<NodeId> {
        self.path.first().copied()
    }

    /// Does the route traverse `x`?
    pub fn traverses(&self, x: NodeId) -> bool {
        self.path.contains(&x)
    }
}

/// Who a route of a given class may be exported to (section 2.2.1):
///
/// * customer routes go to everyone;
/// * peer and provider routes go to customers (and siblings) only;
/// * everything goes to siblings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExportScope;

impl ExportScope {
    /// May `holder` export a route of class `class` to its neighbor `to`?
    ///
    /// `rel_of_to` is what `to` is *to the holder*. Loop prevention is the
    /// caller's job (the holder does not know the receiver's AS in the path
    /// until it checks).
    pub fn allows(class: RouteClass, rel_of_to: Rel) -> bool {
        match rel_of_to {
            // Customers and siblings receive everything.
            Rel::Customer | Rel::Sibling => true,
            // Peers and providers receive only customer routes.
            Rel::Peer | Rel::Provider => class == RouteClass::Customer,
        }
    }

    /// The class the *receiver* assigns to a route learned from `from`
    /// (what `from` is to the receiver), given the class the sender held.
    ///
    /// Sibling links are transparent (the paper's sibling approximation):
    /// the receiver inherits the sender's class. Otherwise the class is
    /// determined by the link itself.
    pub fn received_class(sender_class: RouteClass, rel_of_from: Rel) -> RouteClass {
        match rel_of_from {
            Rel::Customer => RouteClass::Customer,
            Rel::Peer => RouteClass::Peer,
            Rel::Provider => RouteClass::Provider,
            Rel::Sibling => sender_class,
        }
    }
}

/// Gao-Rexford route preference (Guideline A + shortest-path + determinism):
/// order routes by class (customer < peer < provider), then by AS-path
/// length, then by the next hop's AS number (proxy for the router-id
/// tie-breaks of Table 2.1, which need router-level detail we only model in
/// `miro-dataplane`).
pub fn prefer(topo: &Topology, a: &CandidateRoute, b: &CandidateRoute) -> std::cmp::Ordering {
    let key = |r: &CandidateRoute| {
        (
            r.class,
            r.len(),
            r.next_hop().map(|n| topo.asn(n).0).unwrap_or(0),
        )
    };
    key(a).cmp(&key(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::{AsId, TopologyBuilder};

    #[test]
    fn export_scope_matrix() {
        use RouteClass::*;
        // Customer routes exportable to everyone.
        for rel in [Rel::Customer, Rel::Provider, Rel::Peer, Rel::Sibling] {
            assert!(ExportScope::allows(Customer, rel));
        }
        // Peer/provider routes only to customers and siblings.
        for class in [Peer, Provider] {
            assert!(ExportScope::allows(class, Rel::Customer));
            assert!(ExportScope::allows(class, Rel::Sibling));
            assert!(!ExportScope::allows(class, Rel::Peer));
            assert!(!ExportScope::allows(class, Rel::Provider));
        }
    }

    #[test]
    fn received_class_matrix() {
        use RouteClass::*;
        assert_eq!(ExportScope::received_class(Provider, Rel::Customer), Customer);
        assert_eq!(ExportScope::received_class(Customer, Rel::Peer), Peer);
        assert_eq!(ExportScope::received_class(Customer, Rel::Provider), Provider);
        // Sibling transparency.
        assert_eq!(ExportScope::received_class(Peer, Rel::Sibling), Peer);
        assert_eq!(ExportScope::received_class(Provider, Rel::Sibling), Provider);
    }

    #[test]
    fn preference_class_beats_length() {
        let mut b = TopologyBuilder::new();
        for i in 1..=4 {
            b.add_as(AsId(i));
        }
        b.provider_customer(AsId(1), AsId(2));
        let t = b.build().unwrap();
        let long_customer = CandidateRoute {
            path: vec![0, 1, 2, 3],
            class: RouteClass::Customer,
        };
        let short_peer = CandidateRoute { path: vec![1], class: RouteClass::Peer };
        assert_eq!(
            prefer(&t, &long_customer, &short_peer),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn preference_length_then_asn() {
        let mut b = TopologyBuilder::new();
        for i in 1..=3 {
            b.add_as(AsId(i));
        }
        let t = b.build().unwrap();
        let via1 = CandidateRoute { path: vec![0, 2], class: RouteClass::Peer };
        let via2 = CandidateRoute { path: vec![1, 2], class: RouteClass::Peer };
        let longer = CandidateRoute { path: vec![0, 1, 2], class: RouteClass::Peer };
        assert_eq!(prefer(&t, &via1, &longer), std::cmp::Ordering::Less);
        assert_eq!(prefer(&t, &via1, &via2), std::cmp::Ordering::Less);
    }

    #[test]
    fn route_accessors() {
        let r = CandidateRoute { path: vec![3, 4, 5], class: RouteClass::Customer };
        assert_eq!(r.len(), 3);
        assert_eq!(r.next_hop(), Some(3));
        assert!(r.traverses(4));
        assert!(!r.traverses(9));
        let null = CandidateRoute { path: vec![], class: RouteClass::Customer };
        assert!(null.is_empty());
        assert_eq!(null.next_hop(), None);
    }
}
