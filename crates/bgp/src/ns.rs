//! Neighbor-specific BGP (NS-BGP) defaults.
//!
//! Section 2.2.3 points at Wang/Schapira/Rexford's NS-BGP result: if route
//! selection is allowed to differ *per neighbor* (an AS may advertise
//! different routes to different neighbors instead of one best route for
//! everyone), the Gao-Rexford guidelines can be relaxed while keeping
//! global stability — and "the more flexible default path selection
//! provided by NS-BGP can definitely benefit MIRO", because some of the
//! diversity MIRO must negotiate for is already in the defaults.
//!
//! This module computes NS-BGP-style neighbor-specific default routes on
//! top of the solved stable state: for each (AS, neighbor) pair, the best
//! candidate the AS may legally give that neighbor (export rules and loop
//! freedom still apply — NS-BGP relaxes *selection*, not export). The
//! eval ablation compares classic defaults against these.

use crate::route::{prefer, CandidateRoute, ExportScope};
use crate::solver::RoutingState;
use miro_topology::{NodeId, Topology};

/// The best route `holder` can offer specifically to `neighbor` under
/// NS-BGP: its most-preferred candidate whose class the export rules allow
/// toward that neighbor and that does not loop through it. Under classic
/// BGP the neighbor receives the holder's single best route or nothing;
/// under NS-BGP it can receive a different (legal) candidate instead.
pub fn ns_route_for(
    st: &RoutingState<'_>,
    holder: NodeId,
    neighbor: NodeId,
) -> Option<CandidateRoute> {
    let topo = st.topology();
    let rel_of_neighbor = topo.rel(holder, neighbor)?;
    st.candidates(holder)
        .into_iter()
        .filter(|c| ExportScope::allows(c.class, rel_of_neighbor))
        .find(|c| !c.traverses(neighbor))
}

/// The defaults `x` would learn from each neighbor under NS-BGP — the
/// richer rib-in MIRO negotiations would start from.
pub fn ns_rib_in(st: &RoutingState<'_>, x: NodeId) -> Vec<(NodeId, CandidateRoute)> {
    let topo = st.topology();
    let mut out: Vec<(NodeId, CandidateRoute)> = topo
        .neighbors(x)
        .iter()
        .filter_map(|&(n, rel_of_n)| {
            let route = ns_route_for(st, n, x)?;
            // Class as x imports it.
            let class = ExportScope::received_class(route.class, rel_of_n);
            let mut path = Vec::with_capacity(route.path.len() + 1);
            path.push(n);
            path.extend(route.path);
            Some((n, CandidateRoute { path, class }))
        })
        .collect();
    out.sort_by(|(_, a), (_, b)| prefer(topo, a, b));
    out
}

/// Avoid-AS success from NS-BGP defaults alone (no MIRO negotiation): can
/// `x` reach the destination around `avoid` using some neighbor-specific
/// default?
pub fn ns_single_path_avoids(
    st: &RoutingState<'_>,
    x: NodeId,
    avoid: NodeId,
) -> bool {
    ns_rib_in(st, x).iter().any(|(_, r)| !r.traverses(avoid))
}

/// Count how many (x, neighbor) pairs in the topology get a *different*
/// default under NS-BGP than under classic BGP — the diversity the
/// relaxation unlocks without any negotiation.
pub fn ns_gain_census(topo: &Topology, st: &RoutingState<'_>) -> (usize, usize) {
    let mut total = 0;
    let mut different = 0;
    for x in topo.nodes() {
        for &(n, _) in topo.neighbors(x) {
            let classic = st.learned_from(x, n);
            let ns = ns_route_for(st, n, x);
            match (classic, ns) {
                (None, None) => {}
                (a, b) => {
                    total += 1;
                    let a_path = a.map(|r| r.path);
                    let b_path = b.map(|r| {
                        let mut p = vec![n];
                        p.extend(r.path);
                        p
                    });
                    // Compare as x-held paths.
                    let classic_path = a_path;
                    if classic_path != b_path {
                        different += 1;
                    }
                }
            }
        }
    }
    (different, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen::figure_1_1;
    use miro_topology::GenParams;

    /// In Figure 1.1, classic BGP never gives A a route avoiding E; under
    /// NS-BGP, B may give A the BCF route it legally could export (it is
    /// a peer route and A is a customer) even though B's own best is BEF.
    #[test]
    fn ns_bgp_unlocks_the_figure_1_1_alternate() {
        let (t, [a, b, c, _d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        // Classic: both of A's defaults cross E.
        assert!(st.candidates(a).iter().all(|r| r.traverses(e)));
        // NS-BGP: B can hand A the route through C... except B's most
        // preferred legal candidate for A is still BEF (customer class
        // beats peer class in B's own ranking). The gain appears when the
        // preferred candidate loops or is unexportable; here it does not:
        let ns = ns_route_for(&st, b, a).expect("some route");
        assert_eq!(ns.path, vec![e, f], "NS-BGP still ranks BEF first for A");
        // But ns_rib_in reflects exactly the legal diversity:
        let rib = ns_rib_in(&st, a);
        assert_eq!(rib.len(), 2, "A hears from both providers");
        let _ = c;
    }

    /// Where NS-BGP does differ: when the holder's best loops through the
    /// neighbor, classic BGP sends that neighbor nothing while NS-BGP
    /// sends the next legal candidate.
    #[test]
    fn ns_bgp_replaces_loop_suppressed_routes() {
        // x provides both y and m; y and m each provide the destination d.
        // x's best to d goes through y (lower ASN tie-break), so classic
        // BGP gives y *nothing* (loop); NS-BGP gives y the route via m.
        let mut b = miro_topology::TopologyBuilder::new();
        for n in [1, 2, 3, 4] {
            b.add_as(miro_topology::AsId(n));
        }
        let id = miro_topology::AsId;
        b.provider_customer(id(2), id(1)); // y provides d
        b.provider_customer(id(4), id(1)); // m provides d
        b.provider_customer(id(3), id(2)); // x provides y
        b.provider_customer(id(3), id(4)); // x provides m
        let t = b.build().unwrap();
        let d = t.node(id(1)).unwrap();
        let y = t.node(id(2)).unwrap();
        let x = t.node(id(3)).unwrap();
        let m = t.node(id(4)).unwrap();
        let st = RoutingState::solve(&t, d);
        assert_eq!(st.path(x), Some(vec![y, d]), "x's best goes through y");
        // Classic: loop suppression leaves y with only its own route.
        assert_eq!(st.learned_from(y, x), None);
        // NS-BGP: x offers y its other candidate instead.
        let ns = ns_route_for(&st, x, y).expect("alternate exists");
        assert_eq!(ns.path, vec![m, d]);
        // And the census sees the difference.
        let (different, total) = ns_gain_census(&t, &st);
        assert!(different >= 1, "{different}/{total}");
    }

    #[test]
    fn ns_defaults_never_violate_export_rules_or_loop() {
        let t = GenParams::tiny(81).generate();
        let dsts: Vec<_> = t.nodes().step_by(17).collect();
        for &d in &dsts {
            let st = RoutingState::solve(&t, d);
            for x in t.nodes() {
                for (n, r) in ns_rib_in(&st, x) {
                    assert!(!r.traverses(x), "no loops through the receiver");
                    assert_eq!(r.path[0], n, "first hop is the advertising neighbor");
                    assert_eq!(*r.path.last().unwrap(), d);
                    // The sender-side class must be exportable toward x.
                    let rel_of_x = t.rel(n, x).unwrap();
                    let sender =
                        ns_route_for(&st, n, x).expect("sender had a route");
                    assert!(ExportScope::allows(sender.class, rel_of_x));
                }
            }
        }
    }

    #[test]
    fn ns_gain_is_nonnegative_and_measurable() {
        let t = GenParams::tiny(82).generate();
        let d = t.nodes().next().unwrap();
        let st = RoutingState::solve(&t, d);
        let (different, total) = ns_gain_census(&t, &st);
        assert!(total > 0);
        assert!(different <= total);
        // Loop suppression alone guarantees some difference on a graph of
        // this size (every neighbor of d has a suppressed best).
        assert!(different > 0, "{different}/{total}");
    }
}
