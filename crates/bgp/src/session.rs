//! The BGP session finite-state machine (RFC 4271 §8, simplified to the
//! states and events the dissertation's protocol stack exercises).
//!
//! "The BGP messages are exchanged through a persistent TCP connection
//! between two routers" (section 2.2.2); sessions are the substrate both
//! for eBGP/iBGP and — by reuse — for MIRO's own control channel. The
//! machine here is transport-agnostic: callers feed it events (connection
//! up, bytes in, clock ticks) and it returns messages to transmit, so the
//! same code runs under a test harness, a simulator, or a real socket.
//!
//! Simplifications versus the full RFC: no Connect/Active retry dance
//! (the transport either comes up or does not), no delay-open, and
//! collision detection resolved by comparing BGP identifiers.

use crate::wire::{BgpMessage, WireError};

/// RFC 4271 session states (Connect/Active collapsed into `Connecting`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum State {
    Idle,
    Connecting,
    OpenSent,
    OpenConfirm,
    Established,
}

/// Events fed into the machine.
#[derive(Clone, Debug)]
pub enum Event {
    /// Operator enabled the session.
    ManualStart,
    /// Transport connected.
    TransportUp,
    /// Transport failed or closed.
    TransportDown,
    /// A full BGP message arrived.
    Message(BgpMessage),
    /// The message stream was unparseable.
    Garbage(WireError),
}

/// What the caller must do after an event or tick.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Transmit this message.
    Send(BgpMessage),
    /// Tear the transport down.
    CloseTransport,
    /// Deliver this UPDATE to the routing process.
    DeliverUpdate(BgpMessage),
    /// Session reached Established (start exchanging full tables).
    SessionUp,
    /// Session left Established.
    SessionDown,
}

/// Configuration of one session endpoint.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    pub my_as: u16,
    pub bgp_id: u32,
    /// Proposed hold time (seconds of virtual time); 0 disables keepalives.
    pub hold_time: u16,
    /// The AS we expect on the far end (eBGP peer validation).
    pub expect_as: Option<u16>,
}

/// The session machine. Time is virtual; call [`Session::tick`]
/// monotonically.
pub struct Session {
    cfg: SessionConfig,
    state: State,
    /// Negotiated hold time (min of both OPENs).
    hold: u16,
    last_recv: u64,
    last_sent: u64,
    now: u64,
}

impl Session {
    pub fn new(cfg: SessionConfig) -> Session {
        Session { cfg, state: State::Idle, hold: 0, last_recv: 0, last_sent: 0, now: 0 }
    }

    pub fn state(&self) -> State {
        self.state
    }

    /// Negotiated hold time once OPENs have crossed.
    pub fn negotiated_hold_time(&self) -> u16 {
        self.hold
    }

    fn reset(&mut self, actions: &mut Vec<Action>, notify: Option<(u8, u8)>) {
        if let Some((code, subcode)) = notify {
            actions.push(Action::Send(BgpMessage::Notification {
                code,
                subcode,
                data: Vec::new(),
            }));
        }
        if self.state == State::Established {
            actions.push(Action::SessionDown);
        }
        actions.push(Action::CloseTransport);
        self.state = State::Idle;
        self.hold = 0;
    }

    /// Feed one event; returns the required actions.
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        let mut actions = Vec::new();
        match (self.state, event) {
            (State::Idle, Event::ManualStart) => {
                self.state = State::Connecting;
            }
            (State::Connecting, Event::TransportUp) => {
                actions.push(Action::Send(BgpMessage::open(
                    self.cfg.my_as,
                    self.cfg.hold_time,
                    self.cfg.bgp_id,
                )));
                self.last_sent = self.now;
                self.state = State::OpenSent;
            }
            (_, Event::TransportDown) => {
                self.reset(&mut actions, None);
            }
            (State::OpenSent, Event::Message(BgpMessage::Open { version, my_as, hold_time, .. })) => {
                if version != 4 {
                    self.reset(&mut actions, Some((2, 1))); // OPEN error: version
                } else if self.cfg.expect_as.is_some_and(|e| e != my_as) {
                    self.reset(&mut actions, Some((2, 2))); // bad peer AS
                } else {
                    self.hold = self.cfg.hold_time.min(hold_time);
                    self.last_recv = self.now;
                    actions.push(Action::Send(BgpMessage::Keepalive));
                    self.last_sent = self.now;
                    self.state = State::OpenConfirm;
                }
            }
            (State::OpenConfirm, Event::Message(BgpMessage::Keepalive)) => {
                self.last_recv = self.now;
                self.state = State::Established;
                actions.push(Action::SessionUp);
            }
            (State::Established, Event::Message(BgpMessage::Keepalive)) => {
                self.last_recv = self.now;
            }
            (State::Established, Event::Message(m @ BgpMessage::Update { .. })) => {
                self.last_recv = self.now;
                actions.push(Action::DeliverUpdate(m));
            }
            (_, Event::Message(BgpMessage::Notification { .. })) => {
                self.reset(&mut actions, None);
            }
            (State::Idle, Event::Garbage(_)) => {
                // No transport is up in Idle: there is nothing to notify
                // or close, and nothing to reset. Stray bytes surfacing
                // here (e.g. a late read after teardown) are ignored.
            }
            (State::Connecting, Event::Garbage(_)) => {
                // The transport may exist but no BGP exchange has begun;
                // close it quietly rather than emit a NOTIFICATION into a
                // stream the peer never synchronized.
                self.reset(&mut actions, None);
            }
            (_, Event::Garbage(_)) => {
                // Message header error: code 1.
                self.reset(&mut actions, Some((1, 0)));
            }
            // Anything unexpected in the current state: FSM error (code 5).
            (State::OpenSent | State::OpenConfirm | State::Established, Event::Message(_)) => {
                self.reset(&mut actions, Some((5, 0)));
            }
            // Events that are no-ops in the current state (including
            // stray messages arriving while Idle/Connecting: the
            // transport is not considered synchronized yet).
            (_, Event::ManualStart) | (_, Event::TransportUp) => {}
            (State::Idle | State::Connecting, Event::Message(_)) => {}
        }
        actions
    }

    /// Advance the virtual clock: expire the hold timer, emit keepalives
    /// at a third of the hold time (the RFC's recommended ratio).
    pub fn tick(&mut self, now: u64) -> Vec<Action> {
        let mut actions = Vec::new();
        self.now = now;
        if self.hold == 0 {
            return actions;
        }
        match self.state {
            State::Established | State::OpenConfirm => {
                if now.saturating_sub(self.last_recv) > u64::from(self.hold) {
                    // Hold timer expired: code 4.
                    self.reset(&mut actions, Some((4, 0)));
                    return actions;
                }
                let interval = u64::from(self.hold / 3).max(1);
                if now.saturating_sub(self.last_sent) >= interval {
                    actions.push(Action::Send(BgpMessage::Keepalive));
                    self.last_sent = now;
                }
            }
            _ => {}
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Session, Session) {
        let a = Session::new(SessionConfig {
            my_as: 100,
            bgp_id: 1,
            hold_time: 90,
            expect_as: Some(200),
        });
        let b = Session::new(SessionConfig {
            my_as: 200,
            bgp_id: 2,
            hold_time: 30,
            expect_as: Some(100),
        });
        (a, b)
    }

    /// Drive two machines against each other until quiescent; returns the
    /// delivered updates on each side.
    fn run_handshake(a: &mut Session, b: &mut Session) {
        let mut to_b = a.handle(Event::ManualStart);
        to_b.extend(a.handle(Event::TransportUp));
        let mut to_a = b.handle(Event::ManualStart);
        to_a.extend(b.handle(Event::TransportUp));
        // Exchange until no new sends appear.
        for _ in 0..8 {
            let mut next_to_a = Vec::new();
            let mut next_to_b = Vec::new();
            for act in to_b.drain(..) {
                if let Action::Send(m) = act {
                    next_to_a.extend(b.handle(Event::Message(m)));
                }
            }
            for act in to_a.drain(..) {
                if let Action::Send(m) = act {
                    next_to_b.extend(a.handle(Event::Message(m)));
                }
            }
            let quiet =
                next_to_a.iter().chain(&next_to_b).all(|a| !matches!(a, Action::Send(_)));
            to_a = next_to_a;
            to_b = next_to_b;
            if quiet {
                break;
            }
        }
    }

    #[test]
    fn handshake_reaches_established_on_both_ends() {
        let (mut a, mut b) = pair();
        run_handshake(&mut a, &mut b);
        assert_eq!(a.state(), State::Established);
        assert_eq!(b.state(), State::Established);
        // Negotiated hold time is the minimum of the two proposals.
        assert_eq!(a.negotiated_hold_time(), 30);
        assert_eq!(b.negotiated_hold_time(), 30);
    }

    #[test]
    fn wrong_peer_as_is_refused_with_notification() {
        let mut a = Session::new(SessionConfig {
            my_as: 100,
            bgp_id: 1,
            hold_time: 90,
            expect_as: Some(999),
        });
        a.handle(Event::ManualStart);
        a.handle(Event::TransportUp);
        let actions = a.handle(Event::Message(BgpMessage::open(200, 90, 2)));
        assert!(actions.iter().any(|x| matches!(
            x,
            Action::Send(BgpMessage::Notification { code: 2, subcode: 2, .. })
        )));
        assert_eq!(a.state(), State::Idle);
    }

    #[test]
    fn updates_are_delivered_only_when_established() {
        let (mut a, mut b) = pair();
        run_handshake(&mut a, &mut b);
        let upd = BgpMessage::Update {
            withdrawn: vec![],
            attrs: crate::wire::PathAttributes {
                as_path: vec![200],
                origin: Some(0),
                next_hop: Some(7),
                ..Default::default()
            },
            nlri: vec![crate::wire::WirePrefix::new(0x0a000000, 8)],
        };
        let actions = a.handle(Event::Message(upd.clone()));
        assert_eq!(actions, vec![Action::DeliverUpdate(upd)]);
    }

    #[test]
    fn hold_timer_expiry_sends_notification_and_drops() {
        let (mut a, mut b) = pair();
        run_handshake(&mut a, &mut b);
        // Silence for longer than the negotiated hold time (30).
        let actions = a.tick(31);
        assert!(actions.iter().any(|x| matches!(
            x,
            Action::Send(BgpMessage::Notification { code: 4, .. })
        )));
        assert!(actions.contains(&Action::SessionDown));
        assert_eq!(a.state(), State::Idle);
    }

    #[test]
    fn keepalives_flow_at_a_third_of_hold_time() {
        let (mut a, mut b) = pair();
        run_handshake(&mut a, &mut b);
        // Feed keepalives from b so a's hold timer never fires; a must
        // send keepalives every 10 ticks (30 / 3).
        let mut sent = 0;
        for t in 1..=29 {
            a.handle(Event::Message(BgpMessage::Keepalive));
            for act in a.tick(t) {
                if matches!(act, Action::Send(BgpMessage::Keepalive)) {
                    sent += 1;
                }
            }
        }
        assert_eq!(sent, 2, "keepalives at t=10 and t=20");
        assert_eq!(a.state(), State::Established);
    }

    #[test]
    fn garbage_input_resets_with_header_error() {
        let (mut a, mut b) = pair();
        run_handshake(&mut a, &mut b);
        let actions = a.handle(Event::Garbage(WireError::BadMarker));
        assert!(actions.iter().any(|x| matches!(
            x,
            Action::Send(BgpMessage::Notification { code: 1, .. })
        )));
        assert!(actions.contains(&Action::SessionDown));
        assert_eq!(a.state(), State::Idle);
    }

    #[test]
    fn unexpected_message_is_fsm_error() {
        let (mut a, _b) = pair();
        a.handle(Event::ManualStart);
        a.handle(Event::TransportUp);
        // An UPDATE in OpenSent is an FSM error.
        let actions = a.handle(Event::Message(BgpMessage::Update {
            withdrawn: vec![],
            attrs: Default::default(),
            nlri: vec![],
        }));
        assert!(actions.iter().any(|x| matches!(
            x,
            Action::Send(BgpMessage::Notification { code: 5, .. })
        )));
        assert_eq!(a.state(), State::Idle);
    }

    /// The full action triple for garbage arriving mid-Established:
    /// NOTIFICATION (header error, code 1) to the peer, the routing
    /// process told the session is down, and the transport closed — in a
    /// usable order (notify while the transport still exists).
    #[test]
    fn garbage_mid_established_notifies_then_downs_then_closes() {
        let (mut a, mut b) = pair();
        run_handshake(&mut a, &mut b);
        let actions = a.handle(Event::Garbage(WireError::Truncated));
        let notify = actions.iter().position(|x| {
            matches!(x, Action::Send(BgpMessage::Notification { code: 1, .. }))
        });
        let down = actions.iter().position(|x| matches!(x, Action::SessionDown));
        let close = actions.iter().position(|x| matches!(x, Action::CloseTransport));
        let (notify, down, close) = (
            notify.expect("NOTIFICATION emitted"),
            down.expect("SessionDown emitted"),
            close.expect("CloseTransport emitted"),
        );
        assert!(notify < close, "notify before the transport goes away");
        assert!(down < close, "routing process informed before close");
        assert_eq!(a.state(), State::Idle);
    }

    /// Garbage while Idle (no transport) or Connecting (no BGP exchange
    /// yet) must not fling NOTIFICATIONs at a peer that never
    /// synchronized.
    #[test]
    fn garbage_before_synchronization_is_quiet() {
        let (mut a, _b) = pair();
        // Idle: complete no-op.
        assert!(a.handle(Event::Garbage(WireError::BadMarker)).is_empty());
        assert_eq!(a.state(), State::Idle);
        // Connecting: quiet close, no NOTIFICATION.
        a.handle(Event::ManualStart);
        let actions = a.handle(Event::Garbage(WireError::BadMarker));
        assert!(!actions.iter().any(|x| matches!(x, Action::Send(_))));
        assert!(actions.contains(&Action::CloseTransport));
        assert_eq!(a.state(), State::Idle);
    }

    /// `hold_time: 0` disables the hold timer entirely (RFC 4271 §4.2): a
    /// silent peer never expires, and no keepalives are emitted.
    #[test]
    fn zero_hold_time_never_expires() {
        let mut a = Session::new(SessionConfig {
            my_as: 100,
            bgp_id: 1,
            hold_time: 0,
            expect_as: Some(200),
        });
        let mut b = Session::new(SessionConfig {
            my_as: 200,
            bgp_id: 2,
            hold_time: 0,
            expect_as: Some(100),
        });
        run_handshake(&mut a, &mut b);
        assert_eq!(a.state(), State::Established);
        assert_eq!(a.negotiated_hold_time(), 0);
        for t in 1..=10_000 {
            assert!(a.tick(t).is_empty(), "tick {t} must be a no-op");
        }
        assert_eq!(a.state(), State::Established);
    }

    /// A transport flap in the middle of the OPEN exchange: quiet reset
    /// (the peer is gone; a NOTIFICATION has nowhere to go, and the
    /// session was never Established so no SessionDown), and the machine
    /// restarts cleanly through a full second handshake.
    #[test]
    fn transport_flap_during_opensent_recovers() {
        let (mut a, mut b) = pair();
        a.handle(Event::ManualStart);
        a.handle(Event::TransportUp);
        assert_eq!(a.state(), State::OpenSent);
        let actions = a.handle(Event::TransportDown);
        assert!(!actions.iter().any(|x| matches!(x, Action::Send(_))));
        assert!(!actions.contains(&Action::SessionDown), "was never up");
        assert!(actions.contains(&Action::CloseTransport));
        assert_eq!(a.state(), State::Idle);
        // Second attempt from scratch succeeds.
        run_handshake(&mut a, &mut b);
        assert_eq!(a.state(), State::Established);
        assert_eq!(b.state(), State::Established);
    }

    /// The hold timer races a KEEPALIVE sitting in the receive buffer:
    /// once expiry has reset the session to Idle, the late KEEPALIVE is
    /// ignored (the transport is no longer considered synchronized) and
    /// does not resurrect or corrupt the machine.
    #[test]
    fn late_keepalive_after_hold_expiry_is_ignored() {
        let (mut a, mut b) = pair();
        run_handshake(&mut a, &mut b);
        let actions = a.tick(31); // hold 30 expired
        assert!(actions.contains(&Action::SessionDown));
        assert_eq!(a.state(), State::Idle);
        // The KEEPALIVE that was already in flight arrives now.
        assert!(a.handle(Event::Message(BgpMessage::Keepalive)).is_empty());
        assert_eq!(a.state(), State::Idle);
        // And the timer stays quiet afterwards (hold reset to 0).
        assert!(a.tick(100).is_empty());
    }

    #[test]
    fn transport_down_is_quiet_reset() {
        let (mut a, mut b) = pair();
        run_handshake(&mut a, &mut b);
        let actions = a.handle(Event::TransportDown);
        assert!(actions.contains(&Action::SessionDown));
        assert!(actions.contains(&Action::CloseTransport));
        assert!(!actions.iter().any(|x| matches!(x, Action::Send(_))));
        // The machine can start over.
        a.handle(Event::ManualStart);
        assert_eq!(a.state(), State::Connecting);
    }
}
