//! Closed-form stable-state BGP solver.
//!
//! For one destination prefix, computes the route every AS converges to
//! under Gao-Rexford policies (Guideline A + conventional export rules),
//! along with the *candidate set* each AS learns from its neighbors — the
//! raw material MIRO negotiations draw on (section 3.4: "the existing BGP
//! protocol already provides many candidate routes, although the alternate
//! routes are not disseminated").
//!
//! The algorithm is the constructive core of the Gao-Rexford convergence
//! proof (restated as Lemma 1 in Chapter 7.2), run as three Dijkstra-like
//! sweeps over different edge sets:
//!
//! 1. **customer sweep** — climb provider and sibling links from the
//!    destination: every AS reached selects a customer-class route
//!    (Claims 1-2: these ASes are the "Phase-1 ASes");
//! 2. **peer sweep** — one peer hop off a Phase-1 AS, then sibling links;
//! 3. **provider sweep** — descend customer and sibling links from every
//!    routed AS (the "Phase-2" activation of the proof).
//!
//! Each sweep assigns `(class, length, next-hop)` with deterministic
//! tie-breaking (shortest path, then lowest next-hop AS number — the
//! AS-level abstraction of Table 2.1's lower steps). Within a destination
//! the solver is O(E log E); the whole-network routing state used by the
//! Chapter 5 experiments is one solve per destination.

use crate::route::{CandidateRoute, ExportScope};
use miro_topology::{NodeId, Rel, RouteClass, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The route an AS selected: class, hop count, and next-hop AS.
/// The full path is recovered by chasing next hops (paths are ~4 hops, so
/// this is cheap and keeps the per-destination state at 16 bytes per AS).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BestRoute {
    /// Business class (determines local preference and export scope).
    pub class: RouteClass,
    /// AS hops to the destination (0 for the destination itself).
    pub len: u16,
    /// Next-hop AS (the destination points at itself).
    pub next: NodeId,
}

/// The converged routing state for a single destination prefix.
///
/// ```
/// use miro_bgp::solver::RoutingState;
/// use miro_topology::gen::figure_1_1;
///
/// // The paper's Figure 1.1 topology: A routes to F through B and E.
/// let (topo, [a, b, _c, _d, e, f]) = figure_1_1();
/// let st = RoutingState::solve(&topo, f);
/// assert_eq!(st.path(a), Some(vec![b, e, f]));
/// // ...and the alternate through D is in A's candidate set.
/// assert_eq!(st.candidates(a).len(), 2);
/// ```
pub struct RoutingState<'t> {
    topo: &'t Topology,
    dest: NodeId,
    best: Vec<Option<BestRoute>>,
    /// Administratively failed link this state was solved without
    /// (normalized low-high); candidates over it are suppressed too.
    banned: Option<(NodeId, NodeId)>,
}

impl<'t> RoutingState<'t> {
    /// Solve the stable state for destination `dest`.
    pub fn solve(topo: &'t Topology, dest: NodeId) -> RoutingState<'t> {
        Self::solve_masked(topo, dest, None)
    }

    /// Solve as if the link between `a` and `b` had failed — the
    /// what-if the MIRO control plane runs when it observes a withdrawal
    /// and must decide which tunnels to tear down (section 4.3), without
    /// rebuilding the topology.
    pub fn solve_without_link(
        topo: &'t Topology,
        dest: NodeId,
        a: NodeId,
        b: NodeId,
    ) -> RoutingState<'t> {
        Self::solve_masked(topo, dest, Some((a.min(b), a.max(b))))
    }

    fn solve_masked(
        topo: &'t Topology,
        dest: NodeId,
        banned: Option<(NodeId, NodeId)>,
    ) -> RoutingState<'t> {
        let n = topo.num_nodes();
        let mut best: Vec<Option<BestRoute>> = vec![None; n];
        best[dest as usize] =
            Some(BestRoute { class: RouteClass::Customer, len: 0, next: dest });

        // A sweep relaxes offers (len, next_asn, node, next) in order;
        // first assignment wins, implementing (shortest, lowest-ASN).
        type Offer = Reverse<(u16, u32, NodeId, NodeId)>;
        let mut heap: BinaryHeap<Offer> = BinaryHeap::new();

        // --- Sweep 1: customer-class routes -----------------------------
        // From a routed node u, the route extends with customer class to
        // u's providers and u's siblings.
        let is_banned =
            move |x: NodeId, y: NodeId| banned == Some((x.min(y), x.max(y)));
        let offer_up = |heap: &mut BinaryHeap<Offer>,
                        topo: &Topology,
                        best: &[Option<BestRoute>],
                        u: NodeId| {
            let bu = best[u as usize].expect("offering node is routed");
            for &(v, rel) in topo.neighbors(u) {
                // rel = what v is to u; climbing means v is u's provider,
                // or v is u's sibling (transparent).
                if (rel == Rel::Provider || rel == Rel::Sibling)
                    && best[v as usize].is_none()
                    && !is_banned(u, v)
                {
                    heap.push(Reverse((bu.len + 1, topo.asn(u).0, v, u)));
                }
            }
        };
        offer_up(&mut heap, topo, &best, dest);
        while let Some(Reverse((len, _asn, v, u))) = heap.pop() {
            if best[v as usize].is_some() {
                continue;
            }
            best[v as usize] = Some(BestRoute { class: RouteClass::Customer, len, next: u });
            offer_up(&mut heap, topo, &best, v);
        }

        // --- Sweep 2: peer-class routes ----------------------------------
        // Seed: one peer hop off a customer-routed AS (peers export only
        // customer routes). Then propagate along sibling links (siblings
        // receive everything; class stays Peer).
        debug_assert!(heap.is_empty());
        let customer_routed: Vec<NodeId> = (0..n as NodeId)
            .filter(|&x| {
                matches!(best[x as usize], Some(b) if b.class == RouteClass::Customer)
            })
            .collect();
        for &p in &customer_routed {
            let bp = best[p as usize].expect("customer-routed");
            for &(v, rel) in topo.neighbors(p) {
                // rel = what v is to p; v learns p's route if v is p's peer.
                if rel == Rel::Peer && best[v as usize].is_none() && !is_banned(p, v) {
                    heap.push(Reverse((bp.len + 1, topo.asn(p).0, v, p)));
                }
            }
        }
        let offer_sib = |heap: &mut BinaryHeap<Offer>,
                         topo: &Topology,
                         best: &[Option<BestRoute>],
                         u: NodeId| {
            let bu = best[u as usize].expect("offering node is routed");
            for &(v, rel) in topo.neighbors(u) {
                if rel == Rel::Sibling && best[v as usize].is_none() && !is_banned(u, v) {
                    heap.push(Reverse((bu.len + 1, topo.asn(u).0, v, u)));
                }
            }
        };
        while let Some(Reverse((len, _asn, v, u))) = heap.pop() {
            if best[v as usize].is_some() {
                continue;
            }
            best[v as usize] = Some(BestRoute { class: RouteClass::Peer, len, next: u });
            offer_sib(&mut heap, topo, &best, v);
        }

        // --- Sweep 3: provider-class routes -------------------------------
        // Seed: every routed AS offers its route to its customers
        // (everything is exportable to customers); then propagate down
        // customer links and across sibling links among the unrouted.
        debug_assert!(heap.is_empty());
        for x in 0..n as NodeId {
            if best[x as usize].is_some() {
                let bx = best[x as usize].expect("routed");
                for &(v, rel) in topo.neighbors(x) {
                    if rel == Rel::Customer && best[v as usize].is_none() && !is_banned(x, v) {
                        heap.push(Reverse((bx.len + 1, topo.asn(x).0, v, x)));
                    }
                }
            }
        }
        let offer_down = |heap: &mut BinaryHeap<Offer>,
                          topo: &Topology,
                          best: &[Option<BestRoute>],
                          u: NodeId| {
            let bu = best[u as usize].expect("offering node is routed");
            for &(v, rel) in topo.neighbors(u) {
                if (rel == Rel::Customer || rel == Rel::Sibling)
                    && best[v as usize].is_none()
                    && !is_banned(u, v)
                {
                    heap.push(Reverse((bu.len + 1, topo.asn(u).0, v, u)));
                }
            }
        };
        while let Some(Reverse((len, _asn, v, u))) = heap.pop() {
            if best[v as usize].is_some() {
                continue;
            }
            best[v as usize] = Some(BestRoute { class: RouteClass::Provider, len, next: u });
            offer_down(&mut heap, topo, &best, v);
        }

        RoutingState { topo, dest, best, banned }
    }

    /// The destination this state routes toward.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The selected route of `x`, if `x` can reach the destination.
    pub fn best(&self, x: NodeId) -> Option<BestRoute> {
        self.best[x as usize]
    }

    /// The selected AS path of `x` (next hop first, destination last;
    /// empty for the destination itself). `None` if unreachable.
    pub fn path(&self, x: NodeId) -> Option<Vec<NodeId>> {
        let mut b = self.best[x as usize]?;
        let mut out = Vec::with_capacity(b.len as usize);
        let mut at = x;
        while at != self.dest {
            at = b.next;
            out.push(at);
            b = self.best[at as usize].expect("next hop of a routed AS is routed");
        }
        Some(out)
    }

    /// Does `x`'s selected path traverse `avoid`? (`false` if unreachable.)
    pub fn path_traverses(&self, x: NodeId, avoid: NodeId) -> bool {
        let mut at = x;
        while at != self.dest {
            let Some(b) = self.best[at as usize] else { return false };
            at = b.next;
            if at == avoid {
                return true;
            }
        }
        false
    }

    /// Would neighbor `n` export its selected route to `x` under the
    /// conventional export rules, and is it loop-free at `x`?
    /// Returns the candidate as `x` would install it.
    pub fn learned_from(&self, x: NodeId, n: NodeId) -> Option<CandidateRoute> {
        if self.banned == Some((x.min(n), x.max(n))) {
            return None; // the session over a failed link is down
        }
        let bn = self.best[n as usize]?;
        let rel_xn = self.topo.rel(n, x)?; // what x is to n: n's export decision
        if !ExportScope::allows(bn.class, rel_xn) {
            return None;
        }
        let mut path = Vec::with_capacity(bn.len as usize + 1);
        path.push(n);
        let mut at = n;
        while at != self.dest {
            let b = self.best[at as usize].expect("routed chain");
            at = b.next;
            if at == x {
                return None; // loop: x already on n's path
            }
            path.push(at);
        }
        let rel_nx = self.topo.rel(x, n).expect("link exists both ways");
        let class = ExportScope::received_class(bn.class, rel_nx);
        Some(CandidateRoute { path, class })
    }

    /// All candidate routes `x` learns from its neighbors under normal BGP
    /// operation — the alternate-route pool a MIRO responding AS selects
    /// from (section 3.4). Sorted by preference (best first).
    pub fn candidates(&self, x: NodeId) -> Vec<CandidateRoute> {
        let mut out: Vec<CandidateRoute> = self
            .topo
            .neighbors(x)
            .iter()
            .filter_map(|&(n, _)| self.learned_from(x, n))
            .collect();
        out.sort_by(|a, b| crate::route::prefer(self.topo, a, b));
        out
    }

    /// Number of ASes that can reach the destination.
    pub fn reachable_count(&self) -> usize {
        self.best.iter().filter(|b| b.is_some()).count()
    }
}

/// Extract every AS's selected path toward every destination in `dests`,
/// as (source-first, destination-last) full paths *including* the source.
/// This is the "BGP table dump" used to feed the inference pipeline.
pub fn as_paths_to(topo: &Topology, dests: &[NodeId]) -> Vec<Vec<miro_topology::AsId>> {
    let mut out = Vec::new();
    for &d in dests {
        let st = RoutingState::solve(topo, d);
        for x in topo.nodes() {
            if x == d {
                continue;
            }
            if let Some(p) = st.path(x) {
                let mut full = Vec::with_capacity(p.len() + 1);
                full.push(topo.asn(x));
                full.extend(p.iter().map(|&n| topo.asn(n)));
                out.push(full);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen::figure_1_1;
    use miro_topology::{AsId, GenParams, TopologyBuilder};

    #[test]
    fn figure_2_1_default_routes() {
        // The walk-through of Figure 2.1: F originates; C and E pick direct
        // customer routes; B picks BEF or BCF; A routes via B or D.
        let (t, [a, b, c, d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        assert_eq!(st.path(f), Some(vec![]));
        assert_eq!(st.path(c), Some(vec![f]));
        assert_eq!(st.path(e), Some(vec![f]));
        // B: customer route? F is not B's customer. B's candidates: via C
        // (peer, path CF) and via E (customer, path EF). E is B's customer,
        // so BEF is a customer route and wins — matching the paper's story
        // that B selects BEF.
        assert_eq!(st.path(b), Some(vec![e, f]));
        // D likewise selects DEF.
        assert_eq!(st.path(d), Some(vec![e, f]));
        // A is a customer of both B and D; both export; tie on class and
        // length; tie-break by lower AS number (B=AS2 < D=AS4).
        assert_eq!(st.path(a), Some(vec![b, e, f]));
        assert_eq!(st.reachable_count(), 6);
    }

    #[test]
    fn figure_2_1_candidate_sets() {
        let (t, [a, b, c, d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        // A learns candidates from both providers B and D.
        let cands = st.candidates(a);
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().any(|r| r.path == vec![b, e, f]));
        assert!(cands.iter().any(|r| r.path == vec![d, e, f]));
        // B learned BCF from its peer C (C's best is a customer route),
        // even though B selected BEF — the "hidden" alternate of Figure 1.1.
        let bc = st.candidates(b);
        assert!(bc.iter().any(|r| r.path == vec![c, f]));
        assert!(bc.iter().any(|r| r.path == vec![e, f]));
        let _ = d;
    }

    #[test]
    fn export_rules_suppress_peer_routes_to_peers() {
        // A - B peer, B - C peer, C originates. B's route to C is a
        // customer route? No: C is B's peer, so B's route has Peer class
        // and must not be exported to peer A.
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3] {
            bld.add_as(AsId(n));
        }
        bld.peering(AsId(1), AsId(2));
        bld.peering(AsId(2), AsId(3));
        let t = bld.build().unwrap();
        let (a, b, c) = (
            t.node(AsId(1)).unwrap(),
            t.node(AsId(2)).unwrap(),
            t.node(AsId(3)).unwrap(),
        );
        let st = RoutingState::solve(&t, c);
        assert_eq!(st.path(b), Some(vec![c]));
        assert_eq!(st.path(a), None, "peer route must not be re-exported to a peer");
        assert_eq!(st.learned_from(a, b), None);
    }

    #[test]
    fn provider_routes_propagate_down() {
        // 1 provides 2 provides 3; 1 originates d via peer 9? Simpler:
        // 9 - 1 peer; 9 originates; 1 gets peer route; 2 and 3 get provider
        // routes (everything is exportable to customers).
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3, 9] {
            bld.add_as(AsId(n));
        }
        bld.peering(AsId(9), AsId(1));
        bld.provider_customer(AsId(1), AsId(2));
        bld.provider_customer(AsId(2), AsId(3));
        let t = bld.build().unwrap();
        let (n1, n2, n3, n9) = (
            t.node(AsId(1)).unwrap(),
            t.node(AsId(2)).unwrap(),
            t.node(AsId(3)).unwrap(),
            t.node(AsId(9)).unwrap(),
        );
        let st = RoutingState::solve(&t, n9);
        assert_eq!(st.best(n1).unwrap().class, RouteClass::Peer);
        assert_eq!(st.best(n2).unwrap().class, RouteClass::Provider);
        assert_eq!(st.best(n3).unwrap().class, RouteClass::Provider);
        assert_eq!(st.path(n3), Some(vec![n2, n1, n9]));
    }

    #[test]
    fn customer_route_preferred_over_shorter_peer_route() {
        // x has: customer route of length 3, peer route of length 1.
        // Guideline A: the customer route wins despite being longer.
        //   d <- c1 <- c2 <- x   (chain of customer links up to x)
        //   d - p - x with p peer of x? p must hold a customer route to d.
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3, 4, 5] {
            bld.add_as(AsId(n));
        }
        // d=1. Chain: 2 provider-of 1, 3 provider-of 2, 4 provider-of 3.
        bld.provider_customer(AsId(2), AsId(1));
        bld.provider_customer(AsId(3), AsId(2));
        bld.provider_customer(AsId(4), AsId(3));
        // 5 also provides 1; 5 peers with 4.
        bld.provider_customer(AsId(5), AsId(1));
        bld.peering(AsId(4), AsId(5));
        let t = bld.build().unwrap();
        let d = t.node(AsId(1)).unwrap();
        let x = t.node(AsId(4)).unwrap();
        let st = RoutingState::solve(&t, d);
        let bx = st.best(x).unwrap();
        assert_eq!(bx.class, RouteClass::Customer);
        assert_eq!(bx.len, 3);
        // The shorter peer path is still in the candidate set.
        let cands = st.candidates(x);
        assert!(cands.iter().any(|r| r.class == RouteClass::Peer && r.len() == 2));
    }

    #[test]
    fn sibling_links_are_transparent_transit() {
        // d=1; 2 is 1's provider; 3 sibling of 2; 4 customer of 3.
        // 3 gets a customer-class route through its sibling; 4 gets a
        // provider route 3 hops long.
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3, 4] {
            bld.add_as(AsId(n));
        }
        bld.provider_customer(AsId(2), AsId(1));
        bld.sibling(AsId(2), AsId(3));
        bld.provider_customer(AsId(3), AsId(4));
        let t = bld.build().unwrap();
        let d = t.node(AsId(1)).unwrap();
        let s = t.node(AsId(3)).unwrap();
        let c = t.node(AsId(4)).unwrap();
        let st = RoutingState::solve(&t, d);
        assert_eq!(st.best(s).unwrap().class, RouteClass::Customer);
        assert_eq!(st.best(c).unwrap().class, RouteClass::Provider);
        assert_eq!(st.path(c).unwrap().len(), 3);
    }

    #[test]
    fn peer_routes_cross_one_sibling_chain() {
        // d=1; 2 holds customer route (provides 1); 3 peers with 2;
        // 4 sibling of 3: 4's route class stays Peer through the sibling.
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3, 4] {
            bld.add_as(AsId(n));
        }
        bld.provider_customer(AsId(2), AsId(1));
        bld.peering(AsId(2), AsId(3));
        bld.sibling(AsId(3), AsId(4));
        let t = bld.build().unwrap();
        let d = t.node(AsId(1)).unwrap();
        let n4 = t.node(AsId(4)).unwrap();
        let st = RoutingState::solve(&t, d);
        assert_eq!(st.best(n4).unwrap().class, RouteClass::Peer);
        assert_eq!(st.path(n4).unwrap().len(), 3);
    }

    #[test]
    fn unreachable_when_policy_blocks() {
        // Two stubs under different peers: 1-2 peer; 3 customer of 1;
        // 4 customer of 2. 3 can reach 4: path 3-1-2-4? 1 learns 4 via
        // peer 2 (customer route of 2: exportable to peers), then 1 exports
        // to customer 3. Reachable. But a peer-of-peer: 5 peer of 2;
        // 5's route to 4 via 2 is peer-class; 5 may export it only to
        // customers... check 3 via 1 works and the graph is fully policy-
        // connected here; craft true unreachability: 6 provider of 5? Keep
        // it simple: isolated node is unreachable.
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3] {
            bld.add_as(AsId(n));
        }
        bld.peering(AsId(1), AsId(2));
        let t = bld.build().unwrap();
        let d = t.node(AsId(1)).unwrap();
        let iso = t.node(AsId(3)).unwrap();
        let st = RoutingState::solve(&t, d);
        assert_eq!(st.path(iso), None);
        assert_eq!(st.best(iso), None);
        assert!(!st.path_traverses(iso, d));
    }

    #[test]
    fn all_selected_paths_are_valley_free() {
        let t = GenParams::tiny(21).generate();
        for d in t.nodes().step_by(7) {
            let st = RoutingState::solve(&t, d);
            for x in t.nodes() {
                if let Some(p) = st.path(x) {
                    let mut full = vec![x];
                    full.extend(&p);
                    assert!(
                        miro_topology::is_valley_free(&t, &full),
                        "selected path must be valley-free: {full:?} to {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_candidates_are_valley_free_and_loop_free() {
        let t = GenParams::tiny(22).generate();
        for d in t.nodes().step_by(11) {
            let st = RoutingState::solve(&t, d);
            for x in t.nodes() {
                for r in st.candidates(x) {
                    assert!(!r.traverses(x), "candidate must not loop through holder");
                    let mut full = vec![x];
                    full.extend(&r.path);
                    assert!(miro_topology::is_valley_free(&t, &full));
                    assert_eq!(*r.path.last().unwrap(), d);
                }
            }
        }
    }

    #[test]
    fn candidates_sorted_best_first() {
        let t = GenParams::tiny(23).generate();
        let d = t.nodes().next().unwrap();
        let st = RoutingState::solve(&t, d);
        for x in t.nodes() {
            let c = st.candidates(x);
            for w in c.windows(2) {
                assert_ne!(
                    crate::route::prefer(&t, &w[0], &w[1]),
                    std::cmp::Ordering::Greater
                );
            }
            // The selected route equals the top candidate (when any).
            if let (Some(top), Some(b)) = (c.first(), st.best(x)) {
                if x != d {
                    assert_eq!(top.class, b.class);
                    assert_eq!(top.len() as u16, b.len);
                }
            }
        }
    }

    #[test]
    fn connected_hierarchical_graph_is_fully_reachable() {
        let t = GenParams::tiny(24).generate();
        assert!(t.is_connected());
        for d in t.nodes().step_by(13) {
            let st = RoutingState::solve(&t, d);
            assert_eq!(
                st.reachable_count(),
                t.num_nodes(),
                "Gao-Rexford policies keep a connected hierarchy reachable"
            );
        }
    }

    #[test]
    fn as_path_extraction_includes_source() {
        let (t, [a, _b, _c, _d, _e, f]) = figure_1_1();
        let paths = as_paths_to(&t, &[f]);
        assert_eq!(paths.len(), 5);
        assert!(paths.iter().all(|p| *p.last().unwrap() == t.asn(f)));
        assert!(paths.iter().any(|p| p[0] == t.asn(a) && p.len() == 4));
    }
}
