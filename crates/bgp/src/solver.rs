//! Closed-form stable-state BGP solver.
//!
//! For one destination prefix, computes the route every AS converges to
//! under Gao-Rexford policies (Guideline A + conventional export rules),
//! along with the *candidate set* each AS learns from its neighbors — the
//! raw material MIRO negotiations draw on (section 3.4: "the existing BGP
//! protocol already provides many candidate routes, although the alternate
//! routes are not disseminated").
//!
//! The algorithm is the constructive core of the Gao-Rexford convergence
//! proof (restated as Lemma 1 in Chapter 7.2), run as three sweeps over
//! different edge sets:
//!
//! 1. **customer sweep** — climb provider and sibling links from the
//!    destination: every AS reached selects a customer-class route
//!    (Claims 1-2: these ASes are the "Phase-1 ASes");
//! 2. **peer sweep** — one peer hop off a Phase-1 AS, then sibling links;
//! 3. **provider sweep** — descend customer and sibling links from every
//!    routed AS (the "Phase-2" activation of the proof).
//!
//! Each sweep assigns `(class, length, next-hop)` with deterministic
//! tie-breaking (shortest path, then lowest next-hop AS number — the
//! AS-level abstraction of Table 2.1's lower steps).
//!
//! # Engine
//!
//! The sweeps are run with an integer **bucket queue** (Dial's algorithm)
//! keyed by hop count rather than a binary heap: every offer generated
//! while settling hop level `L` lands at level `L+1`, so levels can be
//! processed strictly in order and each sweep is O(V + E) instead of
//! O(E log E). Within one level, the heap's `(len, asn, node, next)`
//! ordering reduces to "the offer with the lowest next-hop AS number wins"
//! — the bucket engine is bit-for-bit equivalent to the heap
//! (property-tested against the retained [`reference`] implementation
//! below).
//!
//! The frontier is **packed**: a bucket holds one `u32` node id per
//! pending node, not one `(to, from)` pair per edge-offer. The winning
//! offerer is folded eagerly into a per-node slot table ([`Slot`]: level
//! tag, best offerer ASN, next hop, generation stamp — 16 bytes) at
//! offer-generation time, so a node a dozen neighbors race for costs one
//! bucket entry instead of twelve, the offerer's ASN is read once per
//! settled node instead of once per offer, and settling a bucket is a
//! single pass (the two-pass lowest-ASN scan disappears — the slot
//! already holds the winner). Co-locating the stamp with the pending
//! offer means the hot loop's per-neighbor probe ("settled? fold the
//! offer.") touches exactly one cache line per node, not two arrays.
//!
//! All per-solve state lives in a reusable [`SolveScratch`] arena:
//! assignment is generation-stamped, so starting the next destination is
//! O(1) rather than an O(V) clear, and the bucket storage keeps its
//! capacity across solves. Whole-network solves reuse one scratch per
//! worker thread via [`RoutingState::solve_into`] /
//! [`RoutingState::recycle`] and allocate nothing in the steady state;
//! [`SolveScratch::for_nodes`] presizes the arena so even the first
//! solve of a pooled worker thread allocates nothing.

use crate::route::{CandidateRoute, ExportScope};
use miro_topology::{NodeId, Rel, RouteClass, Topology};

pub mod multi;

/// The route an AS selected: class, hop count, and next-hop AS.
/// The full path is recovered by chasing next hops (paths are ~4 hops, so
/// this is cheap and keeps the per-destination state at 16 bytes per AS).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BestRoute {
    /// Business class (determines local preference and export scope).
    pub class: RouteClass,
    /// AS hops to the destination (0 for the destination itself).
    pub len: u16,
    /// Next-hop AS (the destination points at itself).
    pub next: NodeId,
}

/// Placeholder stored in unassigned `best` slots (never observable: reads
/// go through the generation stamp).
const UNROUTED: BestRoute = BestRoute { class: RouteClass::Customer, len: 0, next: 0 };

/// Next-hop sentinel for an unrouted AS in an extracted route-table row.
pub const UNROUTED_NEXT: u32 = u32::MAX;
/// Hop-count sentinel for an unrouted AS in an extracted route-table row.
pub const UNROUTED_HOPS: u16 = u16::MAX;
/// Class-code sentinel for an unrouted AS in an extracted route-table row.
pub const UNROUTED_CLASS: u8 = 0xFF;

/// Stable single-byte encoding of a [`RouteClass`] for binary route
/// tables. The codes are part of the `RouteTableSet` on-disk format —
/// do not renumber without bumping that format's version.
pub fn route_class_code(c: RouteClass) -> u8 {
    match c {
        RouteClass::Customer => 0,
        RouteClass::Peer => 1,
        RouteClass::Provider => 2,
    }
}

/// Inverse of [`route_class_code`] for table readers: `None` for the
/// [`UNROUTED_CLASS`] sentinel or any byte outside the encoding.
pub fn route_class_from_code(code: u8) -> Option<RouteClass> {
    match code {
        0 => Some(RouteClass::Customer),
        1 => Some(RouteClass::Peer),
        2 => Some(RouteClass::Provider),
        _ => None,
    }
}

/// Bits of a [`Slot`] tag reserved for the hop level. [`BestRoute::len`]
/// is a `u16`, so 16 bits cover every representable hop count; the
/// remaining 16 bits count sweep rounds, with an O(V) tag clear when the
/// round counter wraps (every ~65k sweeps — see [`next_round`]).
const LVL_BITS: u32 = 16;
const LVL_MASK: u32 = (1 << LVL_BITS) - 1;
const MAX_ROUND: u32 = u32::MAX >> LVL_BITS;

/// Per-node solver slot: the pending offer *and* the generation stamp,
/// co-located so the hot loop's per-neighbor probe is one cache line.
///
/// `tag` is `(round << LVL_BITS) | level`: a pending offer is live for
/// the current sweep iff `tag >> LVL_BITS` equals the sweep's round, and
/// the level part says which bucket holds the node. `asn`/`next` are the
/// lowest-ASN offerer seen so far at that level — the tie-break winner is
/// folded here at offer time, so a bucket stores each pending node once
/// and settling needs no second pass. `stamp` marks the node settled for
/// the owning state's generation (`best[x]` is assigned iff
/// `slots[x].stamp == gen`).
#[derive(Clone, Copy)]
struct Slot {
    tag: u32,
    asn: u32,
    next: NodeId,
    stamp: u32,
}

/// Empty slot: round 0 never runs (rounds are pre-incremented), so a
/// zero tag can never match a live sweep; stamp 0 never matches a live
/// generation (generations are pre-incremented too).
const SLOT_EMPTY: Slot = Slot { tag: 0, asn: 0, next: 0, stamp: 0 };

/// A pending `u -> v` route candidate, pre-tagged by the offerer.
#[derive(Clone, Copy)]
struct Offer {
    tag: u32,
    asn: u32,
    next: NodeId,
}

/// Open the next sweep round: every live offer tag from earlier rounds
/// goes stale at once. When the 16-bit round counter would wrap, pay one
/// O(V) tag clear so a stale tag can never alias a future round.
#[inline]
fn next_round(round: &mut u32, slots: &mut [Slot]) -> u32 {
    *round += 1;
    if *round > MAX_ROUND {
        for s in slots.iter_mut() {
            s.tag = 0;
        }
        *round = 1;
    }
    *round
}

/// Fold `offer` (a pre-tagged `u -> v` candidate) into `v`'s slot,
/// pushing `v` onto the frontier on first touch (per level). The caller
/// builds `offer.tag` once per offerer, so the level comparisons here
/// are plain tag comparisons: within one round a numerically larger tag
/// is a *worse* (deeper) level and is dropped (v settles sooner anyway);
/// an equal tag means the same level, where the lowest-ASN offerer wins;
/// a smaller tag is a *better* level — the slot is retagged and `v` is
/// pushed again, and the stale entry in the deeper bucket is skipped at
/// settle time.
#[inline]
fn push_offer(slots: &mut [Slot], buckets: &mut Vec<Vec<NodeId>>, live: &mut usize, v: NodeId, offer: Offer) {
    let vi = v as usize;
    let have = slots[vi].tag;
    if have >> LVL_BITS == offer.tag >> LVL_BITS {
        if offer.tag > have {
            return;
        }
        if offer.tag == have {
            if offer.asn < slots[vi].asn {
                slots[vi].asn = offer.asn;
                slots[vi].next = offer.next;
            }
            return;
        }
    }
    slots[vi].tag = offer.tag;
    slots[vi].asn = offer.asn;
    slots[vi].next = offer.next;
    let lvl = (offer.tag & LVL_MASK) as usize;
    if buckets.len() <= lvl {
        buckets.resize_with(lvl + 1, Vec::new);
    }
    buckets[lvl].push(v);
    *live += 1;
}

/// Reusable per-thread solve arena.
///
/// Holds the routing table, the per-node slot table (stamps + pending
/// offers), and the packed bucket queue. A scratch can be reused across
/// any sequence of solves (it resizes itself when the topology changes);
/// reuse via [`RoutingState::solve_into`] + [`RoutingState::recycle`]
/// makes the steady-state cost of a solve allocation-free and skips the
/// O(V) routing-table clear between destinations.
pub struct SolveScratch {
    best: Vec<BestRoute>,
    /// Per-node stamp + pending offer (see [`Slot`]).
    slots: Vec<Slot>,
    gen: u32,
    /// Nodes in assignment order: dest, then sweep-1, -2, -3 winners.
    routed: Vec<NodeId>,
    /// Packed bucket queue: `buckets[len]` holds each node with a live
    /// pending offer at hop `len` (once — the winner lives in its slot).
    buckets: Vec<Vec<NodeId>>,
    /// Frontier entries outstanding across all buckets.
    live: usize,
    /// Sweep counter: bumped once per sweep so stale offer tags die
    /// without a clear. Travels with `slots` into the [`RoutingState`]
    /// (delta re-solves keep bumping it there) and is folded back by
    /// [`RoutingState::recycle`], so it never falls behind a tag in the
    /// slot table it is used with.
    round: u32,
}

impl SolveScratch {
    pub fn new() -> SolveScratch {
        SolveScratch {
            best: Vec::new(),
            slots: Vec::new(),
            gen: 0,
            routed: Vec::new(),
            buckets: Vec::new(),
            live: 0,
            round: 0,
        }
    }

    /// Presized arena for an `n`-node topology: the first solve through
    /// this scratch already allocates nothing. Pooled whole-table workers
    /// build their per-thread scratches this way.
    pub fn for_nodes(n: usize) -> SolveScratch {
        let mut s = SolveScratch::new();
        s.best.resize(n, UNROUTED);
        s.slots.resize(n, SLOT_EMPTY);
        s
    }

    /// Resize to topology size `n` and open a fresh generation.
    fn begin(&mut self, n: usize) -> u32 {
        if self.slots.len() != n {
            self.best.clear();
            self.best.resize(n, UNROUTED);
            self.slots.clear();
            self.slots.resize(n, SLOT_EMPTY);
            self.gen = 0;
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // u32 wrap after ~4e9 solves on one scratch: pay one clear.
            for s in self.slots.iter_mut() {
                s.stamp = 0;
            }
            self.gen = 1;
        }
        self.routed.clear();
        self.live = 0;
        self.gen
    }
}

/// Scratch arena for incremental re-solves
/// ([`RoutingState::with_failed_link`]).
///
/// Layers on [`SolveScratch`]: the inner scratch provides the bucket
/// queue and routed-order arena (delta sweeps run against the table and
/// slot table owned by the base state — the inner scratch's own stay
/// empty), and the undo log records every invalidated node's base
/// assignment so the guard can restore the base solve in O(cone).
/// Consecutive deltas against one base reuse all storage and allocate
/// nothing in the steady state.
pub struct DeltaScratch {
    /// `(node, base assignment)` for every changed node: the cone in BFS
    /// order, then any downstream nodes reached by the improvement wave.
    undo: Vec<(NodeId, BestRoute)>,
    /// `logged[v] == logged_gen` iff `v` is already in the undo log.
    logged: Vec<u32>,
    logged_gen: u32,
    inner: SolveScratch,
}

impl DeltaScratch {
    pub fn new() -> DeltaScratch {
        DeltaScratch {
            undo: Vec::new(),
            logged: Vec::new(),
            logged_gen: 0,
            inner: SolveScratch::new(),
        }
    }

    /// Presized arena for an `n`-node topology (see
    /// [`SolveScratch::for_nodes`]). Delta sweeps borrow the slot table
    /// from the base state, so only the undo-dedup column needs sizing.
    pub fn for_nodes(n: usize) -> DeltaScratch {
        let mut s = DeltaScratch::new();
        s.logged.resize(n, 0);
        s
    }

    /// Open a fresh undo generation sized for `n` nodes.
    fn begin(&mut self, n: usize) {
        self.undo.clear();
        if self.logged.len() != n {
            self.logged.clear();
            self.logged.resize(n, 0);
            self.logged_gen = 0;
        }
        self.logged_gen = self.logged_gen.wrapping_add(1);
        if self.logged_gen == 0 {
            self.logged.fill(0);
            self.logged_gen = 1;
        }
        self.inner.routed.clear();
    }

    /// Record `v`'s pre-delta assignment (once) so the guard can restore it.
    #[inline]
    fn log(&mut self, v: NodeId, old: BestRoute) {
        if self.logged[v as usize] != self.logged_gen {
            self.logged[v as usize] = self.logged_gen;
            self.undo.push((v, old));
        }
    }
}

impl Default for DeltaScratch {
    fn default() -> DeltaScratch {
        DeltaScratch::new()
    }
}

impl Default for SolveScratch {
    fn default() -> SolveScratch {
        SolveScratch::new()
    }
}

/// The set of links a sweep must treat as administratively dead. The
/// single-failure paths ([`RoutingState::solve_without_link`],
/// [`RoutingState::with_failed_link`]) mask `None` or `One`; the batched
/// churn engine ([`multi::MultiFailState`]) masks a whole sorted,
/// low-high-normalized set.
#[derive(Clone, Copy)]
pub(crate) enum Mask<'m> {
    None,
    One((NodeId, NodeId)),
    Many(&'m [(NodeId, NodeId)]),
}

impl Mask<'_> {
    /// Is the link between `x` and `y` masked out?
    #[inline]
    pub(crate) fn banned(&self, x: NodeId, y: NodeId) -> bool {
        match *self {
            Mask::None => false,
            Mask::One(l) => l == (x.min(y), x.max(y)),
            Mask::Many(set) => set.binary_search(&(x.min(y), x.max(y))).is_ok(),
        }
    }

    /// Does the mask provably suppress nothing?
    #[inline]
    fn is_empty(&self) -> bool {
        matches!(self, Mask::None) || matches!(self, Mask::Many(s) if s.is_empty())
    }
}

/// The mask equivalent of an optional single failed link.
#[inline]
fn mask_of(banned: Option<(NodeId, NodeId)>) -> Mask<'static> {
    match banned {
        None => Mask::None,
        Some(l) => Mask::One(l),
    }
}

/// Which CSR partition a sweep propagates over (see
/// [`Topology::up_neighbors`] and friends).
#[derive(Clone, Copy)]
enum Edges {
    /// Providers + siblings: the customer-sweep climb.
    Up,
    /// Siblings only: peer-class propagation.
    Sibling,
    /// Siblings + customers: the provider-sweep descent.
    Down,
    /// Peers only (seeding sweep 2).
    Peer,
    /// Customers only (seeding sweep 3).
    Customer,
}

impl Edges {
    #[inline]
    fn slice(self, topo: &Topology, u: NodeId) -> &[NodeId] {
        match self {
            Edges::Up => topo.up_neighbors(u),
            Edges::Sibling => topo.sibling_neighbors(u),
            Edges::Down => topo.down_neighbors(u),
            Edges::Peer => topo.peer_neighbors(u),
            Edges::Customer => topo.customer_neighbors(u),
        }
    }
}

/// One in-flight solve: scratch fields borrowed disjointly.
struct Sweep<'a> {
    topo: &'a Topology,
    mask: Mask<'a>,
    gen: u32,
    best: &'a mut [BestRoute],
    slots: &'a mut [Slot],
    routed: &'a mut Vec<NodeId>,
    buckets: &'a mut Vec<Vec<NodeId>>,
    live: usize,
    round: &'a mut u32,
}

impl Sweep<'_> {
    #[inline]
    fn is_banned(&self, x: NodeId, y: NodeId) -> bool {
        self.mask.banned(x, y)
    }

    /// Open a fresh round: every live offer tag from earlier sweeps (or
    /// earlier solves sharing this slot table) goes stale at once.
    fn new_round(&mut self) {
        next_round(self.round, self.slots);
    }

    /// Offer `u`'s route (extended by one hop) to its `edges` neighbors
    /// that are still unrouted. The offerer's ASN is read once here, not
    /// once per offer at settle time; the no-mask case (every whole-table
    /// solve) skips the banned test in the inner loop entirely.
    fn offer_from(&mut self, u: NodeId, edges: Edges) {
        let lvl = self.best[u as usize].len as usize + 1;
        debug_assert!(lvl <= LVL_MASK as usize, "hop level exceeds the 16-bit tag field");
        let offer = Offer {
            tag: (*self.round << LVL_BITS) | lvl as u32,
            asn: self.topo.asn(u).0,
            next: u,
        };
        let neigh = edges.slice(self.topo, u);
        if self.mask.is_empty() {
            for &v in neigh {
                if self.slots[v as usize].stamp != self.gen {
                    push_offer(self.slots, self.buckets, &mut self.live, v, offer);
                }
            }
        } else {
            for &v in neigh {
                if self.slots[v as usize].stamp != self.gen && !self.is_banned(u, v) {
                    push_offer(self.slots, self.buckets, &mut self.live, v, offer);
                }
            }
        }
    }

    /// Inject the boundary offers of one delta sweep: for every cone node
    /// `v` still unrouted, every settled neighbor `u` whose
    /// (relationship-of-`u`-to-`v`, class) passes `from` offers its route,
    /// at the same hop level `offer_from` would have used. Settled cone
    /// nodes re-routed by an earlier delta sweep participate with their
    /// updated assignment, matching what the full run would deliver.
    fn seed(&mut self, cone: &[(NodeId, BestRoute)], from: impl Fn(Rel, BestRoute) -> bool) {
        for &(v, _) in cone {
            if self.slots[v as usize].stamp == self.gen {
                continue; // re-settled by an earlier delta sweep
            }
            for &(u, rel) in self.topo.neighbors(v) {
                if self.slots[u as usize].stamp == self.gen
                    && from(rel, self.best[u as usize])
                    && !self.is_banned(u, v)
                {
                    let lvl = self.best[u as usize].len as usize + 1;
                    let offer = Offer {
                        tag: (*self.round << LVL_BITS) | lvl as u32,
                        asn: self.topo.asn(u).0,
                        next: u,
                    };
                    push_offer(self.slots, self.buckets, &mut self.live, v, offer);
                }
            }
        }
    }

    /// Settle the frontier in hop order, assigning `class` and
    /// propagating over `edges`. Equivalent to popping a heap ordered by
    /// `(len, asn(next), node, next)`: buckets are settled in level order
    /// (offers from level `L` only ever land at `L+1`), and the winner
    /// for a node — its lowest-ASN offerer at its best pending level —
    /// was already folded into the node's slot at offer time, so settling
    /// is a single pass over each bucket.
    fn drain(&mut self, class: RouteClass, edges: Edges) {
        let round = *self.round;
        let mut lvl = 1;
        while self.live > 0 {
            debug_assert!(lvl < self.buckets.len(), "live offers beyond last bucket");
            if self.buckets[lvl].is_empty() {
                lvl += 1;
                continue;
            }
            let mut bucket = std::mem::take(&mut self.buckets[lvl]);
            self.live -= bucket.len();
            for &v in &bucket {
                let vi = v as usize;
                if self.slots[vi].stamp == self.gen {
                    continue; // settled at a shorter length (retagged entry)
                }
                debug_assert_eq!(
                    self.slots[vi].tag,
                    (round << LVL_BITS) | lvl as u32,
                    "frontier entry must carry a live tag for its bucket"
                );
                self.slots[vi].stamp = self.gen;
                self.best[vi] = BestRoute { class, len: lvl as u16, next: self.slots[vi].next };
                self.routed.push(v);
                self.offer_from(v, edges);
            }
            bucket.clear();
            self.buckets[lvl] = bucket; // return storage to the arena
            lvl += 1;
        }
    }
}

/// The converged routing state for a single destination prefix.
///
/// ```
/// use miro_bgp::solver::RoutingState;
/// use miro_topology::gen::figure_1_1;
///
/// // The paper's Figure 1.1 topology: A routes to F through B and E.
/// let (topo, [a, b, _c, _d, e, f]) = figure_1_1();
/// let st = RoutingState::solve(&topo, f);
/// assert_eq!(st.path(a), Some(vec![b, e, f]));
/// // ...and the alternate through D is in A's candidate set.
/// assert_eq!(st.candidates(a).len(), 2);
/// ```
pub struct RoutingState<'t> {
    topo: &'t Topology,
    dest: NodeId,
    best: Vec<BestRoute>,
    /// `best[x]` is assigned iff `slots[x].stamp == gen`.
    slots: Vec<Slot>,
    gen: u32,
    /// Sweep-round counter paired with `slots` (delta re-solves keep
    /// bumping it); folded back into the scratch by
    /// [`RoutingState::recycle`].
    round: u32,
    /// Administratively failed link this state was solved without
    /// (normalized low-high); candidates over it are suppressed too.
    banned: Option<(NodeId, NodeId)>,
}

impl<'t> RoutingState<'t> {
    /// Solve the stable state for destination `dest`.
    pub fn solve(topo: &'t Topology, dest: NodeId) -> RoutingState<'t> {
        Self::solve_masked(topo, dest, None, &mut SolveScratch::new())
    }

    /// Solve reusing a scratch arena: the allocation-free fast path for
    /// whole-network solves. Return the state's storage with
    /// [`RoutingState::recycle`] when done querying it.
    pub fn solve_into(
        topo: &'t Topology,
        dest: NodeId,
        scratch: &mut SolveScratch,
    ) -> RoutingState<'t> {
        Self::solve_masked(topo, dest, None, scratch)
    }

    /// Solve as if the link between `a` and `b` had failed — the
    /// what-if the MIRO control plane runs when it observes a withdrawal
    /// and must decide which tunnels to tear down (section 4.3), without
    /// rebuilding the topology.
    pub fn solve_without_link(
        topo: &'t Topology,
        dest: NodeId,
        a: NodeId,
        b: NodeId,
    ) -> RoutingState<'t> {
        Self::solve_masked(topo, dest, Some((a.min(b), a.max(b))), &mut SolveScratch::new())
    }

    /// Scratch-reusing variant of [`RoutingState::solve_without_link`].
    pub fn solve_without_link_into(
        topo: &'t Topology,
        dest: NodeId,
        a: NodeId,
        b: NodeId,
        scratch: &mut SolveScratch,
    ) -> RoutingState<'t> {
        Self::solve_masked(topo, dest, Some((a.min(b), a.max(b))), scratch)
    }

    /// Give this state's table storage back to `scratch` so the next
    /// [`RoutingState::solve_into`] reuses it without reallocating.
    pub fn recycle(self, scratch: &mut SolveScratch) {
        scratch.best = self.best;
        scratch.slots = self.slots;
        // Delta re-solves bump the state's round past the scratch's;
        // fold it back so no live tag in the slot table can outrun the
        // counter it is next used with.
        scratch.round = scratch.round.max(self.round);
    }

    fn solve_masked(
        topo: &'t Topology,
        dest: NodeId,
        banned: Option<(NodeId, NodeId)>,
        scratch: &mut SolveScratch,
    ) -> RoutingState<'t> {
        Self::solve_core(topo, dest, mask_of(banned), banned, scratch)
    }

    /// The three-sweep solve under an arbitrary link mask. `banned` is
    /// what the returned state *records* (the single-failure API);
    /// [`multi::MultiFailState`] passes `Mask::Many` with `banned: None`
    /// and immediately disassembles the state into its own storage.
    pub(crate) fn solve_core(
        topo: &'t Topology,
        dest: NodeId,
        mask: Mask<'_>,
        banned: Option<(NodeId, NodeId)>,
        scratch: &mut SolveScratch,
    ) -> RoutingState<'t> {
        let n = topo.num_nodes();
        let gen = scratch.begin(n);
        let mut best = std::mem::take(&mut scratch.best);
        let mut slots = std::mem::take(&mut scratch.slots);

        best[dest as usize] = BestRoute { class: RouteClass::Customer, len: 0, next: dest };
        slots[dest as usize].stamp = gen;
        scratch.routed.push(dest);

        {
            let mut sw = Sweep {
                topo,
                mask,
                gen,
                best: &mut best,
                slots: &mut slots,
                routed: &mut scratch.routed,
                buckets: &mut scratch.buckets,
                live: 0,
                round: &mut scratch.round,
            };

            // --- Sweep 1: customer-class routes -------------------------
            // Climb provider and sibling links from the destination.
            sw.new_round();
            sw.offer_from(dest, Edges::Up);
            sw.drain(RouteClass::Customer, Edges::Up);
            let customer_routed = sw.routed.len();

            // --- Sweep 2: peer-class routes -----------------------------
            // Seed: one peer hop off a customer-routed AS (peers export
            // only customer routes), then propagate along sibling links.
            debug_assert_eq!(sw.live, 0);
            sw.new_round();
            for i in 0..customer_routed {
                let p = sw.routed[i];
                sw.offer_from(p, Edges::Peer);
            }
            sw.drain(RouteClass::Peer, Edges::Sibling);
            let routed = sw.routed.len();

            // --- Sweep 3: provider-class routes -------------------------
            // Seed: every routed AS offers its route to its customers
            // (everything is exportable to customers); then propagate down
            // customer links and across sibling links among the unrouted.
            debug_assert_eq!(sw.live, 0);
            sw.new_round();
            for i in 0..routed {
                let x = sw.routed[i];
                sw.offer_from(x, Edges::Customer);
            }
            sw.drain(RouteClass::Provider, Edges::Down);
        }

        RoutingState { topo, dest, best, slots, gen, round: scratch.round, banned }
    }

    /// The destination this state routes toward.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The selected route of `x`, if `x` can reach the destination.
    #[inline]
    pub fn best(&self, x: NodeId) -> Option<BestRoute> {
        (self.slots[x as usize].stamp == self.gen).then(|| self.best[x as usize])
    }

    /// The selected AS path of `x` (next hop first, destination last;
    /// empty for the destination itself). `None` if unreachable.
    pub fn path(&self, x: NodeId) -> Option<Vec<NodeId>> {
        let mut b = self.best(x)?;
        let mut out = Vec::with_capacity(b.len as usize);
        let mut at = x;
        while at != self.dest {
            at = b.next;
            out.push(at);
            b = self.best(at).expect("next hop of a routed AS is routed");
        }
        Some(out)
    }

    /// Does `x`'s selected path traverse `avoid`? (`false` if unreachable.)
    pub fn path_traverses(&self, x: NodeId, avoid: NodeId) -> bool {
        let mut at = x;
        while at != self.dest {
            let Some(b) = self.best(at) else { return false };
            at = b.next;
            if at == avoid {
                return true;
            }
        }
        false
    }

    /// Would neighbor `n` export its selected route to `x` under the
    /// conventional export rules, and is it loop-free at `x`?
    /// Returns the candidate as `x` would install it.
    pub fn learned_from(&self, x: NodeId, n: NodeId) -> Option<CandidateRoute> {
        if self.banned == Some((x.min(n), x.max(n))) {
            return None; // the session over a failed link is down
        }
        let bn = self.best(n)?;
        let rel_xn = self.topo.rel(n, x)?; // what x is to n: n's export decision
        if !ExportScope::allows(bn.class, rel_xn) {
            return None;
        }
        let mut path = Vec::with_capacity(bn.len as usize + 1);
        path.push(n);
        let mut at = n;
        while at != self.dest {
            let b = self.best(at).expect("routed chain");
            at = b.next;
            if at == x {
                return None; // loop: x already on n's path
            }
            path.push(at);
        }
        let rel_nx = self.topo.rel(x, n).expect("link exists both ways");
        let class = ExportScope::received_class(bn.class, rel_nx);
        Some(CandidateRoute { path, class })
    }

    /// All candidate routes `x` learns from its neighbors under normal BGP
    /// operation — the alternate-route pool a MIRO responding AS selects
    /// from (section 3.4).
    ///
    /// Sorted by [`crate::route::prefer`]: business class first
    /// (customer, then peer, then provider), then path length, then
    /// next-hop AS number — best first, so `candidates(x)[0]` always
    /// matches [`RoutingState::best`] when `x` is routed.
    pub fn candidates(&self, x: NodeId) -> Vec<CandidateRoute> {
        // At most one candidate per neighbor, so degree bounds the size.
        let mut out: Vec<CandidateRoute> = Vec::with_capacity(self.topo.degree(x));
        out.extend(
            self.topo
                .neighbors(x)
                .iter()
                .filter_map(|&(n, _)| self.learned_from(x, n)),
        );
        out.sort_by(|a, b| crate::route::prefer(self.topo, a, b));
        out
    }

    /// Number of ASes that can reach the destination.
    pub fn reachable_count(&self) -> usize {
        self.slots.iter().filter(|s| s.stamp == self.gen).count()
    }

    /// Extract this solve as one route-table row: for every AS `x`, its
    /// next hop, business class code ([`route_class_code`]), and AS-hop
    /// count toward the destination. Unrouted ASes get the `UNROUTED_*`
    /// sentinels. The three slices must each hold `num_nodes` entries;
    /// sharded whole-table solves (`miro shard-solve`) call this per
    /// destination to fill the columnar [`RouteTableSet`] blocks.
    ///
    /// [`RouteTableSet`]: https://docs.rs/miro-shard
    pub fn write_table_row(&self, next: &mut [u32], hops: &mut [u16], class: &mut [u8]) {
        let n = self.topo.num_nodes();
        assert_eq!(next.len(), n, "next column sized to the topology");
        assert_eq!(hops.len(), n, "hops column sized to the topology");
        assert_eq!(class.len(), n, "class column sized to the topology");
        for x in 0..n {
            match self.best(x as NodeId) {
                Some(b) => {
                    next[x] = b.next;
                    hops[x] = b.len;
                    class[x] = route_class_code(b.class);
                }
                None => {
                    next[x] = UNROUTED_NEXT;
                    hops[x] = UNROUTED_HOPS;
                    class[x] = UNROUTED_CLASS;
                }
            }
        }
    }

    /// Incremental what-if: view this state as if the link between `a`
    /// and `b` had failed, recomputing only the routing subtree that
    /// hung off the dead link (the *cone*) plus the downstream nodes its
    /// re-routing improves, instead of re-running the full three-sweep
    /// solve.
    ///
    /// Returns an RAII guard that dereferences to the re-solved state;
    /// dropping it restores the base solve in O(cone). When the link is
    /// not on the base routing tree the delta is a no-op (the base
    /// solution provably cannot change — non-winning offers have no side
    /// effects) and only candidate suppression over the dead session is
    /// applied.
    ///
    /// The base must be an unmasked solve, and one failure is viewed at
    /// a time. Leaking the guard (`std::mem::forget`) leaves the state
    /// in the failed configuration permanently.
    pub fn with_failed_link<'a>(
        &'a mut self,
        a: NodeId,
        b: NodeId,
        scratch: &'a mut DeltaScratch,
    ) -> FailedLink<'a, 't> {
        assert!(self.banned.is_none(), "delta re-solve requires an unmasked base solve");
        assert_ne!(a, b, "a link joins two distinct ASes");
        let disconnected = delta_apply(self, a, b, scratch);
        FailedLink { st: self, scratch, disconnected }
    }
}

/// Apply the failed-link delta to `st` in place, logging every change to
/// `scratch.undo`. Returns how many cone nodes lost reachability.
fn delta_apply(
    st: &mut RoutingState<'_>,
    a: NodeId,
    b: NodeId,
    scratch: &mut DeltaScratch,
) -> usize {
    scratch.begin(st.topo.num_nodes());
    st.banned = Some((a.min(b), a.max(b)));

    // Which endpoint routes *through* the dead link? At most one can:
    // its parent's own path never descends back into the subtree. If
    // neither does, the base run never used the link and the solution is
    // unchanged — the mask set above suppresses candidates over the dead
    // session, which is all `solve_without_link` would differ by.
    let gen = st.gen;
    let child = if st.slots[a as usize].stamp == gen && st.best[a as usize].next == b {
        a
    } else if st.slots[b as usize].stamp == gen && st.best[b as usize].next == a {
        b
    } else {
        return 0;
    };

    redrain_cones(
        st.topo,
        gen,
        mask_of(st.banned),
        &mut st.round,
        &mut st.best,
        &mut st.slots,
        scratch,
        &[child],
    )
}

/// The delta-engine core, shared by the single-link what-if
/// ([`RoutingState::with_failed_link`]) and the batched churn engine
/// ([`multi::MultiFailState`]): invalidate the routing subtrees hanging
/// under `children` (nodes whose next-hop link just died), re-drain the
/// three sweeps inside the union cone against the intact boundary, then
/// relax the provider-class improvement wave. Every change is logged to
/// `scratch.undo` (caller decides whether that log is an undo log or
/// just a changed-set record). Returns how many cone nodes lost
/// reachability.
///
/// Batching is what makes `children` a slice: co-temporal link failures
/// whose cones overlap are invalidated and re-drained **once**, where
/// serial application would re-settle the shared subtree per event. With
/// disjoint cones the union re-drain degenerates to exactly the serial
/// work (each seed only reaches its own cone), so batching never costs
/// correctness — only the per-event sweep setup is amortized.
#[allow(clippy::too_many_arguments)]
fn redrain_cones(
    topo: &Topology,
    gen: u32,
    mask: Mask<'_>,
    round: &mut u32,
    best: &mut [BestRoute],
    slots: &mut [Slot],
    scratch: &mut DeltaScratch,
    children: &[NodeId],
) -> usize {
    // --- Cone discovery -------------------------------------------------
    // The invalidated cone is the union of the routing subtrees rooted at
    // the children: a node loses its route iff its next-hop chain crosses
    // a dead link. Walk parent pointers breadth-first (v joins the cone
    // iff its next hop already did), logging each base assignment and
    // un-assigning the node by aging its stamp (any value != gen reads as
    // unrouted).
    let dead = gen.wrapping_sub(1);
    for &child in children {
        scratch.log(child, best[child as usize]);
        slots[child as usize].stamp = dead;
    }
    let mut head = 0;
    while head < scratch.undo.len() {
        let (x, _) = scratch.undo[head];
        head += 1;
        for &(v, _) in topo.neighbors(x) {
            if slots[v as usize].stamp == gen && best[v as usize].next == x {
                scratch.log(v, best[v as usize]);
                slots[v as usize].stamp = dead;
            }
        }
    }

    // --- Cone re-solve --------------------------------------------------
    // Re-run the three sweeps restricted to the cone. Everything outside
    // keeps its base assignment and acts as the intact boundary; each
    // sweep is seeded with exactly the offers the full masked run would
    // deliver into the cone from settled nodes, so winners and tie-breaks
    // come out bit-for-bit identical.
    let cone = scratch.undo.len();
    let (undo, inner) = (&scratch.undo, &mut scratch.inner);
    let mut sw = Sweep {
        topo,
        mask,
        gen,
        best,
        slots,
        routed: &mut inner.routed,
        buckets: &mut inner.buckets,
        live: 0,
        round,
    };

    // Sweep 1: every customer-routed AS climbs provider/sibling links, so
    // a settled u offers into cone node v iff u is v's customer or
    // sibling and holds a customer-class route.
    sw.new_round();
    sw.seed(undo, |rel, bu| {
        matches!(rel, Rel::Customer | Rel::Sibling) && bu.class == RouteClass::Customer
    });
    sw.drain(RouteClass::Customer, Edges::Up);

    // Sweep 2: customer-routed ASes offer one peer hop; peer-class routes
    // then propagate along sibling links.
    sw.new_round();
    sw.seed(undo, |rel, bu| match rel {
        Rel::Peer => bu.class == RouteClass::Customer,
        Rel::Sibling => bu.class == RouteClass::Peer,
        _ => false,
    });
    sw.drain(RouteClass::Peer, Edges::Sibling);

    // Sweep 3: every routed AS offers to its customers (any class);
    // provider-class routes then descend customer and sibling links.
    sw.new_round();
    sw.seed(undo, |rel, bu| match rel {
        Rel::Provider => true,
        Rel::Sibling => bu.class == RouteClass::Provider,
        _ => false,
    });
    sw.drain(RouteClass::Provider, Edges::Down);

    let disconnected = cone - sw.routed.len();

    // --- Improvement wave -----------------------------------------------
    // Losing a link can *shorten* routes outside the cone: a cone node
    // demoted across sweeps (e.g. peer-class via the dead link to a
    // shorter provider-class fallback) now delivers its sweep-3 offers at
    // an earlier hop level, and nodes below it may switch to the better
    // offer. Only sweep-3 deliveries can ever improve — customer-class
    // levels are plain BFS distances over a shrinking edge set, and
    // peer-class levels derive from them — so the wave is exactly a
    // bucket-queue relaxation of provider-class routes down customer and
    // sibling links, seeded by every re-settled cone node and propagated
    // from every node whose route got strictly shorter. The argument only
    // uses that the edge set *shrank*, so it holds verbatim for a batch
    // of simultaneous failures.
    improve_wave(topo, gen, mask, round, best, slots, scratch);

    disconnected
}

/// Phase 2 of the delta re-solve: relax provider-class improvements down
/// customer/sibling links, starting from the re-settled cone nodes
/// (`scratch.inner.routed`).
fn improve_wave(
    topo: &Topology,
    gen: u32,
    mask: Mask<'_>,
    round: &mut u32,
    best: &mut [BestRoute],
    slots: &mut [Slot],
    scratch: &mut DeltaScratch,
) {
    // A node can take a sweep-3 offer at level `lvl` only if it already
    // holds a provider-class route no shorter than `lvl`.
    let eligible = |best: &[BestRoute], slots: &[Slot], x: NodeId, lvl: usize| {
        slots[x as usize].stamp == gen
            && best[x as usize].class == RouteClass::Provider
            && best[x as usize].len as usize >= lvl
    };

    let DeltaScratch { undo, logged, logged_gen, inner } = scratch;
    let round = next_round(round, slots);
    let mut live = 0usize;

    // Seeds: the sweep-3 deliveries of every re-settled cone node — to
    // its customers at any class, to its siblings when provider-class.
    // Deliveries identical to the base solve's are rejected by the
    // incumbent test at settle time, so seeding unconditionally is safe.
    for i in 0..inner.routed.len() {
        let v = inner.routed[i];
        let bv = best[v as usize];
        let lvl = bv.len as usize + 1;
        let asn_v = topo.asn(v).0;
        for &(x, rel) in topo.neighbors(v) {
            let delivers = match rel {
                Rel::Customer => true, // x is v's customer
                Rel::Sibling => bv.class == RouteClass::Provider,
                _ => false,
            };
            if delivers && !mask.banned(v, x) && eligible(best, slots, x, lvl) {
                let offer = Offer { tag: (round << LVL_BITS) | lvl as u32, asn: asn_v, next: v };
                push_offer(slots, &mut inner.buckets, &mut live, x, offer);
            }
        }
    }

    let mut lvl = 1;
    while live > 0 {
        debug_assert!(lvl < inner.buckets.len(), "live offers beyond last bucket");
        if inner.buckets[lvl].is_empty() {
            lvl += 1;
            continue;
        }
        let mut bucket = std::mem::take(&mut inner.buckets[lvl]);
        live -= bucket.len();
        let tag = (round << LVL_BITS) | lvl as u32;
        for &x in &bucket {
            let xi = x as usize;
            if !eligible(best, slots, x, lvl) {
                continue; // stale: x already improved past this level
            }
            if slots[xi].tag != tag {
                continue; // superseded by an earlier-level entry
            }
            // The lowest-ASN offerer (already folded into the slot)
            // must also beat the incumbent route — which competes on ASN
            // when it has this exact length (the full run's bucket would
            // contain it too) and wins ties.
            let bx = best[xi];
            if bx.len as usize == lvl && topo.asn(bx.next).0 <= slots[xi].asn {
                continue; // the incumbent won
            }
            if logged[xi] != *logged_gen {
                logged[xi] = *logged_gen;
                undo.push((x, bx));
            }
            let shortened = bx.len as usize > lvl;
            best[xi] = BestRoute {
                class: RouteClass::Provider,
                len: lvl as u16,
                next: slots[xi].next,
            };
            if shortened {
                let nxt = lvl + 1;
                let offer = Offer {
                    tag: (round << LVL_BITS) | nxt as u32,
                    asn: topo.asn(x).0,
                    next: x,
                };
                for &(y, rel) in topo.neighbors(x) {
                    if matches!(rel, Rel::Customer | Rel::Sibling)
                        && !mask.banned(x, y)
                        && eligible(best, slots, y, nxt)
                    {
                        push_offer(slots, &mut inner.buckets, &mut live, y, offer);
                    }
                }
            }
        }
        bucket.clear();
        inner.buckets[lvl] = bucket;
        lvl += 1;
    }
}

/// RAII view of a [`RoutingState`] with one link incrementally failed
/// (see [`RoutingState::with_failed_link`]). Dereferences to the
/// re-solved state; dropping it restores the base solve.
pub struct FailedLink<'a, 't> {
    st: &'a mut RoutingState<'t>,
    scratch: &'a mut DeltaScratch,
    disconnected: usize,
}

impl<'t> std::ops::Deref for FailedLink<'_, 't> {
    type Target = RoutingState<'t>;

    fn deref(&self) -> &RoutingState<'t> {
        self.st
    }
}

impl FailedLink<'_, '_> {
    /// Nodes whose base route the failure changed: the invalidated cone
    /// plus any downstream nodes the improvement wave reached. Zero when
    /// the link was off the base routing tree — the skip case where the
    /// answer is served straight from the base solve.
    pub fn recomputed(&self) -> usize {
        self.scratch.undo.len()
    }

    /// Was the failed link absent from the base routing tree?
    pub fn is_noop(&self) -> bool {
        self.scratch.undo.is_empty()
    }

    /// Cone nodes that lost reachability entirely under the failure.
    pub fn disconnected(&self) -> usize {
        self.disconnected
    }
}

impl Drop for FailedLink<'_, '_> {
    fn drop(&mut self) {
        let gen = self.st.gen;
        for &(v, old) in &self.scratch.undo {
            self.st.best[v as usize] = old;
            self.st.slots[v as usize].stamp = gen;
        }
        self.scratch.undo.clear();
        self.st.banned = None;
    }
}

/// The original heap-based solver, retained as the equivalence oracle for
/// the bucket-queue engine (and for before/after benchmarking via the
/// `ref-solver` feature).
#[cfg(any(test, feature = "ref-solver"))]
pub mod reference {
    use super::{BestRoute, RoutingState, UNROUTED};
    use miro_topology::{NodeId, Rel, RouteClass, Topology};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Solve the stable state for destination `dest` with the heap engine.
    pub fn solve(topo: &Topology, dest: NodeId) -> RoutingState<'_> {
        solve_masked(topo, dest, None)
    }

    /// Heap-engine counterpart of [`RoutingState::solve_without_link`].
    pub fn solve_without_link(
        topo: &Topology,
        dest: NodeId,
        a: NodeId,
        b: NodeId,
    ) -> RoutingState<'_> {
        solve_masked(topo, dest, Some((a.min(b), a.max(b))))
    }

    fn solve_masked(
        topo: &Topology,
        dest: NodeId,
        banned: Option<(NodeId, NodeId)>,
    ) -> RoutingState<'_> {
        let n = topo.num_nodes();
        let mut best: Vec<Option<BestRoute>> = vec![None; n];
        best[dest as usize] =
            Some(BestRoute { class: RouteClass::Customer, len: 0, next: dest });

        // A sweep relaxes offers (len, next_asn, node, next) in order;
        // first assignment wins, implementing (shortest, lowest-ASN).
        type Offer = Reverse<(u16, u32, NodeId, NodeId)>;
        let mut heap: BinaryHeap<Offer> = BinaryHeap::new();

        // --- Sweep 1: customer-class routes -----------------------------
        let is_banned =
            move |x: NodeId, y: NodeId| banned == Some((x.min(y), x.max(y)));
        let offer_up = |heap: &mut BinaryHeap<Offer>,
                        topo: &Topology,
                        best: &[Option<BestRoute>],
                        u: NodeId| {
            let bu = best[u as usize].expect("offering node is routed");
            for &(v, rel) in topo.neighbors(u) {
                if (rel == Rel::Provider || rel == Rel::Sibling)
                    && best[v as usize].is_none()
                    && !is_banned(u, v)
                {
                    heap.push(Reverse((bu.len + 1, topo.asn(u).0, v, u)));
                }
            }
        };
        offer_up(&mut heap, topo, &best, dest);
        while let Some(Reverse((len, _asn, v, u))) = heap.pop() {
            if best[v as usize].is_some() {
                continue;
            }
            best[v as usize] = Some(BestRoute { class: RouteClass::Customer, len, next: u });
            offer_up(&mut heap, topo, &best, v);
        }

        // --- Sweep 2: peer-class routes ----------------------------------
        debug_assert!(heap.is_empty());
        let customer_routed: Vec<NodeId> = (0..n as NodeId)
            .filter(|&x| {
                matches!(best[x as usize], Some(b) if b.class == RouteClass::Customer)
            })
            .collect();
        for &p in &customer_routed {
            let bp = best[p as usize].expect("customer-routed");
            for &(v, rel) in topo.neighbors(p) {
                if rel == Rel::Peer && best[v as usize].is_none() && !is_banned(p, v) {
                    heap.push(Reverse((bp.len + 1, topo.asn(p).0, v, p)));
                }
            }
        }
        let offer_sib = |heap: &mut BinaryHeap<Offer>,
                         topo: &Topology,
                         best: &[Option<BestRoute>],
                         u: NodeId| {
            let bu = best[u as usize].expect("offering node is routed");
            for &(v, rel) in topo.neighbors(u) {
                if rel == Rel::Sibling && best[v as usize].is_none() && !is_banned(u, v) {
                    heap.push(Reverse((bu.len + 1, topo.asn(u).0, v, u)));
                }
            }
        };
        while let Some(Reverse((len, _asn, v, u))) = heap.pop() {
            if best[v as usize].is_some() {
                continue;
            }
            best[v as usize] = Some(BestRoute { class: RouteClass::Peer, len, next: u });
            offer_sib(&mut heap, topo, &best, v);
        }

        // --- Sweep 3: provider-class routes -------------------------------
        debug_assert!(heap.is_empty());
        for x in 0..n as NodeId {
            if best[x as usize].is_some() {
                let bx = best[x as usize].expect("routed");
                for &(v, rel) in topo.neighbors(x) {
                    if rel == Rel::Customer && best[v as usize].is_none() && !is_banned(x, v) {
                        heap.push(Reverse((bx.len + 1, topo.asn(x).0, v, x)));
                    }
                }
            }
        }
        let offer_down = |heap: &mut BinaryHeap<Offer>,
                          topo: &Topology,
                          best: &[Option<BestRoute>],
                          u: NodeId| {
            let bu = best[u as usize].expect("offering node is routed");
            for &(v, rel) in topo.neighbors(u) {
                if (rel == Rel::Customer || rel == Rel::Sibling)
                    && best[v as usize].is_none()
                    && !is_banned(u, v)
                {
                    heap.push(Reverse((bu.len + 1, topo.asn(u).0, v, u)));
                }
            }
        };
        while let Some(Reverse((len, _asn, v, u))) = heap.pop() {
            if best[v as usize].is_some() {
                continue;
            }
            best[v as usize] = Some(BestRoute { class: RouteClass::Provider, len, next: u });
            offer_down(&mut heap, topo, &best, v);
        }

        // Convert to the stamped representation the queries read.
        let slots: Vec<super::Slot> = best
            .iter()
            .map(|b| super::Slot { stamp: u32::from(b.is_some()), ..super::SLOT_EMPTY })
            .collect();
        let best: Vec<BestRoute> = best.into_iter().map(|b| b.unwrap_or(UNROUTED)).collect();
        RoutingState { topo, dest, best, slots, gen: 1, round: 0, banned }
    }
}

/// Extract every AS's selected path toward every destination in `dests`,
/// as (source-first, destination-last) full paths *including* the source.
/// This is the "BGP table dump" used to feed the inference pipeline.
pub fn as_paths_to(topo: &Topology, dests: &[NodeId]) -> Vec<Vec<miro_topology::AsId>> {
    let mut out = Vec::new();
    let mut scratch = SolveScratch::new();
    for &d in dests {
        let st = RoutingState::solve_into(topo, d, &mut scratch);
        for x in topo.nodes() {
            if x == d {
                continue;
            }
            if let Some(p) = st.path(x) {
                let mut full = Vec::with_capacity(p.len() + 1);
                full.push(topo.asn(x));
                full.extend(p.iter().map(|&n| topo.asn(n)));
                out.push(full);
            }
        }
        st.recycle(&mut scratch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use miro_topology::gen::figure_1_1;
    use miro_topology::{AsId, GenParams, TopologyBuilder};

    #[test]
    fn figure_2_1_default_routes() {
        // The walk-through of Figure 2.1: F originates; C and E pick direct
        // customer routes; B picks BEF or BCF; A routes via B or D.
        let (t, [a, b, c, d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        assert_eq!(st.path(f), Some(vec![]));
        assert_eq!(st.path(c), Some(vec![f]));
        assert_eq!(st.path(e), Some(vec![f]));
        // B: customer route? F is not B's customer. B's candidates: via C
        // (peer, path CF) and via E (customer, path EF). E is B's customer,
        // so BEF is a customer route and wins — matching the paper's story
        // that B selects BEF.
        assert_eq!(st.path(b), Some(vec![e, f]));
        // D likewise selects DEF.
        assert_eq!(st.path(d), Some(vec![e, f]));
        // A is a customer of both B and D; both export; tie on class and
        // length; tie-break by lower AS number (B=AS2 < D=AS4).
        assert_eq!(st.path(a), Some(vec![b, e, f]));
        assert_eq!(st.reachable_count(), 6);
    }

    #[test]
    fn table_row_extraction_matches_best() {
        let t = GenParams::tiny(23).generate();
        let n = t.num_nodes();
        let d = t.nodes().nth(5).unwrap();
        // A masked solve so at least some ASes can be unrouted.
        let victim = t.nodes().find(|&v| v != d).unwrap();
        let hop = RoutingState::solve(&t, d).best(victim).unwrap().next;
        let st = RoutingState::solve_without_link(&t, d, victim, hop);
        let (mut next, mut hops, mut class) = (vec![0u32; n], vec![0u16; n], vec![0u8; n]);
        st.write_table_row(&mut next, &mut hops, &mut class);
        for x in t.nodes() {
            match st.best(x) {
                Some(b) => {
                    assert_eq!(next[x as usize], b.next);
                    assert_eq!(hops[x as usize], b.len);
                    assert_eq!(class[x as usize], route_class_code(b.class));
                }
                None => {
                    assert_eq!(next[x as usize], UNROUTED_NEXT);
                    assert_eq!(hops[x as usize], UNROUTED_HOPS);
                    assert_eq!(class[x as usize], UNROUTED_CLASS);
                }
            }
        }
        assert_eq!(next[d as usize], d, "destination points at itself");
        assert_eq!(hops[d as usize], 0);
    }

    #[test]
    fn figure_2_1_candidate_sets() {
        let (t, [a, b, c, d, e, f]) = figure_1_1();
        let st = RoutingState::solve(&t, f);
        // A learns candidates from both providers B and D.
        let cands = st.candidates(a);
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().any(|r| r.path == vec![b, e, f]));
        assert!(cands.iter().any(|r| r.path == vec![d, e, f]));
        // B learned BCF from its peer C (C's best is a customer route),
        // even though B selected BEF — the "hidden" alternate of Figure 1.1.
        let bc = st.candidates(b);
        assert!(bc.iter().any(|r| r.path == vec![c, f]));
        assert!(bc.iter().any(|r| r.path == vec![e, f]));
        let _ = d;
    }

    #[test]
    fn export_rules_suppress_peer_routes_to_peers() {
        // A - B peer, B - C peer, C originates. B's route to C is a
        // customer route? No: C is B's peer, so B's route has Peer class
        // and must not be exported to peer A.
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3] {
            bld.add_as(AsId(n));
        }
        bld.peering(AsId(1), AsId(2));
        bld.peering(AsId(2), AsId(3));
        let t = bld.build().unwrap();
        let (a, b, c) = (
            t.node(AsId(1)).unwrap(),
            t.node(AsId(2)).unwrap(),
            t.node(AsId(3)).unwrap(),
        );
        let st = RoutingState::solve(&t, c);
        assert_eq!(st.path(b), Some(vec![c]));
        assert_eq!(st.path(a), None, "peer route must not be re-exported to a peer");
        assert_eq!(st.learned_from(a, b), None);
    }

    #[test]
    fn provider_routes_propagate_down() {
        // 9 - 1 peer; 9 originates; 1 gets peer route; 2 and 3 get provider
        // routes (everything is exportable to customers).
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3, 9] {
            bld.add_as(AsId(n));
        }
        bld.peering(AsId(9), AsId(1));
        bld.provider_customer(AsId(1), AsId(2));
        bld.provider_customer(AsId(2), AsId(3));
        let t = bld.build().unwrap();
        let (n1, n2, n3, n9) = (
            t.node(AsId(1)).unwrap(),
            t.node(AsId(2)).unwrap(),
            t.node(AsId(3)).unwrap(),
            t.node(AsId(9)).unwrap(),
        );
        let st = RoutingState::solve(&t, n9);
        assert_eq!(st.best(n1).unwrap().class, RouteClass::Peer);
        assert_eq!(st.best(n2).unwrap().class, RouteClass::Provider);
        assert_eq!(st.best(n3).unwrap().class, RouteClass::Provider);
        assert_eq!(st.path(n3), Some(vec![n2, n1, n9]));
    }

    #[test]
    fn customer_route_preferred_over_shorter_peer_route() {
        // x has: customer route of length 3, peer route of length 1.
        // Guideline A: the customer route wins despite being longer.
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3, 4, 5] {
            bld.add_as(AsId(n));
        }
        // d=1. Chain: 2 provider-of 1, 3 provider-of 2, 4 provider-of 3.
        bld.provider_customer(AsId(2), AsId(1));
        bld.provider_customer(AsId(3), AsId(2));
        bld.provider_customer(AsId(4), AsId(3));
        // 5 also provides 1; 5 peers with 4.
        bld.provider_customer(AsId(5), AsId(1));
        bld.peering(AsId(4), AsId(5));
        let t = bld.build().unwrap();
        let d = t.node(AsId(1)).unwrap();
        let x = t.node(AsId(4)).unwrap();
        let st = RoutingState::solve(&t, d);
        let bx = st.best(x).unwrap();
        assert_eq!(bx.class, RouteClass::Customer);
        assert_eq!(bx.len, 3);
        // The shorter peer path is still in the candidate set.
        let cands = st.candidates(x);
        assert!(cands.iter().any(|r| r.class == RouteClass::Peer && r.len() == 2));
    }

    #[test]
    fn sibling_links_are_transparent_transit() {
        // d=1; 2 is 1's provider; 3 sibling of 2; 4 customer of 3.
        // 3 gets a customer-class route through its sibling; 4 gets a
        // provider route 3 hops long.
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3, 4] {
            bld.add_as(AsId(n));
        }
        bld.provider_customer(AsId(2), AsId(1));
        bld.sibling(AsId(2), AsId(3));
        bld.provider_customer(AsId(3), AsId(4));
        let t = bld.build().unwrap();
        let d = t.node(AsId(1)).unwrap();
        let s = t.node(AsId(3)).unwrap();
        let c = t.node(AsId(4)).unwrap();
        let st = RoutingState::solve(&t, d);
        assert_eq!(st.best(s).unwrap().class, RouteClass::Customer);
        assert_eq!(st.best(c).unwrap().class, RouteClass::Provider);
        assert_eq!(st.path(c).unwrap().len(), 3);
    }

    #[test]
    fn peer_routes_cross_one_sibling_chain() {
        // d=1; 2 holds customer route (provides 1); 3 peers with 2;
        // 4 sibling of 3: 4's route class stays Peer through the sibling.
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3, 4] {
            bld.add_as(AsId(n));
        }
        bld.provider_customer(AsId(2), AsId(1));
        bld.peering(AsId(2), AsId(3));
        bld.sibling(AsId(3), AsId(4));
        let t = bld.build().unwrap();
        let d = t.node(AsId(1)).unwrap();
        let n4 = t.node(AsId(4)).unwrap();
        let st = RoutingState::solve(&t, d);
        assert_eq!(st.best(n4).unwrap().class, RouteClass::Peer);
        assert_eq!(st.path(n4).unwrap().len(), 3);
    }

    #[test]
    fn unreachable_when_policy_blocks() {
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3] {
            bld.add_as(AsId(n));
        }
        bld.peering(AsId(1), AsId(2));
        let t = bld.build().unwrap();
        let d = t.node(AsId(1)).unwrap();
        let iso = t.node(AsId(3)).unwrap();
        let st = RoutingState::solve(&t, d);
        assert_eq!(st.path(iso), None);
        assert_eq!(st.best(iso), None);
        assert!(!st.path_traverses(iso, d));
    }

    #[test]
    fn all_selected_paths_are_valley_free() {
        let t = GenParams::tiny(21).generate();
        for d in t.nodes().step_by(7) {
            let st = RoutingState::solve(&t, d);
            for x in t.nodes() {
                if let Some(p) = st.path(x) {
                    let mut full = vec![x];
                    full.extend(&p);
                    assert!(
                        miro_topology::is_valley_free(&t, &full),
                        "selected path must be valley-free: {full:?} to {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_candidates_are_valley_free_and_loop_free() {
        let t = GenParams::tiny(22).generate();
        for d in t.nodes().step_by(11) {
            let st = RoutingState::solve(&t, d);
            for x in t.nodes() {
                for r in st.candidates(x) {
                    assert!(!r.traverses(x), "candidate must not loop through holder");
                    let mut full = vec![x];
                    full.extend(&r.path);
                    assert!(miro_topology::is_valley_free(&t, &full));
                    assert_eq!(*r.path.last().unwrap(), d);
                }
            }
        }
    }

    #[test]
    fn candidates_sorted_best_first() {
        let t = GenParams::tiny(23).generate();
        let d = t.nodes().next().unwrap();
        let st = RoutingState::solve(&t, d);
        for x in t.nodes() {
            let c = st.candidates(x);
            for w in c.windows(2) {
                assert_ne!(
                    crate::route::prefer(&t, &w[0], &w[1]),
                    std::cmp::Ordering::Greater
                );
            }
            // The selected route equals the top candidate (when any).
            if let (Some(top), Some(b)) = (c.first(), st.best(x)) {
                if x != d {
                    assert_eq!(top.class, b.class);
                    assert_eq!(top.len() as u16, b.len);
                }
            }
        }
    }

    #[test]
    fn connected_hierarchical_graph_is_fully_reachable() {
        let t = GenParams::tiny(24).generate();
        assert!(t.is_connected());
        for d in t.nodes().step_by(13) {
            let st = RoutingState::solve(&t, d);
            assert_eq!(
                st.reachable_count(),
                t.num_nodes(),
                "Gao-Rexford policies keep a connected hierarchy reachable"
            );
        }
    }

    #[test]
    fn as_path_extraction_includes_source() {
        let (t, [a, _b, _c, _d, _e, f]) = figure_1_1();
        let paths = as_paths_to(&t, &[f]);
        assert_eq!(paths.len(), 5);
        assert!(paths.iter().all(|p| *p.last().unwrap() == t.asn(f)));
        assert!(paths.iter().any(|p| p[0] == t.asn(a) && p.len() == 4));
    }

    #[test]
    fn bucket_engine_matches_reference_on_generated_topologies() {
        // Exhaustive sweep on deterministic generated graphs, with one
        // scratch shared across every destination (exercises generation
        // stamping and arena reuse).
        for seed in [31, 32, 33] {
            let t = GenParams::tiny(seed).generate();
            let mut scratch = SolveScratch::new();
            for d in t.nodes() {
                let fast = RoutingState::solve_into(&t, d, &mut scratch);
                let slow = reference::solve(&t, d);
                for x in t.nodes() {
                    assert_eq!(fast.best(x), slow.best(x), "seed {seed} dest {d} node {x}");
                }
                fast.recycle(&mut scratch);
            }
        }
    }

    #[test]
    fn delta_reroutes_figure_2_1_after_tree_link_failure() {
        // Figure 2.1: A routes to F via B,E, so (B,E) is on the routing
        // tree. Failing it invalidates the subtree under B (B and A); E
        // keeps its direct customer route.
        let (t, [a, b, _c, d, e, f]) = figure_1_1();
        let mut delta = DeltaScratch::new();
        let mut base = RoutingState::solve(&t, f);
        {
            let failed = base.with_failed_link(b, e, &mut delta);
            let full = RoutingState::solve_without_link(&t, f, b, e);
            assert!(!failed.is_noop());
            assert!(failed.recomputed() >= 1);
            assert_eq!(failed.disconnected(), 0);
            for x in t.nodes() {
                assert_eq!(failed.best(x), full.best(x), "node {x}");
            }
            // A now reaches F through D (B's path got longer, D wins ties
            // or B re-routes via its peer — either way paths agree).
            assert_eq!(failed.path(a), full.path(a));
            assert_eq!(failed.path(e), Some(vec![f]));
            let _ = d;
        }
        // The guard restored the base solve bit-for-bit.
        let fresh = RoutingState::solve(&t, f);
        for x in t.nodes() {
            assert_eq!(base.best(x), fresh.best(x));
        }
        assert_eq!(base.path(a), Some(vec![b, e, f]));
    }

    #[test]
    fn delta_is_noop_for_links_off_the_routing_tree() {
        // (B,C) is a peering the base tree to F never uses: the delta must
        // recompute nothing, yet still suppress candidates over the dead
        // session exactly like the full masked solve.
        let (t, [_a, b, c, _d, _e, f]) = figure_1_1();
        let mut delta = DeltaScratch::new();
        let mut base = RoutingState::solve(&t, f);
        let failed = base.with_failed_link(b, c, &mut delta);
        assert!(failed.is_noop());
        assert_eq!(failed.recomputed(), 0);
        let full = RoutingState::solve_without_link(&t, f, b, c);
        for x in t.nodes() {
            assert_eq!(failed.best(x), full.best(x));
            assert_eq!(failed.candidates(x), full.candidates(x));
        }
    }

    #[test]
    fn delta_cut_link_disconnects_the_subtree() {
        // Chain 3 -> 2 -> 1 (each provides the next): failing (1,2) cuts
        // both 2 and 3 off from destination 1.
        let mut bld = TopologyBuilder::new();
        for n in [1, 2, 3] {
            bld.add_as(AsId(n));
        }
        bld.provider_customer(AsId(2), AsId(1));
        bld.provider_customer(AsId(3), AsId(2));
        let t = bld.build().unwrap();
        let (n1, n2, n3) = (
            t.node(AsId(1)).unwrap(),
            t.node(AsId(2)).unwrap(),
            t.node(AsId(3)).unwrap(),
        );
        let mut delta = DeltaScratch::new();
        let mut base = RoutingState::solve(&t, n1);
        assert_eq!(base.reachable_count(), 3);
        {
            let failed = base.with_failed_link(n1, n2, &mut delta);
            assert_eq!(failed.recomputed(), 2);
            assert_eq!(failed.disconnected(), 2);
            assert_eq!(failed.best(n2), None);
            assert_eq!(failed.best(n3), None);
            assert_eq!(failed.reachable_count(), 1);
        }
        assert_eq!(base.reachable_count(), 3);
        assert_eq!(base.path(n3), Some(vec![n2, n1]));
    }

    #[test]
    fn delta_matches_full_masked_solve_on_every_edge() {
        // Exhaustive deterministic sweep: every edge of a generated graph,
        // several destinations, one DeltaScratch shared throughout
        // (exercises allocation-free consecutive deltas against one base).
        let t = GenParams::tiny(31).generate();
        let mut scratch = SolveScratch::new();
        let mut full_scratch = SolveScratch::new();
        let mut delta = DeltaScratch::new();
        for d in t.nodes().step_by(9) {
            let mut base = RoutingState::solve_into(&t, d, &mut scratch);
            for x in t.nodes() {
                for &(y, _) in t.neighbors(x) {
                    if x >= y {
                        continue; // each undirected edge once
                    }
                    let failed = base.with_failed_link(x, y, &mut delta);
                    let full =
                        RoutingState::solve_without_link_into(&t, d, x, y, &mut full_scratch);
                    for v in t.nodes() {
                        assert_eq!(
                            failed.best(v),
                            full.best(v),
                            "dest {d} edge ({x},{y}) node {v}"
                        );
                    }
                    drop(failed);
                    full.recycle(&mut full_scratch);
                }
            }
            base.recycle(&mut scratch);
        }
    }

    #[test]
    #[should_panic(expected = "unmasked base")]
    fn delta_rejects_masked_base() {
        let (t, [_a, b, _c, _d, e, f]) = figure_1_1();
        let mut delta = DeltaScratch::new();
        let mut masked = RoutingState::solve_without_link(&t, f, b, e);
        let _ = masked.with_failed_link(b, e, &mut delta);
    }

    #[test]
    fn scratch_survives_topology_size_change() {
        let small = GenParams::tiny(41).generate();
        let big = GenParams::tiny(42).generate();
        let mut scratch = SolveScratch::new();
        for t in [&small, &big, &small] {
            let d = t.nodes().next().unwrap();
            let fast = RoutingState::solve_into(t, d, &mut scratch);
            let slow = reference::solve(t, d);
            for x in t.nodes() {
                assert_eq!(fast.best(x), slow.best(x));
            }
            fast.recycle(&mut scratch);
        }
    }
}

/// Property-based equivalence: the bucket-queue engine must be
/// bit-for-bit identical to the retained heap reference on arbitrary
/// relationship-annotated graphs, including masked (failed-link) solves
/// and the full learned-candidates surface.
#[cfg(test)]
mod equivalence {
    use super::*;
    use miro_topology::{AsId, Rel, TopologyBuilder};
    use proptest::prelude::*;

    const N: u32 = 24;

    fn build(edges: Vec<(u32, u32, u8)>) -> Topology {
        let mut b = TopologyBuilder::new();
        for n in 0..N {
            b.intern_as(AsId(100 + n));
        }
        let mut seen = std::collections::HashSet::new();
        for (x, y, r) in edges {
            if x == y || !seen.insert((x.min(y), x.max(y))) {
                continue;
            }
            let rel = match r {
                0 => Rel::Customer,
                1 => Rel::Provider,
                2 => Rel::Peer,
                _ => Rel::Sibling,
            };
            b.link(AsId(100 + x), AsId(100 + y), rel);
        }
        b.build().expect("constructed edges are consistent")
    }

    fn assert_identical(fast: &RoutingState<'_>, slow: &RoutingState<'_>) {
        for x in fast.topology().nodes() {
            assert_eq!(fast.best(x), slow.best(x), "best diverged at node {x}");
            assert_eq!(
                fast.candidates(x),
                slow.candidates(x),
                "candidates diverged at node {x}"
            );
        }
    }

    proptest! {
        // 128 full-table cases + the masked sub-case comfortably clears
        // the "≥100 random topologies" equivalence bar.
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Identical best tables and candidate sets on arbitrary graphs.
        #[test]
        fn bucket_matches_heap(
            edges in proptest::collection::vec((0u32..N, 0u32..N, 0u8..4), 0..90),
            dest_raw in 0u32..N,
            mask in (0u32..N, 0u32..N),
        ) {
            let t = build(edges);
            let dest = dest_raw % t.num_nodes() as u32;
            let fast = RoutingState::solve(&t, dest);
            let slow = reference::solve(&t, dest);
            assert_identical(&fast, &slow);

            // Masked solves (failed link) must agree too — the mask may or
            // may not name a real edge; both engines treat it uniformly.
            let (a, b) = mask;
            if a != b {
                let fast = RoutingState::solve_without_link(&t, dest, a, b);
                let slow = reference::solve_without_link(&t, dest, a, b);
                assert_identical(&fast, &slow);
            }
        }

        /// The incremental delta re-solve is bit-for-bit identical to the
        /// heap oracle *and* to the full masked bucket solve, on arbitrary
        /// graphs and arbitrary failed links — including cut links that
        /// disconnect the destination and links absent from the base
        /// routing tree (which must be recompute-free no-ops). Consecutive
        /// deltas share one base and one scratch; every drop must restore
        /// the base solve exactly.
        #[test]
        fn delta_matches_oracle_and_full_masked_solve(
            edges in proptest::collection::vec((0u32..N, 0u32..N, 0u8..4), 0..90),
            dest_raw in 0u32..N,
            links in proptest::collection::vec((0u32..N, 0u32..N), 1..6),
        ) {
            let t = build(edges);
            let dest = dest_raw % t.num_nodes() as u32;
            let mut scratch = SolveScratch::new();
            let mut delta = DeltaScratch::new();
            let mut base = RoutingState::solve_into(&t, dest, &mut scratch);
            for (a, b) in links {
                if a == b {
                    continue;
                }
                let on_tree = base.best(a).is_some_and(|r| r.next == b)
                    || base.best(b).is_some_and(|r| r.next == a);
                {
                    let failed = base.with_failed_link(a, b, &mut delta);
                    let full = RoutingState::solve_without_link(&t, dest, a, b);
                    let slow = reference::solve_without_link(&t, dest, a, b);
                    assert_identical(&failed, &full);
                    assert_identical(&failed, &slow);
                    prop_assert_eq!(failed.is_noop(), !on_tree);
                }
                // Dropping the guard restored the base bit-for-bit.
                let fresh = RoutingState::solve(&t, dest);
                assert_identical(&base, &fresh);
            }
        }

        /// Reusing one scratch across consecutive solves never leaks state
        /// between destinations.
        #[test]
        fn scratch_reuse_is_stateless(
            edges in proptest::collection::vec((0u32..N, 0u32..N, 0u8..4), 0..90),
            dests in proptest::collection::vec(0u32..N, 1..6),
        ) {
            let t = build(edges);
            let mut scratch = SolveScratch::new();
            for d_raw in dests {
                let d = d_raw % t.num_nodes() as u32;
                let reused = RoutingState::solve_into(&t, d, &mut scratch);
                let fresh = RoutingState::solve(&t, d);
                assert_identical(&reused, &fresh);
                reused.recycle(&mut scratch);
            }
        }
    }
}
