//! Property-based tests for the BGP substrate: the decision process is a
//! total preorder, and the solver's stable states satisfy the protocol
//! invariants on arbitrary generated topologies.

use miro_bgp::decision::{compare, select_best, Origin, RouteAttrs};
use miro_bgp::solver::RoutingState;
use miro_topology::{is_valley_free, GenParams, RouteClass};
use proptest::prelude::*;

fn arb_attrs() -> impl Strategy<Value = RouteAttrs> {
    (
        0u32..500,
        1u32..8,
        0u8..3,
        0u32..100,
        0u32..4,
        any::<bool>(),
        0u32..50,
        0u32..10,
        0u32..10,
    )
        .prop_map(
            |(lp, len, origin, med, nas, ebgp, igp, rid, addr)| RouteAttrs {
                local_pref: lp,
                as_path_len: len,
                origin: match origin {
                    0 => Origin::Igp,
                    1 => Origin::Egp,
                    _ => Origin::Incomplete,
                },
                med,
                neighbor_as: nas,
                ebgp,
                igp_dist: igp,
                router_id: rid,
                peer_addr: addr,
            },
        )
}

proptest! {
    /// Antisymmetry: compare(a, b) is the inverse of compare(b, a).
    #[test]
    fn decision_is_antisymmetric(a in arb_attrs(), b in arb_attrs()) {
        let (ab, _) = compare(&a, &b);
        let (ba, _) = compare(&b, &a);
        prop_assert_eq!(ab, ba.reverse());
    }

    /// Reflexivity: every route ties with itself, decided by `Tie`.
    #[test]
    fn decision_is_reflexive(a in arb_attrs()) {
        let (ord, by) = compare(&a, &a);
        prop_assert_eq!(ord, std::cmp::Ordering::Equal);
        prop_assert_eq!(by, miro_bgp::decision::DecidedBy::Tie);
    }

    /// The MED step makes the relation non-transitive in full generality
    /// (a known BGP wart), but within a single neighbor AS the comparison
    /// IS transitive. Check transitivity on same-neighbor triples.
    #[test]
    fn decision_transitive_within_neighbor(
        mut a in arb_attrs(), mut b in arb_attrs(), mut c in arb_attrs()
    ) {
        a.neighbor_as = 1; b.neighbor_as = 1; c.neighbor_as = 1;
        use std::cmp::Ordering::Less;
        if compare(&a, &b).0 == Less && compare(&b, &c).0 == Less {
            prop_assert_eq!(compare(&a, &c).0, Less);
        }
    }

    /// `select_best` returns a route no other route strictly beats
    /// (restricted to same-neighbor sets where the order is total).
    #[test]
    fn select_best_is_undominated(mut routes in proptest::collection::vec(arb_attrs(), 1..12)) {
        for r in &mut routes {
            r.neighbor_as = 7;
        }
        let best = select_best(&routes).expect("non-empty");
        for r in &routes {
            prop_assert_ne!(
                compare(r, &routes[best]).0,
                std::cmp::Ordering::Less,
                "a route strictly beats the selected best"
            );
        }
    }

    /// Solver invariants on arbitrary generated topologies and
    /// destinations: every selected path is valley-free, loop-free, ends
    /// at the destination, and is at least as preferred as every
    /// candidate (class first, then length among same class via the
    /// chosen candidate ordering).
    #[test]
    fn solver_stable_state_invariants(seed in 0u64..300, dsel in 0usize..120) {
        let t = GenParams::tiny(seed).generate();
        let nodes: Vec<_> = t.nodes().collect();
        let d = nodes[dsel % nodes.len()];
        let st = RoutingState::solve(&t, d);
        for x in t.nodes() {
            let Some(best) = st.best(x) else { continue };
            let path = st.path(x).expect("routed");
            if x != d {
                prop_assert_eq!(*path.last().expect("non-empty"), d);
                let mut full = vec![x];
                full.extend(&path);
                prop_assert!(is_valley_free(&t, &full), "path {:?}", full);
            }
            // Candidate consistency: the best route's (class, len) is
            // minimal over the candidate set.
            for c in st.candidates(x) {
                prop_assert!(
                    (best.class, best.len as usize) <= (c.class, c.len()),
                    "candidate beats best at {}: {:?} vs {:?}",
                    x, (best.class, best.len), (c.class, c.len())
                );
            }
        }
    }

    /// Export-rule soundness: whenever the solver says `x` learned a
    /// route from `n`, that export was legal — peer/provider links only
    /// ever carry customer-class routes of the sender.
    #[test]
    fn candidates_respect_export_rules(seed in 0u64..200) {
        let t = GenParams::tiny(seed).generate();
        let d = t.nodes().next().expect("non-empty");
        let st = RoutingState::solve(&t, d);
        for x in t.nodes() {
            for &(n, _) in t.neighbors(x) {
                if let Some(c) = st.learned_from(x, n) {
                    let sender = st.best(n).expect("sender routed");
                    let rel_of_x_to_n = t.rel(n, x).expect("adjacent");
                    if matches!(rel_of_x_to_n, miro_topology::Rel::Peer | miro_topology::Rel::Provider) {
                        prop_assert_eq!(sender.class, RouteClass::Customer);
                    }
                    prop_assert!(!c.traverses(x), "loop in learned route");
                }
            }
        }
    }

    /// Parallel whole-table determinism: the merged table is
    /// byte-identical whatever the thread count and whatever the claim
    /// schedule (natural vs degree-descending, pooled or not). This is
    /// the guardrail behind running the bench parallel-by-default.
    #[test]
    fn parallel_schedule_is_invisible_in_the_table(seed in 0u64..60, ndests in 1usize..24) {
        use miro_bgp::engine::{
            par_over_dests_scheduled, DestOrder, ScratchPool,
        };
        let t = GenParams::tiny(seed).generate();
        let dests: Vec<_> = t.nodes().take(ndests).collect();
        let tables = |threads: usize, order: DestOrder, pool: Option<&ScratchPool>| {
            par_over_dests_scheduled(&t, &dests, threads, order, pool, |_, wi| {
                t.nodes().map(|x| wi.base().best(x)).collect::<Vec<_>>()
            })
        };
        let base = tables(1, DestOrder::Natural, None);
        let pool = ScratchPool::for_nodes(t.num_nodes());
        for threads in [1usize, 2, 8] {
            for order in [DestOrder::Natural, DestOrder::DegreeDescending] {
                prop_assert_eq!(
                    &tables(threads, order, None), &base,
                    "{} threads / {:?} diverged", threads, order
                );
                prop_assert_eq!(
                    &tables(threads, order, Some(&pool)), &base,
                    "{} threads / {:?} pooled diverged", threads, order
                );
            }
        }
    }
}
