//! `miro serve` — the route-query daemon over a solved table.
//!
//! ```text
//! miro serve table.mirt --preset gao2005 --factor 0.05 --seed 42 \
//!     --addr 127.0.0.1:0 --port-file serve.port
//! ```
//!
//! The table is memory-mapped ([`miro_serve::mmap::MappedTable`]) and
//! must have been solved over exactly the topology given by
//! `--preset/--factor/--seed` (or `--cache`) — the same flags
//! `shard-solve` took, because the daemon needs the adjacency and
//! business relationships to answer alternate-path queries, and the
//! table file stores only routes. `--port-file` publishes the bound
//! address (useful with port 0) so scripts don't have to parse logs.

use miro_serve::cache::ShardedCache;
use miro_serve::mmap::MappedTable;
use miro_serve::query::Engine;
use miro_serve::server::Server;
use miro_shard::TopoSpec;
use std::path::PathBuf;

#[derive(Debug)]
struct ServeArgs {
    table: PathBuf,
    spec: TopoSpec,
    addr: String,
    port_file: Option<PathBuf>,
    stripes: usize,
    cache_slots: usize,
    verify_file: bool,
    quiet: bool,
}

fn parse(args: &[String]) -> Result<ServeArgs, String> {
    let mut table = None;
    let (mut preset, mut factor, mut seed, mut cache) = (None, None, None, None);
    let mut addr = "127.0.0.1:4179".to_string(); // 4179: BGP's 179, one plane up
    let mut port_file = None;
    let mut stripes = 16usize;
    let mut cache_slots = 1024usize;
    let mut verify_file = true;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--preset" => preset = Some(val()?),
            "--factor" => factor = Some(num(&val()?, "--factor")?),
            "--seed" => seed = Some(num(&val()?, "--seed")?),
            "--cache" => cache = Some(val()?),
            "--addr" => addr = val()?,
            "--port-file" => port_file = Some(PathBuf::from(val()?)),
            "--stripes" => stripes = num(&val()?, "--stripes")?,
            "--cache-slots" => cache_slots = num(&val()?, "--cache-slots")?,
            "--no-verify-file" => verify_file = false,
            "--quiet" => quiet = true,
            other if !other.starts_with('-') && table.is_none() => {
                table = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let table = table.ok_or("serve needs a table file (from shard-solve)")?;
    let spec = match (cache, preset) {
        (Some(_), Some(_)) => return Err("--cache and --preset are mutually exclusive".into()),
        (Some(path), None) => {
            if factor.is_some() || seed.is_some() {
                return Err("--factor/--seed only apply to --preset topologies".into());
            }
            TopoSpec::Cache { path }
        }
        (None, preset) => TopoSpec::Preset {
            preset: preset.unwrap_or_else(|| "gao2005".into()),
            factor: factor.unwrap_or(1.0),
            seed: seed.unwrap_or(42),
        },
    };
    Ok(ServeArgs { table, spec, addr, port_file, stripes, cache_slots, verify_file, quiet })
}

fn num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse {s:?}"))
}

/// Run the daemon until a wire `Shutdown` arrives. Returns the lifetime
/// report.
pub fn run(args: &[String]) -> Result<String, String> {
    let a = parse(args)?;
    let table = if a.verify_file {
        MappedTable::open(&a.table)?
    } else {
        MappedTable::open_unverified(&a.table)?
    };
    let bytes = table.file_bytes();
    let dests = miro_serve::TableSource::dests(&table).len();
    let topo = a.spec.build()?;
    let engine = Engine::new(table, topo, Some(ShardedCache::new(a.stripes, a.cache_slots)))?;
    let server = Server::bind(a.addr.as_str(), engine)
        .map_err(|e| format!("cannot bind {}: {e}", a.addr))?;
    let addr = server.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
    if let Some(path) = &a.port_file {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| format!("cannot write port file {path:?}: {e}"))?;
    }
    if !a.quiet {
        eprintln!(
            "serve: {} ({bytes} bytes, {dests} dests) on {addr}, cache {}x{} slots",
            a.table.display(),
            a.stripes,
            a.cache_slots
        );
    }
    let report = server.run().map_err(|e| format!("serve loop failed: {e}"))?;
    let lookups = report.cache_hits + report.cache_misses;
    let hit_pct = if lookups == 0 { 0.0 } else { report.cache_hits as f64 * 100.0 / lookups as f64 };
    Ok(format!(
        "serve: done — {} connections, {} queries; cache: {} hits, {} misses, \
         {} evictions ({hit_pct:.1}% hit rate)\n",
        report.connections, report.queries, report.cache_hits, report.cache_misses,
        report.cache_evictions
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn args_parse_and_validate() {
        let a = parse(&s(&[
            "t.mirt", "--preset", "gao2005", "--factor", "0.05", "--addr", "127.0.0.1:0",
            "--port-file", "p.txt", "--stripes", "8", "--cache-slots", "256",
            "--no-verify-file",
        ]))
        .unwrap();
        assert_eq!(a.table, PathBuf::from("t.mirt"));
        assert_eq!(a.addr, "127.0.0.1:0");
        assert_eq!((a.stripes, a.cache_slots), (8, 256));
        assert!(!a.verify_file);
        assert!(matches!(a.spec, TopoSpec::Preset { ref preset, .. } if preset == "gao2005"));

        assert!(parse(&s(&[])).unwrap_err().contains("needs a table"));
        assert!(parse(&s(&["t.mirt", "--cache", "c.json", "--preset", "gao2005"]))
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(parse(&s(&["t.mirt", "--bogus"])).unwrap_err().contains("unknown option"));
    }

    #[test]
    fn missing_table_file_is_a_clean_error() {
        let err = run(&s(&["/nonexistent/t.mirt", "--preset", "gao2005", "--factor", "0.01"]))
            .unwrap_err();
        assert!(err.contains("cannot open table"), "{err}");
    }
}
