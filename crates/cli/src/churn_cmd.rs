//! `miro churn` — generate, inspect, and replay churn traces — and
//! `miro bench-churn`, the batched-vs-serial delta replay benchmark.
//!
//! `miro churn gen` writes an `MCT1` trace over a generated preset (or
//! the Figure 1.1 gadget); `miro churn dump` prints a trace's vital
//! signs without replaying anything; `miro churn replay` pushes it
//! through the solver's delta path (serial or batched) or the
//! message-level simulator.
//!
//! `miro bench-churn` is the CI-gated measurement: the same trace is
//! replayed twice through [`miro_churn::replay::replay_delta`] — once
//! one-event-at-a-time, once with co-temporal batches coalesced — plus
//! once through the simulator for the convergence-lag distribution. The
//! two delta replays must agree on the final table digest (the
//! equivalence contract), their rate ratio is the batching speedup, and
//! `--check-events-rate` turns the batched events/sec into a hard floor.
//! Results land in `BENCH_churn.json`.

use miro_churn::gen::{generate, GenConfig};
use miro_churn::replay::{replay_delta, replay_sim, BatchMode, DeltaReplayReport};
use miro_churn::trace::Trace;
use miro_topology::gen::DatasetPreset;
use std::fmt::Write as _;

/// Generation seed default: fixed so runs are comparable across PRs.
const SEED: u64 = 42;

const CHURN_USAGE: &str = "\
usage: miro churn <gen|dump|replay> ...
  gen <out.mct> [--preset P --factor F | --fig1.1] [--seed N] [--events N]
                [--mean-gap-ms N] [--burst F] [--flappers N] [--flap F] [--origin F]
  dump <file.mct>
  replay <file.mct> [--mode serial|batched|sim] [--dests N] [--seed N] [--step-budget N]";

/// Entry point for `miro churn`.
pub fn run_churn(args: &[String]) -> Result<String, String> {
    match args.split_first() {
        Some((cmd, rest)) if cmd == "gen" => churn_gen(rest),
        Some((cmd, rest)) if cmd == "dump" => churn_dump(rest),
        Some((cmd, rest)) if cmd == "replay" => churn_replay(rest),
        _ => Err(CHURN_USAGE.to_string()),
    }
}

fn parse_preset(name: &str) -> Result<DatasetPreset, String> {
    match name {
        "gao2000" => Ok(DatasetPreset::Gao2000),
        "gao2003" => Ok(DatasetPreset::Gao2003),
        "gao2005" => Ok(DatasetPreset::Gao2005),
        "agarwal2004" => Ok(DatasetPreset::Agarwal2004),
        "internet" => Ok(DatasetPreset::InternetScale),
        other => Err(format!("unknown preset {other:?}")),
    }
}

fn churn_gen(args: &[String]) -> Result<String, String> {
    let mut out_path: Option<String> = None;
    let mut preset = "gao2005".to_string();
    let mut factor = 0.05f64;
    let mut fig = false;
    let mut cfg = GenConfig { seed: SEED, ..GenConfig::default() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |n: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{n} needs a value"))
        };
        match arg.as_str() {
            "--preset" => preset = val("--preset")?,
            "--factor" => {
                factor = val("--factor")?.parse().map_err(|_| "bad --factor".to_string())?
            }
            "--fig1.1" | "--fig1-1" => fig = true,
            "--seed" => cfg.seed = val("--seed")?.parse().map_err(|_| "bad --seed".to_string())?,
            "--events" => {
                cfg.events = val("--events")?.parse().map_err(|_| "bad --events".to_string())?
            }
            "--mean-gap-ms" => {
                cfg.mean_gap_ms =
                    val("--mean-gap-ms")?.parse().map_err(|_| "bad --mean-gap-ms".to_string())?
            }
            "--burst" => {
                cfg.burst_fraction =
                    val("--burst")?.parse().map_err(|_| "bad --burst".to_string())?
            }
            "--flappers" => {
                cfg.flappers =
                    val("--flappers")?.parse().map_err(|_| "bad --flappers".to_string())?
            }
            "--flap" => {
                cfg.flap_fraction = val("--flap")?.parse().map_err(|_| "bad --flap".to_string())?
            }
            "--origin" => {
                cfg.origin_fraction =
                    val("--origin")?.parse().map_err(|_| "bad --origin".to_string())?
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{CHURN_USAGE}"))
            }
            other => {
                if out_path.is_some() {
                    return Err(format!("more than one output file\n{CHURN_USAGE}"));
                }
                out_path = Some(other.to_string());
            }
        }
    }
    let out_path = out_path.ok_or(CHURN_USAGE.to_string())?;

    let topo = if fig {
        miro_topology::gen::figure_1_1().0
    } else {
        parse_preset(&preset)?.params(factor, cfg.seed).generate()
    };
    let trace = generate(&topo, &cfg);
    let bytes = trace.encode().map_err(|e| e.to_string())?;
    std::fs::write(&out_path, &bytes).map_err(|e| format!("cannot write {out_path:?}: {e}"))?;
    let (downs, ups, withdraws, announces) = trace.kind_counts();
    Ok(format!(
        "wrote {out_path}: {} events over {} ASes / {} links ({} bytes)\n  \
         {downs} downs, {ups} ups, {withdraws} withdraws, {announces} announces; \
         {} batches over {} ms\n",
        trace.events.len(),
        topo.num_nodes(),
        topo.num_edges(),
        bytes.len(),
        trace.batches().count(),
        trace.duration_ms(),
    ))
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    Trace::decode(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn churn_dump(args: &[String]) -> Result<String, String> {
    let [path] = args else { return Err(CHURN_USAGE.to_string()) };
    let trace = load_trace(path)?;
    let topo = trace.topology().map_err(|e| e.to_string())?;
    let (downs, ups, withdraws, announces) = trace.kind_counts();
    let batches = trace.batches().count();
    let biggest = trace.batches().map(|b| b.len()).max().unwrap_or(0);
    let mut out = format!(
        "{path}: MCT1, {} events over {} ms\n",
        trace.events.len(),
        trace.duration_ms()
    );
    let _ = writeln!(
        out,
        "  topology: {} ASes, {} links",
        topo.num_nodes(),
        topo.num_edges()
    );
    let _ = writeln!(
        out,
        "  mix: {downs} downs, {ups} ups, {withdraws} withdraws, {announces} announces"
    );
    let _ = writeln!(
        out,
        "  batching: {batches} co-temporal batches (largest {biggest}, mean {:.2} events)",
        trace.events.len() as f64 / batches.max(1) as f64
    );
    Ok(out)
}

fn churn_replay(args: &[String]) -> Result<String, String> {
    let mut path: Option<String> = None;
    let mut mode = "batched".to_string();
    let mut dests = 4usize;
    let mut seed = SEED;
    let mut step_budget = 1_000_000usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |n: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{n} needs a value"))
        };
        match arg.as_str() {
            "--mode" => mode = val("--mode")?,
            "--dests" => dests = val("--dests")?.parse().map_err(|_| "bad --dests".to_string())?,
            "--seed" => seed = val("--seed")?.parse().map_err(|_| "bad --seed".to_string())?,
            "--step-budget" => {
                step_budget =
                    val("--step-budget")?.parse().map_err(|_| "bad --step-budget".to_string())?
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{CHURN_USAGE}"))
            }
            other => {
                if path.is_some() {
                    return Err(format!("more than one input file\n{CHURN_USAGE}"));
                }
                path = Some(other.to_string());
            }
        }
    }
    let path = path.ok_or(CHURN_USAGE.to_string())?;
    let trace = load_trace(&path)?;

    match mode.as_str() {
        "serial" | "batched" => {
            let m = if mode == "serial" { BatchMode::Serial } else { BatchMode::Batched };
            let r = replay_delta(&trace, m, dests).map_err(|e| e.to_string())?;
            Ok(format_delta_report(&r))
        }
        "sim" => {
            let r = replay_sim(&trace, seed, step_budget).map_err(|e| e.to_string())?;
            Ok(format!(
                "sim replay: dest AS{}, {} events ({} applied, {} skipped), {} batches\n  \
                 convergence lag (activations): p50 {} / p95 {} / max {}; \
                 {} diverged\n  {:.0} events/s, {} ASes routed at the end\n",
                r.dest,
                r.events,
                r.applied_events,
                r.skipped_events,
                r.batches,
                r.lag_p50,
                r.lag_p95,
                r.lag_max,
                r.diverged_batches,
                r.events_per_sec,
                r.reachable,
            ))
        }
        other => Err(format!("unknown mode {other:?} (serial|batched|sim)")),
    }
}

fn format_delta_report(r: &DeltaReplayReport) -> String {
    let mut out = format!(
        "{} delta replay: {} events x {} dests, {} batches\n",
        r.mode.name(),
        r.events,
        r.dests.len(),
        r.batches
    );
    let _ = writeln!(
        out,
        "  {:.0} events/s ({:.2} ms total); net {} downs / {} ups, {} cancelled, {} ignored",
        r.events_per_sec,
        r.elapsed_ns as f64 / 1e6,
        r.downs,
        r.ups,
        r.cancelled,
        r.ignored
    );
    let _ = writeln!(
        out,
        "  recomputed {} entries ({} full re-solves); per-batch p50 {} / p95 {} / max {}",
        r.recomputed, r.full_resolves, r.recompute_p50, r.recompute_p95, r.recompute_max
    );
    let _ = writeln!(
        out,
        "  tunnels: {} teardowns, {} re-negotiations; table fnv {:#018x}",
        r.tunnel_teardowns, r.tunnel_renegotiations, r.table_fnv
    );
    out
}

// ---------------------------------------------------------------------
// miro bench-churn
// ---------------------------------------------------------------------

/// Bench scales: preset factor plus trace size. The bench's generator
/// settings are burst-heavy (RouteViews updates cluster inside MRAI
/// windows), which is exactly the workload batching exists for.
struct Scale {
    name: &'static str,
    factor: f64,
    events: usize,
}

const SCALES: &[Scale] = &[
    Scale { name: "tiny", factor: 0.01, events: 4_000 },
    Scale { name: "small", factor: 0.05, events: 20_000 },
    Scale { name: "medium", factor: 0.5, events: 60_000 },
];

const BENCH_USAGE: &str = "\
usage: miro bench-churn [--scale tiny|small|medium] [--events N] [--dests N]
  [--seed N] [--burst F] [--out BENCH_churn.json] [--check-events-rate F]
  [--check-speedup F] [--list]";

/// Entry point for `miro bench-churn`.
pub fn run_bench(args: &[String]) -> Result<String, String> {
    let mut scale = "small".to_string();
    let mut events: Option<usize> = None;
    let mut dests = 4usize;
    let mut seed = SEED;
    let mut burst = 0.7f64;
    let mut out_path = "BENCH_churn.json".to_string();
    let mut check_rate: Option<f64> = None;
    let mut check_speedup: Option<f64> = None;
    let mut list = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |n: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{n} needs a value"))
        };
        match arg.as_str() {
            "--list" => list = true,
            "--scale" => scale = val("--scale")?,
            "--events" => {
                events = Some(val("--events")?.parse().map_err(|_| "bad --events".to_string())?)
            }
            "--dests" => dests = val("--dests")?.parse().map_err(|_| "bad --dests".to_string())?,
            "--seed" => seed = val("--seed")?.parse().map_err(|_| "bad --seed".to_string())?,
            "--burst" => {
                burst = val("--burst")?.parse().map_err(|_| "bad --burst".to_string())?
            }
            "--out" => out_path = val("--out")?,
            "--check-events-rate" => {
                check_rate = Some(
                    val("--check-events-rate")?
                        .parse()
                        .map_err(|_| "--check-events-rate needs a number".to_string())?,
                )
            }
            "--check-speedup" => {
                check_speedup = Some(
                    val("--check-speedup")?
                        .parse()
                        .map_err(|_| "--check-speedup needs a number".to_string())?,
                )
            }
            other => return Err(format!("unknown option {other:?}\n{BENCH_USAGE}")),
        }
    }

    if list {
        let mut out = String::from("bench-churn scales:\n");
        for sc in SCALES {
            let _ = writeln!(
                out,
                "  {:<8} gao2005 factor={} events={}",
                sc.name, sc.factor, sc.events
            );
        }
        out.push_str("row schemas:\n");
        out.push_str(
            "  rows[] = {mode, events_per_sec, elapsed_ms, downs, ups, cancelled, \
             recomputed, full_resolves, table_fnv}\n",
        );
        out.push_str(
            "  sim    = {lag_p50, lag_p95, lag_max, converged_batches, diverged_batches, \
             events_per_sec}\n",
        );
        out.push_str("  tunnels = {teardowns, renegotiations}\n");
        return Ok(out);
    }

    let sc = SCALES
        .iter()
        .find(|s| s.name == scale)
        .ok_or(format!("unknown scale {scale:?} (try --list)"))?;
    if dests == 0 {
        return Err("--dests must be at least 1".to_string());
    }

    // ---- Workload ------------------------------------------------------
    let topo = DatasetPreset::Gao2005.params(sc.factor, seed).generate();
    let cfg = GenConfig {
        seed,
        events: events.unwrap_or(sc.events),
        burst_fraction: burst,
        flap_fraction: 0.7,
        ..GenConfig::default()
    };
    let trace = generate(&topo, &cfg);
    let mut report = format!(
        "bench-churn: {} nodes, {} links, {} events in {} batches, {} dests\n",
        topo.num_nodes(),
        topo.num_edges(),
        trace.events.len(),
        trace.batches().count(),
        dests
    );

    // ---- Serial vs batched delta replay -------------------------------
    let serial = replay_delta(&trace, BatchMode::Serial, dests).map_err(|e| e.to_string())?;
    let batched = replay_delta(&trace, BatchMode::Batched, dests).map_err(|e| e.to_string())?;
    if serial.table_fnv != batched.table_fnv {
        return Err(format!(
            "equivalence contract broken: serial table {:#018x} != batched {:#018x}",
            serial.table_fnv, batched.table_fnv
        ));
    }
    let speedup = batched.events_per_sec / serial.events_per_sec.max(1e-9);
    for r in [&serial, &batched] {
        let _ = writeln!(
            report,
            "  {:<8} {:>10.0} events/s | {:>8.2} ms | {:>8} recomputed | {:>4} full re-solves",
            r.mode.name(),
            r.events_per_sec,
            r.elapsed_ns as f64 / 1e6,
            r.recomputed,
            r.full_resolves
        );
    }
    let _ = writeln!(
        report,
        "  batched/serial speedup {speedup:.2}x; tables agree ({:#018x})",
        batched.table_fnv
    );
    let _ = writeln!(
        report,
        "  tunnels: {} teardowns, {} re-negotiations",
        batched.tunnel_teardowns, batched.tunnel_renegotiations
    );

    // ---- Simulator convergence lag ------------------------------------
    let sim = replay_sim(&trace, seed, 2_000_000).map_err(|e| e.to_string())?;
    let _ = writeln!(
        report,
        "  sim lag (activations): p50 {} / p95 {} / max {}; {} of {} batches diverged",
        sim.lag_p50, sim.lag_p95, sim.lag_max, sim.diverged_batches, sim.batches
    );

    // ---- JSON + gates --------------------------------------------------
    let json = to_json(sc, seed, &topo, &trace, dests, &serial, &batched, speedup, &sim);
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path:?}: {e}"))?;
    let _ = writeln!(report, "wrote {out_path}");

    if let Some(floor) = check_rate {
        if batched.events_per_sec < floor {
            return Err(format!(
                "churn rate regression: batched {:.0} events/s < required {floor}",
                batched.events_per_sec
            ));
        }
    }
    if let Some(floor) = check_speedup {
        if speedup < floor {
            return Err(format!(
                "batching regression: {speedup:.2}x < required {floor}x"
            ));
        }
    }
    Ok(report)
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    sc: &Scale,
    seed: u64,
    topo: &miro_topology::Topology,
    trace: &Trace,
    dests: usize,
    serial: &DeltaReplayReport,
    batched: &DeltaReplayReport,
    speedup: f64,
    sim: &miro_churn::replay::SimReplayReport,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"churn-replay\",");
    let _ = writeln!(out, "  \"engine\": \"batched-cone-delta\",");
    let _ = writeln!(out, "  \"baseline\": \"serial-one-event-apply\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(
        out,
        "  \"scale\": \"{}\", \"nodes\": {}, \"links\": {}, \"events\": {}, \
         \"batches\": {}, \"dests\": {},",
        sc.name,
        topo.num_nodes(),
        topo.num_edges(),
        trace.events.len(),
        trace.batches().count(),
        dests
    );
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in [serial, batched].into_iter().enumerate() {
        let comma = if i == 0 { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"events_per_sec\": {:.1}, \"elapsed_ms\": {:.3}, \
             \"downs\": {}, \"ups\": {}, \"cancelled\": {}, \"recomputed\": {}, \
             \"full_resolves\": {}, \"table_fnv\": \"{:#018x}\"}}{comma}",
            r.mode.name(),
            r.events_per_sec,
            r.elapsed_ns as f64 / 1e6,
            r.downs,
            r.ups,
            r.cancelled,
            r.recomputed,
            r.full_resolves,
            r.table_fnv,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"speedup\": {speedup:.2},");
    let _ = writeln!(
        out,
        "  \"sim\": {{\"lag_p50\": {}, \"lag_p95\": {}, \"lag_max\": {}, \
         \"converged_batches\": {}, \"diverged_batches\": {}, \"events_per_sec\": {:.1}}},",
        sim.lag_p50,
        sim.lag_p95,
        sim.lag_max,
        sim.converged_batches,
        sim.diverged_batches,
        sim.events_per_sec
    );
    let _ = writeln!(
        out,
        "  \"tunnels\": {{\"teardowns\": {}, \"renegotiations\": {}}}",
        batched.tunnel_teardowns, batched.tunnel_renegotiations
    );
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arg(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn gen_dump_replay_round_trip() {
        let mct = tmp("miro_churn_cmd_test.mct");
        let out = run_churn(&arg(&format!(
            "gen {} --fig1.1 --seed 7 --events 500",
            mct.display()
        )))
        .unwrap();
        assert!(out.contains("500 events"), "{out}");

        let dump = run_churn(&arg(&format!("dump {}", mct.display()))).unwrap();
        assert!(dump.contains("MCT1, 500 events"), "{dump}");
        assert!(dump.contains("6 ASes, 8 links"), "{dump}");
        assert!(dump.contains("co-temporal batches"), "{dump}");

        let serial =
            run_churn(&arg(&format!("replay {} --mode serial", mct.display()))).unwrap();
        let batched =
            run_churn(&arg(&format!("replay {} --mode batched", mct.display()))).unwrap();
        let fnv = |s: &str| {
            s.lines().find_map(|l| l.split("table fnv ").nth(1).map(str::to_string))
        };
        assert_eq!(fnv(&serial).expect("serial fnv"), fnv(&batched).expect("batched fnv"));

        let sim = run_churn(&arg(&format!("replay {} --mode sim", mct.display()))).unwrap();
        assert!(sim.contains("convergence lag"), "{sim}");
        assert!(sim.contains("0 diverged"), "{sim}");
    }

    #[test]
    fn churn_usage_and_bad_args() {
        assert!(run_churn(&[]).unwrap_err().contains("usage:"));
        assert!(run_churn(&arg("frob")).unwrap_err().contains("usage:"));
        assert!(run_churn(&arg("gen")).unwrap_err().contains("usage:"));
        assert!(run_churn(&arg("gen x.mct --preset nosuch")).unwrap_err().contains("unknown preset"));
        assert!(run_churn(&arg("replay nosuchfile.mct")).unwrap_err().contains("cannot read"));
        assert!(run_churn(&arg("dump nosuchfile.mct")).unwrap_err().contains("cannot read"));
    }

    #[test]
    fn replay_rejects_non_trace_files() {
        let p = tmp("miro_churn_cmd_not_a_trace.mct");
        std::fs::write(&p, b"1 2 c\n").unwrap();
        let err = run_churn(&arg(&format!("replay {}", p.display()))).unwrap_err();
        assert!(err.contains("bad magic"), "{err}");
    }

    #[test]
    fn bench_list_prints_schemas() {
        let out = run_bench(&arg("--list")).unwrap();
        assert!(out.contains("tiny"), "{out}");
        assert!(out.contains("medium"), "{out}");
        assert!(out.contains("rows[] = {mode, events_per_sec"), "{out}");
        assert!(out.contains("sim    = {lag_p50"), "{out}");
    }

    #[test]
    fn bench_bad_args_are_rejected() {
        assert!(run_bench(&arg("--frob")).is_err());
        assert!(run_bench(&arg("--scale nosuch")).unwrap_err().contains("unknown scale"));
        assert!(run_bench(&arg("--dests 0")).unwrap_err().contains("--dests"));
        assert!(run_bench(&arg("--check-events-rate x")).is_err());
    }

    #[test]
    fn tiny_bench_end_to_end() {
        let out_path = tmp("miro_bench_churn_test.json");
        let report = run_bench(&arg(&format!(
            "--scale tiny --events 2000 --dests 2 --out {}",
            out_path.display()
        )))
        .unwrap();
        assert!(report.contains("serial"), "{report}");
        assert!(report.contains("batched"), "{report}");
        assert!(report.contains("speedup"), "{report}");
        assert!(report.contains("tables agree"), "{report}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        let v: serde_json::JsonValue = serde_json::from_str(&json).expect("valid JSON");
        let serde_json::JsonValue::Obj(top) = &v else { panic!("top-level object") };
        let serde_json::JsonValue::Arr(rows) = &top["rows"] else { panic!("rows array") };
        assert_eq!(rows.len(), 2);
        let serde_json::JsonValue::Num(speedup) = top["speedup"] else { panic!("speedup") };
        assert!(speedup > 0.0);
        let serde_json::JsonValue::Obj(sim) = &top["sim"] else { panic!("sim object") };
        assert!(matches!(sim["lag_p50"], serde_json::JsonValue::Num(_)));
        // The two rows carry the same table digest — the bench hard-fails
        // before writing JSON otherwise, but pin it here too.
        let digests: Vec<String> = rows
            .iter()
            .map(|r| {
                let serde_json::JsonValue::Obj(row) = r else { panic!("row object") };
                let serde_json::JsonValue::Str(s) = &row["table_fnv"] else { panic!("fnv") };
                s.clone()
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
    }

    #[test]
    fn check_rate_gate_fires_on_absurd_floor() {
        let out_path = tmp("miro_bench_churn_gate_test.json");
        let err = run_bench(&arg(&format!(
            "--scale tiny --events 1000 --dests 1 --out {} --check-events-rate 1e18",
            out_path.display()
        )))
        .unwrap_err();
        assert!(err.contains("churn rate regression"), "{err}");
    }
}
