//! `miro shard-solve` / `miro shard-worker` — the CLI face of the
//! sharded whole-table solve service ([`miro_shard`]).
//!
//! `shard-solve` runs the coordinator: it spawns `--workers` copies of
//! this same binary as `shard-worker` subprocesses (a hidden verb),
//! speaks the framed protocol over their stdin/stdout, checkpoints every
//! completed block under `--state`, and merges the result into one
//! binary `RouteTableSet` at `--out`. Kill it mid-run and
//! `shard-solve --resume` picks up where the manifest left off.
//!
//! ```text
//! miro shard-solve --preset gao2005 --factor 0.5 --workers 4 \
//!     --dests 2048 --block-size 64 --out table.mirt --verify
//! ```

use miro_bgp::engine::heavy_blocks_first;
use miro_shard::coordinator::{self, JobSpec, ProcessSpawner};
use miro_shard::format::RouteTableSet;
use miro_shard::worker::{self, WorkerConfig};
use miro_shard::{sample_dests, TopoSpec};
use std::path::PathBuf;
use std::time::Duration;

/// Topology + destination-sample options shared by both verbs.
#[derive(Debug)]
struct TopoArgs {
    spec: TopoSpec,
    dests: usize,
}

/// Everything `shard-solve` accepts.
#[derive(Debug)]
struct SolveArgs {
    topo: TopoArgs,
    workers: usize,
    block_size: usize,
    threads: usize,
    out: PathBuf,
    state: Option<PathBuf>,
    resume: bool,
    heartbeat_ms: u64,
    deadline_ms: u64,
    respawn: Option<usize>,
    verify: bool,
    quiet: bool,
    chaos_kill_after: Option<u32>,
    chaos_stop_after: Option<u32>,
}

fn parse_topo(
    preset: Option<String>,
    factor: Option<f64>,
    seed: Option<u64>,
    cache: Option<String>,
    dests: usize,
) -> Result<TopoArgs, String> {
    let spec = match (cache, preset) {
        (Some(_), Some(_)) => return Err("--cache and --preset are mutually exclusive".into()),
        (Some(path), None) => {
            if factor.is_some() || seed.is_some() {
                return Err("--factor/--seed only apply to --preset topologies".into());
            }
            TopoSpec::Cache { path }
        }
        (None, preset) => TopoSpec::Preset {
            preset: preset.unwrap_or_else(|| "gao2005".into()),
            factor: factor.unwrap_or(1.0),
            seed: seed.unwrap_or(42),
        },
    };
    Ok(TopoArgs { spec, dests })
}

fn parse_solve(args: &[String]) -> Result<SolveArgs, String> {
    let (mut preset, mut factor, mut seed, mut cache) = (None, None, None, None);
    let mut dests = 0usize;
    let mut workers = 4usize;
    let mut block_size = 64usize;
    let mut threads = 0usize;
    let mut out = PathBuf::from("shard_table.mirt");
    let mut state = None;
    let mut resume = false;
    let mut heartbeat_ms = 250u64;
    let mut deadline_ms = 10_000u64;
    let mut respawn = None;
    let mut verify = false;
    let mut quiet = false;
    let (mut chaos_kill_after, mut chaos_stop_after) = (None, None);

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || {
            it.next().cloned().ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--preset" => preset = Some(val()?),
            "--factor" => factor = Some(parse_num(&val()?, "--factor")?),
            "--seed" => seed = Some(parse_num(&val()?, "--seed")?),
            "--cache" => cache = Some(val()?),
            "--dests" => dests = parse_num(&val()?, "--dests")?,
            "--workers" => workers = parse_num(&val()?, "--workers")?,
            "--block-size" => block_size = parse_num(&val()?, "--block-size")?,
            "--threads" => threads = parse_num(&val()?, "--threads")?,
            "--out" => out = PathBuf::from(val()?),
            "--state" => state = Some(PathBuf::from(val()?)),
            "--resume" => resume = true,
            "--heartbeat-ms" => heartbeat_ms = parse_num(&val()?, "--heartbeat-ms")?,
            "--deadline-ms" => deadline_ms = parse_num(&val()?, "--deadline-ms")?,
            "--respawn" => respawn = Some(parse_num(&val()?, "--respawn")?),
            "--verify" => verify = true,
            "--quiet" => quiet = true,
            "--chaos-kill-after" => chaos_kill_after = Some(parse_num(&val()?, "--chaos-kill-after")?),
            "--chaos-stop-after" => chaos_stop_after = Some(parse_num(&val()?, "--chaos-stop-after")?),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if block_size == 0 {
        return Err("--block-size must be at least 1".into());
    }
    if deadline_ms <= heartbeat_ms {
        return Err(format!(
            "--deadline-ms ({deadline_ms}) must exceed --heartbeat-ms ({heartbeat_ms}), \
             or every healthy worker looks hung"
        ));
    }
    Ok(SolveArgs {
        topo: parse_topo(preset, factor, seed, cache, dests)?,
        workers,
        block_size,
        threads,
        out,
        state,
        resume,
        heartbeat_ms,
        deadline_ms,
        respawn,
        verify,
        quiet,
        chaos_kill_after,
        chaos_stop_after,
    })
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse {s:?}"))
}

/// Run the coordinator verb. Returns the human-readable report.
pub fn run_solve(args: &[String]) -> Result<String, String> {
    let a = parse_solve(args)?;
    let topo = a.topo.spec.build()?;
    let dests = sample_dests(topo.num_nodes(), a.topo.dests);
    let state_dir = a.state.clone().unwrap_or_else(|| {
        let mut s = a.out.as_os_str().to_owned();
        s.push(".state");
        PathBuf::from(s)
    });
    // Divide the machine between workers unless told otherwise.
    let threads = if a.threads > 0 {
        a.threads
    } else {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        (cores / a.workers).max(1)
    };

    let program = std::env::current_exe()
        .map_err(|e| format!("cannot locate the miro binary for worker spawns: {e}"))?;
    let mut worker_args = vec!["shard-worker".to_string()];
    worker_args.extend(a.topo.spec.to_args());
    worker_args.extend([
        "--dests".into(),
        a.topo.dests.to_string(),
        "--threads".into(),
        threads.to_string(),
        "--heartbeat-ms".into(),
        a.heartbeat_ms.to_string(),
    ]);
    let mut spawner = ProcessSpawner { program, args: worker_args };

    // Heavy blocks first: the expensive assignments go out early so the
    // job's tail drains over cheap ones (output bytes are unaffected).
    let block_order = Some(heavy_blocks_first(&topo, &dests, a.block_size));
    let spec = JobSpec {
        dests,
        num_nodes: topo.num_nodes() as u32,
        num_edges: topo.num_edges() as u32,
        block_size: a.block_size,
        block_order,
        workers: a.workers,
        state_dir,
        out_path: a.out.clone(),
        resume: a.resume,
        heartbeat_deadline: Duration::from_millis(a.deadline_ms),
        respawn_budget: a.respawn.unwrap_or(a.workers),
        chaos_kill_after: a.chaos_kill_after,
        chaos_stop_after: a.chaos_stop_after,
        progress: if a.quiet {
            None
        } else {
            Some(Box::new(move |done, total| {
                eprintln!("shard-solve: {done}/{total} blocks");
                let _ = (done, total);
            }))
        },
    };

    let report = coordinator::run(&spec, &mut spawner)?;
    let mut text = String::new();
    let secs = report.elapsed.as_secs_f64().max(1e-9);
    let dests_done = spec.dests.len();
    text.push_str(&format!(
        "shard-solve: {} blocks ({} resumed) over {} workers in {:.2}s\n",
        report.blocks, report.resumed, a.workers, secs
    ));
    text.push_str(&format!(
        "  dests: {dests_done}  nodes: {}  throughput: {:.0} dests/s\n",
        spec.num_nodes,
        dests_done as f64 / secs
    ));
    text.push_str(&format!(
        "  dispatches: {}  deaths: {}  respawns: {}  deadline kills: {}  corrupt frames: {}\n",
        report.dispatches, report.deaths, report.respawns, report.deadline_kills, report.corrupt_events
    ));
    text.push_str(&format!("  merged: {} ({} bytes)\n", a.out.display(), report.merged_bytes));

    if a.verify {
        let reference = RouteTableSet::from_solves(&topo, &spec.dests, threads * a.workers).encode();
        let merged = std::fs::read(&a.out).map_err(|e| format!("cannot re-read {:?}: {e}", a.out))?;
        if merged != reference {
            return Err(format!(
                "VERIFY FAILED: merged table ({} bytes) differs from single-process solve ({} bytes)",
                merged.len(),
                reference.len()
            ));
        }
        text.push_str("  verify: merged table matches single-process solve\n");
    }
    Ok(text)
}

/// Run the hidden worker verb over this process's stdin/stdout.
pub fn run_worker(args: &[String]) -> Result<(), String> {
    let (mut preset, mut factor, mut seed, mut cache) = (None, None, None, None);
    let mut dests = 0usize;
    let mut threads = 1usize;
    let mut heartbeat_ms = 250u64;
    let mut worker_id = 0u32;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || {
            it.next().cloned().ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--preset" => preset = Some(val()?),
            "--factor" => factor = Some(parse_num(&val()?, "--factor")?),
            "--seed" => seed = Some(parse_num(&val()?, "--seed")?),
            "--cache" => cache = Some(val()?),
            "--dests" => dests = parse_num(&val()?, "--dests")?,
            "--threads" => threads = parse_num(&val()?, "--threads")?,
            "--heartbeat-ms" => heartbeat_ms = parse_num(&val()?, "--heartbeat-ms")?,
            "--worker-id" => worker_id = parse_num(&val()?, "--worker-id")?,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let topo = parse_topo(preset, factor, seed, cache, dests)?;
    let graph = topo.spec.build()?;
    let dest_list = sample_dests(graph.num_nodes(), topo.dests);
    let cfg = WorkerConfig {
        worker: worker_id,
        threads: threads.max(1),
        heartbeat: Duration::from_millis(heartbeat_ms.max(1)),
    };
    worker::run(&graph, &dest_list, cfg, std::io::stdin().lock(), std::io::stdout())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn solve_args_parse_and_validate() {
        let a = parse_solve(&s(&[
            "--preset", "gao2005", "--factor", "0.05", "--workers", "3", "--block-size", "16",
            "--dests", "100", "--out", "/tmp/t.mirt", "--resume", "--verify",
        ]))
        .unwrap();
        assert_eq!(a.workers, 3);
        assert_eq!(a.block_size, 16);
        assert!(a.resume && a.verify);
        assert_eq!(a.topo.dests, 100);
        assert!(matches!(a.topo.spec, TopoSpec::Preset { ref preset, .. } if preset == "gao2005"));

        assert!(parse_solve(&s(&["--workers", "0"])).unwrap_err().contains("--workers"));
        assert!(parse_solve(&s(&["--bogus"])).unwrap_err().contains("unknown option"));
        assert!(parse_solve(&s(&["--cache", "x.json", "--preset", "gao2005"]))
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(parse_solve(&s(&["--heartbeat-ms", "500", "--deadline-ms", "100"]))
            .unwrap_err()
            .contains("must exceed"));
    }

    #[test]
    fn default_state_dir_rides_next_to_the_output() {
        let a = parse_solve(&s(&["--out", "/tmp/xyz.mirt"])).unwrap();
        assert!(a.state.is_none());
        // run_solve derives <out>.state; mirror that derivation here.
        let mut s = a.out.as_os_str().to_owned();
        s.push(".state");
        assert_eq!(PathBuf::from(s), PathBuf::from("/tmp/xyz.mirt.state"));
    }
}
