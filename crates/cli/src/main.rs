//! The `miro` binary: a thin stdin/stdout loop around [`miro_cli::Repl`],
//! plus the `bench-solver` performance smoke.
//!
//! Interactive: `miro`. Scripted: `miro scenario.txt` or `miro < script`.
//! Benchmark: `miro bench-solver [--scale tiny|small|medium|large|internet|all]
//! [--threads N] [--out BENCH_solver.json] [--list]`.
//! Data plane: `miro bench-dataplane [--scale tiny|small|medium] [--flows N]
//! [--packets N] [--batch LIST] [--out BENCH_dataplane.json] [--capture FILE]
//! [--check-batch-speedup F] [--list]`.
//! Robustness: `miro resilience [--seed N] [--scale F] [--pairs N]
//! [--outage-ticks N] [--out RESILIENCE.json] [--check-floor PCT]
//! [--check-recovery-floor PCT]`.
//! Ingest: `miro ingest <file> [--out cache.json] [--name LABEL] [--check]`
//! (`.mct` churn traces are sniffed by magic; their embedded topology is
//! ingested).
//! Churn: `miro churn <gen|dump|replay> [options]` and `miro bench-churn
//! [--scale S] [--events N] [--dests N] [--out BENCH_churn.json]
//! [--check-events-rate F] [--check-speedup F] [--list]`.
//! Serving: `miro serve <table> (--preset P --factor F --seed S | --cache C)
//! [--addr HOST:PORT] [--port-file P] [--stripes N] [--cache-slots N]
//! [--no-verify-file]`, and `miro bench-query [--scale S | --addr A]
//! [--sample N] [--conns LIST] [--queries N] [--out BENCH_query.json]
//! [--check-qps F] [--shutdown] [--list]`.

use std::io::{BufRead, Write};

fn main() {
    let mut repl = miro_cli::Repl::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => interactive(&mut repl),
        [cmd, rest @ ..] if cmd == "bench-solver" => {
            match miro_cli::bench::run(rest) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("bench-solver: {e}");
                    std::process::exit(2);
                }
            }
        }
        [cmd, rest @ ..] if cmd == "bench-dataplane" => {
            match miro_cli::bench_dataplane::run(rest) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("bench-dataplane: {e}");
                    std::process::exit(2);
                }
            }
        }
        [cmd, rest @ ..] if cmd == "churn" => {
            match miro_cli::churn_cmd::run_churn(rest) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("churn: {e}");
                    std::process::exit(2);
                }
            }
        }
        [cmd, rest @ ..] if cmd == "bench-churn" => {
            match miro_cli::churn_cmd::run_bench(rest) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("bench-churn: {e}");
                    std::process::exit(2);
                }
            }
        }
        [cmd, rest @ ..] if cmd == "ingest" => {
            match miro_cli::ingest::run(rest) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("ingest: {e}");
                    std::process::exit(2);
                }
            }
        }
        [cmd, rest @ ..] if cmd == "shard-solve" => {
            match miro_cli::shard_cmd::run_solve(rest) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("shard-solve: {e}");
                    std::process::exit(2);
                }
            }
        }
        // Hidden: the worker half of shard-solve, spawned by the
        // coordinator with the protocol on stdin/stdout.
        [cmd, rest @ ..] if cmd == "shard-worker" => {
            if let Err(e) = miro_cli::shard_cmd::run_worker(rest) {
                eprintln!("shard-worker: {e}");
                std::process::exit(3);
            }
        }
        [cmd, rest @ ..] if cmd == "serve" => {
            match miro_cli::serve_cmd::run(rest) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("serve: {e}");
                    std::process::exit(2);
                }
            }
        }
        [cmd, rest @ ..] if cmd == "bench-query" => {
            match miro_cli::bench_query::run(rest) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("bench-query: {e}");
                    std::process::exit(2);
                }
            }
        }
        [cmd, rest @ ..] if cmd == "resilience" => {
            match miro_eval::resilience::run(rest) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("resilience: {e}");
                    std::process::exit(2);
                }
            }
        }
        [path] => match std::fs::read_to_string(path) {
            Ok(script) => print!("{}", repl.run_script(&script)),
            Err(e) => {
                eprintln!("cannot read {path:?}: {e}");
                std::process::exit(2);
            }
        },
        _ => {
            eprintln!(
                "usage: miro [script-file | bench-solver [options] | \
                 bench-dataplane [options] | bench-query [options] | \
                 bench-churn [options] | churn <gen|dump|replay> [options] | \
                 resilience [options] | ingest <file> [options] | \
                 shard-solve [options] | serve <table> [options]]"
            );
            std::process::exit(2);
        }
    }
}

fn interactive(repl: &mut miro_cli::Repl) {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("miro shell — `help` for commands, `quit` to leave");
    loop {
        print!("miro> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        match repl.exec(trimmed) {
            Ok(s) if s.is_empty() => {}
            Ok(s) => println!("{}", s.trim_end()),
            Err(e) => println!("error: {e}"),
        }
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
    }
}
