//! `miro bench-query` — concurrent-client throughput/latency of the
//! query serving plane.
//!
//! Two modes:
//!
//! * **Self-hosted** (`--scale`): generate the preset topology, solve a
//!   destination sample into a real on-disk table, memory-map it, start
//!   an in-process [`miro_serve::server::Server`] on a loopback port,
//!   and drive it — the whole serving stack (mmap, first-touch
//!   checksums, cache stripes, wire codec, TCP) on one machine.
//! * **External** (`--addr`): drive an already-running `miro serve`
//!   daemon. The client learns the servable ASNs from the wire
//!   `Universe` message, so it needs no topology flags. `--shutdown`
//!   sends the daemon a clean stop afterwards (the CI smoke uses this).
//!
//! Each round spawns `--conns` client connections; every connection
//! issues its share of `--queries` serially (request → response, like a
//! real resolver), drawing Zipf-skewed (src, dest) pairs and a fixed
//! 60/30/10 next-hop/path/alternate mix. Latency is measured per query
//! and merged across connections; the hot-cache hit rate per round comes
//! from differencing the daemon's `Stats` before and after. Results land
//! in `BENCH_query.json`; `--check-qps F` turns the best round's
//! throughput into a hard CI gate.

use miro_serve::wire::{read_msg, write_msg, WireMsg, QUERY_PROTOCOL_VERSION};
use miro_shard::format::RouteTableSet;
use miro_shard::{parse_preset, sample_dests};
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Generation seed default: fixed so runs are comparable across PRs.
const SEED: u64 = 42;

/// Query mix per 10 queries: 6 next-hop, 3 path, 1 alternate.
const MIX: &[QueryKind] = &[
    QueryKind::NextHop,
    QueryKind::Path,
    QueryKind::NextHop,
    QueryKind::NextHop,
    QueryKind::Alternate,
    QueryKind::Path,
    QueryKind::NextHop,
    QueryKind::NextHop,
    QueryKind::Path,
    QueryKind::NextHop,
];

#[derive(Clone, Copy, PartialEq)]
enum QueryKind {
    NextHop,
    Path,
    Alternate,
}

struct Scale {
    name: &'static str,
    preset: &'static str,
    factor: f64,
}

const SCALES: &[Scale] = &[
    Scale { name: "tiny", preset: "gao2005", factor: 0.01 },
    Scale { name: "small", preset: "gao2005", factor: 0.05 },
    Scale { name: "medium", preset: "gao2005", factor: 0.5 },
    Scale { name: "large", preset: "gao2005", factor: 1.0 },
    Scale { name: "internet", preset: "internet", factor: 1.0 },
];

struct BenchArgs {
    scale: String,
    addr: Option<String>,
    sample: usize,
    conns_list: Vec<usize>,
    queries: usize,
    seed: u64,
    out: String,
    check_qps: Option<f64>,
    shutdown: bool,
    stripes: usize,
    cache_slots: usize,
}

fn parse(args: &[String]) -> Result<(BenchArgs, bool), String> {
    let mut a = BenchArgs {
        scale: "small".to_string(),
        addr: None,
        sample: 256,
        conns_list: vec![4, 16, 64],
        queries: 20_000,
        seed: SEED,
        out: "BENCH_query.json".to_string(),
        check_qps: None,
        shutdown: false,
        stripes: 16,
        cache_slots: 1024,
    };
    let mut list = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--list" => list = true,
            "--scale" => a.scale = val()?,
            "--addr" => a.addr = Some(val()?),
            "--sample" => a.sample = num(&val()?, "--sample")?,
            "--conns" => {
                a.conns_list = val()?
                    .split(',')
                    .map(|p| num::<usize>(p.trim(), "--conns"))
                    .collect::<Result<_, _>>()?;
                if a.conns_list.is_empty() || a.conns_list.contains(&0) {
                    return Err("--conns needs positive connection counts".into());
                }
            }
            "--queries" => a.queries = num(&val()?, "--queries")?,
            "--seed" => a.seed = num(&val()?, "--seed")?,
            "--out" => a.out = val()?,
            "--check-qps" => a.check_qps = Some(num(&val()?, "--check-qps")?),
            "--shutdown" => a.shutdown = true,
            "--stripes" => a.stripes = num(&val()?, "--stripes")?,
            "--cache-slots" => a.cache_slots = num(&val()?, "--cache-slots")?,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if a.queries == 0 {
        return Err("--queries must be at least 1".into());
    }
    Ok((a, list))
}

fn num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse {s:?}"))
}

/// One connection's take-home: latencies and answer-kind tallies.
#[derive(Default)]
struct ClientTally {
    latencies_us: Vec<u64>,
    unrouted: u64,
    no_alternate: u64,
    errors: u64,
}

/// One round's merged result.
struct Round {
    conns: usize,
    queries: usize,
    wall_ms: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    hit_rate: f64,
    unrouted: u64,
    no_alternate: u64,
}

pub fn run(args: &[String]) -> Result<String, String> {
    let (a, list) = parse(args)?;
    if list {
        let mut out = String::from("bench-query scales (self-hosted mode):\n");
        for sc in SCALES {
            let _ = writeln!(out, "  {:<8} preset={} factor={}", sc.name, sc.preset, sc.factor);
        }
        out.push_str("modes:\n");
        out.push_str("  --scale S   solve a sample, serve it in-process, drive loopback TCP\n");
        out.push_str("  --addr A    drive a running `miro serve` daemon (--shutdown stops it)\n");
        out.push_str("mix: 60% next-hop, 30% path, 10% alternate (Zipf-skewed src/dest)\n");
        out.push_str("row schema:\n");
        out.push_str(
            "  rows[] = {conns, queries, wall_ms, qps, p50_us, p99_us, hit_rate, \
             unrouted, no_alternate}\n",
        );
        return Ok(out);
    }

    // ---- Get a server address: external, or spin up the full stack ----
    let mut report;
    let addr: SocketAddr;
    let mut hosted: Option<HostedServer> = None;
    match &a.addr {
        Some(s) => {
            addr = s
                .parse()
                .map_err(|_| format!("--addr: cannot parse {s:?} as host:port"))?;
            report = format!("bench-query: external daemon at {addr}\n");
        }
        None => {
            let sc = SCALES
                .iter()
                .find(|s| s.name == a.scale)
                .ok_or(format!("unknown scale {:?} (try --list)", a.scale))?;
            let h = HostedServer::start(sc, &a)?;
            addr = h.addr;
            report = format!(
                "bench-query: {} ({} nodes, {} dests solved in {:.2}s, {} byte table) on {addr}\n",
                sc.name, h.nodes, h.dests, h.solve_secs, h.table_bytes
            );
            hosted = Some(h);
        }
    }

    // ---- Learn the query universe from the daemon itself --------------
    let mut control = Client::connect(addr)?;
    let (src_asns, dest_asns) = control.universe()?;
    if src_asns.is_empty() || dest_asns.is_empty() {
        return Err("daemon serves an empty universe".into());
    }

    // ---- Rounds -------------------------------------------------------
    let mut rounds: Vec<Round> = Vec::new();
    for &conns in &a.conns_list {
        let per_conn = (a.queries / conns).max(1);
        let total = per_conn * conns;
        let before = control.stats()?;
        let start = Instant::now();
        let tallies: Vec<Result<ClientTally, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..conns)
                .map(|c| {
                    let (srcs, dests) = (&src_asns, &dest_asns);
                    let seed = a.seed ^ (conns as u64) << 32 ^ c as u64;
                    scope.spawn(move || drive_connection(addr, srcs, dests, per_conn, seed))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        let wall = start.elapsed();
        let after = control.stats()?;

        let mut merged = ClientTally::default();
        for t in tallies {
            let t = t?;
            merged.latencies_us.extend_from_slice(&t.latencies_us);
            merged.unrouted += t.unrouted;
            merged.no_alternate += t.no_alternate;
            merged.errors += t.errors;
        }
        if merged.errors > 0 {
            return Err(format!(
                "{} queries came back RErr — universe-sourced operands must all resolve",
                merged.errors
            ));
        }
        merged.latencies_us.sort_unstable();
        let pct = |p: f64| -> f64 {
            let n = merged.latencies_us.len();
            merged.latencies_us[((n as f64 * p) as usize).min(n - 1)] as f64
        };
        let (dh, dm) = (after.0 - before.0, after.1 - before.1);
        let round = Round {
            conns,
            queries: total,
            wall_ms: wall.as_secs_f64() * 1e3,
            qps: total as f64 / wall.as_secs_f64().max(1e-9),
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            hit_rate: if dh + dm == 0 { 0.0 } else { dh as f64 / (dh + dm) as f64 },
            unrouted: merged.unrouted,
            no_alternate: merged.no_alternate,
        };
        let _ = writeln!(
            report,
            "  {:>3} conns | {:>7} q | {:>9.0} q/s | p50 {:>6.0} us | p99 {:>6.0} us | \
             cache {:>4.0}% | {} unrouted",
            round.conns,
            round.queries,
            round.qps,
            round.p50_us,
            round.p99_us,
            round.hit_rate * 100.0,
            round.unrouted,
        );
        rounds.push(round);
    }

    // ---- Wind down ----------------------------------------------------
    let final_stats = control.stats()?;
    if a.shutdown || hosted.is_some() {
        control.shutdown()?;
    }
    drop(control);
    let (nodes, dests, scale_name, mode) = match hosted {
        Some(h) => {
            let (n, d) = (h.nodes, h.dests);
            h.finish()?;
            (n, d, a.scale.as_str(), "self-hosted")
        }
        None => (0, dest_asns.len(), "external", "external"),
    };

    let json = to_json(&a, mode, scale_name, nodes, dests, &rounds, final_stats);
    std::fs::write(&a.out, &json).map_err(|e| format!("cannot write {:?}: {e}", a.out))?;
    let _ = writeln!(report, "wrote {}", a.out);

    if let Some(floor) = a.check_qps {
        let best = rounds.iter().map(|r| r.qps).fold(0.0f64, f64::max);
        if best < floor {
            return Err(format!("qps regression: best round {best:.0} q/s < required {floor}"));
        }
        let _ = writeln!(report, "check-qps: best {:.0} >= {floor} ok", best);
    }
    Ok(report)
}

// ------------------------------------------------------------- clients

/// A blocking protocol client over one TCP connection.
struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    fn connect(addr: SocketAddr) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let mut c = Client { stream, next_id: 0 };
        c.send(&WireMsg::Hello { protocol: QUERY_PROTOCOL_VERSION })?;
        match c.recv()? {
            WireMsg::Welcome { .. } => Ok(c),
            WireMsg::RBye => Err("daemon refused the connection (protocol mismatch)".into()),
            other => Err(format!("expected Welcome, got {other:?}")),
        }
    }

    fn send(&mut self, msg: &WireMsg) -> Result<(), String> {
        write_msg(&mut self.stream, msg).map_err(|e| format!("send failed: {e}"))
    }

    fn recv(&mut self) -> Result<WireMsg, String> {
        read_msg(&mut self.stream).map_err(|e| format!("recv failed: {e:?}"))
    }

    fn id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn universe(&mut self) -> Result<(Vec<u32>, Vec<u32>), String> {
        let id = self.id();
        self.send(&WireMsg::Universe { id })?;
        match self.recv()? {
            WireMsg::RUniverse { src_asns, dest_asns, .. } => Ok((src_asns, dest_asns)),
            other => Err(format!("expected RUniverse, got {other:?}")),
        }
    }

    /// (cache_hits, cache_misses, queries) snapshot.
    fn stats(&mut self) -> Result<(u64, u64, u64), String> {
        let id = self.id();
        self.send(&WireMsg::Stats { id })?;
        match self.recv()? {
            WireMsg::RStats { cache_hits, cache_misses, queries, .. } => {
                Ok((cache_hits, cache_misses, queries))
            }
            other => Err(format!("expected RStats, got {other:?}")),
        }
    }

    fn shutdown(&mut self) -> Result<(), String> {
        self.send(&WireMsg::Shutdown)?;
        match self.recv()? {
            WireMsg::RBye => Ok(()),
            other => Err(format!("expected RBye, got {other:?}")),
        }
    }
}

/// One benchmark connection: `count` serial queries, Zipf operands.
fn drive_connection(
    addr: SocketAddr,
    src_asns: &[u32],
    dest_asns: &[u32],
    count: usize,
    seed: u64,
) -> Result<ClientTally, String> {
    let mut c = Client::connect(addr)?;
    let mut rng = Rng::new(seed);
    let src_zipf = Zipf::new(src_asns.len());
    let dest_zipf = Zipf::new(dest_asns.len());
    let mut tally = ClientTally { latencies_us: Vec::with_capacity(count), ..Default::default() };
    for i in 0..count {
        let src = src_asns[src_zipf.sample(&mut rng)];
        let dest = dest_asns[dest_zipf.sample(&mut rng)];
        let id = c.id();
        let msg = match MIX[i % MIX.len()] {
            QueryKind::NextHop => WireMsg::NextHop { id, src, dest },
            QueryKind::Path => WireMsg::Path { id, src, dest },
            QueryKind::Alternate => {
                // Avoid a random AS that is not the source (avoiding the
                // source is a defined client error we don't want to time).
                let mut avoid = src_asns[src_zipf.sample(&mut rng)];
                while avoid == src {
                    avoid = src_asns[(rng.next() as usize) % src_asns.len()];
                }
                WireMsg::Alternate { id, src, dest, avoid }
            }
        };
        let start = Instant::now();
        c.send(&msg)?;
        let reply = c.recv()?;
        tally.latencies_us.push(start.elapsed().as_micros() as u64);
        match reply {
            WireMsg::RNextHop { id: rid, .. }
            | WireMsg::RPath { id: rid, .. }
            | WireMsg::RAlternate { id: rid, .. } => {
                if rid != id {
                    return Err(format!("response id {rid} for request {id}"));
                }
            }
            WireMsg::RUnrouted { .. } => tally.unrouted += 1,
            WireMsg::RNoAlternate { .. } => tally.no_alternate += 1,
            WireMsg::RErr { .. } => tally.errors += 1,
            other => return Err(format!("unexpected reply {other:?}")),
        }
    }
    Ok(tally)
}

// -------------------------------------------------- self-hosted server

/// The in-process serving stack: solved table on disk, mmap'd, served.
struct HostedServer {
    addr: SocketAddr,
    nodes: usize,
    dests: usize,
    table_bytes: usize,
    solve_secs: f64,
    table_path: std::path::PathBuf,
    daemon: std::thread::JoinHandle<std::io::Result<miro_serve::server::ServeReport>>,
}

impl HostedServer {
    fn start(sc: &Scale, a: &BenchArgs) -> Result<HostedServer, String> {
        use miro_serve::cache::ShardedCache;
        use miro_serve::mmap::MappedTable;
        use miro_serve::query::Engine;
        use miro_serve::server::Server;

        let topo = parse_preset(sc.preset)?.params(sc.factor, a.seed).generate();
        let nodes = topo.num_nodes();
        let dests = sample_dests(topo.num_nodes(), a.sample);
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let t0 = Instant::now();
        let set = RouteTableSet::from_solves(&topo, &dests, threads);
        let solve_secs = t0.elapsed().as_secs_f64();
        let bytes = set.encode();
        let table_path = std::env::temp_dir()
            .join(format!("miro_bench_query_{}_{}.mirt", sc.name, std::process::id()));
        std::fs::write(&table_path, &bytes)
            .map_err(|e| format!("cannot write {table_path:?}: {e}"))?;
        let table_bytes = bytes.len();
        drop(bytes);
        drop(set);

        let table = MappedTable::open(&table_path)?;
        let engine =
            Engine::new(table, topo, Some(ShardedCache::new(a.stripes, a.cache_slots)))?;
        let server = Server::bind("127.0.0.1:0", engine)
            .map_err(|e| format!("cannot bind loopback: {e}"))?;
        let addr = server.local_addr().map_err(|e| e.to_string())?;
        let daemon = std::thread::spawn(move || server.run());
        Ok(HostedServer {
            addr,
            nodes,
            dests: dests.len(),
            table_bytes,
            solve_secs,
            table_path,
            daemon,
        })
    }

    /// Join the daemon (a `Shutdown` must already have been sent) and
    /// remove the table file.
    fn finish(self) -> Result<(), String> {
        let report =
            self.daemon.join().map_err(|_| "daemon thread panicked".to_string())?;
        report.map_err(|e| format!("daemon failed: {e}"))?;
        std::fs::remove_file(&self.table_path).ok();
        Ok(())
    }
}

// ---------------------------------------------------------------- misc

/// xorshift64* — the repo's deterministic traffic PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Zipf(1.0) sampler (cumulative table + binary search), same shape as
/// the dataplane bench's traffic skew.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / (i + 1) as f64;
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.cumulative.last().expect("nonempty");
        let u = (rng.next() >> 11) as f64 / (1u64 << 53) as f64 * total;
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }
}

fn to_json(
    a: &BenchArgs,
    mode: &str,
    scale: &str,
    nodes: usize,
    dests: usize,
    rounds: &[Round],
    final_stats: (u64, u64, u64),
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"query-serve\",");
    let _ = writeln!(
        out,
        "  \"engine\": \"mmap-table-striped-cache-thread-per-conn\","
    );
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        out,
        "  \"scale\": \"{scale}\", \"nodes\": {nodes}, \"dests\": {dests}, \"seed\": {},",
        a.seed
    );
    let _ = writeln!(
        out,
        "  \"mix\": {{\"next_hop\": 0.6, \"path\": 0.3, \"alternate\": 0.1}},"
    );
    let _ = writeln!(
        out,
        "  \"cache\": {{\"stripes\": {}, \"slots_per_stripe\": {}}},",
        a.stripes, a.cache_slots
    );
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rounds.iter().enumerate() {
        let comma = if i + 1 < rounds.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"conns\": {}, \"queries\": {}, \"wall_ms\": {:.3}, \"qps\": {:.0}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"hit_rate\": {:.4}, \"unrouted\": {}, \
             \"no_alternate\": {}}}{comma}",
            r.conns,
            r.queries,
            r.wall_ms,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.hit_rate,
            r.unrouted,
            r.no_alternate,
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"totals\": {{\"queries\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}",
        final_stats.2, final_stats.0, final_stats.1
    );
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arg(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn list_prints_scales_modes_and_schema() {
        let out = run(&arg("--list")).unwrap();
        for sc in SCALES {
            assert!(out.contains(sc.name), "{} in {out}", sc.name);
        }
        assert!(out.contains("--addr"), "{out}");
        assert!(out.contains(
            "rows[] = {conns, queries, wall_ms, qps, p50_us, p99_us, hit_rate"
        ));
    }

    #[test]
    fn bad_options_are_rejected() {
        assert!(run(&arg("--frobnicate")).is_err());
        assert!(run(&arg("--scale nosuch")).unwrap_err().contains("unknown scale"));
        assert!(run(&arg("--conns 0")).is_err());
        assert!(run(&arg("--conns 4,x")).is_err());
        assert!(run(&arg("--queries 0")).unwrap_err().contains("--queries"));
        assert!(run(&arg("--addr notanaddr")).unwrap_err().contains("--addr"));
    }

    #[test]
    fn tiny_self_hosted_bench_end_to_end() {
        let out_path = std::env::temp_dir().join("miro_bench_query_test.json");
        let report = run(&arg(&format!(
            "--scale tiny --sample 32 --conns 2,4 --queries 600 --out {}",
            out_path.display()
        )))
        .unwrap();
        assert!(report.contains("q/s"), "{report}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        let v: serde_json::JsonValue = serde_json::from_str(&json).expect("valid JSON");
        let serde_json::JsonValue::Obj(top) = &v else { panic!("top-level object") };
        let serde_json::JsonValue::Arr(rows) = &top["rows"] else { panic!("rows array") };
        assert_eq!(rows.len(), 2);
        for r in rows {
            let serde_json::JsonValue::Obj(row) = r else { panic!("row object") };
            let serde_json::JsonValue::Num(qps) = row["qps"] else { panic!("qps") };
            assert!(qps > 0.0);
            let serde_json::JsonValue::Num(p99) = row["p99_us"] else { panic!("p99_us") };
            let serde_json::JsonValue::Num(p50) = row["p50_us"] else { panic!("p50_us") };
            assert!(p99 >= p50);
        }
        std::fs::remove_file(&out_path).ok();
    }
}
