//! `miro ingest <file>` — stream a real-world AS-relationship snapshot
//! into the JSON cache the evaluation harness consumes.
//!
//! The input is any file [`miro_topology::io::stream`] understands: the
//! repo's whitespace format or the CAIDA/RouteViews `as1|as2|rel` format,
//! with `#` comments, auto-detected per line. The parse is allocation-free
//! per line and single-pass; ASNs are remapped to dense node ids as they
//! are first seen. The output is an [`IngestCache`] JSON document —
//! topology plus provenance plus the [`ParseStats`] counters — which
//! `miro-eval --cache` loads in place of a generated preset.
//!
//! `--check` parses and validates without writing anything, which is what
//! CI wants: prove the golden fixture still ingests cleanly, leave no
//! artifacts behind.
//!
//! `MCT1` churn traces are sniffed by magic: a trace embeds its topology
//! in the same text format, so `miro ingest trace.mct` decodes the trace
//! (checksums and all) and streams the embedded topology through the
//! exact same parser — one ingest verb for snapshots and churn workloads.

use miro_topology::io::stream::{self, IngestCache};
use miro_topology::io::TopologyDoc;
use std::fmt::Write as _;
use std::io::BufReader;

const USAGE: &str = "usage: miro ingest <file> [--out cache.json] [--name LABEL] [--check]";

/// Entry point for `miro ingest`. Returns the human-readable report.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut file: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut name: Option<String> = None;
    let mut check = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |n: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{n} needs a value"))
        };
        match arg.as_str() {
            "--out" => out_path = Some(val("--out")?),
            "--name" => name = Some(val("--name")?),
            "--check" => check = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{USAGE}"))
            }
            other => {
                if file.is_some() {
                    return Err(format!("more than one input file\n{USAGE}"));
                }
                file = Some(other.to_string());
            }
        }
    }
    let path = file.ok_or(USAGE.to_string())?;

    // Sniff the churn-trace magic; everything else goes straight to the
    // line-oriented streaming parser.
    let bytes = std::fs::read(&path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    let trace_events = if bytes.starts_with(&miro_churn::MAGIC) {
        Some(
            miro_churn::Trace::decode(&bytes)
                .map_err(|e| format!("{path}: {e}"))?,
        )
    } else {
        None
    };
    let (topo, stats) = match &trace_events {
        Some(trace) => stream::parse(BufReader::new(trace.topo_text.as_bytes()))
            .map_err(|e| format!("{path} (embedded topology): {e}"))?,
        None => stream::parse(BufReader::new(&bytes[..]))
            .map_err(|e| format!("{path}: {e}"))?,
    };

    let census = miro_topology::stats::link_census(&topo);
    let mut report = match &trace_events {
        Some(trace) => format!(
            "ingested {path}: MCT1 churn trace, {} events over {} ms; embedded topology: \
             {} lines, {} bytes\n",
            trace.events.len(),
            trace.duration_ms(),
            stats.lines,
            stats.bytes
        ),
        None => format!(
            "ingested {path}: {} lines ({} comments/blanks), {} bytes\n",
            stats.lines, stats.comments, stats.bytes
        ),
    };
    let _ = writeln!(
        report,
        "  accepted {} edges over {} ASes; dropped {} duplicate(s), {} self-loop(s)",
        stats.edges, stats.nodes, stats.duplicate_edges, stats.self_loops
    );
    let _ = writeln!(
        report,
        "  link mix: {} P/C, {} peering, {} sibling; {} stubs ({} multi-homed)",
        census.pc_links,
        census.peering_links,
        census.sibling_links,
        census.stubs,
        census.multihomed_stubs
    );

    if check {
        let _ = writeln!(report, "check ok (no cache written)");
        return Ok(report);
    }

    let label = name.unwrap_or_else(|| {
        std::path::Path::new(&path)
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone())
    });
    let cache = IngestCache::new(label.clone(), path.clone(), stats, TopologyDoc::of(&topo));
    let json = serde_json::to_string_pretty(&cache)
        .map_err(|e| format!("cannot serialize cache: {e}"))?;
    let out_path = out_path.unwrap_or_else(|| format!("{path}.cache.json"));
    std::fs::write(&out_path, json)
        .map_err(|e| format!("cannot write {out_path:?}: {e}"))?;
    let _ = writeln!(report, "wrote {out_path} (dataset {label:?})");
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, content: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(name);
        std::fs::write(&p, content).expect("tmp write");
        p
    }

    #[test]
    fn ingest_writes_a_loadable_cache() {
        let input = tmp("miro_ingest_test.txt", "# caida style\n1|2|-1\n2|3|-1\n1|3|0\n");
        let out = std::env::temp_dir().join("miro_ingest_test.cache.json");
        let args: Vec<String> = vec![
            input.display().to_string(),
            "--out".into(),
            out.display().to_string(),
            "--name".into(),
            "unit".into(),
        ];
        let report = run(&args).expect("ingest works");
        assert!(report.contains("accepted 3 edges over 3 ASes"), "{report}");
        let json = std::fs::read_to_string(&out).expect("cache written");
        let cache = IngestCache::from_json(&json).expect("cache parses");
        assert_eq!(cache.format_version, miro_topology::io::stream::CACHE_FORMAT_VERSION);
        assert_eq!(cache.name, "unit");
        assert_eq!(cache.stats.edges, 3);
        let topo = cache.topology.build().expect("topology rebuilds");
        assert_eq!(topo.num_nodes(), 3);
        assert_eq!(topo.num_edges(), 3);
    }

    #[test]
    fn check_mode_writes_nothing() {
        let input = tmp("miro_ingest_check.txt", "1 2 c\n2 3 c\n");
        let out = format!("{}.cache.json", input.display());
        let _ = std::fs::remove_file(&out);
        let args: Vec<String> = vec![input.display().to_string(), "--check".into()];
        let report = run(&args).expect("check works");
        assert!(report.contains("check ok"), "{report}");
        assert!(!std::path::Path::new(&out).exists(), "no cache file in check mode");
    }

    #[test]
    fn parse_errors_carry_file_and_line() {
        let input = tmp("miro_ingest_bad.txt", "1 2 c\n1|2|7\n");
        let err = run(&[input.display().to_string()]).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("relationship code 7"), "{err}");
    }

    #[test]
    fn churn_traces_are_sniffed_and_their_topology_ingested() {
        let (topo, _) = miro_topology::gen::figure_1_1();
        let trace = miro_churn::gen::generate(
            &topo,
            &miro_churn::gen::GenConfig { seed: 3, events: 100, ..Default::default() },
        );
        let p = std::env::temp_dir().join("miro_ingest_trace.mct");
        std::fs::write(&p, trace.encode().unwrap()).expect("tmp write");
        let report =
            run(&[p.display().to_string(), "--check".into()]).expect("trace ingests");
        assert!(report.contains("MCT1 churn trace, 100 events"), "{report}");
        assert!(report.contains("accepted 8 edges over 6 ASes"), "{report}");
        assert!(report.contains("check ok"), "{report}");

        // A corrupt trace must fail the checksum, not parse as text.
        let mut bad = std::fs::read(&p).unwrap();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        std::fs::write(&p, &bad).unwrap();
        let err = run(&[p.display().to_string(), "--check".into()]).unwrap_err();
        assert!(
            err.contains("checksum") || err.contains("malformed") || err.contains("truncated"),
            "{err}"
        );
    }

    #[test]
    fn missing_file_and_bad_flags_are_errors() {
        assert!(run(&[]).unwrap_err().contains("usage:"));
        let err = run(&["--frob".into()]).unwrap_err();
        assert!(err.contains("unknown option"), "{err}");
    }
}
