//! `miro bench-dataplane` — burst-mode forwarding engine timing at
//! packets-per-second scale.
//!
//! Builds a forwarding engine from *solved* route tables: a preset
//! topology is generated, every destination's stable state is solved with
//! the bucket engine, and the vantage AS's best next hops become LPM
//! entries (one /20 per destination AS). Four MIRO tunnels are installed
//! on top — two driven directly by destination-prefix classifier rules,
//! two behind a hash-split group keyed by the TOS marking of section 3.5.
//!
//! Four synthesized streams then exercise one pipeline stage each, with
//! Zipf-skewed destinations so batches carry the duplicate flows real
//! traffic does:
//!
//! * **forward** — plain destination-based forwarding (LPM + TTL rewrite);
//! * **encap**   — tunnel-bound traffic (classifier → template stamp);
//! * **decap**   — tunnel traffic arriving at the local endpoint;
//! * **split**   — TOS-marked flows fanned across the 2-tunnel group.
//!
//! Each stream is timed through [`Engine::forward_burst`] at every
//! `--batch` size and through the packet-at-a-time [`Engine::forward_one`]
//! baseline (reported as `batch: 1, baseline: true`). A per-packet
//! checksum of every verdict (next hops, tunnel ids, output lengths) must
//! agree across all batch sizes *and* the baseline before anything is
//! reported, and a prefix of each stream is compared byte-for-byte.
//!
//! The LPM amortization is also measured in isolation: one pass of
//! per-packet [`PrefixTrie::lookup`] against [`lookup_batch_copied`] over
//! the same destination sequence. `--check-batch-speedup F` turns that
//! ratio into a hard CI gate — it compares two single-threaded code paths
//! on the same host, so it holds on 1-CPU runners too. `--capture FILE`
//! writes a sample of the encapsulated output packets as pcapng for
//! Wireshark inspection. Results land in `BENCH_dataplane.json`.
//!
//! [`Engine::forward_burst`]: miro_dataplane::burst::Engine::forward_burst
//! [`Engine::forward_one`]: miro_dataplane::burst::Engine::forward_one
//! [`PrefixTrie::lookup`]: miro_dataplane::lpm::PrefixTrie::lookup
//! [`lookup_batch_copied`]: miro_dataplane::lpm::PrefixTrie::lookup_batch_copied

use bytes::Bytes;
use miro_bgp::engine::par_over_dests;
use miro_dataplane::burst::{BurstScratch, Engine, OneVerdict, TunnelSpec, Verdict};
use miro_dataplane::classifier::{Action, Classifier, HashSplitter, Match};
use miro_dataplane::encap;
use miro_dataplane::ipv4::{Ipv4Addr4, Ipv4Header};
use miro_dataplane::lpm::{LookupScratch, Prefix, PrefixTrie};
use miro_dataplane::pcapng;
use miro_topology::gen::DatasetPreset;
use miro_topology::NodeId;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Generation seed: fixed so runs are comparable across machines and PRs.
const SEED: u64 = 42;

/// The engine's local tunnel-endpoint address. Destination prefixes are
/// `node_id << 12` (/20 per AS), so anything under 200.0.0.0 is spoken
/// for only up to ~800k nodes — far above every preset scale here.
const LOCAL: Ipv4Addr4 = Ipv4Addr4([200, 0, 0, 1]);

/// Virtual tunnel id the split group answers to.
const GROUP: u32 = 1000;

/// Topology scales (the route table is the solved preset at the vantage).
struct Scale {
    name: &'static str,
    preset: DatasetPreset,
    factor: f64,
}

const SCALES: &[Scale] = &[
    Scale { name: "tiny", preset: DatasetPreset::Gao2005, factor: 0.01 },
    Scale { name: "small", preset: DatasetPreset::Gao2005, factor: 0.05 },
    Scale { name: "medium", preset: DatasetPreset::Gao2005, factor: 0.5 },
];

/// One timing row: a stage at a batch size (or the baseline).
struct StageRow {
    stage: &'static str,
    batch: usize,
    baseline: bool,
    wall: Duration,
    packets: usize,
}

impl StageRow {
    fn mpps(&self) -> f64 {
        self.packets as f64 / self.wall.as_secs_f64().max(1e-12) / 1e6
    }

    fn ns_per_pkt(&self) -> f64 {
        self.wall.as_secs_f64() * 1e9 / self.packets.max(1) as f64
    }
}

/// The isolated LPM A/B result.
struct LookupRow {
    packets: usize,
    batch: usize,
    single: Duration,
    batched: Duration,
    descents: usize,
    reused: usize,
}

impl LookupRow {
    fn speedup(&self) -> f64 {
        self.single.as_secs_f64() / self.batched.as_secs_f64().max(1e-12)
    }

    fn reused_frac(&self) -> f64 {
        self.reused as f64 / (self.descents + self.reused).max(1) as f64
    }
}

/// Entry point for `miro bench-dataplane [--scale S] [--flows N]
/// [--packets N] [--batch LIST] [--reps N] [--out P] [--capture FILE]
/// [--check-batch-speedup F] [--list]`.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut scale = "small".to_string();
    let mut flows = 4096usize;
    let mut packets = 131_072usize;
    let mut batch_list = "8,64,512,4096".to_string();
    let mut reps = 2u32;
    let mut out_path = "BENCH_dataplane.json".to_string();
    let mut capture: Option<String> = None;
    let mut check_speedup: Option<f64> = None;
    let mut list = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        let num = |name: &str, v: String| -> Result<usize, String> {
            v.parse().map_err(|_| format!("{name} needs a number"))
        };
        match arg.as_str() {
            "--list" => list = true,
            "--scale" => scale = val("--scale")?,
            "--flows" => flows = num("--flows", val("--flows")?)?,
            "--packets" => packets = num("--packets", val("--packets")?)?,
            "--batch" => batch_list = val("--batch")?,
            "--reps" => reps = num("--reps", val("--reps")?)?.max(1) as u32,
            "--out" => out_path = val("--out")?,
            "--capture" => capture = Some(val("--capture")?),
            "--check-batch-speedup" => {
                check_speedup = Some(val("--check-batch-speedup")?.parse().map_err(|_| {
                    "--check-batch-speedup needs a number".to_string()
                })?);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }

    if list {
        let mut out = String::from("bench-dataplane stages:\n");
        out.push_str("  forward  plain LPM forwarding (TTL rewrite, no tunnel)\n");
        out.push_str("  encap    classifier-directed tunnel entry (template stamp)\n");
        out.push_str("  decap    tunnel exit at the local endpoint (outer+shim strip)\n");
        out.push_str("  split    TOS-marked flows hashed across a 2-tunnel group\n");
        out.push_str("scales:\n");
        for sc in SCALES {
            let _ = writeln!(out, "  {:<8} gao2005 factor={}", sc.name, sc.factor);
        }
        out.push_str("row schemas:\n");
        out.push_str(
            "  stages[] = {stage, batch, baseline, ms, mpps, ns_per_pkt}\n",
        );
        out.push_str(
            "  lookup   = {packets, batch, single_ms, batched_ms, speedup, \
             descents, reused, reused_frac}\n",
        );
        return Ok(out);
    }

    if flows == 0 || packets == 0 {
        return Err("--flows and --packets must be at least 1".to_string());
    }
    let batches = select_batches(&batch_list)?;
    let sc = SCALES
        .iter()
        .find(|s| s.name == scale)
        .ok_or(format!("unknown scale {scale:?} (try --list)"))?;

    // ---- Route table from the solved topology -------------------------
    let topo = sc.preset.params(sc.factor, SEED).generate();
    let vantage: NodeId = topo
        .nodes()
        .max_by_key(|&n| topo.neighbors(n).len())
        .ok_or("empty topology")?;
    let dests: Vec<NodeId> = topo.nodes().filter(|&d| d != vantage).collect();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
    let next_hops = par_over_dests(&topo, &dests, threads, move |d, st| {
        st.best(vantage).map(|b| (d, b.next))
    });
    let mut lpm: PrefixTrie<u32> = PrefixTrie::new();
    let mut routable: Vec<NodeId> = Vec::new();
    for (d, next) in next_hops.into_iter().flatten() {
        lpm.insert(dest_prefix(d), next);
        routable.push(d);
    }
    if routable.len() < 8 {
        return Err(format!(
            "vantage AS{} reaches only {} destinations — topology too small",
            topo.asn(vantage),
            routable.len()
        ));
    }

    // ---- Tunnels, classifier, split group -----------------------------
    // Endpoints live inside routed destination prefixes, so their next
    // hops resolve; t1/t2 are entered by destination rule, t3/t4 by the
    // split group.
    let tunnel_dests = [routable[0], routable[1], routable[2], routable[3]];
    let tunnels: Vec<TunnelSpec> = tunnel_dests
        .iter()
        .enumerate()
        .map(|(i, &d)| TunnelSpec {
            id: i as u32 + 1,
            ingress: LOCAL,
            endpoint: Ipv4Addr4::from_u32((d << 12) | 0x123),
        })
        .collect();
    let classifier = Classifier::new(vec![
        (
            Match { dst: Some(dest_prefix(tunnel_dests[0])), ..Default::default() },
            Action::Tunnel(1),
        ),
        (
            Match { dst: Some(dest_prefix(tunnel_dests[1])), ..Default::default() },
            Action::Tunnel(2),
        ),
        (Match { tos: Some(0xb8), ..Default::default() }, Action::Tunnel(GROUP)),
    ]);
    let splitter = HashSplitter::new(vec![(1, 3), (1, 4)]);
    let eng = Engine::new(LOCAL, lpm, classifier, tunnels, vec![(GROUP, splitter)]);

    // ---- Streams ------------------------------------------------------
    // `forward`/`split` draw Zipf-skewed destinations from the routable
    // set (minus the rule-matched prefixes); `encap` dwells entirely in
    // them; `decap` is pre-encapsulated traffic addressed to us.
    let mut rng = Rng::new(SEED);
    let plain_dests: Vec<NodeId> =
        routable.iter().copied().filter(|d| *d != tunnel_dests[0] && *d != tunnel_dests[1]).collect();
    let streams: Vec<(&'static str, Vec<Bytes>)> = vec![
        ("forward", synth_stream(&mut rng, &plain_dests, flows, packets, 0x00, None)),
        (
            "encap",
            synth_stream(&mut rng, &tunnel_dests[..2], flows, packets, 0x00, None),
        ),
        (
            "decap",
            synth_stream(&mut rng, &plain_dests, flows, packets, 0x00, Some(&eng)),
        ),
        ("split", synth_stream(&mut rng, &plain_dests, flows, packets, 0xb8, None)),
    ];

    // ---- Equivalence pin before any timing ----------------------------
    for (stage, frames) in &streams {
        let n = frames.len().min(4096);
        verify_equivalence(&eng, &frames[..n]).map_err(|e| format!("stage {stage}: {e}"))?;
    }

    // ---- Timing -------------------------------------------------------
    let mut report = format!(
        "bench-dataplane: {} nodes, {} routed /20s, {} flows x {} packets per stage\n",
        topo.num_nodes(),
        routable.len(),
        flows,
        packets
    );
    let mut rows: Vec<StageRow> = Vec::new();
    for (stage, frames) in &streams {
        let views: Vec<&[u8]> = frames.iter().map(|f| &f[..]).collect();
        let mut sinks: Vec<u64> = Vec::new();
        for &batch in &batches {
            let (wall, sink) = time_burst(&eng, &views, batch, reps);
            sinks.push(sink);
            rows.push(StageRow { stage, batch, baseline: false, wall, packets: frames.len() });
        }
        let (wall, sink) = time_single(&eng, frames, reps);
        sinks.push(sink);
        rows.push(StageRow { stage, batch: 1, baseline: true, wall, packets: frames.len() });
        // Every batch size and the baseline must have produced identical
        // verdict streams (checksummed over next hops, tunnels, lengths).
        if sinks.windows(2).any(|w| w[0] != w[1]) {
            return Err(format!("stage {stage}: verdict checksums diverge: {sinks:?}"));
        }
        for r in rows.iter().rev().take(batches.len() + 1).collect::<Vec<_>>().into_iter().rev() {
            let tag = if r.baseline { "single" } else { " burst" };
            let _ = writeln!(
                report,
                "  {:<8} {tag} batch {:>4} | {:>8.2} ms | {:>6.2} Mpps | {:>6.1} ns/pkt",
                r.stage,
                r.batch,
                r.wall.as_secs_f64() * 1e3,
                r.mpps(),
                r.ns_per_pkt(),
            );
        }
    }

    // ---- Isolated LPM A/B ---------------------------------------------
    let lookup = time_lookup(&eng, &streams[0].1, batches.iter().copied().max().unwrap_or(8), reps);
    let _ = writeln!(
        report,
        "  lookup   single {:>8.2} ms | batched {:>8.2} ms | {:.2}x | walk reuse {:.0}%",
        lookup.single.as_secs_f64() * 1e3,
        lookup.batched.as_secs_f64() * 1e3,
        lookup.speedup(),
        lookup.reused_frac() * 100.0,
    );

    // ---- Optional pcapng capture of encapsulated output ---------------
    if let Some(path) = &capture {
        let written = capture_encap(&eng, &streams[1].1, path)
            .map_err(|e| format!("cannot write capture {path:?}: {e}"))?;
        let _ = writeln!(report, "  captured {written} encapsulated packets to {path}");
    }

    let json = to_json(sc, &topo, routable.len(), flows, packets, &rows, &lookup);
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path:?}: {e}"))?;
    let _ = writeln!(report, "wrote {out_path}");

    if let Some(floor) = check_speedup {
        if lookup.speedup() < floor {
            return Err(format!(
                "batched lookup regression: {:.2}x < required {floor}x",
                lookup.speedup()
            ));
        }
    }
    Ok(report)
}

/// Destination AS -> its /20 (dense node ids keep this collision-free).
fn dest_prefix(d: NodeId) -> Prefix {
    Prefix::new(Ipv4Addr4::from_u32(d << 12), 20)
}

/// Resolve `--batch`: comma-separated burst sizes, deduped in order;
/// zero or junk anywhere is an error (the bench-solver `--threads`
/// contract).
fn select_batches(list: &str) -> Result<Vec<usize>, String> {
    let mut out: Vec<usize> = Vec::new();
    for part in list.split(',') {
        let b: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("--batch: {part:?} is not a batch size"))?;
        if b == 0 {
            return Err("--batch must be at least 1".to_string());
        }
        if b > 1 << 20 {
            return Err(format!("--batch {b} is absurd (max {})", 1 << 20));
        }
        if !out.contains(&b) {
            out.push(b);
        }
    }
    if out.is_empty() {
        return Err("--batch needs at least one size".to_string());
    }
    Ok(out)
}

/// xorshift64* — the repo's deterministic traffic PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Zipf(1.0) sampler over `n` ranks: weight 1/(rank+1), cumulative
/// table, binary search. Skew makes bursts carry duplicate flows, which
/// is what the flow cache and the sorted batch lookup amortize.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / (i + 1) as f64;
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.cumulative.last().expect("nonempty");
        let u = (rng.next() >> 11) as f64 / (1u64 << 53) as f64 * total;
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }
}

/// Synthesize one stream: `flows` distinct flow keys over `dests`
/// (Zipf-ranked), then `packets` frames sampling those flows Zipf-style.
/// `tos` marks every packet (0xb8 triggers the split group). With
/// `encap_for` the stream is the *decap* workload: each frame is wrapped
/// toward that engine's local endpoint.
fn synth_stream(
    rng: &mut Rng,
    dests: &[NodeId],
    flows: usize,
    packets: usize,
    tos: u8,
    encap_for: Option<&Engine>,
) -> Vec<Bytes> {
    let dest_zipf = Zipf::new(dests.len());
    let mut flow_frames: Vec<Bytes> = Vec::with_capacity(flows);
    for _ in 0..flows {
        let d = dests[dest_zipf.sample(rng)];
        let dst = Ipv4Addr4::from_u32((d << 12) | (rng.next() as u32 & 0xfff));
        let src = Ipv4Addr4::from_u32(0xC801_0000 | (rng.next() as u32 & 0xffff));
        let sport = (rng.next() as u16) | 1024;
        let dport = 443u16;
        let mut payload = Vec::with_capacity(26);
        payload.extend_from_slice(&sport.to_be_bytes());
        payload.extend_from_slice(&dport.to_be_bytes());
        payload.extend_from_slice(&[0xAB; 22]);
        let mut h = Ipv4Header::new(src, dst, 6, payload.len() as u16);
        h.dscp_ecn = tos;
        let frame = h.emit_with_payload(&payload);
        let frame = match encap_for {
            None => frame,
            Some(eng) => {
                let remote = Ipv4Addr4::from_u32((d << 12) | 0x123);
                encap::encapsulate(&frame, remote, eng.local(), 1 + (rng.next() as u32 % 4))
                    .expect("small inner fits")
            }
        };
        flow_frames.push(frame);
    }
    let flow_zipf = Zipf::new(flows);
    (0..packets).map(|_| flow_frames[flow_zipf.sample(rng)].clone()).collect()
}

/// Fold a verdict into a stream checksum: next hops, tunnel ids, error
/// discriminants and output lengths all contribute, so two runs agree iff
/// they made the same per-packet choices.
fn sink_verdict(v: &Verdict) -> u64 {
    match *v {
        Verdict::Forward { next_hop, out } => 1 + next_hop as u64 * 31 + out.len as u64 * 7,
        Verdict::Encap { tunnel, next_hop, out } => {
            2 + tunnel as u64 * 131 + next_hop as u64 * 31 + out.len as u64 * 7
        }
        Verdict::Decap { tunnel, out } => 3 + tunnel as u64 * 131 + out.len as u64 * 7,
        Verdict::Drop => 4,
        Verdict::NoRoute => 5,
        Verdict::TtlExpired => 6,
        Verdict::Malformed(_) => 7,
    }
}

fn sink_one(v: &OneVerdict) -> u64 {
    match v {
        OneVerdict::Forward { next_hop, packet } => {
            1 + *next_hop as u64 * 31 + packet.len() as u64 * 7
        }
        OneVerdict::Encap { tunnel, next_hop, packet } => {
            2 + *tunnel as u64 * 131 + *next_hop as u64 * 31 + packet.len() as u64 * 7
        }
        OneVerdict::Decap { tunnel, packet } => {
            3 + *tunnel as u64 * 131 + packet.len() as u64 * 7
        }
        OneVerdict::Drop => 4,
        OneVerdict::NoRoute => 5,
        OneVerdict::TtlExpired => 6,
        OneVerdict::Malformed(_) => 7,
    }
}

/// Time the burst pipeline over `views` in chunks of `batch` (best-of
/// `reps`); returns the wall time and the verdict checksum.
fn time_burst(eng: &Engine, views: &[&[u8]], batch: usize, reps: u32) -> (Duration, u64) {
    let mut scratch = BurstScratch::new();
    let mut best = Duration::MAX;
    let mut sink = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        let mut s = 0u64;
        for chunk in views.chunks(batch) {
            eng.forward_burst(chunk, &mut scratch);
            for v in scratch.verdicts() {
                s = s.wrapping_add(sink_verdict(v));
            }
        }
        best = best.min(start.elapsed());
        sink = s;
    }
    (best, sink)
}

/// Time the packet-at-a-time baseline over the same stream.
fn time_single(eng: &Engine, frames: &[Bytes], reps: u32) -> (Duration, u64) {
    let mut best = Duration::MAX;
    let mut sink = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        let mut s = 0u64;
        for frame in frames {
            s = s.wrapping_add(sink_one(&eng.forward_one(frame)));
        }
        best = best.min(start.elapsed());
        sink = s;
    }
    (best, sink)
}

/// Per-packet `lookup` vs `lookup_batch_copied` over the stream's
/// destination sequence — the isolated figure `--check-batch-speedup`
/// gates on.
fn time_lookup(eng: &Engine, frames: &[Bytes], batch: usize, reps: u32) -> LookupRow {
    let dsts: Vec<Ipv4Addr4> = frames
        .iter()
        .map(|f| Ipv4Addr4([f[16], f[17], f[18], f[19]]))
        .collect();
    let lpm = eng.lpm();
    let mut single = Duration::MAX;
    let mut hits_single = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        let mut hits = 0usize;
        for &d in &dsts {
            if lpm.lookup(d).is_some() {
                hits += 1;
            }
        }
        single = single.min(start.elapsed());
        hits_single = hits;
    }
    let mut batched = Duration::MAX;
    let mut hits_batched = 0usize;
    let mut descents = 0usize;
    let mut reused = 0usize;
    let mut scratch = LookupScratch::new();
    let mut out: Vec<Option<u32>> = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        let mut hits = 0usize;
        let (mut de, mut re) = (0usize, 0usize);
        for chunk in dsts.chunks(batch) {
            let stats = lpm.lookup_batch_copied(chunk, &mut scratch, &mut out);
            hits += out.iter().filter(|o| o.is_some()).count();
            de += stats.descents;
            re += stats.reused;
        }
        batched = batched.min(start.elapsed());
        hits_batched = hits;
        descents = de;
        reused = re;
    }
    assert_eq!(hits_single, hits_batched, "lookup paths disagree");
    LookupRow { packets: dsts.len(), batch, single, batched, descents, reused }
}

/// Byte-for-byte equivalence of the two paths over a stream prefix.
fn verify_equivalence(eng: &Engine, frames: &[Bytes]) -> Result<(), String> {
    let views: Vec<&[u8]> = frames.iter().map(|f| &f[..]).collect();
    let mut scratch = BurstScratch::new();
    eng.forward_burst(&views, &mut scratch);
    for (i, frame) in frames.iter().enumerate() {
        let one = eng.forward_one(frame);
        let batched = scratch.verdicts()[i];
        let same = match (&one, batched) {
            (OneVerdict::Forward { next_hop: n1, packet }, Verdict::Forward { next_hop, out }) => {
                *n1 == next_hop && &packet[..] == scratch.out_bytes(out)
            }
            (
                OneVerdict::Encap { tunnel: t1, next_hop: n1, packet },
                Verdict::Encap { tunnel, next_hop, out },
            ) => *t1 == tunnel && *n1 == next_hop && &packet[..] == scratch.out_bytes(out),
            (OneVerdict::Decap { tunnel: t1, packet }, Verdict::Decap { tunnel, out }) => {
                *t1 == tunnel && &packet[..] == scratch.out_bytes(out)
            }
            (OneVerdict::Drop, Verdict::Drop)
            | (OneVerdict::NoRoute, Verdict::NoRoute)
            | (OneVerdict::TtlExpired, Verdict::TtlExpired) => true,
            (OneVerdict::Malformed(e1), Verdict::Malformed(e2)) => *e1 == e2,
            _ => false,
        };
        if !same {
            return Err(format!(
                "packet {i}: burst {batched:?} != single-packet {one:?}"
            ));
        }
    }
    Ok(())
}

/// Write up to 256 encapsulated output packets to a pcapng file.
fn capture_encap(eng: &Engine, frames: &[Bytes], path: &str) -> std::io::Result<u64> {
    let n = frames.len().min(256);
    let views: Vec<&[u8]> = frames[..n].iter().map(|f| &f[..]).collect();
    let mut scratch = BurstScratch::new();
    eng.forward_burst(&views, &mut scratch);
    let mut w = pcapng::create(path)?;
    for (i, v) in scratch.verdicts().iter().enumerate() {
        if let Verdict::Encap { out, .. } = v {
            w.write_packet(i as u64, scratch.out_bytes(*out))?;
        }
    }
    let written = w.packets();
    w.finish()?;
    Ok(written)
}

fn to_json(
    sc: &Scale,
    topo: &miro_topology::Topology,
    prefixes: usize,
    flows: usize,
    packets: usize,
    rows: &[StageRow],
    lookup: &LookupRow,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"dataplane-burst\",");
    let _ = writeln!(
        out,
        "  \"engine\": \"burst-preparse-batch-lpm-flow-cache-arena\","
    );
    let _ = writeln!(out, "  \"baseline\": \"forward_one-per-packet-alloc\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(
        out,
        "  \"scale\": \"{}\", \"nodes\": {}, \"prefixes\": {}, \"tunnels\": 4, \
         \"flows\": {}, \"packets\": {},",
        sc.name,
        topo.num_nodes(),
        prefixes,
        flows,
        packets
    );
    let _ = writeln!(out, "  \"stages\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"stage\": \"{}\", \"batch\": {}, \"baseline\": {}, \"ms\": {:.3}, \
             \"mpps\": {:.3}, \"ns_per_pkt\": {:.1}}}{comma}",
            r.stage,
            r.batch,
            r.baseline,
            r.wall.as_secs_f64() * 1e3,
            r.mpps(),
            r.ns_per_pkt(),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"lookup\": {{\"packets\": {}, \"batch\": {}, \"single_ms\": {:.3}, \
         \"batched_ms\": {:.3}, \"speedup\": {:.2}, \"descents\": {}, \"reused\": {}, \
         \"reused_frac\": {:.3}}}",
        lookup.packets,
        lookup.batch,
        lookup.single.as_secs_f64() * 1e3,
        lookup.batched.as_secs_f64() * 1e3,
        lookup.speedup(),
        lookup.descents,
        lookup.reused,
        lookup.reused_frac(),
    );
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const STAGES: &[&str] = &["forward", "encap", "decap", "split"];

    fn arg(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn list_prints_stages_and_schemas() {
        let out = run(&arg("--list")).unwrap();
        for stage in STAGES {
            assert!(out.contains(stage), "{stage} in {out}");
        }
        assert!(out.contains("row schemas:"), "{out}");
        assert!(out.contains("stages[] = {stage, batch, baseline, ms, mpps, ns_per_pkt}"));
        assert!(out.contains("lookup   = {packets, batch, single_ms"));
    }

    #[test]
    fn bad_options_are_rejected() {
        assert!(run(&arg("--frobnicate")).is_err());
        assert!(run(&arg("--scale nosuch")).unwrap_err().contains("unknown scale"));
        assert!(run(&arg("--batch 0")).is_err());
        assert!(run(&arg("--batch 4,x")).is_err());
        assert!(run(&arg("--packets")).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn batch_list_dedupes_but_rejects_junk() {
        assert_eq!(select_batches("8,64,8,512").unwrap(), vec![8, 64, 512]);
        assert!(select_batches("8,,64").is_err());
        assert!(select_batches(&format!("{}", (1usize << 20) + 1)).is_err());
    }

    #[test]
    fn tiny_bench_end_to_end() {
        let out_path = std::env::temp_dir().join("miro_bench_dataplane_test.json");
        let cap_path = std::env::temp_dir().join("miro_bench_dataplane_test.pcapng");
        let report = run(&arg(&format!(
            "--scale tiny --flows 256 --packets 4000 --batch 4,32 --reps 1 \
             --out {} --capture {}",
            out_path.display(),
            cap_path.display()
        )))
        .unwrap();
        for stage in STAGES {
            assert!(report.contains(stage), "{stage} row present: {report}");
        }
        assert!(report.contains("Mpps"), "{report}");
        assert!(report.contains("captured"), "{report}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        let v: serde_json::JsonValue = serde_json::from_str(&json).expect("valid JSON");
        let serde_json::JsonValue::Obj(top) = &v else { panic!("top-level object") };
        let serde_json::JsonValue::Arr(stages) = &top["stages"] else {
            panic!("stages array")
        };
        // 4 stages x (2 batch sizes + baseline).
        assert_eq!(stages.len(), 4 * 3);
        for s in stages {
            let serde_json::JsonValue::Obj(row) = s else { panic!("stage row object") };
            let serde_json::JsonValue::Num(mpps) = row["mpps"] else { panic!("mpps") };
            assert!(mpps > 0.0);
        }
        let serde_json::JsonValue::Obj(lookup) = &top["lookup"] else {
            panic!("lookup object")
        };
        let serde_json::JsonValue::Num(speedup) = lookup["speedup"] else {
            panic!("speedup")
        };
        assert!(speedup > 0.0);
        // The capture is a readable pcapng: SHB magic first.
        let cap = std::fs::read(&cap_path).unwrap();
        assert_eq!(&cap[..4], &0x0A0D_0D0Au32.to_le_bytes());
        assert!(cap.len() > 48, "has packet blocks beyond the preamble");
    }
}
