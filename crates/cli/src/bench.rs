//! `miro bench-solver` — whole-network solve timing at three scales.
//!
//! For each scale, generates a Gao2005-shaped topology and solves the
//! stable state for *every* destination twice:
//!
//! * **bucket** — the CSR bucket-queue engine behind
//!   [`miro_bgp::engine::par_over_dests`]: per-thread scratch arenas,
//!   generation-stamped clearing, lock-free deterministic merge;
//! * **heap** — the retained [`miro_bgp::solver::reference`] engine,
//!   driven the way the pre-CSR code drove it: a fresh `BinaryHeap` and
//!   routing table allocated per destination, results pushed through a
//!   shared `Mutex<Vec>`.
//!
//! Both runs use the same thread count, and the bench asserts their
//! outputs agree before reporting. Results are written to
//! `BENCH_solver.json` (see `--out`) so CI can track the perf trajectory.
//!
//! The `delta` suite times the what-if workload on top: for each sampled
//! destination, one cached base solve plus N random single-link tree
//! failures answered via the incremental delta engine
//! ([`RoutingState::with_failed_link`]), against the same failures
//! answered by full masked re-solves (`solve_without_link_into`, itself
//! allocation-free). Both paths answer the same query per event and the
//! bench asserts the answers agree. `--check-delta-speedup F` turns the
//! reported speedup into a hard gate for CI.

use miro_bgp::engine::par_over_dests;
use miro_bgp::solver::{reference, DeltaScratch, RoutingState, SolveScratch};
use miro_topology::gen::DatasetPreset;
use miro_topology::{NodeId, Topology};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// (name, Gao2005 scale factor, timing repetitions, part of `--scale all`).
/// `tiny` exists so tests and smoke scripts can exercise the full code
/// path in milliseconds; it is excluded from `all`.
const SCALES: &[(&str, f64, u32, bool)] = &[
    ("tiny", 0.01, 1, false),
    ("small", 0.05, 3, true),
    ("medium", 0.5, 1, true),
    ("large", 1.0, 1, true),
];

/// Generation seed: fixed so runs are comparable across machines and PRs.
const SEED: u64 = 42;

struct ScaleRow {
    name: &'static str,
    factor: f64,
    reps: u32,
    nodes: usize,
    edges: usize,
    bucket: Duration,
    heap: Duration,
}

impl ScaleRow {
    fn speedup(&self) -> f64 {
        self.heap.as_secs_f64() / self.bucket.as_secs_f64().max(1e-12)
    }
}

/// The what-if suite result for one scale.
struct DeltaRow {
    name: &'static str,
    dests: usize,
    events: usize,
    /// Total nodes re-routed across every event.
    recomputed: usize,
    incremental: Duration,
    full: Duration,
}

impl DeltaRow {
    fn speedup(&self) -> f64 {
        self.full.as_secs_f64() / self.incremental.as_secs_f64().max(1e-12)
    }

    fn mean_cone(&self) -> f64 {
        self.recomputed as f64 / self.events.max(1) as f64
    }
}

/// Hard cap on `--threads`: beyond this the run is certainly a typo, and
/// `std::thread::scope` would happily spawn them all.
const MAX_THREADS: usize = 1024;

/// Entry point for `miro bench-solver [--scale S] [--threads N] [--out P]
/// [--check-delta-speedup F]`. Returns the human-readable report; the
/// JSON lands in `--out` (default `BENCH_solver.json`).
pub fn run(args: &[String]) -> Result<String, String> {
    let mut scale = "all".to_string();
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out_path = "BENCH_solver.json".to_string();
    let mut check_delta: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scale" => scale = val("--scale")?,
            "--threads" => {
                threads = val("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?;
            }
            "--out" => out_path = val("--out")?,
            "--check-delta-speedup" => {
                check_delta = Some(val("--check-delta-speedup")?.parse().map_err(|_| {
                    "--check-delta-speedup needs a number".to_string()
                })?);
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    if threads > MAX_THREADS {
        return Err(format!("--threads {threads} is absurd (max {MAX_THREADS})"));
    }

    let selected: Vec<_> = if scale == "all" {
        SCALES.iter().filter(|&&(_, _, _, in_all)| in_all).collect()
    } else {
        let found = SCALES.iter().find(|&&(name, ..)| name == scale);
        vec![found.ok_or_else(|| {
            let names: Vec<&str> = SCALES.iter().map(|&(n, ..)| n).collect();
            format!("unknown scale {scale:?} (expected all|{})", names.join("|"))
        })?]
    };

    let mut report = format!("bench-solver: whole-network solves, {threads} thread(s)\n");
    let mut rows = Vec::new();
    let mut delta_rows = Vec::new();
    for &&(name, factor, reps, _) in &selected {
        let topo = DatasetPreset::Gao2005.params(factor, SEED).generate();
        let dests: Vec<NodeId> = topo.nodes().collect();
        let (bucket, heap) = time_engines(&topo, &dests, threads, reps);
        let row = ScaleRow {
            name,
            factor,
            reps,
            nodes: topo.num_nodes(),
            edges: topo.num_edges(),
            bucket,
            heap,
        };
        let _ = writeln!(
            report,
            "  {:<6} {:>6} nodes {:>6} links | bucket {:>9.2} ms | heap {:>9.2} ms | {:.2}x",
            row.name,
            row.nodes,
            row.edges,
            row.bucket.as_secs_f64() * 1e3,
            row.heap.as_secs_f64() * 1e3,
            row.speedup()
        );
        rows.push(row);

        let drow = time_delta_suite(name, &topo, reps);
        let _ = writeln!(
            report,
            "  {:<6} delta: {} dests x {} failures | incremental {:>9.2} ms | full {:>9.2} ms | {:.2}x | mean cone {:.1}",
            drow.name,
            drow.dests,
            drow.events / drow.dests.max(1),
            drow.incremental.as_secs_f64() * 1e3,
            drow.full.as_secs_f64() * 1e3,
            drow.speedup(),
            drow.mean_cone(),
        );
        delta_rows.push(drow);
    }

    let json = to_json(threads, &rows, &delta_rows);
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path:?}: {e}"))?;
    let _ = writeln!(report, "wrote {out_path}");

    if let Some(floor) = check_delta {
        for d in &delta_rows {
            if d.speedup() < floor {
                return Err(format!(
                    "delta speedup regression at scale {:?}: {:.2}x < required {floor}x",
                    d.name,
                    d.speedup()
                ));
            }
        }
    }
    Ok(report)
}

/// Time both engines over every destination; returns the best-of-`reps`
/// wall time for (bucket, heap). Panics if the engines ever disagree.
fn time_engines(
    topo: &Topology,
    dests: &[NodeId],
    threads: usize,
    reps: u32,
) -> (Duration, Duration) {
    let mut bucket = Duration::MAX;
    let mut heap = Duration::MAX;
    let mut check: Option<(Vec<usize>, Vec<usize>)> = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let fast = par_over_dests(topo, dests, threads, |_, st| st.reachable_count());
        bucket = bucket.min(t0.elapsed());

        let t0 = Instant::now();
        let slow = heap_whole_network(topo, dests, threads);
        heap = heap.min(t0.elapsed());
        check = Some((fast, slow));
    }
    let (fast, slow) = check.expect("at least one rep");
    assert_eq!(fast, slow, "bucket and heap engines disagreed");
    (bucket, heap)
}

/// The pre-CSR driver shape: heap solver, fresh allocations per solve,
/// results pushed through a shared mutex, sorted back into order.
fn heap_whole_network(topo: &Topology, dests: &[NodeId], threads: usize) -> Vec<usize> {
    let threads = threads.max(1).min(dests.len().max(1));
    let results: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::with_capacity(dests.len()));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= dests.len() {
                    break;
                }
                let st = reference::solve(topo, dests[i]);
                let count = st.reachable_count();
                results.lock().expect("bench mutex").push((i, count));
            });
        }
    });
    let mut v = results.into_inner().expect("bench mutex");
    v.sort_unstable_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, c)| c).collect()
}

/// Deterministic, dependency-free PRNG for event sampling.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Failures per destination in the delta suite.
const DELTA_EVENTS: usize = 16;
/// Destinations sampled by the delta suite (fewer on tiny graphs).
const DELTA_DESTS: usize = 256;

/// One what-if query's answer, folded into a checksum so the compiler
/// cannot discard the work and the two paths can be compared.
fn query_sig(st: &RoutingState<'_>, v: NodeId) -> u64 {
    match st.best(v) {
        None => 0x9e37,
        Some(r) => ((r.class as u64) << 40) ^ ((r.len as u64) << 20) ^ r.next as u64,
    }
}

/// Time the what-if workload both ways. The planning pass (picking which
/// tree links to fail) and the equivalence spot-checks are untimed; the
/// incremental timing covers the per-destination base solve *plus* every
/// delta, since that base is the cache the approach has to pay for.
fn time_delta_suite(name: &'static str, topo: &Topology, reps: u32) -> DeltaRow {
    let n = topo.num_nodes();
    let stride = (n / DELTA_DESTS).max(1);
    let dests: Vec<NodeId> = (0..n as NodeId).step_by(stride).take(DELTA_DESTS).collect();

    // Plan: for each destination, up to DELTA_EVENTS links its routing
    // tree provably uses (node -> its next hop).
    let mut scratch = SolveScratch::new();
    let mut plan: Vec<(NodeId, Vec<(NodeId, NodeId)>)> = Vec::with_capacity(dests.len());
    for &d in &dests {
        let base = RoutingState::solve_into(topo, d, &mut scratch);
        let mut rng = SEED ^ (d as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut events = Vec::with_capacity(DELTA_EVENTS);
        let mut tries = 0;
        while events.len() < DELTA_EVENTS && tries < DELTA_EVENTS * 8 {
            tries += 1;
            let v = (xorshift(&mut rng) % n as u64) as NodeId;
            if v == d {
                continue;
            }
            if let Some(b) = base.best(v) {
                events.push((v, b.next));
            }
        }
        base.recycle(&mut scratch);
        if !events.is_empty() {
            plan.push((d, events));
        }
    }
    let events: usize = plan.iter().map(|(_, e)| e.len()).sum();

    // Untimed equivalence spot-checks: delta answers == full answers.
    let mut delta = DeltaScratch::new();
    for (d, evs) in plan.iter().take(4) {
        let mut base = RoutingState::solve_into(topo, *d, &mut scratch);
        let (a, b) = evs[0];
        let full = RoutingState::solve_without_link(topo, *d, a, b);
        let failed = base.with_failed_link(a, b, &mut delta);
        for x in topo.nodes() {
            assert_eq!(failed.best(x), full.best(x), "delta diverged from full re-solve");
        }
        drop(failed);
        base.recycle(&mut scratch);
    }

    let mut incremental = Duration::MAX;
    let mut full = Duration::MAX;
    let mut recomputed = 0;
    let mut check: Option<(u64, u64)> = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let mut inc_sig = 0u64;
        recomputed = 0;
        for (d, evs) in &plan {
            let mut base = RoutingState::solve_into(topo, *d, &mut scratch);
            for &(a, b) in evs {
                let failed = base.with_failed_link(a, b, &mut delta);
                recomputed += failed.recomputed();
                inc_sig = inc_sig.wrapping_add(query_sig(&failed, a));
                drop(failed);
            }
            base.recycle(&mut scratch);
        }
        incremental = incremental.min(t0.elapsed());

        let t0 = Instant::now();
        let mut full_sig = 0u64;
        for (d, evs) in &plan {
            for &(a, b) in evs {
                let st = RoutingState::solve_without_link_into(topo, *d, a, b, &mut scratch);
                full_sig = full_sig.wrapping_add(query_sig(&st, a));
                st.recycle(&mut scratch);
            }
        }
        full = full.min(t0.elapsed());
        check = Some((inc_sig, full_sig));
    }
    let (inc_sig, full_sig) = check.expect("at least one rep");
    assert_eq!(inc_sig, full_sig, "incremental and full what-if answers disagreed");
    DeltaRow { name, dests: plan.len(), events, recomputed, incremental, full }
}

fn to_json(threads: usize, rows: &[ScaleRow], delta_rows: &[DeltaRow]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"solver-whole-network\",");
    let _ = writeln!(out, "  \"engine\": \"csr-bucket-queue\",");
    let _ = writeln!(out, "  \"baseline\": \"heap-per-solve-alloc\",");
    let _ = writeln!(out, "  \"preset\": \"gao2005\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"scales\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scale\": \"{}\", \"gao2005_scale\": {}, \"nodes\": {}, \"edges\": {}, \
             \"dests\": {}, \"reps\": {}, \"bucket_ms\": {:.3}, \"heap_ms\": {:.3}, \
             \"speedup\": {:.2}}}{comma}",
            r.name,
            r.factor,
            r.nodes,
            r.edges,
            r.nodes,
            r.reps,
            r.bucket.as_secs_f64() * 1e3,
            r.heap.as_secs_f64() * 1e3,
            r.speedup()
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"delta\": [");
    for (i, r) in delta_rows.iter().enumerate() {
        let comma = if i + 1 < delta_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scale\": \"{}\", \"dests\": {}, \"events\": {}, \
             \"mean_cone\": {:.2}, \"incremental_ms\": {:.3}, \"full_ms\": {:.3}, \
             \"delta_speedup\": {:.2}}}{comma}",
            r.name,
            r.dests,
            r.events,
            r.mean_cone(),
            r.incremental.as_secs_f64() * 1e3,
            r.full.as_secs_f64() * 1e3,
            r.speedup()
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_end_to_end() {
        let out_path = std::env::temp_dir().join("miro_bench_solver_test.json");
        let args: Vec<String> = vec![
            "--scale".into(),
            "tiny".into(),
            "--threads".into(),
            "2".into(),
            "--out".into(),
            out_path.display().to_string(),
        ];
        let report = run(&args).expect("bench runs");
        assert!(report.contains("tiny"), "{report}");
        assert!(report.contains("delta:"), "{report}");
        let json = std::fs::read_to_string(&out_path).expect("json written");
        assert!(json.contains("\"speedup\""), "{json}");
        assert!(json.contains("\"nodes\": 209"), "{json}");
        assert!(json.contains("\"delta_speedup\""), "{json}");
        assert!(json.contains("\"mean_cone\""), "{json}");
    }

    #[test]
    fn unknown_scale_is_an_error() {
        let args: Vec<String> = vec!["--scale".into(), "galactic".into()];
        let err = run(&args).unwrap_err();
        assert!(err.contains("unknown scale"), "{err}");
    }

    #[test]
    fn zero_threads_is_an_error() {
        let args: Vec<String> =
            vec!["--scale".into(), "tiny".into(), "--threads".into(), "0".into()];
        let err = run(&args).unwrap_err();
        assert!(err.contains("--threads must be at least 1"), "{err}");
    }

    #[test]
    fn absurd_threads_is_an_error() {
        let args: Vec<String> =
            vec!["--scale".into(), "tiny".into(), "--threads".into(), "65536".into()];
        let err = run(&args).unwrap_err();
        assert!(err.contains("absurd"), "{err}");
    }

    #[test]
    fn unreachable_delta_floor_fails_the_gate() {
        let out_path = std::env::temp_dir().join("miro_bench_solver_gate_test.json");
        let args: Vec<String> = vec![
            "--scale".into(),
            "tiny".into(),
            "--threads".into(),
            "2".into(),
            "--out".into(),
            out_path.display().to_string(),
            "--check-delta-speedup".into(),
            "1e9".into(),
        ];
        let err = run(&args).unwrap_err();
        assert!(err.contains("delta speedup regression"), "{err}");
    }
}
