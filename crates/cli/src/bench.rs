//! `miro bench-solver` — whole-network solve timing at three scales.
//!
//! For each scale, generates a Gao2005-shaped topology and solves the
//! stable state for *every* destination twice:
//!
//! * **bucket** — the CSR bucket-queue engine behind
//!   [`miro_bgp::engine::par_over_dests`]: per-thread scratch arenas,
//!   generation-stamped clearing, lock-free deterministic merge;
//! * **heap** — the retained [`miro_bgp::solver::reference`] engine,
//!   driven the way the pre-CSR code drove it: a fresh `BinaryHeap` and
//!   routing table allocated per destination, results pushed through a
//!   shared `Mutex<Vec>`.
//!
//! Both runs use the same thread count, and the bench asserts their
//! outputs agree before reporting. Results are written to
//! `BENCH_solver.json` (see `--out`) so CI can track the perf trajectory.

use miro_bgp::engine::par_over_dests;
use miro_bgp::solver::reference;
use miro_topology::gen::DatasetPreset;
use miro_topology::{NodeId, Topology};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// (name, Gao2005 scale factor, timing repetitions, part of `--scale all`).
/// `tiny` exists so tests and smoke scripts can exercise the full code
/// path in milliseconds; it is excluded from `all`.
const SCALES: &[(&str, f64, u32, bool)] = &[
    ("tiny", 0.01, 1, false),
    ("small", 0.05, 3, true),
    ("medium", 0.5, 1, true),
    ("large", 1.0, 1, true),
];

/// Generation seed: fixed so runs are comparable across machines and PRs.
const SEED: u64 = 42;

struct ScaleRow {
    name: &'static str,
    factor: f64,
    reps: u32,
    nodes: usize,
    edges: usize,
    bucket: Duration,
    heap: Duration,
}

impl ScaleRow {
    fn speedup(&self) -> f64 {
        self.heap.as_secs_f64() / self.bucket.as_secs_f64().max(1e-12)
    }
}

/// Entry point for `miro bench-solver [--scale S] [--threads N] [--out P]`.
/// Returns the human-readable report; the JSON lands in `--out`
/// (default `BENCH_solver.json`).
pub fn run(args: &[String]) -> Result<String, String> {
    let mut scale = "all".to_string();
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out_path = "BENCH_solver.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scale" => scale = val("--scale")?,
            "--threads" => {
                threads = val("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?;
            }
            "--out" => out_path = val("--out")?,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let threads = threads.max(1);

    let selected: Vec<_> = if scale == "all" {
        SCALES.iter().filter(|&&(_, _, _, in_all)| in_all).collect()
    } else {
        let found = SCALES.iter().find(|&&(name, ..)| name == scale);
        vec![found.ok_or_else(|| {
            let names: Vec<&str> = SCALES.iter().map(|&(n, ..)| n).collect();
            format!("unknown scale {scale:?} (expected all|{})", names.join("|"))
        })?]
    };

    let mut report = format!("bench-solver: whole-network solves, {threads} thread(s)\n");
    let mut rows = Vec::new();
    for &&(name, factor, reps, _) in &selected {
        let topo = DatasetPreset::Gao2005.params(factor, SEED).generate();
        let dests: Vec<NodeId> = topo.nodes().collect();
        let (bucket, heap) = time_engines(&topo, &dests, threads, reps);
        let row = ScaleRow {
            name,
            factor,
            reps,
            nodes: topo.num_nodes(),
            edges: topo.num_edges(),
            bucket,
            heap,
        };
        let _ = writeln!(
            report,
            "  {:<6} {:>6} nodes {:>6} links | bucket {:>9.2} ms | heap {:>9.2} ms | {:.2}x",
            row.name,
            row.nodes,
            row.edges,
            row.bucket.as_secs_f64() * 1e3,
            row.heap.as_secs_f64() * 1e3,
            row.speedup()
        );
        rows.push(row);
    }

    let json = to_json(threads, &rows);
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path:?}: {e}"))?;
    let _ = writeln!(report, "wrote {out_path}");
    Ok(report)
}

/// Time both engines over every destination; returns the best-of-`reps`
/// wall time for (bucket, heap). Panics if the engines ever disagree.
fn time_engines(
    topo: &Topology,
    dests: &[NodeId],
    threads: usize,
    reps: u32,
) -> (Duration, Duration) {
    let mut bucket = Duration::MAX;
    let mut heap = Duration::MAX;
    let mut check: Option<(Vec<usize>, Vec<usize>)> = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let fast = par_over_dests(topo, dests, threads, |_, st| st.reachable_count());
        bucket = bucket.min(t0.elapsed());

        let t0 = Instant::now();
        let slow = heap_whole_network(topo, dests, threads);
        heap = heap.min(t0.elapsed());
        check = Some((fast, slow));
    }
    let (fast, slow) = check.expect("at least one rep");
    assert_eq!(fast, slow, "bucket and heap engines disagreed");
    (bucket, heap)
}

/// The pre-CSR driver shape: heap solver, fresh allocations per solve,
/// results pushed through a shared mutex, sorted back into order.
fn heap_whole_network(topo: &Topology, dests: &[NodeId], threads: usize) -> Vec<usize> {
    let threads = threads.max(1).min(dests.len().max(1));
    let results: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::with_capacity(dests.len()));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= dests.len() {
                    break;
                }
                let st = reference::solve(topo, dests[i]);
                let count = st.reachable_count();
                results.lock().expect("bench mutex").push((i, count));
            });
        }
    });
    let mut v = results.into_inner().expect("bench mutex");
    v.sort_unstable_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, c)| c).collect()
}

fn to_json(threads: usize, rows: &[ScaleRow]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"solver-whole-network\",");
    let _ = writeln!(out, "  \"engine\": \"csr-bucket-queue\",");
    let _ = writeln!(out, "  \"baseline\": \"heap-per-solve-alloc\",");
    let _ = writeln!(out, "  \"preset\": \"gao2005\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"scales\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scale\": \"{}\", \"gao2005_scale\": {}, \"nodes\": {}, \"edges\": {}, \
             \"dests\": {}, \"reps\": {}, \"bucket_ms\": {:.3}, \"heap_ms\": {:.3}, \
             \"speedup\": {:.2}}}{comma}",
            r.name,
            r.factor,
            r.nodes,
            r.edges,
            r.nodes,
            r.reps,
            r.bucket.as_secs_f64() * 1e3,
            r.heap.as_secs_f64() * 1e3,
            r.speedup()
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_end_to_end() {
        let out_path = std::env::temp_dir().join("miro_bench_solver_test.json");
        let args: Vec<String> = vec![
            "--scale".into(),
            "tiny".into(),
            "--threads".into(),
            "2".into(),
            "--out".into(),
            out_path.display().to_string(),
        ];
        let report = run(&args).expect("bench runs");
        assert!(report.contains("tiny"), "{report}");
        let json = std::fs::read_to_string(&out_path).expect("json written");
        assert!(json.contains("\"speedup\""), "{json}");
        assert!(json.contains("\"nodes\": 209"), "{json}");
    }

    #[test]
    fn unknown_scale_is_an_error() {
        let args: Vec<String> = vec!["--scale".into(), "galactic".into()];
        let err = run(&args).unwrap_err();
        assert!(err.contains("unknown scale"), "{err}");
    }
}
