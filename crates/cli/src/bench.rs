//! `miro bench-solver` — whole-network solve timing across scales, from
//! the 209-node smoke graph up to the 70k-AS `internet` preset.
//!
//! For each scale, generates the preset topology and solves the
//! stable state for *every* destination twice:
//!
//! * **bucket** — the CSR bucket-queue engine behind
//!   [`miro_bgp::engine::par_over_dests`]: per-thread scratch arenas,
//!   generation-stamped clearing, lock-free deterministic merge;
//! * **heap** — the retained [`miro_bgp::solver::reference`] engine,
//!   driven the way the pre-CSR code drove it: a fresh `BinaryHeap` and
//!   routing table allocated per destination, results pushed through a
//!   shared `Mutex<Vec>`, always at 1 thread (it is the fixed historical
//!   baseline, and may be stride-sampled — comparisons against it are
//!   per-destination-normalized and labeled `heap_sampled`).
//!
//! The bucket engine runs once per entry in the `--threads` list
//! (default `1,2,4,8,16`), producing one thread-scaling row each:
//! `threads`, wall `ms`, `speedup_vs_1t`, and parallel `efficiency`
//! (speedup over the thread count, capped at the machine's available
//! parallelism so a core-starved host isn't blamed for not scaling).
//! The bench asserts every engine/thread-count combination agrees before
//! reporting. Results are written to `BENCH_solver.json` (see `--out`)
//! so CI can track the perf trajectory; `--check-scaling F` turns the
//! multi-thread efficiency rows into a hard CI gate.
//!
//! The `delta` suite times the what-if workload on top: for each sampled
//! destination, one cached base solve plus N random single-link tree
//! failures answered via the incremental delta engine
//! ([`RoutingState::with_failed_link`]), against the same failures
//! answered by full masked re-solves (`solve_without_link_into`, itself
//! allocation-free). Both paths answer the same query per event and the
//! bench asserts the answers agree. `--check-delta-speedup F` turns the
//! reported speedup into a hard gate for CI.

use miro_bgp::engine::par_over_dests;
use miro_bgp::solver::{reference, DeltaScratch, RoutingState, SolveScratch};
use miro_topology::gen::DatasetPreset;
use miro_topology::{NodeId, Topology};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One benchmark scale. `tiny` exists so tests and smoke scripts can
/// exercise the full code path in milliseconds; `internet` is the
/// RouteViews-shaped 70k-AS graph and is run on demand (`--scale
/// internet`), not as part of `all` — a whole-network bucket sweep over
/// 70k destinations is minutes of work, not CI material.
#[derive(Debug)]
struct Scale {
    name: &'static str,
    preset: DatasetPreset,
    /// Multiplier on the preset's calibrated node count.
    factor: f64,
    /// Timing repetitions (best-of).
    reps: u32,
    /// Included in `--scale all`.
    in_all: bool,
    /// The heap baseline solves every `heap_stride`-th destination. 1
    /// means the full sweep; `internet` samples, because the per-solve
    /// allocating baseline would take roughly an hour there while the
    /// bucket engine finishes in minutes. Speedups are normalized
    /// per-destination, so sampled and full rows stay comparable.
    heap_stride: usize,
}

const SCALES: &[Scale] = &[
    Scale {
        name: "tiny",
        preset: DatasetPreset::Gao2005,
        factor: 0.01,
        reps: 1,
        in_all: false,
        heap_stride: 1,
    },
    Scale {
        name: "small",
        preset: DatasetPreset::Gao2005,
        factor: 0.05,
        reps: 3,
        in_all: true,
        heap_stride: 1,
    },
    Scale {
        name: "medium",
        preset: DatasetPreset::Gao2005,
        factor: 0.5,
        reps: 1,
        in_all: true,
        heap_stride: 1,
    },
    Scale {
        name: "large",
        preset: DatasetPreset::Gao2005,
        factor: 1.0,
        reps: 1,
        in_all: true,
        heap_stride: 1,
    },
    Scale {
        name: "internet",
        preset: DatasetPreset::InternetScale,
        factor: 1.0,
        reps: 1,
        in_all: false,
        heap_stride: 64,
    },
];

/// Generation seed: fixed so runs are comparable across machines and PRs.
const SEED: u64 = 42;

/// One bucket-engine timing at one thread count.
struct ThreadRow {
    threads: usize,
    wall: Duration,
}

struct ScaleRow {
    name: &'static str,
    preset: &'static str,
    factor: f64,
    reps: u32,
    nodes: usize,
    edges: usize,
    /// Thread-scaling rows, one per `--threads` entry, in list order.
    rows: Vec<ThreadRow>,
    /// Destinations the heap baseline actually solved (== `nodes` when
    /// `heap_stride` is 1; fewer means the baseline was stride-sampled).
    heap_dests: usize,
    heap: Duration,
}

impl ScaleRow {
    /// The 1-thread bucket wall time, if the ladder included one — the
    /// reference `speedup_vs_1t`/`efficiency` are computed against.
    fn t1(&self) -> Option<Duration> {
        self.rows.iter().find(|r| r.threads == 1).map(|r| r.wall)
    }

    /// Was the heap baseline stride-sampled rather than a full sweep?
    fn heap_sampled(&self) -> bool {
        self.heap_dests != self.nodes
    }

    fn heap_ms_per_dest(&self) -> f64 {
        self.heap.as_secs_f64() * 1e3 / self.heap_dests.max(1) as f64
    }

    /// 1-thread bucket ms per destination (the single-solve latency the
    /// frontier packing attacks). Falls back to the first row when the
    /// ladder skipped 1 thread.
    fn bucket_ms_per_dest(&self) -> f64 {
        let wall = self.t1().unwrap_or_else(|| self.rows[0].wall);
        wall.as_secs_f64() * 1e3 / self.nodes.max(1) as f64
    }

    /// Per-destination heap/bucket speedup: the honest apples-to-apples
    /// figure whatever the sampling (`heap_ms_per_dest / bucket_ms_per_dest`).
    fn speedup_per_dest(&self) -> f64 {
        self.heap_ms_per_dest() / self.bucket_ms_per_dest().max(1e-12)
    }

    fn speedup_vs_1t(&self, row: &ThreadRow) -> Option<f64> {
        self.t1().map(|t1| t1.as_secs_f64() / row.wall.as_secs_f64().max(1e-12))
    }

    /// Parallel efficiency: `speedup_vs_1t / min(threads, cores)`. The
    /// denominator is capped at the machine's available parallelism so
    /// rows measured on a core-starved host (or oversubscribed thread
    /// counts) are judged against what the hardware could ever deliver.
    fn efficiency(&self, row: &ThreadRow) -> Option<f64> {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let ideal = row.threads.min(cores).max(1) as f64;
        self.speedup_vs_1t(row).map(|s| s / ideal)
    }
}

/// The what-if suite result for one scale.
struct DeltaRow {
    name: &'static str,
    dests: usize,
    events: usize,
    /// Total nodes re-routed across every event.
    recomputed: usize,
    incremental: Duration,
    full: Duration,
}

impl DeltaRow {
    fn speedup(&self) -> f64 {
        self.full.as_secs_f64() / self.incremental.as_secs_f64().max(1e-12)
    }

    fn mean_cone(&self) -> f64 {
        self.recomputed as f64 / self.events.max(1) as f64
    }
}

/// The sharded whole-table suite result for one scale (only with
/// `--shard-workers N`, which needs the real `miro` binary on argv[0]
/// so workers can be spawned — the default 0 skips it).
struct ShardRow {
    name: &'static str,
    workers: usize,
    /// Solver threads each worker subprocess runs with (the thread
    /// budget split across workers).
    threads_per_worker: usize,
    dests: usize,
    blocks: usize,
    deaths: usize,
    sharded: Duration,
    single: Duration,
    bytes: usize,
}

impl ShardRow {
    fn speedup(&self) -> f64 {
        self.single.as_secs_f64() / self.sharded.as_secs_f64().max(1e-12)
    }
}

/// Hard cap on `--threads`: beyond this the run is certainly a typo, and
/// `std::thread::scope` would happily spawn them all.
const MAX_THREADS: usize = 1024;

/// Entry point for `miro bench-solver [--scale S] [--threads LIST]
/// [--out P] [--check-delta-speedup F] [--check-scaling F] [--list]`.
/// Returns the human-readable report; the JSON lands in `--out` (default
/// `BENCH_solver.json`).
pub fn run(args: &[String]) -> Result<String, String> {
    let mut scale = "all".to_string();
    let mut threads_list = "1,2,4,8,16".to_string();
    let mut out_path = "BENCH_solver.json".to_string();
    let mut check_delta: Option<f64> = None;
    let mut check_scaling: Option<f64> = None;
    let mut shard_workers = 0usize;
    let mut list = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--list" => list = true,
            "--scale" => scale = val("--scale")?,
            "--threads" => threads_list = val("--threads")?,
            "--out" => out_path = val("--out")?,
            "--check-delta-speedup" => {
                check_delta = Some(val("--check-delta-speedup")?.parse().map_err(|_| {
                    "--check-delta-speedup needs a number".to_string()
                })?);
            }
            "--check-scaling" => {
                check_scaling = Some(val("--check-scaling")?.parse().map_err(|_| {
                    "--check-scaling needs a number".to_string()
                })?);
            }
            "--shard-workers" => {
                shard_workers = val("--shard-workers")?
                    .parse()
                    .map_err(|_| "--shard-workers needs a number".to_string())?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let thread_counts = select_threads(&threads_list)?;

    if list {
        let mut out = String::from("bench-solver scales:\n");
        for sc in SCALES {
            let _ = writeln!(
                out,
                "  {:<8} preset={:<12} factor={:<5} reps={} in_all={} heap_stride={}",
                sc.name,
                preset_slug(sc.preset),
                sc.factor,
                sc.reps,
                sc.in_all,
                sc.heap_stride
            );
        }
        out.push_str("row schemas:\n");
        out.push_str(
            "  scales[]       = {scale, preset, preset_scale, nodes, edges, dests, reps, \
             rows[], heap{}, bucket_ms_per_dest, heap_ms_per_dest, speedup_per_dest}\n",
        );
        out.push_str("  scales[].rows[] = {threads, ms, speedup_vs_1t, efficiency}\n");
        out.push_str(
            "  scales[].heap   = {threads, dests, sampled, ms, ms_per_dest}\n",
        );
        out.push_str(
            "  delta[]        = {scale, threads, dests, events, mean_cone, incremental_ms, \
             full_ms, delta_speedup}\n",
        );
        out.push_str(
            "  shard[]        = {scale, workers, threads_per_worker, dests, blocks, deaths, \
             table_bytes, sharded_ms, single_ms, shard_speedup}\n",
        );
        return Ok(out);
    }

    let selected = select_scales(&scale)?;

    let mut report = format!(
        "bench-solver: whole-network solves, threads {}\n",
        thread_counts.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",")
    );
    let mut rows = Vec::new();
    let mut delta_rows = Vec::new();
    let mut shard_rows = Vec::new();
    for sc in selected {
        let topo = sc.preset.params(sc.factor, SEED).generate();
        let dests: Vec<NodeId> = topo.nodes().collect();
        let (thread_rows, heap, heap_dests) =
            time_engines(&topo, &dests, &thread_counts, sc.reps, sc.heap_stride);
        let row = ScaleRow {
            name: sc.name,
            preset: preset_slug(sc.preset),
            factor: sc.factor,
            reps: sc.reps,
            nodes: topo.num_nodes(),
            edges: topo.num_edges(),
            rows: thread_rows,
            heap_dests,
            heap,
        };
        let sampled = if row.heap_sampled() {
            format!(" (heap sampled {heap_dests} dests)")
        } else {
            String::new()
        };
        let _ = writeln!(
            report,
            "  {:<8} {:>6} nodes {:>6} links | heap(1t) {:>9.2} ms | {:.2}x per dest{}",
            row.name,
            row.nodes,
            row.edges,
            row.heap.as_secs_f64() * 1e3,
            row.speedup_per_dest(),
            sampled
        );
        for tr in &row.rows {
            let vs = row
                .speedup_vs_1t(tr)
                .map_or("     -".to_string(), |s| format!("{s:5.2}x"));
            let eff = row
                .efficiency(tr)
                .map_or("   -".to_string(), |e| format!("{e:4.2}"));
            let _ = writeln!(
                report,
                "  {:<8}   bucket {:>2}t | {:>9.2} ms | vs 1t {vs} | eff {eff}",
                row.name,
                tr.threads,
                tr.wall.as_secs_f64() * 1e3,
            );
        }
        rows.push(row);

        let drow = time_delta_suite(sc.name, &topo, sc.reps);
        let _ = writeln!(
            report,
            "  {:<8} delta: {} dests x {} failures | incremental {:>9.2} ms | full {:>9.2} ms | {:.2}x | mean cone {:.1}",
            drow.name,
            drow.dests,
            drow.events / drow.dests.max(1),
            drow.incremental.as_secs_f64() * 1e3,
            drow.full.as_secs_f64() * 1e3,
            drow.speedup(),
            drow.mean_cone(),
        );
        delta_rows.push(drow);

        if shard_workers > 0 {
            let budget = thread_counts.iter().copied().max().unwrap_or(1);
            let srow = time_shard_suite(sc, &topo, shard_workers, budget)?;
            let _ = writeln!(
                report,
                "  {:<8} shard: {} dests / {} blocks over {} workers | sharded {:>9.2} ms | single {:>9.2} ms | {:.2}x | deaths {}",
                srow.name,
                srow.dests,
                srow.blocks,
                srow.workers,
                srow.sharded.as_secs_f64() * 1e3,
                srow.single.as_secs_f64() * 1e3,
                srow.speedup(),
                srow.deaths,
            );
            shard_rows.push(srow);
        }
    }

    let json = to_json(&rows, &delta_rows, &shard_rows);
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path:?}: {e}"))?;
    let _ = writeln!(report, "wrote {out_path}");

    if let Some(floor) = check_delta {
        for d in &delta_rows {
            if d.speedup() < floor {
                return Err(format!(
                    "delta speedup regression at scale {:?}: {:.2}x < required {floor}x",
                    d.name,
                    d.speedup()
                ));
            }
        }
    }
    if let Some(floor) = check_scaling {
        let mut gated = 0;
        for r in &rows {
            if r.t1().is_none() {
                return Err(
                    "--check-scaling needs a 1-thread reference row (include 1 in --threads)"
                        .to_string(),
                );
            }
            for tr in r.rows.iter().filter(|tr| tr.threads > 1) {
                gated += 1;
                let eff = r.efficiency(tr).expect("1t row exists");
                if eff < floor {
                    return Err(format!(
                        "parallel efficiency regression at scale {:?}, {} threads: \
                         {eff:.2} < required {floor}",
                        r.name, tr.threads
                    ));
                }
            }
        }
        if gated == 0 {
            return Err(
                "--check-scaling gated nothing: include a multi-thread count in --threads"
                    .to_string(),
            );
        }
    }
    Ok(report)
}

/// Resolve `--threads`: a comma-separated list of thread counts, run in
/// order (the same dedupe-but-reject-unknowns contract as `--scale`):
/// repeats collapse, while a zero, unparsable, or absurd entry anywhere
/// in the list is an error even alongside valid ones.
fn select_threads(list: &str) -> Result<Vec<usize>, String> {
    let mut counts: Vec<usize> = Vec::new();
    for part in list.split(',') {
        let t: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("--threads: {part:?} is not a thread count"))?;
        if t == 0 {
            return Err("--threads must be at least 1".to_string());
        }
        if t > MAX_THREADS {
            return Err(format!("--threads {t} is absurd (max {MAX_THREADS})"));
        }
        if !counts.contains(&t) {
            counts.push(t);
        }
    }
    Ok(counts)
}

/// Resolve `--scale`: a comma-separated list of scale names, where `all`
/// expands to the CI-sized scales (`--scale all,internet` records
/// everything). Repeats are deduplicated — `all,internet,internet` runs
/// the internet row once — but an unknown name anywhere in the list is
/// still an error, even alongside valid ones.
fn select_scales(scale: &str) -> Result<Vec<&'static Scale>, String> {
    let mut selected: Vec<&'static Scale> = Vec::new();
    let mut push = |sc: &'static Scale| {
        if !selected.iter().any(|have| std::ptr::eq(*have, sc)) {
            selected.push(sc);
        }
    };
    for part in scale.split(',') {
        if part == "all" {
            for sc in SCALES.iter().filter(|sc| sc.in_all) {
                push(sc);
            }
        } else {
            let found = SCALES.iter().find(|sc| sc.name == part).ok_or_else(|| {
                let names: Vec<&str> = SCALES.iter().map(|sc| sc.name).collect();
                format!("unknown scale {part:?} (expected all|{})", names.join("|"))
            })?;
            push(found);
        }
    }
    Ok(selected)
}

/// JSON/report identifier for a preset, matching the historical
/// `"preset": "gao2005"` spelling.
fn preset_slug(preset: DatasetPreset) -> &'static str {
    match preset {
        DatasetPreset::Gao2000 => "gao2000",
        DatasetPreset::Gao2003 => "gao2003",
        DatasetPreset::Gao2005 => "gao2005",
        DatasetPreset::Agarwal2004 => "agarwal2004",
        DatasetPreset::InternetScale => "internet70k",
    }
}

/// Time the bucket engine once per thread count in `thread_counts`
/// (best-of-`reps` each), plus the 1-thread heap baseline over every
/// `heap_stride`-th destination. Returns the thread-scaling rows, the
/// heap wall time, and how many destinations the heap run covered.
/// Panics if any engine/thread-count combination disagrees with another
/// on a destination both solved.
fn time_engines(
    topo: &Topology,
    dests: &[NodeId],
    thread_counts: &[usize],
    reps: u32,
    heap_stride: usize,
) -> (Vec<ThreadRow>, Duration, usize) {
    let heap_dests: Vec<NodeId> =
        dests.iter().copied().step_by(heap_stride.max(1)).collect();

    let mut rows = Vec::with_capacity(thread_counts.len());
    let mut reference: Option<Vec<usize>> = None;
    for &threads in thread_counts {
        let mut wall = Duration::MAX;
        let mut fast: Vec<usize> = Vec::new();
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            fast = par_over_dests(topo, dests, threads, |_, st| st.reachable_count());
            wall = wall.min(t0.elapsed());
        }
        match &reference {
            None => reference = Some(fast),
            Some(want) => assert_eq!(
                &fast, want,
                "bucket engine at {threads} threads diverged from {} threads",
                thread_counts[0]
            ),
        }
        rows.push(ThreadRow { threads, wall });
    }
    let fast = reference.expect("at least one thread count");

    let mut heap = Duration::MAX;
    let mut slow: Vec<usize> = Vec::new();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        slow = heap_whole_network(topo, &heap_dests, 1);
        heap = heap.min(t0.elapsed());
    }
    for (i, s) in slow.iter().enumerate() {
        let full_idx = i * heap_stride.max(1);
        assert_eq!(
            fast[full_idx], *s,
            "bucket and heap engines disagreed at destination index {full_idx}"
        );
    }
    (rows, heap, heap_dests.len())
}

/// The pre-CSR driver shape: heap solver, fresh allocations per solve,
/// results pushed through a shared mutex, sorted back into order.
fn heap_whole_network(topo: &Topology, dests: &[NodeId], threads: usize) -> Vec<usize> {
    let threads = threads.max(1).min(dests.len().max(1));
    let results: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::with_capacity(dests.len()));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= dests.len() {
                    break;
                }
                let st = reference::solve(topo, dests[i]);
                let count = st.reachable_count();
                results.lock().expect("bench mutex").push((i, count));
            });
        }
    });
    let mut v = results.into_inner().expect("bench mutex");
    v.sort_unstable_by_key(|&(i, _)| i);
    v.into_iter().map(|(_, c)| c).collect()
}

/// Deterministic, dependency-free PRNG for event sampling.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Failures per destination in the delta suite.
const DELTA_EVENTS: usize = 16;
/// Destinations sampled by the delta suite (fewer on tiny graphs).
const DELTA_DESTS: usize = 256;

/// One what-if query's answer, folded into a checksum so the compiler
/// cannot discard the work and the two paths can be compared.
fn query_sig(st: &RoutingState<'_>, v: NodeId) -> u64 {
    match st.best(v) {
        None => 0x9e37,
        Some(r) => ((r.class as u64) << 40) ^ ((r.len as u64) << 20) ^ r.next as u64,
    }
}

/// Time the what-if workload both ways. The planning pass (picking which
/// tree links to fail) and the equivalence spot-checks are untimed; the
/// incremental timing covers the per-destination base solve *plus* every
/// delta, since that base is the cache the approach has to pay for.
fn time_delta_suite(name: &'static str, topo: &Topology, reps: u32) -> DeltaRow {
    let n = topo.num_nodes();
    let stride = (n / DELTA_DESTS).max(1);
    let dests: Vec<NodeId> = (0..n as NodeId).step_by(stride).take(DELTA_DESTS).collect();

    // Plan: for each destination, up to DELTA_EVENTS links its routing
    // tree provably uses (node -> its next hop).
    let mut scratch = SolveScratch::new();
    let mut plan: Vec<(NodeId, Vec<(NodeId, NodeId)>)> = Vec::with_capacity(dests.len());
    for &d in &dests {
        let base = RoutingState::solve_into(topo, d, &mut scratch);
        let mut rng = SEED ^ (d as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut events = Vec::with_capacity(DELTA_EVENTS);
        let mut tries = 0;
        while events.len() < DELTA_EVENTS && tries < DELTA_EVENTS * 8 {
            tries += 1;
            let v = (xorshift(&mut rng) % n as u64) as NodeId;
            if v == d {
                continue;
            }
            if let Some(b) = base.best(v) {
                events.push((v, b.next));
            }
        }
        base.recycle(&mut scratch);
        if !events.is_empty() {
            plan.push((d, events));
        }
    }
    let events: usize = plan.iter().map(|(_, e)| e.len()).sum();

    // Untimed equivalence spot-checks: delta answers == full answers.
    let mut delta = DeltaScratch::new();
    for (d, evs) in plan.iter().take(4) {
        let mut base = RoutingState::solve_into(topo, *d, &mut scratch);
        let (a, b) = evs[0];
        let full = RoutingState::solve_without_link(topo, *d, a, b);
        let failed = base.with_failed_link(a, b, &mut delta);
        for x in topo.nodes() {
            assert_eq!(failed.best(x), full.best(x), "delta diverged from full re-solve");
        }
        drop(failed);
        base.recycle(&mut scratch);
    }

    let mut incremental = Duration::MAX;
    let mut full = Duration::MAX;
    let mut recomputed = 0;
    let mut check: Option<(u64, u64)> = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let mut inc_sig = 0u64;
        recomputed = 0;
        for (d, evs) in &plan {
            let mut base = RoutingState::solve_into(topo, *d, &mut scratch);
            for &(a, b) in evs {
                let failed = base.with_failed_link(a, b, &mut delta);
                recomputed += failed.recomputed();
                inc_sig = inc_sig.wrapping_add(query_sig(&failed, a));
                drop(failed);
            }
            base.recycle(&mut scratch);
        }
        incremental = incremental.min(t0.elapsed());

        let t0 = Instant::now();
        let mut full_sig = 0u64;
        for (d, evs) in &plan {
            for &(a, b) in evs {
                let st = RoutingState::solve_without_link_into(topo, *d, a, b, &mut scratch);
                full_sig = full_sig.wrapping_add(query_sig(&st, a));
                st.recycle(&mut scratch);
            }
        }
        full = full.min(t0.elapsed());
        check = Some((inc_sig, full_sig));
    }
    let (inc_sig, full_sig) = check.expect("at least one rep");
    assert_eq!(inc_sig, full_sig, "incremental and full what-if answers disagreed");
    DeltaRow { name, dests: plan.len(), events, recomputed, incremental, full }
}

/// Destinations the shard suite samples per scale (full table on graphs
/// at or under this size).
const SHARD_DESTS: usize = 512;

/// Run the whole-table workload through `miro shard-solve`'s coordinator
/// (spawning real `shard-worker` subprocesses of this same binary) and
/// through one in-process `par_over_dests` reference, assert the merged
/// bytes are identical, and report both wall times.
fn time_shard_suite(
    sc: &Scale,
    topo: &Topology,
    workers: usize,
    threads: usize,
) -> Result<ShardRow, String> {
    use miro_shard::coordinator::{self, JobSpec, ProcessSpawner};
    use miro_shard::format::RouteTableSet;

    let sample = SHARD_DESTS.min(topo.num_nodes());
    let dests = miro_shard::sample_dests(topo.num_nodes(), sample);
    let block_size = dests.len().div_ceil(workers * 4).max(1);
    let threads_per_worker = (threads / workers).max(1);
    let spec_args = miro_shard::TopoSpec::Preset {
        preset: preset_slug_cli(sc.preset).to_string(),
        factor: sc.factor,
        seed: SEED,
    };
    let program = std::env::current_exe()
        .map_err(|e| format!("cannot locate the miro binary for shard workers: {e}"))?;
    let mut worker_args = vec!["shard-worker".to_string()];
    worker_args.extend(spec_args.to_args());
    worker_args.extend([
        "--dests".into(),
        sample.to_string(),
        "--threads".into(),
        threads_per_worker.to_string(),
        "--heartbeat-ms".into(),
        "250".into(),
    ]);
    let dir = std::env::temp_dir().join(format!("miro_bench_shard_{}_{}", sc.name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let job = JobSpec {
        dests: dests.clone(),
        num_nodes: topo.num_nodes() as u32,
        num_edges: topo.num_edges() as u32,
        block_size,
        block_order: Some(miro_bgp::engine::heavy_blocks_first(topo, &dests, block_size)),
        workers,
        state_dir: dir.join("state"),
        out_path: dir.join("table.mirt"),
        resume: false,
        heartbeat_deadline: Duration::from_millis(10_000),
        respawn_budget: workers,
        chaos_kill_after: None,
        chaos_stop_after: None,
        progress: None,
    };
    let t0 = Instant::now();
    let mut spawner = ProcessSpawner { program, args: worker_args };
    let rep = coordinator::run(&job, &mut spawner)?;
    let sharded = t0.elapsed();

    let t0 = Instant::now();
    let reference = RouteTableSet::from_solves(topo, &dests, threads).encode();
    let single = t0.elapsed();

    let merged = std::fs::read(&job.out_path)
        .map_err(|e| format!("cannot read merged shard table: {e}"))?;
    if merged != reference {
        return Err(format!(
            "shard suite: merged table ({} bytes) differs from in-process reference ({} bytes) at scale {:?}",
            merged.len(),
            reference.len(),
            sc.name
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(ShardRow {
        name: sc.name,
        workers,
        threads_per_worker,
        dests: dests.len(),
        blocks: rep.blocks,
        deaths: rep.deaths,
        sharded,
        single,
        bytes: merged.len(),
    })
}

/// The preset spelling `miro shard-worker --preset` accepts (the
/// `internet` scale's JSON slug is `internet70k`, but the CLI spells it
/// `internet`).
fn preset_slug_cli(preset: DatasetPreset) -> &'static str {
    match preset {
        DatasetPreset::InternetScale => "internet",
        other => preset_slug(other),
    }
}

/// Render an optional float as a JSON number or `null` (rows measured
/// without a 1-thread reference have no speedup/efficiency).
fn json_opt(v: Option<f64>) -> String {
    v.map_or("null".to_string(), |v| format!("{v:.2}"))
}

fn to_json(rows: &[ScaleRow], delta_rows: &[DeltaRow], shard_rows: &[ShardRow]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"solver-whole-network\",");
    let _ = writeln!(out, "  \"engine\": \"csr-bucket-queue-packed-frontier\",");
    let _ = writeln!(out, "  \"baseline\": \"heap-per-solve-alloc (1 thread, stride-sampled)\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"scales\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scale\": \"{}\", \"preset\": \"{}\", \"preset_scale\": {}, \
             \"nodes\": {}, \"edges\": {}, \"dests\": {}, \"reps\": {},",
            r.name, r.preset, r.factor, r.nodes, r.edges, r.nodes, r.reps,
        );
        let _ = writeln!(out, "     \"rows\": [");
        for (j, tr) in r.rows.iter().enumerate() {
            let tcomma = if j + 1 < r.rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "       {{\"threads\": {}, \"ms\": {:.3}, \"speedup_vs_1t\": {}, \
                 \"efficiency\": {}}}{tcomma}",
                tr.threads,
                tr.wall.as_secs_f64() * 1e3,
                json_opt(r.speedup_vs_1t(tr)),
                json_opt(r.efficiency(tr)),
            );
        }
        let _ = writeln!(out, "     ],");
        let _ = writeln!(
            out,
            "     \"heap\": {{\"threads\": 1, \"dests\": {}, \"sampled\": {}, \
             \"ms\": {:.3}, \"ms_per_dest\": {:.4}}},",
            r.heap_dests,
            r.heap_sampled(),
            r.heap.as_secs_f64() * 1e3,
            r.heap_ms_per_dest(),
        );
        let _ = writeln!(
            out,
            "     \"bucket_ms_per_dest\": {:.4}, \"heap_ms_per_dest\": {:.4}, \
             \"speedup_per_dest\": {:.2}}}{comma}",
            r.bucket_ms_per_dest(),
            r.heap_ms_per_dest(),
            r.speedup_per_dest(),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"delta\": [");
    for (i, r) in delta_rows.iter().enumerate() {
        let comma = if i + 1 < delta_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scale\": \"{}\", \"threads\": 1, \"dests\": {}, \"events\": {}, \
             \"mean_cone\": {:.2}, \"incremental_ms\": {:.3}, \"full_ms\": {:.3}, \
             \"delta_speedup\": {:.2}}}{comma}",
            r.name,
            r.dests,
            r.events,
            r.mean_cone(),
            r.incremental.as_secs_f64() * 1e3,
            r.full.as_secs_f64() * 1e3,
            r.speedup()
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"shard\": [");
    for (i, r) in shard_rows.iter().enumerate() {
        let comma = if i + 1 < shard_rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scale\": \"{}\", \"workers\": {}, \"threads_per_worker\": {}, \
             \"dests\": {}, \"blocks\": {}, \
             \"deaths\": {}, \"table_bytes\": {}, \"sharded_ms\": {:.3}, \"single_ms\": {:.3}, \
             \"shard_speedup\": {:.2}}}{comma}",
            r.name,
            r.workers,
            r.threads_per_worker,
            r.dests,
            r.blocks,
            r.deaths,
            r.bytes,
            r.sharded.as_secs_f64() * 1e3,
            r.single.as_secs_f64() * 1e3,
            r.speedup()
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_end_to_end() {
        let out_path = std::env::temp_dir().join("miro_bench_solver_test.json");
        let args: Vec<String> = vec![
            "--scale".into(),
            "tiny".into(),
            "--threads".into(),
            "1,2".into(),
            "--out".into(),
            out_path.display().to_string(),
        ];
        let report = run(&args).expect("bench runs");
        assert!(report.contains("tiny"), "{report}");
        assert!(report.contains("delta:"), "{report}");
        assert!(report.contains("bucket  1t"), "{report}");
        assert!(report.contains("bucket  2t"), "{report}");
        let json = std::fs::read_to_string(&out_path).expect("json written");
        assert!(json.contains("\"nodes\": 209"), "{json}");
        assert!(json.contains("\"threads\": 1"), "{json}");
        assert!(json.contains("\"threads\": 2"), "{json}");
        assert!(json.contains("\"speedup_vs_1t\""), "{json}");
        assert!(json.contains("\"efficiency\""), "{json}");
        assert!(json.contains("\"heap_ms_per_dest\""), "{json}");
        assert!(json.contains("\"bucket_ms_per_dest\""), "{json}");
        assert!(json.contains("\"speedup_per_dest\""), "{json}");
        assert!(json.contains("\"sampled\": false"), "{json}");
        // The stale whole-file thread count is gone: `threads` now lives
        // inside each suite's rows.
        assert!(!json.contains("\n  \"threads\""), "{json}");
    }

    #[test]
    fn no_1t_row_reports_null_speedups() {
        let out_path = std::env::temp_dir().join("miro_bench_solver_no1t_test.json");
        let args: Vec<String> = vec![
            "--scale".into(),
            "tiny".into(),
            "--threads".into(),
            "2".into(),
            "--out".into(),
            out_path.display().to_string(),
        ];
        run(&args).expect("bench runs");
        let json = std::fs::read_to_string(&out_path).expect("json written");
        assert!(json.contains("\"speedup_vs_1t\": null"), "{json}");
        assert!(json.contains("\"efficiency\": null"), "{json}");
    }

    #[test]
    fn list_shows_every_scale_without_running() {
        let report = run(&["--list".into()]).expect("--list works");
        for sc in SCALES {
            assert!(report.contains(sc.name), "{report}");
        }
        assert!(report.contains("internet"), "{report}");
        assert!(report.contains("internet70k"), "{report}");
        assert!(report.contains("heap_stride=64"), "{report}");
        // The row schemas are part of the contract: CI greps for them.
        assert!(report.contains("row schemas:"), "{report}");
        assert!(report.contains("speedup_vs_1t"), "{report}");
        assert!(report.contains("efficiency"), "{report}");
        assert!(report.contains("threads_per_worker"), "{report}");
        assert!(report.contains("ms_per_dest"), "{report}");
    }

    #[test]
    fn thread_lists_dedupe_but_still_reject_bad_entries() {
        assert_eq!(select_threads("1,2,4").unwrap(), vec![1, 2, 4]);
        // Repeats collapse, first occurrence wins the position.
        assert_eq!(select_threads("2,1,2,8,1").unwrap(), vec![2, 1, 8]);
        assert_eq!(select_threads(" 1 , 2 ").unwrap(), vec![1, 2]);
        // A bad entry is an error even when valid counts surround it.
        let err = select_threads("1,0,2").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = select_threads("1,65536").unwrap_err();
        assert!(err.contains("absurd"), "{err}");
        let err = select_threads("1,two").unwrap_err();
        assert!(err.contains("not a thread count"), "{err}");
    }

    #[test]
    fn unknown_scale_is_an_error() {
        let args: Vec<String> = vec!["--scale".into(), "galactic".into()];
        let err = run(&args).unwrap_err();
        assert!(err.contains("unknown scale"), "{err}");
    }

    #[test]
    fn scale_lists_dedupe_but_still_reject_unknown_names() {
        let names = |scales: Vec<&'static Scale>| -> Vec<&'static str> {
            scales.into_iter().map(|sc| sc.name).collect()
        };
        // `all` expands once; the explicit repeats of `internet` collapse.
        assert_eq!(
            names(select_scales("all,internet,internet").unwrap()),
            vec!["small", "medium", "large", "internet"]
        );
        // Repeats inside and across `all` collapse too.
        assert_eq!(names(select_scales("small,all,small").unwrap()), vec![
            "small", "medium", "large"
        ]);
        assert_eq!(names(select_scales("tiny,tiny").unwrap()), vec!["tiny"]);
        // An unknown name is an error even when valid names surround it.
        let err = select_scales("all,galactic,internet").unwrap_err();
        assert!(err.contains("galactic"), "{err}");
    }

    #[test]
    fn zero_threads_is_an_error() {
        let args: Vec<String> =
            vec!["--scale".into(), "tiny".into(), "--threads".into(), "0".into()];
        let err = run(&args).unwrap_err();
        assert!(err.contains("--threads must be at least 1"), "{err}");
    }

    #[test]
    fn absurd_threads_is_an_error() {
        let args: Vec<String> =
            vec!["--scale".into(), "tiny".into(), "--threads".into(), "65536".into()];
        let err = run(&args).unwrap_err();
        assert!(err.contains("absurd"), "{err}");
    }

    #[test]
    fn unreachable_delta_floor_fails_the_gate() {
        let out_path = std::env::temp_dir().join("miro_bench_solver_gate_test.json");
        let args: Vec<String> = vec![
            "--scale".into(),
            "tiny".into(),
            "--threads".into(),
            "2".into(),
            "--out".into(),
            out_path.display().to_string(),
            "--check-delta-speedup".into(),
            "1e9".into(),
        ];
        let err = run(&args).unwrap_err();
        assert!(err.contains("delta speedup regression"), "{err}");
    }

    #[test]
    fn check_scaling_needs_a_1t_reference() {
        let out_path = std::env::temp_dir().join("miro_bench_scaling_no1t.json");
        let args: Vec<String> = vec![
            "--scale".into(),
            "tiny".into(),
            "--threads".into(),
            "2,4".into(),
            "--out".into(),
            out_path.display().to_string(),
            "--check-scaling".into(),
            "0.0".into(),
        ];
        let err = run(&args).unwrap_err();
        assert!(err.contains("1-thread reference"), "{err}");
    }

    #[test]
    fn check_scaling_needs_a_parallel_row() {
        let out_path = std::env::temp_dir().join("miro_bench_scaling_only1t.json");
        let args: Vec<String> = vec![
            "--scale".into(),
            "tiny".into(),
            "--threads".into(),
            "1".into(),
            "--out".into(),
            out_path.display().to_string(),
            "--check-scaling".into(),
            "0.0".into(),
        ];
        let err = run(&args).unwrap_err();
        assert!(err.contains("gated nothing"), "{err}");
    }

    #[test]
    fn unreachable_scaling_floor_fails_the_gate() {
        let out_path = std::env::temp_dir().join("miro_bench_scaling_gate.json");
        let args: Vec<String> = vec![
            "--scale".into(),
            "tiny".into(),
            "--threads".into(),
            "1,2".into(),
            "--out".into(),
            out_path.display().to_string(),
            "--check-scaling".into(),
            "1e9".into(),
        ];
        let err = run(&args).unwrap_err();
        assert!(err.contains("parallel efficiency regression"), "{err}");
    }
}
