//! `miro` — an interactive / scriptable simulator shell.
//!
//! Operators explore MIRO the way they explore BGP: load a topology, look
//! at tables, poke at negotiations, fail links, watch state react. The
//! shell is line-oriented and deterministic, so sessions double as
//! reproducible scripts (`miro < scenario.txt`).
//!
//! ```text
//! miro> gen gao2005 0.01 42
//! miro> show topology
//! miro> show ip bgp 111 to 937
//! miro> candidates 111 to 937
//! miro> negotiate 111 with 222 to 937 avoid 555 budget 250 policy e
//! miro> leases
//! miro> fail link 333 555
//! miro> quit
//! ```
//!
//! Every command is implemented in [`Repl::exec`], which returns the
//! response text — the binary is a thin stdin/stdout loop around it, and
//! the tests drive it directly.

pub mod bench;
pub mod bench_dataplane;
pub mod bench_query;
pub mod churn_cmd;
pub mod ingest;
pub mod serve_cmd;
pub mod shard_cmd;

use miro_bgp::show;
use miro_bgp::solver::RoutingState;
use miro_core::export::ExportPolicy;
use miro_core::negotiate::Constraint;
use miro_core::node::{Lease, MiroNetwork, ResponderConfig};
use miro_core::strategy::avoid_via_multihop_negotiation;
use miro_core::strategy::TargetStrategy;
use miro_topology::gen::DatasetPreset;
use miro_topology::{io as topo_io, AsId, NodeId, Topology};
use std::fmt::Write as _;

/// The shell state. The loaded topology is intentionally leaked
/// (`Box::leak`): a shell session loads a handful of topologies at most,
/// and the `'static` borrow keeps the live [`MiroNetwork`] simple.
pub struct Repl {
    topo: Option<&'static Topology>,
    net: Option<MiroNetwork<'static>>,
    clock_step: u64,
    keepalive_timeout: u64,
}

impl Default for Repl {
    fn default() -> Self {
        Self::new()
    }
}

impl Repl {
    pub fn new() -> Repl {
        Repl { topo: None, net: None, clock_step: 10, keepalive_timeout: 30 }
    }

    fn install(&mut self, topo: Topology) -> String {
        let leaked: &'static Topology = Box::leak(Box::new(topo));
        self.topo = Some(leaked);
        self.net = Some(MiroNetwork::new(leaked));
        format!(
            "loaded topology: {} ASes, {} links",
            leaked.num_nodes(),
            leaked.num_edges()
        )
    }

    fn node(&self, asn: u32) -> Result<(NodeId, &'static Topology), String> {
        let topo = self.topo.ok_or("no topology loaded (use `gen` or `load`)")?;
        let n = topo.node(AsId(asn)).ok_or(format!("unknown AS {asn}"))?;
        Ok((n, topo))
    }

    /// Execute one command line; returns the response text.
    pub fn exec(&mut self, line: &str) -> Result<String, String> {
        let words: Vec<&str> = line.split_whitespace().collect();
        let num = |s: &str| -> Result<u32, String> {
            s.parse().map_err(|_| format!("not a number: {s:?}"))
        };
        match words.as_slice() {
            [] | ["#", ..] => Ok(String::new()),
            ["help"] => Ok(HELP.to_string()),
            ["gen", preset, scale, seed] => {
                let preset = match *preset {
                    "gao2000" => DatasetPreset::Gao2000,
                    "gao2003" => DatasetPreset::Gao2003,
                    "gao2005" => DatasetPreset::Gao2005,
                    "agarwal2004" => DatasetPreset::Agarwal2004,
                    "internet" => DatasetPreset::InternetScale,
                    "fig1.1" | "fig1-1" => {
                        let (t, _) = miro_topology::gen::figure_1_1();
                        return Ok(self.install(t));
                    }
                    other => return Err(format!("unknown preset {other:?}")),
                };
                let scale: f64 = scale.parse().map_err(|_| "bad scale".to_string())?;
                let seed: u64 = seed.parse().map_err(|_| "bad seed".to_string())?;
                Ok(self.install(preset.params(scale, seed).generate()))
            }
            ["load", path] => {
                // The streaming parser, so the shell can load real CAIDA
                // snapshots (either text format, lenient about dups).
                let f = std::fs::File::open(path)
                    .map_err(|e| format!("cannot read {path:?}: {e}"))?;
                let (topo, _) = topo_io::stream::parse(std::io::BufReader::new(f))
                    .map_err(|e| e.to_string())?;
                Ok(self.install(topo))
            }
            ["save", path] => {
                let topo = self.topo.ok_or("no topology loaded")?;
                std::fs::write(path, topo_io::to_text(topo))
                    .map_err(|e| format!("cannot write {path:?}: {e}"))?;
                Ok(format!("saved {} links to {path}", topo.num_edges()))
            }
            ["show", "topology"] => {
                let topo = self.topo.ok_or("no topology loaded")?;
                let census = miro_topology::stats::link_census(topo);
                Ok(format!(
                    "{} ASes, {} links (P/C {}, peering {}, sibling {}); \
                     {} stubs ({} multi-homed), {} leaves",
                    census.nodes,
                    census.edges,
                    census.pc_links,
                    census.peering_links,
                    census.sibling_links,
                    census.stubs,
                    census.multihomed_stubs,
                    census.leaves
                ))
            }
            ["show", "ip", "bgp", asn, "to", dest] => {
                let (x, topo) = self.node(num(asn)?)?;
                let (d, _) = self.node(num(dest)?)?;
                let st = RoutingState::solve(topo, d);
                let rows = show::show_ip_bgp(&st, x);
                if rows.is_empty() {
                    return Ok(format!("AS{asn} has no route to AS{dest}"));
                }
                Ok(show::format_table(&rows))
            }
            ["candidates", asn, "to", dest] => {
                let (x, topo) = self.node(num(asn)?)?;
                let (d, _) = self.node(num(dest)?)?;
                let st = RoutingState::solve(topo, d);
                let best = st.path(x);
                let mut out = String::new();
                for c in st.candidates(x) {
                    let tag = if Some(&c.path) == best.as_ref() { "*" } else { " " };
                    let _ = writeln!(
                        out,
                        "{tag} {:?} [{}]",
                        c.class,
                        c.path
                            .iter()
                            .map(|&h| topo.asn(h).0.to_string())
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                }
                Ok(out)
            }
            ["negotiate", src, "with", responder, "to", dest, rest @ ..]
            | ["multihop", src, "with", responder, "to", dest, rest @ ..] => {
                let multihop = words[0] == "multihop";
                let (s, topo) = self.node(num(src)?)?;
                let (r, _) = self.node(num(responder)?)?;
                let (d, _) = self.node(num(dest)?)?;
                let mut avoid: Option<NodeId> = None;
                let mut budget = u32::MAX;
                let mut policy = ExportPolicy::RespectExport;
                let mut it = rest.iter();
                while let Some(&w) = it.next() {
                    match w {
                        "avoid" => {
                            let a = num(it.next().ok_or("avoid needs an AS")?)?;
                            avoid = Some(self.node(a)?.0);
                        }
                        "budget" => {
                            budget = num(it.next().ok_or("budget needs a value")?)?;
                        }
                        "policy" => {
                            policy = match *it.next().ok_or("policy needs s|e|a")? {
                                "s" => ExportPolicy::Strict,
                                "e" => ExportPolicy::RespectExport,
                                "a" => ExportPolicy::Flexible,
                                other => return Err(format!("unknown policy {other:?}")),
                            };
                        }
                        other => return Err(format!("unknown option {other:?}")),
                    }
                }
                let st = RoutingState::solve(topo, d);
                if multihop {
                    let a = avoid.ok_or("multihop needs `avoid <asn>`")?;
                    let out = avoid_via_multihop_negotiation(
                        &st,
                        s,
                        a,
                        policy,
                        TargetStrategy::OnPath,
                        None,
                    );
                    return Ok(match out.chosen {
                        Some((resp, route)) => format!(
                            "success via AS{} after {} contacts / {} paths: [{}]",
                            topo.asn(resp),
                            out.ases_contacted,
                            out.paths_received,
                            route
                                .path
                                .iter()
                                .map(|&h| topo.asn(h).0.to_string())
                                .collect::<Vec<_>>()
                                .join(" ")
                        ),
                        None => format!(
                            "failed after {} contacts / {} paths",
                            out.ases_contacted, out.paths_received
                        ),
                    });
                }
                let net = self.net.as_mut().ok_or("no topology loaded")?;
                net.configure(r, ResponderConfig { policy, ..Default::default() });
                let constraints: Vec<Constraint> =
                    avoid.into_iter().map(Constraint::AvoidAs).collect();
                match net.negotiate(&st, s, r, constraints, budget) {
                    Ok(tid) => {
                        let lease = net
                            .leases()
                            .iter()
                            .find(|l| l.id == tid)
                            .expect("fresh lease recorded");
                        Ok(format!(
                            "tunnel {} established: AS{} buys [{}] from AS{} at price {}",
                            tid.0,
                            topo.asn(lease.upstream),
                            lease
                                .path
                                .iter()
                                .map(|&h| topo.asn(h).0.to_string())
                                .collect::<Vec<_>>()
                                .join(" "),
                            topo.asn(lease.downstream),
                            lease.price
                        ))
                    }
                    Err(e) => Err(format!("negotiation failed: {e}")),
                }
            }
            ["leases"] => {
                let topo = self.topo.ok_or("no topology loaded")?;
                let net = self.net.as_ref().ok_or("no topology loaded")?;
                if net.leases().is_empty() {
                    return Ok("no live leases".to_string());
                }
                let mut out = String::new();
                for Lease { id, downstream, upstream, dest, path, price, .. } in net.leases() {
                    let _ = writeln!(
                        out,
                        "tunnel {}: AS{} -> AS{} for AS{} via [{}] price {}",
                        id.0,
                        topo.asn(*upstream),
                        topo.asn(*downstream),
                        topo.asn(*dest),
                        path.iter()
                            .map(|&h| topo.asn(h).0.to_string())
                            .collect::<Vec<_>>()
                            .join(" "),
                        price
                    );
                }
                Ok(out)
            }
            ["tick"] => {
                let net = self.net.as_mut().ok_or("no topology loaded")?;
                net.tick(self.clock_step, self.keepalive_timeout);
                Ok(format!("t={} ({} lease(s) live)", net.clock, net.leases().len()))
            }
            ["fail", "link", a, b] => {
                let (na, topo) = self.node(num(a)?)?;
                let (nb, _) = self.node(num(b)?)?;
                if topo.rel(na, nb).is_none() {
                    return Err(format!("no link between AS{a} and AS{b}"));
                }
                // Rebuild the topology without the link; existing leases
                // are re-checked against the new routing states.
                let mut bld = miro_topology::TopologyBuilder::new();
                for x in topo.nodes() {
                    bld.intern_as(topo.asn(x));
                }
                for x in topo.nodes() {
                    for &(y, rel) in topo.neighbors(x) {
                        if x < y && !(x == na && y == nb) && !(x == nb && y == na) {
                            bld.link(topo.asn(x), topo.asn(y), rel);
                        }
                    }
                }
                let new_topo = bld.build().map_err(|e| e.to_string())?;
                // Capture live lease destinations before swapping.
                let dests: Vec<AsId> = self
                    .net
                    .as_ref()
                    .map(|n| n.leases().iter().map(|l| topo.asn(l.dest)).collect())
                    .unwrap_or_default();
                let before = self.net.as_ref().map(|n| n.leases().len()).unwrap_or(0);
                let msg_prefix = self.install(new_topo);
                // Leases do not survive a topology swap in this shell (node
                // ids may change); report what was dropped.
                Ok(format!(
                    "{msg_prefix}; link AS{a}-AS{b} removed; {} lease(s) dropped (dests: {:?})",
                    before, dests
                ))
            }
            ["quit"] | ["exit"] => Ok("bye".to_string()),
            other => Err(format!("unknown command {:?} (try `help`)", other.join(" "))),
        }
    }

    /// Run a whole script; each line's output is prefixed with the line.
    pub fn run_script(&mut self, script: &str) -> String {
        let mut out = String::new();
        for line in script.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let _ = writeln!(out, "miro> {trimmed}");
            match self.exec(trimmed) {
                Ok(s) if s.is_empty() => {}
                Ok(s) => {
                    let _ = writeln!(out, "{}", s.trim_end());
                }
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                }
            }
            if trimmed == "quit" || trimmed == "exit" {
                break;
            }
        }
        out
    }
}

const HELP: &str = "\
commands:
  gen <gao2000|gao2003|gao2005|agarwal2004|internet|fig1.1> <scale> <seed>
  load <path> | save <path>
  show topology
  show ip bgp <asn> to <dest-asn>
  candidates <asn> to <dest-asn>
  negotiate <src> with <responder> to <dest> [avoid <asn>] [budget N] [policy s|e|a]
  multihop  <src> with <responder> to <dest> avoid <asn> [policy s|e|a]
  leases | tick | fail link <a> <b>
  help | quit";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_1_session_end_to_end() {
        let mut repl = Repl::new();
        let out = repl.run_script(
            "gen fig1.1 1 1\n\
             show topology\n\
             show ip bgp 1 to 6\n\
             candidates 2 to 6\n\
             negotiate 1 with 2 to 6 avoid 5 budget 250 policy e\n\
             leases\n\
             tick\n\
             quit\n",
        );
        assert!(out.contains("6 ASes, 8 links"), "{out}");
        assert!(out.contains("*> "), "best route rendered: {out}");
        assert!(out.contains("tunnel 0 established"), "{out}");
        assert!(out.contains("AS1 buys [3 6] from AS2 at price 180"), "{out}");
        assert!(out.contains("tunnel 0: AS1 -> AS2 for AS6 via [3 6] price 180"), "{out}");
        assert!(out.contains("bye"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut repl = Repl::new();
        let out = repl.run_script(
            "show topology\n\
             gen fig1.1 1 1\n\
             negotiate 1 with 2 to 6 avoid 6\n\
             frobnicate\n\
             negotiate 99 with 2 to 6\n",
        );
        assert!(out.contains("error: no topology loaded"));
        assert!(out.contains("error: negotiation failed"));
        assert!(out.contains("error: unknown command"));
        assert!(out.contains("error: unknown AS 99"));
    }

    #[test]
    fn multihop_command_reports_the_composed_path() {
        // The multihop fixture from miro-core, driven through the shell.
        let mut repl = Repl::new();
        let dir = std::env::temp_dir().join("miro_cli_test_topo.txt");
        let text = "2 1 c\n2 4 c\n2 3 c\n3 4 c\n3 6 c\n4 5 c\n6 5 c\n";
        std::fs::write(&dir, text).expect("tmp write");
        let out = repl.run_script(&format!(
            "load {}\nmultihop 1 with 2 to 5 avoid 4 policy e\n",
            dir.display()
        ));
        assert!(out.contains("success via AS2"), "{out}");
        assert!(out.contains("[3 6 5]"), "{out}");
    }

    #[test]
    fn generated_datasets_work_in_the_shell() {
        let mut repl = Repl::new();
        let out = repl.run_script("gen gao2005 0.01 7\nshow topology\n");
        assert!(out.contains("209 ASes"), "{out}");
        assert!(out.contains("stubs"), "{out}");
    }

    #[test]
    fn save_and_reload_round_trip() {
        let mut repl = Repl::new();
        let path = std::env::temp_dir().join("miro_cli_roundtrip.txt");
        let script = format!(
            "gen fig1.1 1 1\nsave {p}\nload {p}\nshow topology\n",
            p = path.display()
        );
        let out = repl.run_script(&script);
        assert!(out.contains("saved 8 links"), "{out}");
        let shows: Vec<&str> =
            out.lines().filter(|l| l.contains("6 ASes, 8 links")).collect();
        assert!(shows.len() >= 2, "both loads agree: {out}");
    }

    #[test]
    fn fail_link_reconverges_routes() {
        let mut repl = Repl::new();
        let out = repl.run_script(
            "gen fig1.1 1 1\n\
             negotiate 1 with 2 to 6 avoid 5 budget 250 policy e\n\
             fail link 3 6\n\
             show ip bgp 2 to 6\n",
        );
        // The C-F (3-6) link is gone: B's only candidate is now via E.
        assert!(out.contains("lease(s) dropped"), "{out}");
        let table = out.split("show ip bgp").nth(1).expect("table output");
        assert!(table.contains("5 6"), "B routes via E after the failure: {out}");
        assert!(!table.contains("3 6"), "the dead link is gone: {out}");
    }
}
