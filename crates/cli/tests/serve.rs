//! End-to-end serving-plane smoke: the real `miro serve` daemon as a
//! subprocess, driven by the real `miro bench-query` client — the same
//! choreography CI's serve-smoke step runs, pinned here so a broken
//! handshake, port file, shutdown path, or bench schema fails `cargo
//! test` before it fails CI.

use miro_shard::format::RouteTableSet;
use miro_shard::{sample_dests, TopoSpec};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// The topology both sides must agree on — the daemon re-derives it from
/// these flags, so the table is solved over exactly this spec.
const TOPO: &[&str] = &["--preset", "gao2005", "--factor", "0.01", "--seed", "42"];

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("miro_serve_e2e_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Solve a small table over TOPO and write it where the daemon will map
/// it.
fn solve_table(dir: &std::path::Path) -> PathBuf {
    let topo = TopoSpec::Preset { preset: "gao2005".into(), factor: 0.01, seed: 42 }
        .build()
        .unwrap();
    let dests = sample_dests(topo.num_nodes(), 32);
    let set = RouteTableSet::from_solves(&topo, &dests, 2);
    let path = dir.join("table.mirt");
    std::fs::write(&path, set.encode()).unwrap();
    path
}

/// Spawn the daemon on an ephemeral port and wait for it to publish the
/// bound address via `--port-file`.
fn spawn_daemon(dir: &std::path::Path, table: &std::path::Path) -> (Child, String) {
    let port_file = dir.join("serve.port");
    let mut args: Vec<String> =
        vec!["serve".into(), table.to_str().unwrap().into()];
    args.extend(TOPO.iter().map(|s| s.to_string()));
    args.extend([
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--port-file".into(),
        port_file.to_str().unwrap().into(),
        "--quiet".into(),
    ]);
    let child = Command::new(env!("CARGO_BIN_EXE_miro"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn miro serve");

    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                break s;
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote {port_file:?}");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

fn bench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_miro"))
        .arg("bench-query")
        .args(args)
        .output()
        .expect("spawn miro bench-query")
}

#[test]
fn daemon_serves_bench_query_and_shuts_down_cleanly() {
    let dir = fresh_dir("smoke");
    let table = solve_table(&dir);
    let (mut daemon, addr) = spawn_daemon(&dir, &table);

    let out_json = dir.join("bench.json");
    let r = bench(&[
        "--addr", &addr,
        "--conns", "2",
        "--queries", "400",
        "--sample", "32",
        "--out", out_json.to_str().unwrap(),
        "--check-qps", "1",
        "--shutdown",
    ]);
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(
        r.status.success(),
        "bench exit {:?}\nstdout: {stdout}\nstderr: {}",
        r.status,
        String::from_utf8_lossy(&r.stderr)
    );
    assert!(stdout.contains("qps"), "{stdout}");

    // The bench's --shutdown must take the daemon down cleanly — a
    // normal exit, not a kill, within a generous window.
    let deadline = Instant::now() + Duration::from_secs(15);
    let status = loop {
        if let Some(status) = daemon.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() >= deadline {
            daemon.kill().ok();
            panic!("daemon did not exit after --shutdown");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "daemon exit: {status:?}");

    // Its lifetime report counts the bench's connections (2 workers + 1
    // control connection) and a nonzero query total.
    let mut daemon_out = String::new();
    use std::io::Read as _;
    daemon.stdout.take().unwrap().read_to_string(&mut daemon_out).unwrap();
    assert!(daemon_out.contains("serve: done — 3 connections"), "{daemon_out}");

    // The lifetime report surfaces the ShardedCache counters. 400
    // queries over a 32-dest sample must both hit and miss: the first
    // touch of each (src, dest) pair misses, repeats hit.
    assert!(daemon_out.contains("cache:"), "{daemon_out}");
    assert!(daemon_out.contains("hits"), "{daemon_out}");
    assert!(daemon_out.contains("misses"), "{daemon_out}");
    assert!(daemon_out.contains("evictions"), "{daemon_out}");
    assert!(daemon_out.contains("% hit rate"), "{daemon_out}");
    assert!(!daemon_out.contains("cache: 0 hits"), "{daemon_out}");

    // The written report has the pinned schema.
    let json = std::fs::read_to_string(&out_json).unwrap();
    for key in [
        "\"bench\": \"query-serve\"",
        "\"mode\": \"external\"",
        "\"rows\"",
        "\"conns\": 2",
        "\"qps\"",
        "\"hit_rate\"",
        "\"p50_us\"",
        "\"p99_us\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_rejects_wrong_geometry_topology() {
    // A table solved over a *different* topology than the daemon's flags
    // must be refused at startup, not served wrong.
    let dir = fresh_dir("geom");
    let table = solve_table(&dir);
    let r = Command::new(env!("CARGO_BIN_EXE_miro"))
        .args([
            "serve",
            table.to_str().unwrap(),
            "--preset", "gao2005",
            "--factor", "0.05", // bigger topology than the table's
            "--seed", "42",
            "--addr", "127.0.0.1:0",
            "--quiet",
        ])
        .output()
        .expect("spawn miro serve");
    assert!(!r.status.success(), "mismatched topology must fail");
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains("nodes"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_query_list_pins_the_scale_schema() {
    let r = bench(&["--list"]);
    assert!(r.status.success());
    let out = String::from_utf8_lossy(&r.stdout);
    for scale in ["tiny", "small", "medium", "large", "internet"] {
        assert!(out.contains(scale), "scale {scale} missing: {out}");
    }
    assert!(out.contains("--addr"), "{out}");
}
