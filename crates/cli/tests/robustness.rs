//! The shell must never panic, whatever is typed at it.

use miro_cli::Repl;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary command-character soup: every line gets an answer or an
    /// error, never a panic.
    #[test]
    fn arbitrary_input_never_panics(line in "[a-z0-9 .#]{0,60}") {
        let mut repl = Repl::new();
        let _ = repl.exec(&line);
        // Also with a topology loaded (different code paths).
        let _ = repl.exec("gen fig1.1 1 1");
        let _ = repl.exec(&line);
    }

    /// Structured-but-wrong commands: valid verbs with arbitrary numeric
    /// arguments.
    #[test]
    fn structured_garbage_is_rejected_cleanly(
        a in 0u32..100, b in 0u32..100, c in 0u32..100
    ) {
        let mut repl = Repl::new();
        let _ = repl.exec("gen fig1.1 1 1");
        for cmd in [
            format!("show ip bgp {a} to {b}"),
            format!("candidates {a} to {b}"),
            format!("negotiate {a} with {b} to {c}"),
            format!("negotiate {a} with {b} to {c} avoid {a} budget {b}"),
            format!("multihop {a} with {b} to {c} avoid {b}"),
            format!("fail link {a} {b}"),
        ] {
            let _ = repl.exec(&cmd); // Ok or Err, never panic
        }
    }
}
