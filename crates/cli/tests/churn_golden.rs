//! Golden churn-trace fixture pins: `data/churn_sample.mct` is a
//! committed MCT1 trace (gao2005 factor=0.01, seed=20060911, 2000
//! events). The pins below are exact — event mix, batching shape, the
//! delta-replay table digest, and the simulator's convergence-lag
//! distribution. If the trace format, the generator's stream, or the
//! solver's delta semantics drift, this fails before CI's churn smoke
//! does. Regenerate with:
//!
//! ```text
//! miro churn gen data/churn_sample.mct --preset gao2005 --factor 0.01 \
//!     --seed 20060911 --events 2000
//! ```
//!
//! and re-pin only when the change is intentional.

use miro_churn::replay::{replay_delta, replay_sim, BatchMode};
use miro_churn::trace::Trace;

fn golden() -> Trace {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../data/churn_sample.mct");
    let bytes = std::fs::read(path).expect("golden fixture data/churn_sample.mct");
    Trace::decode(&bytes).expect("golden fixture decodes")
}

#[test]
fn golden_trace_counts_are_pinned() {
    let trace = golden();
    assert_eq!(trace.events.len(), 2000);
    assert_eq!(trace.kind_counts(), (962, 734, 197, 107));
    assert_eq!(trace.batches().count(), 1291);
    assert_eq!(trace.duration_ms(), 88_822);
    let topo = trace.topology().expect("embedded topology parses");
    assert_eq!((topo.num_nodes(), topo.num_edges()), (209, 451));
}

#[test]
fn golden_trace_replay_is_pinned() {
    let trace = golden();
    let serial = replay_delta(&trace, BatchMode::Serial, 4).unwrap();
    let batched = replay_delta(&trace, BatchMode::Batched, 4).unwrap();
    // The equivalence contract, on the committed workload…
    assert_eq!(serial.table_fnv, batched.table_fnv);
    // …and the exact digest: trace bytes + delta semantics, jointly.
    assert_eq!(batched.table_fnv, 0x1ff2aa02af4153dc, "{:#018x}", batched.table_fnv);
    assert_eq!((batched.downs, batched.ups, batched.cancelled), (3696, 2784, 136));
    assert!(
        batched.full_resolves < serial.full_resolves,
        "batching must coalesce some re-solves: {} vs {}",
        batched.full_resolves,
        serial.full_resolves
    );
}

#[test]
fn golden_trace_convergence_is_pinned() {
    let trace = golden();
    // Seed 42 is the `miro churn replay --mode sim` default.
    let sim = replay_sim(&trace, 42, 2_000_000).unwrap();
    assert_eq!(sim.diverged_batches, 0, "every batch must reconverge");
    assert_eq!((sim.lag_p50, sim.lag_p95, sim.lag_max), (0, 8, 826));
    assert_eq!(sim.batches, 1291);
}
