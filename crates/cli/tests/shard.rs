//! End-to-end tests of `miro shard-solve` with real worker subprocesses.
//!
//! The determinism suite in `crates/shard` exercises the coordinator
//! against in-memory transports; these tests cover the part it cannot —
//! the actual `shard-worker` verb spawned via `std::process`, SIGKILL
//! delivery to a live PID, and checkpoint files surviving a coordinator
//! abort across process boundaries.

use miro_shard::format::RouteTableSet;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A small-but-not-trivial job: ~200-AS topology, 48 destinations in 6
/// blocks. Big enough that a mid-job worker death leaves work to
/// reassign, small enough for debug-build test time.
const TOPO: &[&str] = &["--preset", "gao2005", "--factor", "0.01", "--seed", "42", "--dests", "48"];

fn miro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_miro"))
        .args(args)
        .output()
        .expect("spawn miro")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("miro_shard_e2e_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn solve_args<'a>(dir: &'a Path, extra: &[&'a str]) -> (Vec<String>, PathBuf) {
    let out = dir.join("table.mirt");
    let state = dir.join("state");
    let mut args: Vec<String> = vec!["shard-solve".into()];
    args.extend(TOPO.iter().map(|s| s.to_string()));
    args.extend(
        [
            "--workers", "2", "--block-size", "8", "--threads", "1", "--quiet",
            "--heartbeat-ms", "50", "--deadline-ms", "2000",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    args.push("--out".into());
    args.push(out.to_str().unwrap().into());
    args.push("--state".into());
    args.push(state.to_str().unwrap().into());
    args.extend(extra.iter().map(|s| s.to_string()));
    (args, out)
}

fn run(args: &[String]) -> Output {
    miro(&args.iter().map(|s| s.as_str()).collect::<Vec<_>>())
}

/// Pull `N` out of a report line like `  dispatches: 6  deaths: 1  ...`.
fn stat(stdout: &str, key: &str) -> u64 {
    let at = stdout.find(key).unwrap_or_else(|| panic!("{key:?} missing in {stdout:?}"));
    stdout[at + key.len()..]
        .split_whitespace()
        .next()
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no number after {key:?} in {stdout:?}"))
}

#[test]
fn subprocess_solve_verifies_and_decodes() {
    let dir = fresh_dir("basic");
    let (args, out) = solve_args(&dir, &["--verify"]);
    let r = run(&args);
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(
        r.status.success(),
        "exit {:?}\nstdout: {stdout}\nstderr: {}",
        r.status,
        String::from_utf8_lossy(&r.stderr)
    );
    assert!(stdout.contains("verify: merged table matches single-process solve"), "{stdout}");
    assert!(stdout.contains("(0 resumed)"), "{stdout}");
    assert_eq!(stat(&stdout, "deaths:"), 0);

    // The merged file is a valid RouteTableSet with the job's geometry.
    let set = RouteTableSet::decode(&std::fs::read(&out).unwrap()).expect("valid table");
    assert_eq!(set.dests().len(), 48);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_worker_is_replaced_and_table_still_verifies() {
    let dir = fresh_dir("kill");
    let (args, _out) = solve_args(&dir, &["--chaos-kill-after", "1", "--verify"]);
    let r = run(&args);
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(
        r.status.success(),
        "exit {:?}\nstdout: {stdout}\nstderr: {}",
        r.status,
        String::from_utf8_lossy(&r.stderr)
    );
    // The chaos hook SIGKILLs the first worker after its first block:
    // exactly one death, at least one respawn to cover its blocks, and a
    // byte-identical table regardless.
    assert_eq!(stat(&stdout, "deaths:"), 1, "{stdout}");
    assert!(stat(&stdout, "respawns:") >= 1, "{stdout}");
    assert!(stdout.contains("verify: merged table matches single-process solve"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aborted_coordinator_resumes_from_the_manifest() {
    let dir = fresh_dir("resume");

    // First run aborts (exit 2) after two blocks are checkpointed.
    let (args, out) = solve_args(&dir, &["--chaos-stop-after", "2"]);
    let r = run(&args);
    assert!(!r.status.success(), "chaos-stop run should fail");
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains("aborted by --chaos-stop-after"), "{stderr}");
    assert!(!out.exists(), "no merged table before the job completes");

    // Second run resumes: the checkpointed blocks are not re-solved and
    // the merged table still matches the single-process reference.
    let (args, out) = solve_args(&dir, &["--resume", "--verify"]);
    let r = run(&args);
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(
        r.status.success(),
        "exit {:?}\nstdout: {stdout}\nstderr: {}",
        r.status,
        String::from_utf8_lossy(&r.stderr)
    );
    let resumed = stat(&stdout, "blocks (");
    assert!(resumed >= 2, "expected >=2 resumed blocks: {stdout}");
    assert_eq!(stat(&stdout, "dispatches:") + resumed, stat(&stdout, "shard-solve:"));
    assert!(stdout.contains("verify: merged table matches single-process solve"), "{stdout}");
    assert!(out.exists());
    let _ = std::fs::remove_dir_all(&dir);
}
