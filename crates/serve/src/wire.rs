//! The query-serving wire protocol: ASN-keyed request/response messages
//! over the same length-prefixed FNV-framed codec the shard service
//! speaks ([`miro_shard::protocol::read_raw_frame`] /
//! [`write_raw_frame`] — one framing layer, one fuzz surface, two
//! message sets).
//!
//! Requests carry a client-chosen `id` that the matching response echoes
//! (the daemon answers in order per connection, but ids make client
//! pipelining and logging unambiguous). All operands are **AS numbers**,
//! not node ids: the daemon translates at the edge, so clients never see
//! the table's internal interning.
//!
//! Kind bytes live in a disjoint range (32+) from the shard protocol's
//! (1–6): a frame from the wrong service decodes to a clean
//! `unknown message kind`, not a confused parse.
//!
//! [`write_raw_frame`]: miro_shard::protocol::write_raw_frame

use miro_shard::protocol::{encode_raw_frame, read_raw_frame, FrameError};
use std::io::{Read, Write};

/// Protocol revision spoken in `Hello`/`Welcome`; both sides must agree.
pub const QUERY_PROTOCOL_VERSION: u32 = 1;

/// One protocol message (either direction; `R`-prefixed = server reply).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMsg {
    /// Client → server, once per connection.
    Hello { protocol: u32 },
    /// Server → client: connection accepted; the served table's shape.
    Welcome { protocol: u32, num_nodes: u32, num_dests: u32 },
    /// The query universe: which source/destination ASNs are servable.
    Universe { id: u64 },
    RUniverse { id: u64, src_asns: Vec<u32>, dest_asns: Vec<u32> },
    /// Next-hop probe.
    NextHop { id: u64, src: u32, dest: u32 },
    RNextHop { id: u64, next: u32, hops: u16, class: u8 },
    /// Full installed path.
    Path { id: u64, src: u32, dest: u32 },
    RPath { id: u64, path: Vec<u32> },
    /// Alternate path avoiding an AS.
    Alternate { id: u64, src: u32, dest: u32, avoid: u32 },
    /// `splice_at`/`via` are meaningful iff `deviates` (the default path
    /// already avoided the AS otherwise).
    RAlternate { id: u64, deviates: bool, splice_at: u32, via: u32, path: Vec<u32> },
    /// Source has no route to the destination.
    RUnrouted { id: u64 },
    /// No policy-compliant avoiding alternate exists in the table.
    RNoAlternate { id: u64 },
    /// Serving counters snapshot.
    Stats { id: u64 },
    RStats {
        id: u64,
        queries: u64,
        cache_hits: u64,
        cache_misses: u64,
        cache_evictions: u64,
        rows_verified: u64,
        connections: u64,
    },
    /// The query failed (unknown ASN, corrupt row, …). `msg` is
    /// human-readable; the connection stays up.
    RErr { id: u64, msg: String },
    /// Client → server: stop the daemon (acked with `RBye`, then the
    /// accept loop drains and exits). The serve daemon is an
    /// experiment-harness component, so shutdown is a first-class
    /// message rather than a signal dance.
    Shutdown,
    /// Server → client: goodbye (shutdown ack, or a hello the server
    /// refuses after version mismatch).
    RBye,
}

const KIND_HELLO: u8 = 32;
const KIND_WELCOME: u8 = 33;
const KIND_UNIVERSE: u8 = 34;
const KIND_R_UNIVERSE: u8 = 35;
const KIND_NEXT_HOP: u8 = 36;
const KIND_R_NEXT_HOP: u8 = 37;
const KIND_PATH: u8 = 38;
const KIND_R_PATH: u8 = 39;
const KIND_ALTERNATE: u8 = 40;
const KIND_R_ALTERNATE: u8 = 41;
const KIND_R_UNROUTED: u8 = 42;
const KIND_R_NO_ALTERNATE: u8 = 43;
const KIND_STATS: u8 = 44;
const KIND_R_STATS: u8 = 45;
const KIND_R_ERR: u8 = 46;
const KIND_SHUTDOWN: u8 = 47;
const KIND_R_BYE: u8 = 48;

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_vec(out: &mut Vec<u8>, v: &[u32]) {
    push_u32(out, v.len() as u32);
    for &x in v {
        push_u32(out, x);
    }
}

/// Serialize one message as a payload (no framing).
pub fn encode_payload(msg: &WireMsg) -> Vec<u8> {
    let mut p = Vec::new();
    match msg {
        WireMsg::Hello { protocol } => {
            p.push(KIND_HELLO);
            push_u32(&mut p, *protocol);
        }
        WireMsg::Welcome { protocol, num_nodes, num_dests } => {
            p.push(KIND_WELCOME);
            push_u32(&mut p, *protocol);
            push_u32(&mut p, *num_nodes);
            push_u32(&mut p, *num_dests);
        }
        WireMsg::Universe { id } => {
            p.push(KIND_UNIVERSE);
            push_u64(&mut p, *id);
        }
        WireMsg::RUniverse { id, src_asns, dest_asns } => {
            p.reserve(17 + 4 * (src_asns.len() + dest_asns.len()));
            p.push(KIND_R_UNIVERSE);
            push_u64(&mut p, *id);
            push_vec(&mut p, src_asns);
            push_vec(&mut p, dest_asns);
        }
        WireMsg::NextHop { id, src, dest } => {
            p.push(KIND_NEXT_HOP);
            push_u64(&mut p, *id);
            push_u32(&mut p, *src);
            push_u32(&mut p, *dest);
        }
        WireMsg::RNextHop { id, next, hops, class } => {
            p.push(KIND_R_NEXT_HOP);
            push_u64(&mut p, *id);
            push_u32(&mut p, *next);
            p.extend_from_slice(&hops.to_le_bytes());
            p.push(*class);
        }
        WireMsg::Path { id, src, dest } => {
            p.push(KIND_PATH);
            push_u64(&mut p, *id);
            push_u32(&mut p, *src);
            push_u32(&mut p, *dest);
        }
        WireMsg::RPath { id, path } => {
            p.push(KIND_R_PATH);
            push_u64(&mut p, *id);
            push_vec(&mut p, path);
        }
        WireMsg::Alternate { id, src, dest, avoid } => {
            p.push(KIND_ALTERNATE);
            push_u64(&mut p, *id);
            push_u32(&mut p, *src);
            push_u32(&mut p, *dest);
            push_u32(&mut p, *avoid);
        }
        WireMsg::RAlternate { id, deviates, splice_at, via, path } => {
            p.push(KIND_R_ALTERNATE);
            push_u64(&mut p, *id);
            p.push(*deviates as u8);
            push_u32(&mut p, *splice_at);
            push_u32(&mut p, *via);
            push_vec(&mut p, path);
        }
        WireMsg::RUnrouted { id } => {
            p.push(KIND_R_UNROUTED);
            push_u64(&mut p, *id);
        }
        WireMsg::RNoAlternate { id } => {
            p.push(KIND_R_NO_ALTERNATE);
            push_u64(&mut p, *id);
        }
        WireMsg::Stats { id } => {
            p.push(KIND_STATS);
            push_u64(&mut p, *id);
        }
        WireMsg::RStats {
            id,
            queries,
            cache_hits,
            cache_misses,
            cache_evictions,
            rows_verified,
            connections,
        } => {
            p.push(KIND_R_STATS);
            push_u64(&mut p, *id);
            push_u64(&mut p, *queries);
            push_u64(&mut p, *cache_hits);
            push_u64(&mut p, *cache_misses);
            push_u64(&mut p, *cache_evictions);
            push_u64(&mut p, *rows_verified);
            push_u64(&mut p, *connections);
        }
        WireMsg::RErr { id, msg } => {
            p.push(KIND_R_ERR);
            push_u64(&mut p, *id);
            p.extend_from_slice(msg.as_bytes());
        }
        WireMsg::Shutdown => p.push(KIND_SHUTDOWN),
        WireMsg::RBye => p.push(KIND_R_BYE),
    }
    p
}

/// Write one message as a frame and flush.
pub fn write_msg<W: Write>(w: &mut W, msg: &WireMsg) -> std::io::Result<()> {
    w.write_all(&encode_raw_frame(&encode_payload(msg)))?;
    w.flush()
}

/// Read one message. Blocks until a full frame (or EOF) arrives.
pub fn read_msg<R: Read>(r: &mut R) -> Result<WireMsg, FrameError> {
    decode_payload(&read_raw_frame(r)?)
}

struct Body<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Body<'a> {
    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self
            .bytes
            .get(self.at..self.at + 4)
            .ok_or_else(|| FrameError::Corrupt("short body".to_string()))?;
        self.at += 4;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self
            .bytes
            .get(self.at..self.at + 8)
            .ok_or_else(|| FrameError::Corrupt("short body".to_string()))?;
        self.at += 8;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self
            .bytes
            .get(self.at..self.at + 2)
            .ok_or_else(|| FrameError::Corrupt("short body".to_string()))?;
        self.at += 2;
        Ok(u16::from_le_bytes(b.try_into().unwrap()))
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        let b = self
            .bytes
            .get(self.at)
            .ok_or_else(|| FrameError::Corrupt("short body".to_string()))?;
        self.at += 1;
        Ok(*b)
    }

    /// A `u32` count followed by that many `u32`s. The count is bounded
    /// by the bytes actually present, so a corrupt length cannot force
    /// an over-allocation beyond the (already frame-capped) payload.
    fn vec(&mut self) -> Result<Vec<u32>, FrameError> {
        let n = self.u32()? as usize;
        let remaining = (self.bytes.len() - self.at) / 4;
        if n > remaining {
            return Err(FrameError::Corrupt(format!(
                "vector claims {n} entries, body holds {remaining}"
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn rest_utf8(&mut self) -> Result<String, FrameError> {
        let s = std::str::from_utf8(&self.bytes[self.at..])
            .map_err(|_| FrameError::Corrupt("error text is not UTF-8".to_string()))?
            .to_string();
        self.at = self.bytes.len();
        Ok(s)
    }

    fn done(self, kind: u8) -> Result<(), FrameError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(FrameError::Corrupt(format!("kind {kind}: bad body length")))
        }
    }
}

/// Parse one verified frame payload. Every message must consume its body
/// exactly — trailing bytes are corruption, same as the shard codec.
pub fn decode_payload(payload: &[u8]) -> Result<WireMsg, FrameError> {
    if payload.is_empty() {
        return Err(FrameError::Corrupt("zero-length payload".to_string()));
    }
    let kind = payload[0];
    let mut b = Body { bytes: &payload[1..], at: 0 };
    let msg = match kind {
        KIND_HELLO => WireMsg::Hello { protocol: b.u32()? },
        KIND_WELCOME => WireMsg::Welcome {
            protocol: b.u32()?,
            num_nodes: b.u32()?,
            num_dests: b.u32()?,
        },
        KIND_UNIVERSE => WireMsg::Universe { id: b.u64()? },
        KIND_R_UNIVERSE => {
            WireMsg::RUniverse { id: b.u64()?, src_asns: b.vec()?, dest_asns: b.vec()? }
        }
        KIND_NEXT_HOP => WireMsg::NextHop { id: b.u64()?, src: b.u32()?, dest: b.u32()? },
        KIND_R_NEXT_HOP => WireMsg::RNextHop {
            id: b.u64()?,
            next: b.u32()?,
            hops: b.u16()?,
            class: b.u8()?,
        },
        KIND_PATH => WireMsg::Path { id: b.u64()?, src: b.u32()?, dest: b.u32()? },
        KIND_R_PATH => WireMsg::RPath { id: b.u64()?, path: b.vec()? },
        KIND_ALTERNATE => WireMsg::Alternate {
            id: b.u64()?,
            src: b.u32()?,
            dest: b.u32()?,
            avoid: b.u32()?,
        },
        KIND_R_ALTERNATE => {
            let id = b.u64()?;
            let deviates = match b.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(FrameError::Corrupt(format!(
                        "alternate deviates flag must be 0/1, got {other}"
                    )))
                }
            };
            WireMsg::RAlternate {
                id,
                deviates,
                splice_at: b.u32()?,
                via: b.u32()?,
                path: b.vec()?,
            }
        }
        KIND_R_UNROUTED => WireMsg::RUnrouted { id: b.u64()? },
        KIND_R_NO_ALTERNATE => WireMsg::RNoAlternate { id: b.u64()? },
        KIND_STATS => WireMsg::Stats { id: b.u64()? },
        KIND_R_STATS => WireMsg::RStats {
            id: b.u64()?,
            queries: b.u64()?,
            cache_hits: b.u64()?,
            cache_misses: b.u64()?,
            cache_evictions: b.u64()?,
            rows_verified: b.u64()?,
            connections: b.u64()?,
        },
        KIND_R_ERR => WireMsg::RErr { id: b.u64()?, msg: b.rest_utf8()? },
        KIND_SHUTDOWN => WireMsg::Shutdown,
        KIND_R_BYE => WireMsg::RBye,
        other => return Err(FrameError::Corrupt(format!("unknown message kind {other}"))),
    };
    b.done(kind)?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One of every message — the round-trip pin the satellite asks for.
    pub fn all_msgs() -> Vec<WireMsg> {
        vec![
            WireMsg::Hello { protocol: QUERY_PROTOCOL_VERSION },
            WireMsg::Welcome { protocol: QUERY_PROTOCOL_VERSION, num_nodes: 70_000, num_dests: 512 },
            WireMsg::Universe { id: 1 },
            WireMsg::RUniverse { id: 1, src_asns: vec![100, 103, 106], dest_asns: vec![106] },
            WireMsg::NextHop { id: 2, src: 100, dest: 106 },
            WireMsg::RNextHop { id: 2, next: 103, hops: 2, class: 1 },
            WireMsg::Path { id: 3, src: 100, dest: 106 },
            WireMsg::RPath { id: 3, path: vec![100, 103, 106] },
            WireMsg::Alternate { id: 4, src: 100, dest: 106, avoid: 103 },
            WireMsg::RAlternate {
                id: 4,
                deviates: true,
                splice_at: 100,
                via: 109,
                path: vec![100, 109, 106],
            },
            WireMsg::RAlternate { id: 5, deviates: false, splice_at: 0, via: 0, path: vec![100] },
            WireMsg::RUnrouted { id: 6 },
            WireMsg::RNoAlternate { id: 7 },
            WireMsg::Stats { id: 8 },
            WireMsg::RStats {
                id: 8,
                queries: 9000,
                cache_hits: 7000,
                cache_misses: 2000,
                cache_evictions: 3,
                rows_verified: 512,
                connections: 64,
            },
            WireMsg::RErr { id: 9, msg: "destination 9999 has no row".to_string() },
            WireMsg::Shutdown,
            WireMsg::RBye,
        ]
    }

    #[test]
    fn every_message_round_trips_back_to_back() {
        let msgs = all_msgs();
        let mut stream = Vec::new();
        for m in &msgs {
            write_msg(&mut stream, m).unwrap();
        }
        let mut r = &stream[..];
        for m in &msgs {
            assert_eq!(&read_msg(&mut r).unwrap(), m);
        }
        assert!(matches!(read_msg(&mut r), Err(FrameError::Eof)));
    }

    #[test]
    fn trailing_bytes_and_bad_flags_are_corrupt() {
        // A Shutdown with a stray byte must not decode.
        let mut p = encode_payload(&WireMsg::Shutdown);
        p.push(0);
        assert!(matches!(decode_payload(&p), Err(FrameError::Corrupt(_))));

        // A deviates flag outside 0/1.
        let mut p = encode_payload(&WireMsg::RAlternate {
            id: 1,
            deviates: true,
            splice_at: 2,
            via: 3,
            path: vec![4],
        });
        p[9] = 7; // kind(1) + id(8) → flag byte
        assert!(matches!(decode_payload(&p), Err(FrameError::Corrupt(_))));

        // A vector length claiming more entries than the body holds.
        let mut p = encode_payload(&WireMsg::RPath { id: 1, path: vec![1, 2, 3] });
        let at = 1 + 8; // kind + id → count
        p[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_payload(&p).unwrap_err();
        assert!(matches!(err, FrameError::Corrupt(ref w) if w.contains("entries")), "{err}");

        // Non-UTF-8 error text.
        let mut p = encode_payload(&WireMsg::RErr { id: 1, msg: "x".to_string() });
        *p.last_mut().unwrap() = 0xFF;
        assert!(matches!(decode_payload(&p), Err(FrameError::Corrupt(_))));

        // Unknown kind.
        assert!(matches!(decode_payload(&[200u8]), Err(FrameError::Corrupt(_))));

        // Empty payload.
        assert!(matches!(decode_payload(&[]), Err(FrameError::Corrupt(_))));
    }
}
