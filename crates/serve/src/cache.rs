//! The read-mostly hot cache in front of the mmap'd table.
//!
//! Query traffic is Zipf-skewed (a handful of popular (src, dest) pairs
//! dominate), so a small cache absorbs most path reconstructions and
//! alternate searches before they touch the map. The design goals are
//! *bounded memory* and *bounded contention*, not perfect hit rate:
//!
//! * **Striping** — the key hash picks one of N independently locked
//!   stripes, so 64 concurrent connections contend on a stripe each,
//!   not one global lock. Stripes use plain `Mutex`es: the critical
//!   section is a probe or a clone of a few-hop path, tens of
//!   nanoseconds, and a read-write lock's bookkeeping would cost more
//!   than it saves at that hold time.
//! * **Direct-mapped slots** — each stripe is a fixed slot array
//!   indexed by a second slice of the hash. A colliding insert simply
//!   replaces the slot (evicting whatever was there). No LRU lists, no
//!   allocation beyond the cached answers themselves, and a hot key
//!   can only be displaced by a hash-colliding key — which Zipf traffic
//!   makes rare for exactly the keys that matter.
//!
//! Correctness does not depend on the cache: entries are pure function
//! values of (table, topology, query), inserted complete, and replaced
//! atomically under the stripe lock. The torture test hammers this from
//! 8 threads and asserts bit-identical answers with and without it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::query::{Answer, Query};

/// One cached entry: the full query (the key — hash collisions must not
/// alias answers) and its answer.
type Entry = (Query, Answer);

/// Monotonic cache counters (relaxed loads/stores: metrics only).
#[derive(Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub insertions: AtomicU64,
    pub evictions: AtomicU64,
}

/// A striped, direct-mapped, bounded answer cache.
pub struct ShardedCache {
    stripes: Vec<Mutex<Vec<Option<Entry>>>>,
    slots_per_stripe: usize,
    pub stats: CacheStats,
}

impl ShardedCache {
    /// `stripes` independently locked segments of `slots_per_stripe`
    /// direct-mapped slots each (total capacity = product). Both are
    /// clamped to at least 1.
    pub fn new(stripes: usize, slots_per_stripe: usize) -> ShardedCache {
        let stripes = stripes.max(1);
        let slots = slots_per_stripe.max(1);
        ShardedCache {
            stripes: (0..stripes).map(|_| Mutex::new(vec![None; slots])).collect(),
            slots_per_stripe: slots,
            stats: CacheStats::default(),
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.stripes.len() * self.slots_per_stripe
    }

    /// Stripe and slot for a key: low hash bits pick the slot, high bits
    /// the stripe, so the two indices stay decorrelated even when the
    /// stripe count and slot count share factors.
    fn place(&self, q: &Query) -> (usize, usize) {
        let h = q.cache_hash();
        let stripe = ((h >> 33) as usize) % self.stripes.len();
        let slot = (h as usize) % self.slots_per_stripe;
        (stripe, slot)
    }

    /// Probe. A slot holding a different (colliding) key is a miss.
    pub fn get(&self, q: &Query) -> Option<Answer> {
        let (stripe, slot) = self.place(q);
        let guard = self.stripes[stripe].lock().unwrap();
        match &guard[slot] {
            Some((key, answer)) if key == q => {
                let answer = answer.clone();
                drop(guard);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(answer)
            }
            _ => {
                drop(guard);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert, replacing (and counting as an eviction) any different key
    /// occupying the slot.
    pub fn put(&self, q: &Query, answer: Answer) {
        let (stripe, slot) = self.place(q);
        let mut guard = self.stripes[stripe].lock().unwrap();
        let evicted = matches!(&guard[slot], Some((key, _)) if key != q);
        guard[slot] = Some((*q, answer));
        drop(guard);
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Hit fraction so far (0 when unqueried).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.stats.hits.load(Ordering::Relaxed) as f64;
        let misses = self.stats.misses.load(Ordering::Relaxed) as f64;
        if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_evict_accounting() {
        let c = ShardedCache::new(2, 4);
        assert_eq!(c.capacity(), 8);
        let q1 = Query::Path { src: 1, dest: 2 };
        assert_eq!(c.get(&q1), None);
        c.put(&q1, Answer::Unrouted);
        assert_eq!(c.get(&q1), Some(Answer::Unrouted));
        assert_eq!(c.stats.hits.load(Ordering::Relaxed), 1);
        assert_eq!(c.stats.misses.load(Ordering::Relaxed), 1);
        // Re-inserting the same key is not an eviction.
        c.put(&q1, Answer::Unrouted);
        assert_eq!(c.stats.evictions.load(Ordering::Relaxed), 0);
        assert!(c.hit_rate() > 0.0);
    }

    #[test]
    fn colliding_keys_replace_but_never_alias() {
        // Tiny cache: one stripe, one slot — everything collides.
        let c = ShardedCache::new(1, 1);
        let q1 = Query::Path { src: 1, dest: 2 };
        let q2 = Query::Path { src: 3, dest: 4 };
        c.put(&q1, Answer::Path { path: vec![1, 2] });
        c.put(&q2, Answer::Path { path: vec![3, 4] });
        // q1 was evicted; the slot must answer only q2.
        assert_eq!(c.get(&q1), None);
        assert_eq!(c.get(&q2), Some(Answer::Path { path: vec![3, 4] }));
        assert_eq!(c.stats.evictions.load(Ordering::Relaxed), 1);
    }
}
