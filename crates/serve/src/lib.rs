//! The route-query serving plane: MIRO's offline-solve / online-serve
//! split.
//!
//! The sharded solver ([`miro-shard`]) turns a topology into a
//! checksummed columnar [`RouteTableSet`] on disk. This crate is the
//! *read path* over that artifact:
//!
//! * [`mmap::MappedTable`] — a zero-copy memory-mapped reader
//!   (validate once at open, borrow rows from the map, per-row FNV
//!   verification on first touch);
//! * [`query::Engine`] — the query semantics: next-hop, full-path, and
//!   alternate-path-avoiding-AS answers over any [`TableSource`], with
//!   a [`cache::ShardedCache`] in front of the expensive kinds;
//! * [`wire`] — the length-prefixed query protocol, framed by the same
//!   FNV codec the shard service speaks
//!   ([`miro_shard::protocol::read_raw_frame`]);
//! * [`server`] — the TCP daemon behind `miro serve`.
//!
//! The split matters because MIRO's economics assume alternate-path
//! lookups are *cheap at query time*: an AS solves policy-compliant
//! routing offline (minutes, sharded, checkpointed) and then answers
//! "give me the default route / give me an alternate avoiding AS X"
//! online in microseconds, for millions of users, from one immutable
//! artifact.
//!
//! [`RouteTableSet`]: miro_shard::format::RouteTableSet

pub mod cache;
pub mod mmap;
pub mod query;
pub mod server;
pub mod wire;

use miro_shard::format::RouteTableSet;
use miro_topology::NodeId;

/// Read access to one destination's route row: for each AS `x`, the
/// next hop, AS-hop count, and business-class code of `x`'s installed
/// route toward the row's destination ([`miro_bgp::solver`]'s
/// `UNROUTED_*` sentinels mark unreachable ASes).
pub trait RowRead {
    fn next(&self, x: usize) -> u32;
    fn hops(&self, x: usize) -> u16;
    fn class(&self, x: usize) -> u8;
}

/// A solved whole-table artifact the query engine can serve: the mmap'd
/// file ([`mmap::MappedTable`]) in production, the in-memory
/// [`RouteTableSet`] as the equivalence oracle in tests. `row` may fail
/// (first-touch checksum mismatch on a corrupt file), and the engine
/// surfaces that as a per-query error rather than dying.
pub trait TableSource {
    type Row<'a>: RowRead
    where
        Self: 'a;

    fn num_nodes(&self) -> u32;
    fn dests(&self) -> &[NodeId];
    fn row(&self, i: usize) -> Result<Self::Row<'_>, String>;

    /// How many rows have passed first-touch checksum verification (0
    /// for sources without lazy verification, e.g. the in-memory set).
    fn rows_verified(&self) -> u64 {
        0
    }
}

impl TableSource for RouteTableSet {
    type Row<'a> = (&'a [u32], &'a [u16], &'a [u8]);

    fn num_nodes(&self) -> u32 {
        self.num_nodes()
    }

    fn dests(&self) -> &[NodeId] {
        self.dests()
    }

    fn row(&self, i: usize) -> Result<Self::Row<'_>, String> {
        if i >= self.dests().len() {
            return Err(format!("row {i} out of range ({} rows)", self.dests().len()));
        }
        Ok(RouteTableSet::row(self, i))
    }
}

impl RowRead for (&[u32], &[u16], &[u8]) {
    #[inline]
    fn next(&self, x: usize) -> u32 {
        self.0[x]
    }

    #[inline]
    fn hops(&self, x: usize) -> u16 {
        self.1[x]
    }

    #[inline]
    fn class(&self, x: usize) -> u8 {
        self.2[x]
    }
}
