//! Query semantics over a solved route table: next-hop, full-path, and
//! alternate-path-avoiding-AS.
//!
//! The table stores, per destination row, every AS's *installed* route
//! (next hop, hop count, business class). The three query kinds are:
//!
//! * **next-hop** — one cell probe: `row[dest][src]`.
//! * **path** — chase next hops from the source to the destination. The
//!   chain is finite in a well-formed table (rows are routing trees); a
//!   hop budget of `num_nodes` turns a corrupt table's cycle into a
//!   clean per-query error.
//! * **alternate avoiding AS X** — the MIRO §2 question, answered from
//!   precomputed state. If the default path already avoids X, it *is*
//!   the answer. Otherwise the engine walks the default path's prefix
//!   (the ASes before the first occurrence of X — exactly the on-path
//!   ASes a MIRO source would negotiate with, in contact order) and
//!   looks for the first neighbor `n` of an on-path AS `v` such that
//!
//!   1. `n`'s installed route toward the destination avoids X,
//!   2. `n` would actually export that route to `v` under the
//!      Gao-Rexford export rule ([`ExportScope::allows`], using the
//!      class byte stored in the table), and
//!   3. the splice `src → … → v → n → … → dest` is loop-free.
//!
//!   The first `(v, n)` in path-then-adjacency order wins, so answers
//!   are deterministic for a given table + topology. This is the
//!   serving-plane analogue of the offline negotiation experiments in
//!   `miro-eval::avoid`: those enumerate full candidate sets per
//!   responder; the serving plane answers from installed routes only,
//!   which is what a precomputed-alternates daemon can promise in
//!   microseconds. Tail-avoidance is memoized per query in a
//!   generation-stamped [`QueryScratch`], so the worst case is O(V)
//!   once, not per candidate.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use miro_bgp::route::ExportScope;
use miro_bgp::solver::{route_class_from_code, UNROUTED_NEXT};
use miro_topology::{NodeId, Topology};

use crate::cache::ShardedCache;
use crate::{RowRead, TableSource};

/// One route query, in node-id terms (the wire layer maps ASNs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// The installed next hop of `src` toward `dest`.
    NextHop { src: NodeId, dest: NodeId },
    /// The full installed AS path `src … dest`.
    Path { src: NodeId, dest: NodeId },
    /// An alternate path from `src` to `dest` that does not traverse
    /// `avoid`.
    Alternate { src: NodeId, dest: NodeId, avoid: NodeId },
}

impl Query {
    /// Stable 64-bit key for the hot cache (FNV-1a over the packed
    /// discriminant + operands).
    pub fn cache_hash(&self) -> u64 {
        let (kind, a, b, c): (u8, u32, u32, u32) = match *self {
            Query::NextHop { src, dest } => (1, src, dest, 0),
            Query::Path { src, dest } => (2, src, dest, 0),
            Query::Alternate { src, dest, avoid } => (3, src, dest, avoid),
        };
        let mut bytes = [0u8; 13];
        bytes[0] = kind;
        bytes[1..5].copy_from_slice(&a.to_le_bytes());
        bytes[5..9].copy_from_slice(&b.to_le_bytes());
        bytes[9..13].copy_from_slice(&c.to_le_bytes());
        miro_shard::fnv1a(&bytes)
    }
}

/// A query's answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// Next-hop probe: the raw table cell.
    NextHop { next: NodeId, hops: u16, class: u8 },
    /// Full installed path, source first, destination last
    /// (`[src]` alone when source *is* the destination).
    Path { path: Vec<NodeId> },
    /// An avoiding path. `via: None` means the default path already
    /// avoids the AS; `via: Some((v, n))` means the path deviates from
    /// the default at on-path AS `v` through its neighbor `n`.
    Alternate { via: Option<(NodeId, NodeId)>, path: Vec<NodeId> },
    /// The source has no installed route toward the destination.
    Unrouted,
    /// No policy-compliant alternate avoiding the AS exists in the
    /// served table (MIRO would have to negotiate deeper state than
    /// installed routes to do better).
    NoAlternate,
}

/// Why a query could not be answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The destination has no row in the served table.
    UnknownDest(NodeId),
    /// A query operand is not a node of the served topology.
    NodeOutOfRange(NodeId),
    /// Asking to avoid the source itself is meaningless.
    AvoidIsSource,
    /// The table failed validation under this query (first-touch row
    /// checksum mismatch, or a next-hop chain that cycles).
    Corrupt(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownDest(d) => {
                write!(f, "destination {d} has no row in the served table")
            }
            QueryError::NodeOutOfRange(n) => write!(f, "node {n} is not in the topology"),
            QueryError::AvoidIsSource => write!(f, "cannot avoid the source AS itself"),
            QueryError::Corrupt(why) => write!(f, "table corrupt: {why}"),
        }
    }
}

/// Per-thread query scratch: generation-stamped memo tables sized to the
/// topology, so steady-state queries allocate nothing (the repo's
/// `SolveScratch` idiom).
#[derive(Default)]
pub struct QueryScratch {
    gen: u32,
    /// Tail-avoidance memo: `tail_ok[x]` is valid iff `tail_stamp[x] == gen`.
    tail_stamp: Vec<u32>,
    tail_ok: Vec<bool>,
    /// Splice-prefix membership: `on_prefix[x] == gen` iff `x` is on the
    /// default path's kept prefix.
    on_prefix: Vec<u32>,
    /// Chase buffer for tail walks.
    walk: Vec<NodeId>,
}

impl QueryScratch {
    pub fn new() -> QueryScratch {
        QueryScratch::default()
    }

    fn begin(&mut self, nodes: usize) -> u32 {
        if self.tail_stamp.len() < nodes {
            self.tail_stamp.resize(nodes, 0);
            self.tail_ok.resize(nodes, false);
            self.on_prefix.resize(nodes, 0);
        }
        if self.gen == u32::MAX {
            self.tail_stamp.iter_mut().for_each(|s| *s = 0);
            self.on_prefix.iter_mut().for_each(|s| *s = 0);
            self.gen = 0;
        }
        self.gen += 1;
        self.gen
    }
}

/// Served-query counters (all relaxed: they are metrics, not locks).
#[derive(Default)]
pub struct EngineStats {
    pub next_hop: AtomicU64,
    pub path: AtomicU64,
    pub alternate: AtomicU64,
    pub errors: AtomicU64,
}

impl EngineStats {
    pub fn queries(&self) -> u64 {
        self.next_hop.load(Ordering::Relaxed)
            + self.path.load(Ordering::Relaxed)
            + self.alternate.load(Ordering::Relaxed)
    }
}

/// The query engine: a [`TableSource`], the topology it was solved over
/// (adjacency + export relationships for alternate queries), and an
/// optional hot cache in front of the two non-trivial query kinds
/// (next-hop probes are a single cell read — caching them through a
/// mutex stripe would cost more than the probe).
pub struct Engine<T: TableSource> {
    table: T,
    topo: Topology,
    dest_index: HashMap<NodeId, usize>,
    cache: Option<ShardedCache>,
    pub stats: EngineStats,
}

impl<T: TableSource> Engine<T> {
    /// Build an engine. The topology must be the one the table was
    /// solved over; node-count agreement is the (necessary) cheap check
    /// — serving a table against the wrong topology of the same size is
    /// the operator's footgun, and documented as such.
    pub fn new(table: T, topo: Topology, cache: Option<ShardedCache>) -> Result<Engine<T>, String> {
        if table.num_nodes() as usize != topo.num_nodes() {
            return Err(format!(
                "table solved over {} nodes, topology has {} — wrong topology for this table",
                table.num_nodes(),
                topo.num_nodes()
            ));
        }
        let dest_index =
            table.dests().iter().enumerate().map(|(i, &d)| (d, i)).collect();
        Ok(Engine { table, topo, dest_index, cache, stats: EngineStats::default() })
    }

    pub fn table(&self) -> &T {
        &self.table
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn cache(&self) -> Option<&ShardedCache> {
        self.cache.as_ref()
    }

    /// Answer one query. `scratch` is per-thread state; answers are a
    /// pure function of (table, topology, query).
    pub fn answer(&self, q: Query, scratch: &mut QueryScratch) -> Result<Answer, QueryError> {
        let out = self.answer_uncounted(q, scratch);
        match (&out, q) {
            (Err(_), _) => self.stats.errors.fetch_add(1, Ordering::Relaxed),
            (Ok(_), Query::NextHop { .. }) => self.stats.next_hop.fetch_add(1, Ordering::Relaxed),
            (Ok(_), Query::Path { .. }) => self.stats.path.fetch_add(1, Ordering::Relaxed),
            (Ok(_), Query::Alternate { .. }) => {
                self.stats.alternate.fetch_add(1, Ordering::Relaxed)
            }
        };
        out
    }

    fn answer_uncounted(
        &self,
        q: Query,
        scratch: &mut QueryScratch,
    ) -> Result<Answer, QueryError> {
        match q {
            Query::NextHop { src, dest } => {
                let row = self.dest_row(dest)?;
                self.check_node(src)?;
                let r = self.row(row)?;
                let next = r.next(src as usize);
                if next == UNROUTED_NEXT {
                    return Ok(Answer::Unrouted);
                }
                Ok(Answer::NextHop { next, hops: r.hops(src as usize), class: r.class(src as usize) })
            }
            Query::Path { .. } | Query::Alternate { .. } => {
                if let Some(cache) = &self.cache {
                    if let Some(hit) = cache.get(&q) {
                        return Ok(hit);
                    }
                }
                let computed = match q {
                    Query::Path { src, dest } => self.full_path(src, dest),
                    Query::Alternate { src, dest, avoid } => {
                        self.alternate(src, dest, avoid, scratch)
                    }
                    Query::NextHop { .. } => unreachable!(),
                }?;
                if let Some(cache) = &self.cache {
                    cache.put(&q, computed.clone());
                }
                Ok(computed)
            }
        }
    }

    fn check_node(&self, n: NodeId) -> Result<(), QueryError> {
        if (n as usize) < self.topo.num_nodes() {
            Ok(())
        } else {
            Err(QueryError::NodeOutOfRange(n))
        }
    }

    fn dest_row(&self, dest: NodeId) -> Result<usize, QueryError> {
        self.check_node(dest)?;
        self.dest_index.get(&dest).copied().ok_or(QueryError::UnknownDest(dest))
    }

    fn row(&self, i: usize) -> Result<T::Row<'_>, QueryError> {
        self.table.row(i).map_err(QueryError::Corrupt)
    }

    /// Chase installed next hops from `src` to `dest`, source first.
    fn chase(
        &self,
        row: &T::Row<'_>,
        src: NodeId,
        dest: NodeId,
    ) -> Result<Option<Vec<NodeId>>, QueryError> {
        if row.next(src as usize) == UNROUTED_NEXT {
            return Ok(None);
        }
        let mut path = Vec::with_capacity(row.hops(src as usize) as usize + 1);
        let mut at = src;
        path.push(at);
        while at != dest {
            if path.len() > self.topo.num_nodes() {
                return Err(QueryError::Corrupt(format!(
                    "next-hop chain from {src} toward {dest} cycles"
                )));
            }
            at = row.next(at as usize);
            if at == UNROUTED_NEXT {
                return Err(QueryError::Corrupt(format!(
                    "next-hop chain from {src} toward {dest} dead-ends at an unrouted AS"
                )));
            }
            self.check_node(at).map_err(|_| {
                QueryError::Corrupt(format!(
                    "next-hop chain from {src} toward {dest} leaves the topology"
                ))
            })?;
            path.push(at);
        }
        Ok(Some(path))
    }

    fn full_path(&self, src: NodeId, dest: NodeId) -> Result<Answer, QueryError> {
        let row = self.dest_row(dest)?;
        self.check_node(src)?;
        let r = self.row(row)?;
        match self.chase(&r, src, dest)? {
            None => Ok(Answer::Unrouted),
            Some(path) => Ok(Answer::Path { path }),
        }
    }

    /// Does the installed tail from `n` to the row's destination avoid
    /// `avoid`? Memoized in `scratch` under the current generation: a
    /// verdict learned on one chase answers every node of that chase.
    fn tail_avoids(
        &self,
        r: &T::Row<'_>,
        n: NodeId,
        dest: NodeId,
        avoid: NodeId,
        scratch: &mut QueryScratch,
        gen: u32,
    ) -> Result<bool, QueryError> {
        scratch.walk.clear();
        let mut at = n;
        let verdict = loop {
            if at == avoid {
                break false;
            }
            if scratch.tail_stamp[at as usize] == gen {
                break scratch.tail_ok[at as usize];
            }
            scratch.walk.push(at);
            if at == dest {
                break true;
            }
            if scratch.walk.len() > self.topo.num_nodes() {
                return Err(QueryError::Corrupt(format!(
                    "next-hop chain from {n} toward {dest} cycles"
                )));
            }
            let next = r.next(at as usize);
            if next == UNROUTED_NEXT || next as usize >= self.topo.num_nodes() {
                break false;
            }
            at = next;
        };
        // Every node walked before the verdict point shares the verdict:
        // their tails all run through `at`.
        for &x in &scratch.walk {
            scratch.tail_stamp[x as usize] = gen;
            scratch.tail_ok[x as usize] = verdict;
        }
        Ok(verdict)
    }

    /// The alternate-path search described in the module docs.
    fn alternate(
        &self,
        src: NodeId,
        dest: NodeId,
        avoid: NodeId,
        scratch: &mut QueryScratch,
    ) -> Result<Answer, QueryError> {
        let row = self.dest_row(dest)?;
        self.check_node(src)?;
        self.check_node(avoid)?;
        if avoid == src {
            return Err(QueryError::AvoidIsSource);
        }
        if avoid == dest {
            // Every path to the destination "traverses" it.
            return Ok(Answer::NoAlternate);
        }
        let r = self.row(row)?;
        let Some(default) = self.chase(&r, src, dest)? else {
            return Ok(Answer::Unrouted);
        };
        let offender = default.iter().position(|&x| x == avoid);
        let Some(offender) = offender else {
            return Ok(Answer::Alternate { via: None, path: default });
        };

        let gen = scratch.begin(self.topo.num_nodes());
        // Contact the on-path ASes before the offender, in path order —
        // the MIRO source's negotiation order.
        for vi in 0..offender {
            let v = default[vi];
            scratch.on_prefix[v as usize] = gen;
            for &(n, _) in self.topo.neighbors(v) {
                if n == avoid || scratch.on_prefix[n as usize] == gen {
                    continue;
                }
                let n_class = r.class(n as usize);
                let Some(class) = route_class_from_code(n_class) else {
                    continue; // unrouted neighbor (or sentinel)
                };
                // Would n export its installed route to v at all?
                let Some(rel_vn) = self.topo.rel(n, v) else { continue };
                if !ExportScope::allows(class, rel_vn) {
                    continue;
                }
                if !self.tail_avoids(&r, n, dest, avoid, scratch, gen)? {
                    continue;
                }
                // Loop check: the tail must not re-enter the kept prefix.
                let mut tail = Vec::with_capacity(r.hops(n as usize) as usize + 1);
                let mut at = n;
                let mut looped = false;
                loop {
                    tail.push(at);
                    if at == dest {
                        break;
                    }
                    at = r.next(at as usize);
                    if scratch.on_prefix[at as usize] == gen {
                        looped = true;
                        break;
                    }
                }
                if looped {
                    continue;
                }
                let mut path = Vec::with_capacity(vi + 1 + tail.len());
                path.extend_from_slice(&default[..=vi]);
                path.extend_from_slice(&tail);
                return Ok(Answer::Alternate { via: Some((v, n)), path });
            }
        }
        Ok(Answer::NoAlternate)
    }
}
