//! Zero-copy memory-mapped [`RouteTableSet`] reader.
//!
//! [`miro_shard::format::RouteTableSet::decode`] is the batch reader: it
//! copies every row into owned columns and verifies everything up front —
//! right for a merge step, wrong for a serving daemon that holds a
//! multi-gigabyte table and answers point queries. [`MappedTable`] maps
//! the file read-only and *borrows* rows straight out of the map:
//!
//! * **At open**: magic, version, and geometry are validated, the
//!   destination index (a few KiB) is decoded into an owned lookup
//!   table, and — by default — one sequential pass verifies the
//!   whole-file FNV-1a checksum. [`MappedTable::open_unverified`] skips
//!   that pass for tables too large to page in eagerly; the per-row
//!   checksums below still guard every byte that is actually served.
//! * **On first touch of a row**: the row's bytes are checksummed
//!   against the per-row FNV-1a table once, then a per-row "verified"
//!   bit (an atomic bitmap, safe under concurrent readers) marks it
//!   trusted. Verified rows are served with no further copying or
//!   hashing — [`Row`] is a borrowed byte view that decodes cells with
//!   `from_le_bytes` on access, so row starts need no alignment (a row
//!   is `7 * num_nodes` bytes; odd `num_nodes` would misalign any
//!   borrowed `&[u32]`).
//!
//! Why validate-once-then-borrow is safe: the mapping is private and
//! read-only, the daemon never writes the table, and every answer is
//! derived from bytes that passed either the whole-file pass or the
//! row's own checksum. A table corrupted *between* solve and open is
//! rejected; a row corrupted on disk before open is rejected the first
//! time a query lands on it (checksum mismatch → the query errors, the
//! daemon keeps serving other rows).

use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};

use miro_shard::fnv1a;
use miro_shard::format::{TABLE_FORMAT_VERSION, TABLE_MAGIC};
use miro_topology::NodeId;

use crate::{RowRead, TableSource};

// ---------------------------------------------------------------- mmap

/// A read-only memory mapping (unix `mmap(2)` via direct libc FFI — no
/// external crate; the toolchain links libc anyway). On non-unix hosts
/// the "map" degrades to reading the file into an owned buffer, which
/// keeps every caller portable at the cost of the zero-copy property.
#[cfg(unix)]
mod map {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    #[allow(non_camel_case_types)]
    type c_int = i32;
    extern "C" {
        fn mmap(
            addr: *mut u8,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> c_int;
    }
    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MAP_FAILED: *mut u8 = usize::MAX as *mut u8;

    pub struct Map {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is immutable (PROT_READ, never remapped) for the life
    // of the Map, so shared references to its bytes are safe to send.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub fn of(file: &File, len: usize) -> std::io::Result<Map> {
            if len == 0 {
                // mmap(2) rejects zero-length maps; callers reject empty
                // files before getting here, but keep the error clean.
                return Err(std::io::Error::other("cannot map an empty file"));
            }
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr == MAP_FAILED || ptr.is_null() {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(not(unix))]
mod map {
    use std::fs::File;
    use std::io::Read;

    pub struct Map {
        buf: Vec<u8>,
    }

    impl Map {
        pub fn of(file: &File, len: usize) -> std::io::Result<Map> {
            let mut buf = Vec::with_capacity(len);
            let mut f = file;
            f.read_to_end(&mut buf)?;
            Ok(Map { buf })
        }

        pub fn bytes(&self) -> &[u8] {
            &self.buf
        }
    }
}

// --------------------------------------------------------- MappedTable

/// A [`RouteTableSet`] file served in place.
///
/// [`miro_shard::format::RouteTableSet`]'s layout, recalled:
///
/// ```text
/// 0        magic "MIRT"
/// 4        format version (u32)
/// 8        num_nodes V (u32)
/// 12       num_dests D (u32)
/// 16       destination ids          u32 × D
/// 16+4D    per-row checksums        u64 × D
/// 16+12D   rows:                    next u32 × V | hops u16 × V | class u8 × V
/// end-8    whole-file checksum      u64
/// ```
pub struct MappedTable {
    map: map::Map,
    num_nodes: u32,
    /// Decoded destination index (the only copied region: `4D` bytes of
    /// lookup structure, not row data).
    dests: Vec<NodeId>,
    sums_at: usize,
    rows_at: usize,
    row_bytes: usize,
    /// One bit per row, set once that row's checksum has been verified.
    verified: Vec<AtomicU64>,
    rows_verified: AtomicU64,
}

impl MappedTable {
    /// Open and fully validate: header, geometry, destination index, and
    /// the whole-file checksum (one sequential pass). Rows additionally
    /// verify their own checksum on first touch, which catches bytes
    /// that rot *after* this pass (or a checksum table that lied).
    pub fn open(path: &std::path::Path) -> Result<MappedTable, String> {
        Self::open_with(path, true)
    }

    /// Open without the whole-file pass: header, geometry, and the
    /// destination index are still validated eagerly (they are decoded
    /// anyway), but row bytes are only paged in — and checksummed — when
    /// a query first touches them. This is the mode for tables much
    /// larger than memory.
    pub fn open_unverified(path: &std::path::Path) -> Result<MappedTable, String> {
        Self::open_with(path, false)
    }

    fn open_with(path: &std::path::Path, verify_whole_file: bool) -> Result<MappedTable, String> {
        let file =
            File::open(path).map_err(|e| format!("cannot open table {path:?}: {e}"))?;
        let len = file
            .metadata()
            .map_err(|e| format!("cannot stat table {path:?}: {e}"))?
            .len() as usize;
        if len < 24 {
            return Err(format!(
                "table {path:?} is {len} bytes — too short for even an empty RouteTableSet"
            ));
        }
        let map = map::Map::of(&file, len).map_err(|e| format!("cannot map {path:?}: {e}"))?;
        let bytes = map.bytes();

        if bytes[..4] != TABLE_MAGIC[..] {
            return Err(format!("table {path:?}: bad magic (not a RouteTableSet)"));
        }
        let u32_at =
            |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let version = u32_at(4);
        if version != TABLE_FORMAT_VERSION {
            return Err(format!(
                "table {path:?}: format version {version}, but this build reads version \
                 {TABLE_FORMAT_VERSION}"
            ));
        }
        let v = u32_at(8) as usize;
        let d = u32_at(12) as usize;
        if d == 0 {
            return Err(format!("table {path:?} holds zero destinations — nothing to serve"));
        }
        if v == 0 {
            return Err(format!("table {path:?} claims a zero-node topology"));
        }
        let row_bytes = 7 * v;
        let expect = (16usize)
            .checked_add(d.checked_mul(12).ok_or("geometry overflow")?)
            .and_then(|n| n.checked_add(d.checked_mul(row_bytes)?))
            .and_then(|n| n.checked_add(8))
            .ok_or(format!("table {path:?}: geometry overflow"))?;
        if len != expect {
            return Err(format!(
                "table {path:?}: wrong length: {len} bytes, geometry says {expect}"
            ));
        }
        if verify_whole_file {
            let want = u64::from_le_bytes(bytes[len - 8..].try_into().unwrap());
            if fnv1a(&bytes[..len - 8]) != want {
                return Err(format!("table {path:?}: whole-file checksum mismatch"));
            }
        }
        let mut dests = Vec::with_capacity(d);
        for i in 0..d {
            dests.push(u32_at(16 + 4 * i));
        }
        Ok(MappedTable {
            map,
            num_nodes: v as u32,
            dests,
            sums_at: 16 + 4 * d,
            rows_at: 16 + 12 * d,
            row_bytes,
            verified: (0..d.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            rows_verified: AtomicU64::new(0),
        })
    }

    /// Total mapped size in bytes.
    pub fn file_bytes(&self) -> usize {
        self.map.bytes().len()
    }

    /// How many rows have passed their first-touch checksum so far.
    pub fn rows_verified(&self) -> u64 {
        self.rows_verified.load(Ordering::Relaxed)
    }

    /// Borrow row `i`, checksumming it on first touch. Concurrent first
    /// touches may both verify (harmless — verification is idempotent
    /// and the bitmap is monotonic); a mismatch fails every touch, set
    /// bit or not, because the bit is only set after success.
    fn checked_row(&self, i: usize) -> Result<MappedRow<'_>, String> {
        let at = self.rows_at + i * self.row_bytes;
        let row = &self.map.bytes()[at..at + self.row_bytes];
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if self.verified[word].load(Ordering::Acquire) & bit == 0 {
            let want = u64::from_le_bytes(
                self.map.bytes()[self.sums_at + 8 * i..self.sums_at + 8 * (i + 1)]
                    .try_into()
                    .unwrap(),
            );
            if fnv1a(row) != want {
                return Err(format!(
                    "row {i} (destination {}) checksum mismatch — table corrupt on disk",
                    self.dests[i]
                ));
            }
            self.verified[word].fetch_or(bit, Ordering::AcqRel);
            self.rows_verified.fetch_add(1, Ordering::Relaxed);
        }
        Ok(MappedRow { bytes: row, v: self.num_nodes as usize })
    }
}

impl TableSource for MappedTable {
    type Row<'a> = MappedRow<'a>;

    fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    fn dests(&self) -> &[NodeId] {
        &self.dests
    }

    fn row(&self, i: usize) -> Result<MappedRow<'_>, String> {
        if i >= self.dests.len() {
            return Err(format!("row {i} out of range ({} rows)", self.dests.len()));
        }
        self.checked_row(i)
    }

    fn rows_verified(&self) -> u64 {
        MappedTable::rows_verified(self)
    }
}

/// One destination's columns, borrowed from the map. Cells decode on
/// access with `from_le_bytes`, so the view needs no alignment and no
/// materialization.
#[derive(Clone, Copy)]
pub struct MappedRow<'a> {
    bytes: &'a [u8],
    v: usize,
}

impl RowRead for MappedRow<'_> {
    #[inline]
    fn next(&self, x: usize) -> u32 {
        u32::from_le_bytes(self.bytes[4 * x..4 * x + 4].try_into().unwrap())
    }

    #[inline]
    fn hops(&self, x: usize) -> u16 {
        let at = 4 * self.v + 2 * x;
        u16::from_le_bytes(self.bytes[at..at + 2].try_into().unwrap())
    }

    #[inline]
    fn class(&self, x: usize) -> u8 {
        self.bytes[6 * self.v + x]
    }
}
