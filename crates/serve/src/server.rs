//! The TCP daemon behind `miro serve`: thread-per-connection over a
//! shared [`Engine`], speaking the [`wire`](crate::wire) protocol.
//!
//! The engine (table + topology + cache) is immutable after startup, so
//! connection threads share one `Arc` and contend only on the cache's
//! mutex stripes. Each thread owns its [`QueryScratch`], so the hot
//! query path allocates nothing beyond the answer vectors themselves.
//!
//! Shutdown is cooperative: an `AtomicBool` stop flag, a nonblocking
//! accept loop that polls it, and per-connection read timeouts so every
//! thread re-checks the flag a few times a second. A wire `Shutdown`
//! message (used by CI and `bench-query --shutdown`) sets the flag; so
//! can the embedding process via [`Server::stop_handle`].

use std::io::{ErrorKind, Read};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use miro_shard::protocol::FrameError;
use miro_topology::AsId;

use crate::query::{Answer, Engine, Query, QueryScratch};
use crate::wire::{read_msg, write_msg, WireMsg, QUERY_PROTOCOL_VERSION};
use crate::TableSource;

/// How long a connection read blocks before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(250);

/// How long the accept loop sleeps between polls when idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// What the daemon did over its lifetime, returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Queries answered (successfully or as `RErr`), across connections.
    pub queries: u64,
    /// [`ShardedCache`](crate::cache::ShardedCache) hits (0 when the
    /// engine runs cacheless).
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache evictions (slot reuse under pressure).
    pub cache_evictions: u64,
}

struct Shared<T: TableSource> {
    engine: Engine<T>,
    stop: Arc<AtomicBool>,
    connections: AtomicU64,
}

/// A bound, not-yet-running query daemon.
pub struct Server<T: TableSource> {
    listener: TcpListener,
    shared: Arc<Shared<T>>,
}

/// A `Read` adapter that converts the stream's read-timeout expiries
/// into "check the stop flag and keep waiting", so `read_exact` inside
/// the frame codec can never desynchronize on a mid-frame timeout: the
/// only errors that escape are real ones (or the stop sentinel).
struct PatientReader<'a> {
    stream: &'a TcpStream,
    stop: &'a AtomicBool,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match Read::read(&mut &*self.stream, buf) {
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if self.stop.load(Ordering::Relaxed) {
                        return Err(std::io::Error::new(
                            ErrorKind::ConnectionAborted,
                            "server stopping",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

impl<T: TableSource + Send + Sync + 'static> Server<T> {
    /// Bind the daemon. `addr` may use port 0; [`Server::local_addr`]
    /// reports the kernel's pick.
    pub fn bind<A: ToSocketAddrs>(addr: A, engine: Engine<T>) -> std::io::Result<Server<T>> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                engine,
                stop: Arc::new(AtomicBool::new(false)),
                connections: AtomicU64::new(0),
            }),
        })
    }

    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle the embedding process can use to stop the daemon (the
    /// wire `Shutdown` message sets the same flag).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        self.shared.stop.clone()
    }

    /// Run the accept loop until the stop flag is set, then join every
    /// connection thread and report.
    pub fn run(self) -> std::io::Result<ServeReport> {
        self.listener.set_nonblocking(true)?;
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    let shared = self.shared.clone();
                    handles.push(std::thread::spawn(move || {
                        // A connection failing (broken pipe, corrupt
                        // frame) must not take the daemon down.
                        let _ = serve_connection(stream, &shared);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            // Reap finished threads so a long-lived daemon doesn't
            // accumulate handles.
            handles.retain(|h| !h.is_finished());
        }
        for h in handles {
            let _ = h.join();
        }
        let cache = self.shared.engine.cache();
        Ok(ServeReport {
            connections: self.shared.connections.load(Ordering::Relaxed),
            queries: self.shared.engine.stats.queries()
                + self.shared.engine.stats.errors.load(Ordering::Relaxed),
            cache_hits: cache.map_or(0, |c| c.stats.hits.load(Ordering::Relaxed)),
            cache_misses: cache.map_or(0, |c| c.stats.misses.load(Ordering::Relaxed)),
            cache_evictions: cache.map_or(0, |c| c.stats.evictions.load(Ordering::Relaxed)),
        })
    }
}

/// Serve one connection to completion. Any returned error just drops
/// the connection — the daemon keeps running.
fn serve_connection<T: TableSource>(
    stream: TcpStream,
    shared: &Shared<T>,
) -> Result<(), FrameError> {
    stream.set_read_timeout(Some(READ_POLL)).map_err(FrameError::Io)?;
    stream.set_nodelay(true).ok();
    let engine = &shared.engine;
    let mut writer = &stream;
    let mut reader = PatientReader { stream: &stream, stop: &shared.stop };
    let mut scratch = QueryScratch::new();

    // Handshake: the first frame must be a version-matching Hello.
    match read_msg(&mut reader)? {
        WireMsg::Hello { protocol } if protocol == QUERY_PROTOCOL_VERSION => {
            write_msg(
                &mut writer,
                &WireMsg::Welcome {
                    protocol: QUERY_PROTOCOL_VERSION,
                    num_nodes: engine.table().num_nodes(),
                    num_dests: engine.table().dests().len() as u32,
                },
            )
            .map_err(FrameError::Io)?;
        }
        WireMsg::Hello { .. } => {
            // Version mismatch: refuse politely so old clients get a
            // parseable goodbye instead of a dropped socket.
            let _ = write_msg(&mut writer, &WireMsg::RBye);
            return Ok(());
        }
        _ => return Err(FrameError::Corrupt("expected Hello".to_string())),
    }

    loop {
        let msg = match read_msg(&mut reader) {
            Ok(m) => m,
            Err(FrameError::Eof) => return Ok(()), // client hung up cleanly
            Err(e) => return Err(e),
        };
        match msg {
            WireMsg::Shutdown => {
                shared.stop.store(true, Ordering::Relaxed);
                let _ = write_msg(&mut writer, &WireMsg::RBye);
                return Ok(());
            }
            WireMsg::Universe { id } => {
                let topo = engine.topology();
                let src_asns: Vec<u32> =
                    (0..topo.num_nodes() as u32).map(|n| topo.asn(n).0).collect();
                let dest_asns: Vec<u32> =
                    engine.table().dests().iter().map(|&d| topo.asn(d).0).collect();
                write_msg(&mut writer, &WireMsg::RUniverse { id, src_asns, dest_asns })
                    .map_err(FrameError::Io)?;
            }
            WireMsg::Stats { id } => {
                let cache = engine.cache();
                write_msg(
                    &mut writer,
                    &WireMsg::RStats {
                        id,
                        queries: engine.stats.queries(),
                        cache_hits: cache.map_or(0, |c| c.stats.hits.load(Ordering::Relaxed)),
                        cache_misses: cache.map_or(0, |c| c.stats.misses.load(Ordering::Relaxed)),
                        cache_evictions: cache
                            .map_or(0, |c| c.stats.evictions.load(Ordering::Relaxed)),
                        rows_verified: engine.table().rows_verified(),
                        connections: shared.connections.load(Ordering::Relaxed),
                    },
                )
                .map_err(FrameError::Io)?;
            }
            WireMsg::NextHop { id, src, dest } => {
                let reply = answer_query(engine, &mut scratch, id, src, dest, None, QueryKind::NextHop);
                write_msg(&mut writer, &reply).map_err(FrameError::Io)?;
            }
            WireMsg::Path { id, src, dest } => {
                let reply = answer_query(engine, &mut scratch, id, src, dest, None, QueryKind::Path);
                write_msg(&mut writer, &reply).map_err(FrameError::Io)?;
            }
            WireMsg::Alternate { id, src, dest, avoid } => {
                let reply =
                    answer_query(engine, &mut scratch, id, src, dest, Some(avoid), QueryKind::Alternate);
                write_msg(&mut writer, &reply).map_err(FrameError::Io)?;
            }
            other => {
                // A reply kind (or second Hello) from a client is a
                // protocol violation; tell it and drop the connection.
                let _ = write_msg(
                    &mut writer,
                    &WireMsg::RErr { id: 0, msg: format!("unexpected message: {other:?}") },
                );
                return Ok(());
            }
        }
    }
}

enum QueryKind {
    NextHop,
    Path,
    Alternate,
}

/// Translate ASN operands, run the query, translate the answer back.
fn answer_query<T: TableSource>(
    engine: &Engine<T>,
    scratch: &mut QueryScratch,
    id: u64,
    src_asn: u32,
    dest_asn: u32,
    avoid_asn: Option<u32>,
    kind: QueryKind,
) -> WireMsg {
    let topo = engine.topology();
    let node = |asn: u32| topo.node(AsId(asn));
    let Some(src) = node(src_asn) else {
        return WireMsg::RErr { id, msg: format!("unknown source AS {src_asn}") };
    };
    let Some(dest) = node(dest_asn) else {
        return WireMsg::RErr { id, msg: format!("unknown destination AS {dest_asn}") };
    };
    let q = match kind {
        QueryKind::NextHop => Query::NextHop { src, dest },
        QueryKind::Path => Query::Path { src, dest },
        QueryKind::Alternate => {
            let avoid_asn = avoid_asn.expect("alternate carries avoid");
            let Some(avoid) = node(avoid_asn) else {
                return WireMsg::RErr { id, msg: format!("unknown AS to avoid {avoid_asn}") };
            };
            Query::Alternate { src, dest, avoid }
        }
    };
    let asn = |n: miro_topology::NodeId| topo.asn(n).0;
    match engine.answer(q, scratch) {
        Err(e) => WireMsg::RErr { id, msg: e.to_string() },
        Ok(Answer::Unrouted) => WireMsg::RUnrouted { id },
        Ok(Answer::NoAlternate) => WireMsg::RNoAlternate { id },
        Ok(Answer::NextHop { next, hops, class }) => {
            WireMsg::RNextHop { id, next: asn(next), hops, class }
        }
        Ok(Answer::Path { path }) => {
            WireMsg::RPath { id, path: path.into_iter().map(asn).collect() }
        }
        Ok(Answer::Alternate { via, path }) => {
            let path: Vec<u32> = path.into_iter().map(asn).collect();
            match via {
                Some((v, n)) => WireMsg::RAlternate {
                    id,
                    deviates: true,
                    splice_at: asn(v),
                    via: asn(n),
                    path,
                },
                None => WireMsg::RAlternate { id, deviates: false, splice_at: 0, via: 0, path },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ShardedCache;
    use miro_shard::format::RouteTableSet;
    use miro_topology::GenParams;
    use std::net::TcpStream;

    /// End-to-end over a real socket: handshake, one of each query,
    /// stats, shutdown. The correctness torture lives in the crate's
    /// integration tests; this pins the protocol choreography.
    #[test]
    fn serves_queries_over_tcp_and_shuts_down() {
        let topo = GenParams::tiny(7).generate();
        let dests: Vec<u32> = (0..topo.num_nodes() as u32).collect();
        let table = RouteTableSet::from_solves(&topo, &dests, 2);
        let engine =
            Engine::new(table, topo.clone(), Some(ShardedCache::new(4, 64))).unwrap();
        let server = Server::bind("127.0.0.1:0", engine).unwrap();
        let addr = server.local_addr().unwrap();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut w = &stream;
        let mut r = &stream;
        write_msg(&mut w, &WireMsg::Hello { protocol: QUERY_PROTOCOL_VERSION }).unwrap();
        let WireMsg::Welcome { protocol, num_nodes, num_dests } = read_msg(&mut r).unwrap()
        else {
            panic!("expected Welcome")
        };
        assert_eq!(protocol, QUERY_PROTOCOL_VERSION);
        assert_eq!(num_nodes as usize, topo.num_nodes());
        assert_eq!(num_dests as usize, topo.num_nodes());

        // Universe gives us servable ASNs to query with.
        write_msg(&mut w, &WireMsg::Universe { id: 1 }).unwrap();
        let WireMsg::RUniverse { id: 1, src_asns, dest_asns } = read_msg(&mut r).unwrap()
        else {
            panic!("expected RUniverse")
        };
        let (src, dest) = (src_asns[0], dest_asns[dest_asns.len() / 2]);

        write_msg(&mut w, &WireMsg::Path { id: 2, src, dest }).unwrap();
        let path = match read_msg(&mut r).unwrap() {
            WireMsg::RPath { id: 2, path } => {
                assert_eq!(path.first(), Some(&src));
                assert_eq!(path.last(), Some(&dest));
                path
            }
            WireMsg::RUnrouted { id: 2 } => vec![],
            other => panic!("unexpected: {other:?}"),
        };

        write_msg(&mut w, &WireMsg::NextHop { id: 3, src, dest }).unwrap();
        match read_msg(&mut r).unwrap() {
            WireMsg::RNextHop { id: 3, next, .. } => {
                assert_eq!(Some(&next), path.get(1).or(Some(&src)));
            }
            WireMsg::RUnrouted { id: 3 } => assert!(path.is_empty()),
            other => panic!("unexpected: {other:?}"),
        }

        // Alternates and errors.
        if path.len() >= 3 {
            let avoid = path[1];
            write_msg(&mut w, &WireMsg::Alternate { id: 4, src, dest, avoid }).unwrap();
            match read_msg(&mut r).unwrap() {
                WireMsg::RAlternate { id: 4, deviates, path: alt, .. } => {
                    assert!(deviates);
                    assert!(!alt.contains(&avoid));
                    assert_eq!(alt.first(), Some(&src));
                    assert_eq!(alt.last(), Some(&dest));
                }
                WireMsg::RNoAlternate { id: 4 } => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
        write_msg(&mut w, &WireMsg::NextHop { id: 5, src: 999_999_999, dest }).unwrap();
        let WireMsg::RErr { id: 5, msg } = read_msg(&mut r).unwrap() else {
            panic!("expected RErr for unknown source AS")
        };
        assert!(msg.contains("unknown source AS"), "{msg}");

        write_msg(&mut w, &WireMsg::Stats { id: 6 }).unwrap();
        let WireMsg::RStats { id: 6, queries, connections, .. } = read_msg(&mut r).unwrap()
        else {
            panic!("expected RStats")
        };
        assert!(queries >= 2);
        assert_eq!(connections, 1);

        write_msg(&mut w, &WireMsg::Shutdown).unwrap();
        assert_eq!(read_msg(&mut r).unwrap(), WireMsg::RBye);
        let report = daemon.join().unwrap();
        assert_eq!(report.connections, 1);
    }

    /// A version-mismatched Hello gets a polite RBye, not a dropped
    /// socket, and the daemon keeps serving afterwards.
    #[test]
    fn version_mismatch_is_refused_politely() {
        let topo = GenParams::tiny(8).generate();
        let dests: Vec<u32> = vec![0, 1, 2];
        let table = RouteTableSet::from_solves(&topo, &dests, 1);
        let engine = Engine::new(table, topo, None).unwrap();
        let server = Server::bind("127.0.0.1:0", engine).unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_handle();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut w = &stream;
        let mut r = &stream;
        write_msg(&mut w, &WireMsg::Hello { protocol: 999 }).unwrap();
        assert_eq!(read_msg(&mut r).unwrap(), WireMsg::RBye);
        assert!(matches!(read_msg(&mut r), Err(FrameError::Eof)));

        stop.store(true, Ordering::Relaxed);
        daemon.join().unwrap();
    }
}
