//! The mmap reader must be *indistinguishable* from the in-memory
//! [`RouteTableSet`] it was encoded from — every row, every destination,
//! arbitrary topologies — and must reject every corruption a disk or a
//! buggy writer can produce.

use miro_serve::cache::ShardedCache;
use miro_serve::mmap::MappedTable;
use miro_serve::query::{Engine, Query, QueryScratch};
use miro_serve::{RowRead, TableSource};
use miro_shard::format::RouteTableSet;
use miro_shard::sample_dests;
use miro_topology::gen::GenParams;
use miro_topology::Topology;
use proptest::prelude::*;
use std::path::PathBuf;

/// Write table bytes to a unique temp file; caller removes it.
fn temp_table(tag: &str, bytes: &[u8]) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir()
        .join(format!("miro_equiv_{tag}_{}_{n}.mirt", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    path
}

fn solved(seed: u64, sample: usize) -> (Topology, RouteTableSet) {
    let topo = GenParams::tiny(seed).generate();
    let dests = sample_dests(topo.num_nodes(), sample);
    let set = RouteTableSet::from_solves(&topo, &dests, 2);
    (topo, set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cell-for-cell: the mapped view of the encoded file equals the
    /// in-memory set it came from.
    #[test]
    fn mmap_rows_equal_in_memory(seed in 0u64..1000, sample in 1usize..40) {
        let (_topo, set) = solved(seed, sample);
        let path = temp_table("rows", &set.encode());
        let mapped = MappedTable::open(&path).unwrap();

        prop_assert_eq!(TableSource::num_nodes(&mapped), set.num_nodes());
        prop_assert_eq!(TableSource::dests(&mapped), set.dests());
        let v = set.num_nodes() as usize;
        for i in 0..set.dests().len() {
            let (next, hops, class) = RouteTableSet::row(&set, i);
            let m = TableSource::row(&mapped, i).unwrap();
            for x in 0..v {
                prop_assert_eq!(m.next(x), next[x]);
                prop_assert_eq!(m.hops(x), hops[x]);
                prop_assert_eq!(m.class(x), class[x]);
            }
        }
        // Every row was touched, so every row is now verified.
        prop_assert_eq!(mapped.rows_verified(), set.dests().len() as u64);
        std::fs::remove_file(&path).ok();
    }

    /// Engine answers agree across the two sources for every query kind
    /// over every (src, dest) and a spread of avoid choices.
    #[test]
    fn engine_answers_equal_across_sources(seed in 0u64..1000) {
        let (topo, set) = solved(seed, 9);
        let path = temp_table("engine", &set.encode());
        let mapped = MappedTable::open(&path).unwrap();

        let mem = Engine::new(set, topo.clone(), None).unwrap();
        // The mmap side gets a deliberately tiny cache so hits, misses,
        // and evictions all occur *during* the comparison.
        let mm = Engine::new(mapped, topo.clone(), Some(ShardedCache::new(2, 4))).unwrap();
        let mut s1 = QueryScratch::new();
        let mut s2 = QueryScratch::new();
        let dests: Vec<u32> = mem.table().dests().to_vec();
        let n = topo.num_nodes() as u32;
        for &dest in &dests {
            for src in 0..n {
                let queries = [
                    Query::NextHop { src, dest },
                    Query::Path { src, dest },
                    Query::Alternate { src, dest, avoid: (src + 1) % n },
                    Query::Alternate { src, dest, avoid: dest },
                    Query::Alternate { src, dest, avoid: (src + n / 2) % n },
                ];
                for q in queries {
                    if matches!(q, Query::Alternate { src, avoid, .. } if avoid == src) {
                        continue;
                    }
                    prop_assert_eq!(mem.answer(q, &mut s1), mm.answer(q, &mut s2));
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

// ------------------------------------------------------------ rejection

fn encoded(seed: u64) -> Vec<u8> {
    solved(seed, 6).1.encode()
}

fn open_err(tag: &str, bytes: &[u8]) -> String {
    let path = temp_table(tag, bytes);
    let err = match MappedTable::open(&path) {
        Err(e) => e,
        Ok(_) => panic!("{tag}: corrupt table opened successfully"),
    };
    std::fs::remove_file(&path).ok();
    err
}

#[test]
fn truncated_files_are_rejected_at_every_length() {
    let bytes = encoded(1);
    // A spread of truncation points: inside the header, the dest index,
    // the checksum table, the rows, and just shy of the trailer.
    for cut in [0, 4, 10, 23, 24, 40, bytes.len() / 2, bytes.len() - 9, bytes.len() - 1] {
        let err = open_err("trunc", &bytes[..cut]);
        assert!(
            err.contains("too short") || err.contains("wrong length"),
            "cut at {cut}: {err}"
        );
    }
}

#[test]
fn wrong_magic_and_version_are_rejected() {
    let mut bytes = encoded(2);
    bytes[0] ^= 0xFF;
    assert!(open_err("magic", &bytes).contains("bad magic"));

    let mut bytes = encoded(2);
    bytes[4] = 99;
    // The version field participates in the whole-file checksum, so fix
    // the trailer up — the *version* check must fire, not the checksum.
    let sum = miro_shard::fnv1a(&bytes[..bytes.len() - 8]);
    let at = bytes.len() - 8;
    bytes[at..].copy_from_slice(&sum.to_le_bytes());
    assert!(open_err("version", &bytes).contains("format version 99"));
}

#[test]
fn zero_dest_and_empty_files_are_rejected() {
    let topo = GenParams::tiny(3).generate();
    let empty = RouteTableSet::from_solves(&topo, &[], 1).encode();
    assert!(open_err("zerodest", &empty).contains("zero destinations"));

    assert!(open_err("empty", b"").contains("too short"));
}

#[test]
fn flipped_row_byte_fails_whole_file_then_row_checksum() {
    let (topo, set) = solved(4, 6);
    let mut bytes = set.encode();
    // Poison one byte in the middle of row 2's cells.
    let d = set.dests().len();
    let v = set.num_nodes() as usize;
    let rows_at = 16 + 12 * d;
    let poison = rows_at + 2 * 7 * v + 3;
    bytes[poison] ^= 0x40;

    // Full open: the whole-file pass catches it.
    assert!(open_err("flip", &bytes).contains("whole-file checksum mismatch"));

    // Unverified open succeeds — and the per-row checksum catches the
    // poisoned row on first touch while every other row still serves.
    let path = temp_table("flip_lazy", &bytes);
    let mapped = MappedTable::open_unverified(&path).unwrap();
    for i in 0..d {
        let r = TableSource::row(&mapped, i);
        if i == 2 {
            let err = r.err().expect("poisoned row must not serve");
            assert!(err.contains("checksum mismatch"), "{err}");
        } else {
            r.unwrap();
        }
    }
    // The same failure surfaces through the engine as a clean per-query
    // Corrupt error, not a panic and not a wrong answer.
    let poisoned_dest = set.dests()[2];
    let engine = Engine::new(
        MappedTable::open_unverified(&path).unwrap(),
        topo,
        None,
    )
    .unwrap();
    let mut scratch = QueryScratch::new();
    let res = engine.answer(Query::Path { src: 0, dest: poisoned_dest }, &mut scratch);
    let err = res.unwrap_err();
    assert!(err.to_string().contains("corrupt"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn lying_checksum_table_fails_the_row_it_covers() {
    let (_topo, set) = solved(5, 6);
    let mut bytes = set.encode();
    // Corrupt row 1's *stored checksum* instead of its data.
    let sums_at = 16 + 4 * set.dests().len();
    bytes[sums_at + 8 + 2] ^= 0x01;
    assert!(open_err("liar", &bytes).contains("whole-file checksum mismatch"));

    let path = temp_table("liar_lazy", &bytes);
    let mapped = MappedTable::open_unverified(&path).unwrap();
    assert!(TableSource::row(&mapped, 1).is_err());
    assert!(TableSource::row(&mapped, 0).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn length_field_lies_are_rejected() {
    let mut bytes = encoded(6);
    // Inflate the claimed destination count without growing the file.
    let d = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    bytes[12..16].copy_from_slice(&(d + 7).to_le_bytes());
    assert!(open_err("dlie", &bytes).contains("wrong length"));

    let mut bytes = encoded(6);
    // Zero the node count.
    bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
    assert!(open_err("vzero", &bytes).contains("zero-node"));
}
