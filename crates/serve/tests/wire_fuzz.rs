//! Fuzz the query wire protocol: arbitrary byte soup and corrupted
//! frames must come back as clean [`FrameError`]s — never a panic, never
//! a silently wrong message — and every message kind must survive a
//! round trip with arbitrary field values.
//!
//! This is the serve-side half of the shared-codec satellite; the raw
//! frame layer itself (length cap, FNV trailer) is fuzzed from
//! `miro-shard`'s side in `crates/shard/tests/codec_fuzz.rs`.

use miro_serve::wire::{
    decode_payload, encode_payload, read_msg, write_msg, WireMsg, QUERY_PROTOCOL_VERSION,
};
use miro_shard::protocol::{encode_raw_frame, FrameError};
use proptest::prelude::*;
use std::io::Cursor;

/// One of every wire message, fields driven by the fuzzer.
fn all_msgs(id: u64, v: u32, asns: Vec<u32>, text: String) -> Vec<WireMsg> {
    vec![
        WireMsg::Hello { protocol: v },
        WireMsg::Welcome { protocol: v, num_nodes: v, num_dests: v.wrapping_add(1) },
        WireMsg::Universe { id },
        WireMsg::RUniverse { id, src_asns: asns.clone(), dest_asns: asns.clone() },
        WireMsg::NextHop { id, src: v, dest: v.wrapping_mul(3) },
        WireMsg::RNextHop { id, next: v, hops: (v % (u16::MAX as u32 + 1)) as u16, class: (v % 256) as u8 },
        WireMsg::Path { id, src: v, dest: v },
        WireMsg::RPath { id, path: asns.clone() },
        WireMsg::Alternate { id, src: v, dest: v, avoid: v.wrapping_add(7) },
        WireMsg::RAlternate { id, deviates: id.is_multiple_of(2), splice_at: v, via: v, path: asns },
        WireMsg::RUnrouted { id },
        WireMsg::RNoAlternate { id },
        WireMsg::Stats { id },
        WireMsg::RStats {
            id,
            queries: id,
            cache_hits: id / 2,
            cache_misses: id / 3,
            cache_evictions: id / 5,
            rows_verified: id / 7,
            connections: id % 65,
        },
        WireMsg::RErr { id, msg: text },
        WireMsg::Shutdown,
        WireMsg::RBye,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Raw byte soup handed straight to the payload decoder: every
    /// outcome is Ok or Corrupt — no panic, no Eof (Eof is a framing
    /// concept, not a payload one).
    #[test]
    fn byte_soup_decodes_or_fails_cleanly(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        match decode_payload(&bytes) {
            Ok(msg) => {
                // Anything that decodes must re-encode to the same bytes
                // it was decoded from (the codec has no redundancy).
                prop_assert_eq!(encode_payload(&msg), bytes);
            }
            Err(FrameError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Byte soup as a *stream*: the framed reader never panics and never
    /// fabricates a message from garbage that fails its checksum.
    #[test]
    fn framed_byte_soup_errors_cleanly(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        match read_msg(&mut Cursor::new(&bytes)) {
            Ok(msg) => {
                // Only possible if the soup happened to be a valid frame;
                // re-framing the message must reproduce a prefix of it.
                let frame = encode_raw_frame(&encode_payload(&msg));
                prop_assert_eq!(&bytes[..frame.len()], &frame[..]);
            }
            Err(FrameError::Eof) => prop_assert!(bytes.is_empty() || bytes.len() < 4),
            Err(FrameError::Corrupt(_)) | Err(FrameError::Io(_)) => {}
        }
    }

    /// Round trip with arbitrary field values, both per-payload and
    /// through the framed stream back-to-back.
    #[test]
    fn every_message_round_trips(
        id in any::<u64>(),
        v in any::<u32>(),
        asns in proptest::collection::vec(any::<u32>(), 0..12),
        text in "[ -~]{0,40}",
    ) {
        let msgs = all_msgs(id, v, asns, text);
        let mut stream = Vec::new();
        for msg in &msgs {
            prop_assert_eq!(&decode_payload(&encode_payload(msg)).unwrap(), msg);
            write_msg(&mut stream, msg).unwrap();
        }
        let mut cursor = Cursor::new(&stream);
        for msg in &msgs {
            prop_assert_eq!(&read_msg(&mut cursor).unwrap(), msg);
        }
        prop_assert!(matches!(read_msg(&mut cursor), Err(FrameError::Eof)));
    }

    /// Any single flipped byte in a valid frame is caught: by the FNV
    /// trailer if it hit payload/trailer bytes, by the length check if it
    /// hit the header. Never a panic; Ok only for a same-bytes decode
    /// (impossible for a real flip, so effectively never).
    #[test]
    fn single_byte_flip_is_always_caught(pick in any::<u16>(), flip in 0u8..255) {
        let flip = flip.wrapping_add(1); // 1..=255: never a no-op flip
        let msg = WireMsg::RAlternate {
            id: 77,
            deviates: true,
            splice_at: 4,
            via: 9,
            path: vec![4, 9, 11, 30],
        };
        let mut frame = encode_raw_frame(&encode_payload(&msg));
        let at = pick as usize % frame.len();
        frame[at] ^= flip;
        match read_msg(&mut Cursor::new(&frame)) {
            Err(FrameError::Corrupt(_)) | Err(FrameError::Io(_)) | Err(FrameError::Eof) => {}
            Ok(got) => prop_assert!(false, "flipped frame decoded as {got:?}"),
        }
    }
}

#[test]
fn truncated_frames_error_cleanly_at_every_cut() {
    let msg = WireMsg::RPath { id: 3, path: vec![100, 103, 106] };
    let frame = encode_raw_frame(&encode_payload(&msg));
    for cut in 0..frame.len() {
        match read_msg(&mut Cursor::new(&frame[..cut])) {
            Err(FrameError::Eof) => assert!(cut < 4, "Eof only between frames, cut={cut}"),
            Err(FrameError::Corrupt(_)) | Err(FrameError::Io(_)) => {}
            Ok(got) => panic!("truncated frame (cut={cut}) decoded as {got:?}"),
        }
    }
}

#[test]
fn corrupt_trailer_is_checksum_mismatch() {
    let frame = encode_raw_frame(&encode_payload(&WireMsg::Stats { id: 12 }));
    let mut bad = frame.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x01;
    match read_msg(&mut Cursor::new(&bad)) {
        Err(FrameError::Corrupt(why)) => assert!(why.contains("checksum"), "{why}"),
        other => panic!("unexpected: {other:?}"),
    }
}

/// The two services share the raw codec but disjoint kind ranges (shard
/// 1–6, serve 32+): a frame from the *other* service decodes to a clean
/// "unknown message kind", not a mangled message.
#[test]
fn cross_service_frames_are_rejected_by_kind() {
    let shard = miro_shard::protocol::encode_frame(&miro_shard::protocol::Msg::Assign {
        block: 3,
        start: 96,
        len: 32,
    });
    match read_msg(&mut Cursor::new(&shard)) {
        Err(FrameError::Corrupt(why)) => assert!(why.contains("unknown message kind"), "{why}"),
        other => panic!("unexpected: {other:?}"),
    }

    let serve = encode_raw_frame(&encode_payload(&WireMsg::Hello {
        protocol: QUERY_PROTOCOL_VERSION,
    }));
    match miro_shard::protocol::read_frame(&mut Cursor::new(&serve)) {
        Err(FrameError::Corrupt(why)) => assert!(why.contains("unknown message kind"), "{why}"),
        other => panic!("unexpected: {other:?}"),
    }
}
