//! Golden serving-plane fixture: solve the repository's synthetic CAIDA
//! snapshot (`data/caida_sample.txt`), serve it over a real TCP daemon,
//! and pin exact answers — next hop, full path, and alternates — for
//! hand-checked (src, dst, avoid) triples, in AS-number terms.
//!
//! The fixture's shape (tier-1 clique 1/2/3; transits 10, 20, 30 with
//! 10–20 peering and 10/11 siblings; tier-3 transit 100; stubs, two of
//! them multi-homed) is small enough to reason about by hand, so any
//! drift in solver preference, table encoding, mmap decoding, engine
//! semantics, ASN translation, or wire framing lands here as a concrete
//! wrong path.

use miro_serve::cache::ShardedCache;
use miro_serve::mmap::MappedTable;
use miro_serve::query::Engine;
use miro_serve::server::Server;
use miro_serve::wire::{read_msg, write_msg, WireMsg, QUERY_PROTOCOL_VERSION};
use miro_shard::format::RouteTableSet;
use miro_topology::io::stream;
use std::net::TcpStream;

/// Start the full serving stack over the solved fixture; returns the
/// connected client stream.
fn serve_fixture() -> (TcpStream, std::thread::JoinHandle<()>, std::path::PathBuf) {
    let text = std::fs::read_to_string(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../data/caida_sample.txt"),
    )
    .expect("fixture file");
    let (topo, _stats) = stream::parse_str(&text).expect("fixture parses");
    let dests: Vec<u32> = (0..topo.num_nodes() as u32).collect();
    let set = RouteTableSet::from_solves(&topo, &dests, 2);
    let path = std::env::temp_dir().join(format!(
        "miro_golden_{}_{:?}.mirt",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, set.encode()).unwrap();

    let table = MappedTable::open(&path).unwrap();
    let engine = Engine::new(table, topo, Some(ShardedCache::new(2, 32))).unwrap();
    let server = Server::bind("127.0.0.1:0", engine).unwrap();
    let addr = server.local_addr().unwrap();
    let daemon = std::thread::spawn(move || {
        server.run().unwrap();
    });

    let stream = TcpStream::connect(addr).unwrap();
    write_msg(&mut (&stream), &WireMsg::Hello { protocol: QUERY_PROTOCOL_VERSION }).unwrap();
    let WireMsg::Welcome { num_nodes, num_dests, .. } = read_msg(&mut (&stream)).unwrap()
    else {
        panic!("expected Welcome")
    };
    // 16 ASes survive the fixture's planted duplicate + self-loop.
    assert_eq!((num_nodes, num_dests), (16, 16));
    (stream, daemon, path)
}

fn ask(stream: &TcpStream, msg: WireMsg) -> WireMsg {
    write_msg(&mut (&*stream), &msg).unwrap();
    read_msg(&mut (&*stream)).unwrap()
}

#[test]
fn golden_answers_over_tcp() {
    let (stream, daemon, path) = serve_fixture();
    let s = &stream;

    // ---- next hops ----------------------------------------------------
    // Stub 400 reaches everything through its only provider, 100.
    assert_eq!(
        ask(s, WireMsg::NextHop { id: 1, src: 400, dest: 500 }),
        WireMsg::RNextHop { id: 1, next: 100, hops: 5, class: 2 } // provider route
    );
    // 20 reaches 101 directly: 101 is its own customer (class 0).
    assert_eq!(
        ask(s, WireMsg::NextHop { id: 2, src: 20, dest: 101 }),
        WireMsg::RNextHop { id: 2, next: 101, hops: 1, class: 0 }
    );
    // 10 reaches 200 over its peering with 20 (class 1).
    assert_eq!(
        ask(s, WireMsg::NextHop { id: 3, src: 10, dest: 200 }),
        WireMsg::RNextHop { id: 3, next: 20, hops: 2, class: 1 }
    );

    // ---- full paths ---------------------------------------------------
    // Stub-to-stub across the hierarchy: up to 100/10, across the
    // 10–20 peering, down to 200.
    assert_eq!(
        ask(s, WireMsg::Path { id: 4, src: 400, dest: 200 }),
        WireMsg::RPath { id: 4, path: vec![400, 100, 10, 20, 200] }
    );
    // Multi-homed stub 101 prefers its direct provider 20 for 200.
    assert_eq!(
        ask(s, WireMsg::Path { id: 5, src: 101, dest: 200 }),
        WireMsg::RPath { id: 5, path: vec![101, 20, 200] }
    );
    // Source == destination pins the one-node path.
    assert_eq!(
        ask(s, WireMsg::Path { id: 6, src: 30, dest: 30 }),
        WireMsg::RPath { id: 6, path: vec![30] }
    );

    // ---- alternates ---------------------------------------------------
    // A real deviation: multi-homed 101's default to 300 runs
    // 101-10-1-30-300; avoiding 10 forces the splice onto its other
    // provider, 20, whose installed route climbs to tier-1 3 instead.
    assert_eq!(
        ask(s, WireMsg::Alternate { id: 7, src: 101, dest: 300, avoid: 10 }),
        WireMsg::RAlternate {
            id: 7,
            deviates: true,
            splice_at: 101,
            via: 20,
            path: vec![101, 20, 3, 30, 300],
        }
    );
    // 400 sits under single-homed 100, whose only upstream is 10 — no
    // path out of that subtree can avoid 10, even with negotiation.
    assert_eq!(
        ask(s, WireMsg::Alternate { id: 12, src: 400, dest: 200, avoid: 10 }),
        WireMsg::RNoAlternate { id: 12 }
    );
    // Default already avoids: 101 -> 200 never touches 30.
    assert_eq!(
        ask(s, WireMsg::Alternate { id: 8, src: 101, dest: 200, avoid: 30 }),
        WireMsg::RAlternate { id: 8, deviates: false, splice_at: 0, via: 0, path: vec![101, 20, 200] }
    );
    // 200 is single-homed behind 20: nothing can avoid 20.
    assert_eq!(
        ask(s, WireMsg::Alternate { id: 9, src: 101, dest: 200, avoid: 20 }),
        WireMsg::RNoAlternate { id: 9 }
    );
    // Avoiding the destination itself is defined as NoAlternate.
    assert_eq!(
        ask(s, WireMsg::Alternate { id: 10, src: 400, dest: 200, avoid: 200 }),
        WireMsg::RNoAlternate { id: 10 }
    );
    // Multi-homed 301 (customers of 30 and of 10's sibling 11): an
    // alternate from 400 avoiding 30 must exist.
    match ask(s, WireMsg::Alternate { id: 11, src: 400, dest: 301, avoid: 30 }) {
        WireMsg::RAlternate { id: 11, deviates, path, .. } => {
            assert!(!path.contains(&30), "path avoids 30: {path:?}");
            assert_eq!(path.last(), Some(&301));
            let _ = deviates;
        }
        other => panic!("unexpected: {other:?}"),
    }

    // ---- shutdown -----------------------------------------------------
    assert_eq!(ask(s, WireMsg::Shutdown), WireMsg::RBye);
    daemon.join().unwrap();
    std::fs::remove_file(&path).ok();
}
