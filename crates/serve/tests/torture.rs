//! Concurrent-read torture: 8 threads hammer one shared engine — mmap
//! reader, first-touch row verification, and a deliberately undersized
//! hot cache — and every thread's answers must be bit-identical to a
//! single-threaded, cache-free ground truth.
//!
//! This is the test that makes the "validate once, then borrow" design
//! honest: the atomic row-verified bitmap, the cache stripes, and the
//! per-thread scratch must not let interleaving change any answer.

use miro_serve::cache::ShardedCache;
use miro_serve::mmap::MappedTable;
use miro_serve::query::{Answer, Engine, Query, QueryError, QueryScratch};
use miro_shard::format::RouteTableSet;
use miro_shard::sample_dests;
use miro_topology::gen::GenParams;
use miro_topology::NodeId;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// xorshift64* — deterministic query traffic.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A fixed, skewed query workload: heavy repetition of a few pairs (so
/// the cache is exercised) plus a uniform tail (so it keeps evicting).
fn workload(num_nodes: u32, dests: &[NodeId], count: usize, seed: u64) -> Vec<Query> {
    let mut rng = Rng(seed | 1);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        // Every 4th query draws from a hot set of 8 pairs.
        let (src, dest) = if i % 4 != 0 {
            let k = (rng.next() % 8) as u32;
            (k * 3 % num_nodes, dests[(k as usize) % dests.len()])
        } else {
            ((rng.next() % num_nodes as u64) as u32, dests[(rng.next() as usize) % dests.len()])
        };
        out.push(match i % 10 {
            0..=4 => Query::NextHop { src, dest },
            5..=7 => Query::Path { src, dest },
            _ => {
                let avoid = ((src as u64 + 1 + rng.next() % (num_nodes as u64 - 1))
                    % num_nodes as u64) as u32;
                Query::Alternate { src, dest, avoid }
            }
        });
    }
    out
}

#[test]
fn eight_threads_match_single_threaded_ground_truth() {
    const THREADS: usize = 8;
    const QUERIES: usize = 6_000;

    let topo = GenParams::tiny(11).generate();
    let dests = sample_dests(topo.num_nodes(), 24);
    let set = RouteTableSet::from_solves(&topo, &dests, 2);
    let path = std::env::temp_dir()
        .join(format!("miro_torture_{}.mirt", std::process::id()));
    std::fs::write(&path, set.encode()).unwrap();

    let queries = workload(topo.num_nodes() as u32, &dests, QUERIES, 0xBEEF);

    // Ground truth: in-memory table, no cache, one thread.
    let truth_engine = Engine::new(set, topo.clone(), None).unwrap();
    let mut scratch = QueryScratch::new();
    let truth: Vec<Result<Answer, QueryError>> =
        queries.iter().map(|&q| truth_engine.answer(q, &mut scratch)).collect();

    // Torture target: mmap'd table behind a cache far too small for the
    // working set (2 stripes x 8 slots vs ~thousands of distinct keys),
    // so hits, misses, and evictions all happen under contention.
    let mapped = MappedTable::open(&path).unwrap();
    let engine =
        Arc::new(Engine::new(mapped, topo, Some(ShardedCache::new(2, 8))).unwrap());

    let results: Vec<Vec<Result<Answer, QueryError>>> = std::thread::scope(|scope| {
        (0..THREADS)
            .map(|t| {
                let engine = engine.clone();
                let queries = &queries;
                scope.spawn(move || {
                    let mut scratch = QueryScratch::new();
                    // Each thread walks the same list from a different
                    // offset, maximizing cache interleaving; answers are
                    // collected back in list order for comparison.
                    let mut out = vec![None; queries.len()];
                    for i in 0..queries.len() {
                        let j = (i + t * queries.len() / THREADS) % queries.len();
                        out[j] = Some(engine.answer(queries[j], &mut scratch));
                    }
                    out.into_iter().map(Option::unwrap).collect()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    for (t, thread_answers) in results.iter().enumerate() {
        for (i, (got, want)) in thread_answers.iter().zip(&truth).enumerate() {
            assert_eq!(got, want, "thread {t}, query {i} ({:?})", queries[i]);
        }
    }

    // The run must actually have tortured what it claims to torture.
    let cache = engine.cache().unwrap();
    assert!(cache.stats.hits.load(Ordering::Relaxed) > 0, "no cache hits");
    assert!(cache.stats.evictions.load(Ordering::Relaxed) > 0, "no evictions");
    assert_eq!(
        engine.table().rows_verified(),
        dests.len() as u64,
        "every row should have been first-touch verified"
    );
    std::fs::remove_file(&path).ok();
}
