//! Dataset construction (Table 5.1) and the degree distribution
//! (Figure 5.1).

use miro_topology::gen::DatasetPreset;
use miro_topology::stats::{degree_ccdf, link_census, DegreePoint, LinkCensus};
use miro_topology::Topology;
use serde::Serialize;

/// Global experiment knobs shared by every subcommand.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Topology scale: 1.0 = the paper's node counts; default 0.05 keeps
    /// a full run laptop-sized.
    pub scale: f64,
    /// Master seed; every sampler derives from it deterministically.
    pub seed: u64,
    /// Number of sampled destinations per experiment.
    pub dest_samples: usize,
    /// Number of sampled sources per destination.
    pub src_samples: usize,
    /// Worker threads for per-destination sharding.
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            scale: 0.05,
            seed: 20060911, // SIGCOMM 2006 week
            dest_samples: 120,
            src_samples: 60,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        }
    }
}

impl EvalConfig {
    /// A very small configuration for unit tests.
    pub fn test_tiny() -> Self {
        EvalConfig {
            scale: 0.012,
            seed: 7,
            dest_samples: 25,
            src_samples: 20,
            threads: 2,
        }
    }
}

/// One dataset with its census: either generated from a Table 5.1 preset
/// or loaded from a `miro ingest` JSON cache of a real snapshot.
pub struct Dataset {
    name: String,
    pub topo: Topology,
    pub census: LinkCensus,
}

impl Dataset {
    /// The label experiments stamp on result tables: the preset name for
    /// generated datasets, the ingest label for cached ones.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Generate one preset at the configured scale.
    pub fn build(preset: DatasetPreset, cfg: &EvalConfig) -> Dataset {
        let topo = preset.params(cfg.scale, cfg.seed).generate();
        Dataset::from_topology(preset.name(), topo)
    }

    /// All four Table 5.1 datasets.
    pub fn build_all(cfg: &EvalConfig) -> Vec<Dataset> {
        DatasetPreset::ALL.iter().map(|&p| Dataset::build(p, cfg)).collect()
    }

    /// Wrap an already-built topology (ingested or synthetic).
    pub fn from_topology(name: &str, topo: Topology) -> Dataset {
        let census = link_census(&topo);
        Dataset { name: name.to_string(), topo, census }
    }

    /// Load a `miro ingest` JSON cache. The experiments then run on the
    /// real snapshot instead of a generated stand-in.
    pub fn load_cache(path: &str) -> Result<Dataset, String> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read cache {path:?}: {e}"))?;
        let cache = miro_topology::io::stream::IngestCache::from_json(&json)
            .map_err(|e| format!("cache {path:?}: {e}"))?;
        let topo = cache
            .topology
            .build()
            .map_err(|e| format!("cache {path:?} holds an invalid topology: {e}"))?;
        Ok(Dataset::from_topology(&cache.name, topo))
    }
}

/// One row of Table 5.1.
#[derive(Serialize, Clone, Debug)]
pub struct Table51Row {
    pub name: String,
    pub nodes: usize,
    pub edges: usize,
    pub pc_links: usize,
    pub peering_links: usize,
    pub sibling_links: usize,
}

/// Regenerate Table 5.1 for the generated datasets.
pub fn table5_1(datasets: &[Dataset]) -> Vec<Table51Row> {
    datasets
        .iter()
        .map(|d| Table51Row {
            name: d.name().to_string(),
            nodes: d.census.nodes,
            edges: d.census.edges,
            pc_links: d.census.pc_links,
            peering_links: d.census.peering_links,
            sibling_links: d.census.sibling_links,
        })
        .collect()
}

/// One Figure 5.1 series (per dataset): the degree CCDF.
#[derive(Serialize, Clone, Debug)]
pub struct Fig51Series {
    pub name: String,
    pub points: Vec<(usize, usize)>, // (degree, #nodes with >= degree)
}

/// Regenerate Figure 5.1.
pub fn fig5_1(datasets: &[Dataset]) -> Vec<Fig51Series> {
    datasets
        .iter()
        .map(|d| Fig51Series {
            name: d.name().to_string(),
            points: degree_ccdf(&d.topo)
                .into_iter()
                .map(|DegreePoint { degree, count, .. }| (degree, count))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_1_counts_are_consistent() {
        let cfg = EvalConfig::test_tiny();
        let ds = Dataset::build_all(&cfg);
        let rows = table5_1(&ds);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.edges, r.pc_links + r.peering_links + r.sibling_links);
            assert!(r.pc_links > r.peering_links, "P/C links dominate");
            assert!(r.peering_links > r.sibling_links || r.sibling_links <= 3);
        }
        // Relative dataset sizes follow the paper: 2000 < 2003 < 2005.
        assert!(rows[0].nodes < rows[1].nodes);
        assert!(rows[1].nodes < rows[2].nodes);
    }

    #[test]
    fn fig5_1_is_heavy_tailed_for_every_dataset() {
        let cfg = EvalConfig::test_tiny();
        let ds = Dataset::build_all(&cfg);
        for s in fig5_1(&ds) {
            let max_deg = s.points.last().unwrap().0;
            let n = s.points[0].1;
            // A tiny fraction of nodes has a large fraction of the
            // maximum degree.
            let high = s
                .points
                .iter()
                .find(|&&(d, _)| d >= max_deg / 2)
                .map(|&(_, c)| c)
                .unwrap();
            assert!(
                high * 10 < n,
                "{}: nodes with degree >= {} must be rare ({high}/{n})",
                s.name,
                max_deg / 2
            );
        }
    }
}
